"""Cluster planning with the calibrated performance model (Experiment C).

Uses the discrete-event simulator + cost model (calibrated against the
paper's Tables III and V) to answer the operational questions the paper's
auto-tuning section raises:

- How does runtime scale with cluster size for a 1M-SNP study?  (Fig. 6)
- Does the container shape matter at fixed hardware?            (Fig. 7)
- What is the cheapest configuration for a target analysis?

Run:  python examples/cluster_planning.py
"""

from __future__ import annotations

from repro.bench.tables import format_series_table
from repro.cluster.nodes import emr_cluster
from repro.core.autotune import PAPER_CONTAINER_SHAPES, ModelTuner
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec


def main() -> None:
    model = SparkScorePerfModel()
    tuner = ModelTuner(model)

    # --- strong scaling (Fig. 6): 1M SNPs, Monte Carlo -------------------------
    workload = WorkloadSpec(
        n_patients=1000, n_snps=1_000_000, n_snpsets=1000, method="monte_carlo"
    )
    runs = tuner.strong_scaling(workload, [6, 12, 18, 24, 36])
    iteration_grid = [0, 10, 20]
    series = {
        f"{n} nodes": [runs[n].total_at(b) for b in iteration_grid] for n in sorted(runs)
    }
    print(format_series_table(
        "Predicted runtime vs cluster size (1M SNPs, Monte Carlo)",
        "iterations", iteration_grid, series,
    ))
    print()
    for n, run in sorted(runs.items()):
        note = "U RDD fits in cache" if run.cache_fits else "cache THRASHES -> per-iteration recompute"
        print(f"  {n:>2} nodes: per-iteration {run.per_iteration_seconds:8.1f}s  ({note})")

    # --- container-shape sweep (Fig. 7): 36 nodes ---------------------------------
    sweep = tuner.sweep_containers(workload, emr_cluster(36), PAPER_CONTAINER_SHAPES)
    print()
    print(format_series_table(
        "Container shape sweep on 36 nodes (equal aggregate resources)",
        "iterations", [0, 10, 100],
        {str(shape): [run.total_at(b) for b in (0, 10, 100)] for shape, run in sweep.items()},
    ))
    totals = [run.total_at(100) for run in sweep.values()]
    print(f"\nspread across shapes at 100 iterations: "
          f"{(max(totals)/min(totals)-1)*100:.1f}% (the paper: 'almost negligible')")

    # --- recommendation ----------------------------------------------------------------
    target = WorkloadSpec(
        n_patients=1000, n_snps=1_000_000, n_snpsets=1000,
        method="monte_carlo", iterations=10_000,
    )
    shape, run = tuner.recommend(
        target,
        emr_cluster(18),
        container_counts=[18, 36, 54, 90],
        memories_gib=[3.0, 5.0, 10.0],
        cores_options=[2, 3, 6],
    )
    print(f"\nrecommended shape for 10k-replicate study on 18 nodes: {shape}")
    print(f"predicted total: {run.total_seconds:,.0f}s "
          f"(startup {run.startup_seconds:.0f}s + observed {run.observed_seconds:.0f}s "
          f"+ {target.iterations} x {run.per_iteration_seconds:.2f}s)")


if __name__ == "__main__":
    main()
