"""Fault tolerance: executor loss mid-analysis changes nothing but metrics.

The paper motivates Spark for its "fault-tolerant features" but never
kills a node.  This example does: an executor dies after a few tasks of a
Monte Carlo run, its cached U-RDD blocks and shuffle outputs vanish, and
the engine recovers by lineage recomputation -- the final exceedance
counts are bit-identical to a failure-free run.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import numpy as np

from repro import EngineConfig, SyntheticConfig, generate_dataset
from repro.core.algorithms import DistributedSparkScore
from repro.engine.context import Context
from repro.engine.faults import FaultInjector, FaultPlan


def run(plan: FaultPlan | None):
    data = generate_dataset(SyntheticConfig(n_patients=120, n_snps=1500, n_snpsets=30, seed=4))
    config = EngineConfig(
        backend="serial", num_executors=4, executor_cores=1, default_parallelism=8
    )
    injector = FaultInjector(plan) if plan else None
    with Context(config, fault_injector=injector) as ctx:
        scorer = DistributedSparkScore(ctx, data, flavor="vectorized", block_size=128)
        result = scorer.monte_carlo(iterations=200, seed=11, batch_size=40)
        jobs = ctx.metrics.jobs
        summary = {
            "task_failures": sum(j.num_task_failures for j in jobs),
            "executor_losses": sum(j.num_executor_failures_observed for j in jobs),
            "dead_executors": [e.executor_id for e in ctx.executors if not e.alive],
            "cache_hits": result.info["cache_hits"],
        }
        return result, summary


def main() -> None:
    clean, clean_stats = run(None)
    print(f"clean run:  counts sum = {clean.exceed_counts.sum()}, {clean_stats}")

    # kill executor 1 after its 3rd task, and make partition 2 flaky too
    plan = FaultPlan(
        kill_executor_after_tasks={"exec-1": 3},
        fail_partition_attempts={2: 1},
    )
    faulty, faulty_stats = run(plan)
    print(f"faulty run: counts sum = {faulty.exceed_counts.sum()}, {faulty_stats}")

    identical = np.array_equal(clean.exceed_counts, faulty.exceed_counts)
    print(f"\nexceedance counts identical despite injected failures: {identical}")
    assert identical, "lineage recovery must not change results"
    assert faulty_stats["executor_losses"] >= 1
    print("lineage recomputation recovered the lost cached blocks "
          f"({faulty_stats['task_failures']} task failures absorbed).")


if __name__ == "__main__":
    main()
