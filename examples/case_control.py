"""Case/control study with the binomial efficient score.

Figure 1 of the paper lists "Score Statistics (Cox, Binomial, Gaussian,
etc.)" as pluggable.  This example runs a case/control (logistic) analysis
on the distributed engine with a confounding covariate, showing:

- the binomial score model with IRLS null fit and covariate projection,
- the cost of ignoring a confounder (inflated null statistics),
- the distributed run matching the local reference exactly.

Run:  python examples/case_control.py
"""

from __future__ import annotations

import numpy as np

from repro import EngineConfig, SparkScoreAnalysis
from repro.genomics.genotypes import GenotypeMatrix
from repro.genomics.snpsets import SnpSetCollection
from repro.genomics.synthetic import Dataset
from repro.stats.score.base import BinaryPhenotype, SurvivalPhenotype
from repro.stats.score.binomial import BinomialScoreModel


def main() -> None:
    rng = np.random.default_rng(77)
    n, n_snps, n_sets = 500, 1200, 24

    # population structure: a "north/south" axis that shifts both allele
    # frequencies and disease risk -- the classic GWAS confounder
    ancestry = rng.normal(size=n)
    maf = rng.uniform(0.1, 0.4, n_snps)
    shift = 0.08 * np.sign(ancestry)[None, :]
    probs = np.clip(maf[:, None] + shift, 0.01, 0.99)
    G = rng.binomial(2, probs).astype(np.int8)
    genotypes = GenotypeMatrix(np.arange(n_snps), G)

    causal = np.arange(5)  # first set harbors the real signal
    eta = 0.9 * ancestry + 0.5 * G[causal].astype(float).sum(axis=0) - 1.0
    y = rng.binomial(1, 1.0 / (1.0 + np.exp(-eta))).astype(float)
    print(f"cohort: {int(y.sum())} cases / {int((1-y).sum())} controls")

    set_ids = np.repeat(np.arange(n_sets), n_snps // n_sets)
    snpsets = SnpSetCollection(set_ids)
    placeholder = SurvivalPhenotype(np.ones(n), np.ones(n))
    data = Dataset(genotypes, placeholder, np.ones(n_snps), snpsets)

    adjusted_model = BinomialScoreModel(BinaryPhenotype(y, ancestry[:, None]))
    naive_model = BinomialScoreModel(BinaryPhenotype(y))

    # local vs distributed cross-check with the adjusted model
    local = SparkScoreAnalysis.from_dataset(data, model=adjusted_model)
    mc_local = local.monte_carlo(iterations=1000, seed=1)
    with SparkScoreAnalysis.from_dataset(
        data,
        model=adjusted_model,
        engine="distributed",
        config=EngineConfig(backend="threads", num_executors=3, executor_cores=2,
                            default_parallelism=6),
        flavor="vectorized",
    ) as dist:
        mc_dist = dist.monte_carlo(iterations=1000, seed=1)
    assert np.array_equal(mc_local.exceed_counts, mc_dist.exceed_counts)
    print("distributed == local: exceedance counts identical")

    naive = SparkScoreAnalysis.from_dataset(data, model=naive_model).monte_carlo(
        iterations=1000, seed=1
    )

    print("\n              adjusted      unadjusted")
    causal_set = 0
    print(f"causal set    p={mc_local.pvalues()[causal_set]:<10.4g} "
          f"p={naive.pvalues()[causal_set]:<10.4g}")
    null_adj = np.delete(mc_local.pvalues(), causal_set)
    null_nai = np.delete(naive.pvalues(), causal_set)
    print(f"null sets     small-p rate (p<0.05): "
          f"{(null_adj < 0.05).mean():.2%} vs {(null_nai < 0.05).mean():.2%} "
          "(confounding inflates the unadjusted test)")

    print("\nTop sets (covariate-adjusted):")
    print(mc_local.to_table(max_rows=4))


if __name__ == "__main__":
    main()
