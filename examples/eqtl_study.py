"""eQTL-style analysis: quantitative phenotype, gene-based SNP sets, covariates.

The paper's abstract notes SparkScore "can be readily extended to analysis
of DNA and RNA sequencing data, including expression quantitative trait
loci (eQTL) ... studies".  This example does exactly that:

- the phenotype is a continuous expression level driven by a cis gene plus
  age/sex covariates,
- SNP-sets come from gene annotations ((chr, start, end) triplets mapped
  over (chr, pos) SNPs, as in Section II),
- the Gaussian efficient score with covariate adjustment feeds the same
  SKAT + Monte Carlo machinery.

Run:  python examples/eqtl_study.py
"""

from __future__ import annotations

import numpy as np

from repro import SparkScoreAnalysis
from repro.genomics.genotypes import GenotypeMatrix
from repro.genomics.snpsets import SnpSetCollection
from repro.genomics.synthetic import Dataset
from repro.genomics.variants import Gene, Snp
from repro.stats.score.base import QuantitativePhenotype, SurvivalPhenotype
from repro.stats.score.gaussian import GaussianScoreModel
from repro.stats.weights import beta_maf_weights, estimate_maf


def build_cohort(rng: np.random.Generator, n: int = 400, n_snps: int = 800):
    """SNPs on two chromosomes with real coordinates + gene annotations."""
    half = n_snps // 2
    chr1_pos = np.sort(rng.integers(1, 1_000_000, size=half))
    chr2_pos = np.sort(rng.integers(1, 1_500_000, size=n_snps - half))
    snps = [Snp("chr1", int(p), f"rs{i}") for i, p in enumerate(chr1_pos)]
    snps += [Snp("chr2", int(p), f"rs{half + i}") for i, p in enumerate(chr2_pos)]
    genes = [
        Gene("chr1", 0, 250_000, "GENE_A"),
        Gene("chr1", 250_001, 900_000, "GENE_B"),
        Gene("chr2", 0, 600_000, "GENE_C"),
        Gene("chr2", 600_001, 1_500_000, "GENE_D"),
    ]
    snpsets = SnpSetCollection.from_genes(snps, genes)

    maf = rng.uniform(0.02, 0.5, size=n_snps)
    G = rng.binomial(2, maf[:, None], size=(n_snps, n)).astype(np.int8)
    genotypes = GenotypeMatrix(np.arange(n_snps), G)
    return snps, genes, snpsets, genotypes


def main() -> None:
    rng = np.random.default_rng(314)
    snps, genes, snpsets, genotypes = build_cohort(rng)
    n = genotypes.n_patients

    # covariates: age and sex affect expression; a cis-eQTL in GENE_C adds
    # a genetic effect on top
    age = rng.normal(55, 10, n)
    sex = rng.binomial(1, 0.5, n).astype(float)
    covariates = np.column_stack([age, sex])
    gene_c_rows = snpsets.members(2)
    causal = gene_c_rows[:3]
    expression = (
        0.03 * age
        - 0.4 * sex
        + genotypes.matrix[causal].astype(float).sum(axis=0) * 0.55
        + rng.normal(0, 1.0, n)
    )
    phenotype = QuantitativePhenotype(expression, covariates)

    # rare variants up-weighted with the standard SKAT Beta(1, 25) weights
    weights = beta_maf_weights(estimate_maf(genotypes.matrix))

    # Dataset carries a survival phenotype slot by default; for eQTL we
    # supply the Gaussian model explicitly and a placeholder survival slot.
    placeholder = SurvivalPhenotype(np.ones(n), np.ones(n))
    data = Dataset(genotypes, placeholder, weights, snpsets)
    model = GaussianScoreModel(phenotype, adjust_genotypes=True)

    analysis = SparkScoreAnalysis.from_dataset(data, model=model)
    mc = analysis.monte_carlo(iterations=3000, seed=5)
    asym = analysis.asymptotic(method="liu")

    print("gene-level eQTL association (Monte Carlo, covariate-adjusted):")
    for k, name in enumerate(snpsets.names):
        n_members = len(snpsets.members(k))
        print(f"  {name:<12} ({n_members:4d} SNPs)  "
              f"p_mc = {mc.pvalues()[k]:8.4g}   p_asym = {asym.pvalues()[k]:8.4g}")

    top = mc.top(1)[0]
    print(f"\ntop hit: {top.name} (true cis gene: GENE_C)")

    # covariate adjustment matters: the unadjusted analysis is confounded
    unadjusted = SparkScoreAnalysis.from_dataset(
        data, model=GaussianScoreModel(QuantitativePhenotype(expression), adjust_genotypes=True)
    ).monte_carlo(iterations=1500, seed=5)
    print("\nwithout covariate adjustment the null genes drift "
          f"(mean null p adjusted {np.mean(np.delete(mc.pvalues(), top.set_index)):.2f} "
          f"vs unadjusted {np.mean(np.delete(unadjusted.pvalues(), top.set_index)):.2f})")


if __name__ == "__main__":
    main()
