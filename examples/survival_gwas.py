"""Distributed survival GWAS: the paper's full pipeline, end to end.

Reproduces the flow of Figure 1 / Algorithms 1-3 at laptop scale:

1. generate the Section III synthetic dataset,
2. write the four input text files into a simulated HDFS,
3. run the distributed engine with the genotype parse happening in map
   tasks (exactly the paper's stage 0),
4. compare Monte Carlo (cached U RDD) against permutation resampling, and
5. report the engine's cache/shuffle metrics showing *why* MC wins.

Run:  python examples/survival_gwas.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import EngineConfig, SparkScoreAnalysis, SyntheticConfig, generate_dataset
from repro.engine.context import Context
from repro.genomics.io.dataset_io import write_dataset
from repro.hdfs.filesystem import MiniHDFS


def main() -> None:
    data = generate_dataset(
        SyntheticConfig(n_patients=200, n_snps=3000, n_snpsets=60, seed=99)
    )

    # --- stage the inputs on (simulated) HDFS --------------------------------
    fs = MiniHDFS(num_datanodes=4, block_size=256 * 1024, replication=2)
    write_dataset(data, "/gwas/run1", hdfs=fs)
    status = fs.status("/gwas/run1/genotypes.txt")
    print(f"genotype file on HDFS: {status.size/1e6:.2f} MB in {status.num_blocks} "
          f"blocks (replication {status.replication})")

    config = EngineConfig(
        backend="threads", num_executors=4, executor_cores=2, default_parallelism=8
    )
    with Context(config, hdfs=fs) as ctx:
        analysis = SparkScoreAnalysis.from_files(
            "/gwas/run1", hdfs=fs, parse_with_engine=True,
            engine="distributed", ctx=ctx, flavor="vectorized", block_size=256,
        )

        # --- Algorithm 3: Monte Carlo with the U RDD cached -------------------
        start = time.perf_counter()
        mc = analysis.monte_carlo(iterations=500, seed=3, batch_size=50)
        mc_seconds = time.perf_counter() - start
        print(f"\nMonte Carlo (500 replicates, cached U): {mc_seconds:.2f}s  "
              f"[cache hits {mc.info['cache_hits']}, misses {mc.info['cache_misses']}, "
              f"jobs {mc.info['jobs_run']}]")

        # --- Algorithm 2: permutation, full recompute per replicate ------------
        start = time.perf_counter()
        perm = analysis.permutation(iterations=50, seed=3)
        perm_seconds = time.perf_counter() - start
        per_iter_mc = mc_seconds / 500
        per_iter_perm = perm_seconds / 50
        print(f"permutation  (50 replicates, recompute): {perm_seconds:.2f}s")
        print(f"per-replicate cost: MC {per_iter_mc*1000:.1f} ms vs "
              f"permutation {per_iter_perm*1000:.1f} ms "
              f"({per_iter_perm/per_iter_mc:.1f}x, the paper's Experiment A contrast)")

        # --- results agree between the two resampling schemes ------------------
        disagreement = np.max(np.abs(mc.pvalues() - perm.pvalues()))
        print(f"max |p_mc - p_perm| over {data.n_sets} sets: {disagreement:.3f}")

        print("\nTop sets (Monte Carlo):")
        print(mc.to_table(max_rows=5))


if __name__ == "__main__":
    main()
