"""Study design: how many patients, how many replicates, what cluster?

Chains three planning tools this repository provides around the paper's
workflow:

1. statistical power (Owzar et al., the paper's refs. [25]/[26]) -- how
   many patients does the score test need for a target effect?
2. resampling budget -- how many Monte Carlo replicates to estimate the
   target p-value precisely enough (the paper: "the precision of the
   p-value is ... directly tied to the number of resamplings performed")?
3. the calibrated performance model -- what does that study cost on EMR?

Finishes with a small live simulation confirming the power prediction.

Run:  python examples/study_design.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.nodes import emr_cluster
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec
from repro.stats.power import required_sample_size, score_test_power
from repro.stats.resampling.pvalues import required_resamples


def main() -> None:
    # --- 1. sample size -------------------------------------------------------
    effect = 0.35          # per-allele log hazard ratio we must not miss
    maf = 0.25             # design allele frequency
    event_rate = 0.85      # the paper's synthetic event rate
    alpha_per_set = 0.05 / 1000  # Bonferroni across 1000 SNP-sets

    n = required_sample_size(effect, maf, event_rate, alpha=alpha_per_set, power=0.9)
    print(f"target: 90% power for beta={effect}, MAF={maf}, alpha={alpha_per_set:.2g}")
    print(f"  -> required patients: {n}")
    for trial_n in (n // 2, n, 2 * n):
        print(f"     power at n={trial_n}: "
              f"{score_test_power(trial_n, effect, maf, event_rate, alpha_per_set):.3f}")

    # --- 2. resampling budget ---------------------------------------------------
    B = required_resamples(alpha_per_set, relative_error=0.1)
    print(f"\nestimating p ~ {alpha_per_set:.2g} to 10% relative error needs "
          f"B ~ {B:,} Monte Carlo replicates")

    # --- 3. cluster cost ----------------------------------------------------------
    model = SparkScorePerfModel()
    workload = WorkloadSpec(
        n_patients=n, n_snps=100_000, n_snpsets=1000, method="monte_carlo", iterations=B
    )
    print("\npredicted wall-clock for the full study (100K SNPs):")
    for nodes in (6, 12, 18):
        run = model.predict(workload, emr_cluster(nodes))
        hours = run.total_seconds / 3600
        print(f"  {nodes:>2} x m3.2xlarge: {run.total_seconds:10,.0f}s  (~{hours:.1f}h)"
              f"   [{B:,} x {run.per_iteration_seconds:.2f}s/replicate]")

    # --- 4. verify the power prediction with a live mini-simulation -----------------
    from repro.stats.score.base import SurvivalPhenotype
    from repro.stats.wald import score_test_statistics
    from scipy import stats as sps

    rng = np.random.default_rng(42)
    sims, hits = 150, 0
    crit = sps.chi2.isf(alpha_per_set, df=1)
    for _ in range(sims):
        g = rng.binomial(2, maf, n).astype(float)
        times = rng.exponential(np.exp(-effect * g) * 12.0)
        events = rng.binomial(1, event_rate, n)
        stat = score_test_statistics(SurvivalPhenotype(times, events), g)[0]
        hits += stat >= crit
    predicted = score_test_power(n, effect, maf, event_rate, alpha_per_set)
    print(f"\nempirical power over {sims} simulated studies: {hits/sims:.2f} "
          f"(closed form predicted {predicted:.2f})")


if __name__ == "__main__":
    main()
