"""What-if replay: measure once, extrapolate to any cluster.

Runs a real SparkScore job on the local engine with an event log attached,
reloads the log (as a "history server" would), and replays the measured
task graph on simulated clusters of increasing size -- answering the
paper's Figure 6 question from one laptop measurement instead of renting
EMR three times.

Run:  python examples/whatif_replay.py
"""

from __future__ import annotations

import os
import tempfile

from repro import EngineConfig, SyntheticConfig, generate_dataset
from repro.core.algorithms import DistributedSparkScore
from repro.core.replay import capture_job, replay, what_if_scaling
from repro.engine.context import Context
from repro.engine.eventlog import read_event_log


def main() -> None:
    data = generate_dataset(
        SyntheticConfig(n_patients=200, n_snps=4000, n_snpsets=80, seed=17)
    )
    log_path = os.path.join(tempfile.mkdtemp(prefix="sparkscore-"), "events.jsonl")

    # --- measure: run the observed-statistic job with many partitions ------------
    config = EngineConfig(
        backend="serial", num_executors=2, executor_cores=2, default_parallelism=32
    )
    with Context(config, event_log_path=log_path) as ctx:
        scorer = DistributedSparkScore(ctx, data, flavor="vectorized", block_size=128)
        scorer.observed_statistics()
    print(f"event log written: {log_path}")

    # --- reload the log (different 'process' in spirit) -----------------------------
    jobs = read_event_log(log_path)
    recorded = capture_job(jobs[0])
    print(f"recorded job: {recorded.n_tasks} tasks over {len(recorded.stages)} stages, "
          f"{recorded.total_task_seconds*1000:.0f} ms of task time")

    # --- what-if: replay at various slot counts ----------------------------------------
    print("\nreplayed makespan vs slots (measured durations, simulated placement):")
    scaling = what_if_scaling(recorded, [1, 2, 4, 8, 16, 32])
    base = scaling[1]
    for slots, makespan in scaling.items():
        bar = "#" * max(1, int(40 * makespan / base))
        print(f"  {slots:>3} slots: {makespan*1000:8.1f} ms  "
              f"(speedup {base/makespan:5.2f}x)  {bar}")

    # --- what-if: faster cores + scheduling overhead --------------------------------------
    faster = replay(recorded, 8, core_speedup=2.0)
    overheady = replay(recorded, 8, task_overhead_s=0.01)
    print(f"\n8 slots with 2x faster cores: {faster.makespan*1000:.1f} ms")
    print(f"8 slots with 10ms task launch overhead: {overheady.makespan*1000:.1f} ms "
          "(per-task overhead dominates small tasks -- the reason the paper-"
          "faithful record-per-SNP flavor loses to the block-vectorized one)")


if __name__ == "__main__":
    main()
