"""Quickstart: SNP-set association testing on synthetic GWAS data.

Generates a small survival-phenotype dataset with a planted causal gene,
runs Monte Carlo resampling (Algorithm 3) through the high-level API, and
cross-checks against permutation resampling and the asymptotic
approximation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SparkScoreAnalysis, SyntheticConfig, generate_dataset


def main() -> None:
    # 1. Synthetic cohort: 300 patients, 1000 SNPs in 25 gene-like sets,
    #    with 5 causal SNPs (log hazard ratio 0.9 per allele).
    config = SyntheticConfig(
        n_patients=300,
        n_snps=1000,
        n_snpsets=25,
        n_causal_snps=5,
        effect_size=0.9,
        seed=2024,
    )
    data = generate_dataset(config)
    causal_sets = sorted(set(data.snpsets.set_ids[data.causal_rows]))
    print(f"dataset: {data.n_snps} SNPs x {data.n_patients} patients, "
          f"{data.n_sets} SNP-sets; causal sets: {causal_sets}")

    # 2. Monte Carlo resampling (the paper's fast path: cached contributions).
    analysis = SparkScoreAnalysis.from_dataset(data)
    mc = analysis.monte_carlo(iterations=2000, seed=7)
    print("\nTop SNP-sets by Monte Carlo p-value:")
    for row in mc.top(5):
        print("  ", row)

    # 3. Cross-check with permutation resampling (slower, fewer replicates)
    #    and the asymptotic mixture-of-chi-square approximation.
    perm = analysis.permutation(iterations=300, seed=7)
    asym = analysis.asymptotic(method="liu")
    print("\nmethod agreement on the top hit:")
    top = mc.top(1)[0].set_index
    print(f"   monte carlo  p = {mc.pvalues()[top]:.4g}")
    print(f"   permutation  p = {perm.pvalues()[top]:.4g}")
    print(f"   asymptotic   p = {asym.pvalues()[top]:.4g}")

    # 4. The planted gene should surface at or near the top.
    hits = {row.set_index for row in mc.top(len(causal_sets))}
    recovered = sorted(hits & set(causal_sets))
    print(f"\ncausal sets recovered in top-{len(causal_sets)}: {recovered}")

    # 5. Per-SNP marginal scores are also available (variant-by-variant view).
    scores = analysis.marginal_scores()
    best_snp = int(np.argmax(np.abs(scores)))
    print(f"largest marginal |score|: SNP row {best_snp} "
          f"(causal: {best_snp in set(data.causal_rows.tolist())})")


if __name__ == "__main__":
    main()
