"""Experiment B (Table IV -> Figures 4-5 + Table V): impact of RDD caching.

Live part: the real engine runs Monte Carlo with and without the cached
contributions RDD; uncached must recompute lineage per batch (B1 in
DESIGN.md).  Simulated part: the 10K-SNP (Fig. 4 / Table V) and 1M-SNP
(Fig. 5) workloads on 18 nodes, printed next to the published numbers.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.experiments import EXPERIMENT_B_10K, EXPERIMENT_B_1M, PAPER_TABLE_V
from repro.bench.tables import format_comparison_table, format_series_table
from repro.cluster.nodes import emr_cluster
from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec
from repro.engine.context import Context
from repro.obs.registry import REGISTRY


def engine_config():
    return EngineConfig(
        backend="serial", num_executors=2, executor_cores=2, default_parallelism=4
    )


def registry_delta(before: dict) -> dict:
    """What the engine counters moved by since ``before`` (a snapshot)."""
    after = REGISTRY.snapshot()
    return {k: v - before.get(k, 0) for k, v in after.items()}


def cache_summary_line(tag: str, delta: dict) -> str:
    hits = delta.get("engine_cache_hits_total", 0)
    misses = delta.get("engine_cache_misses_total", 0)
    accesses = hits + misses
    rate = hits / accesses if accesses else 0.0
    shuffle_kib = delta.get("engine_shuffle_bytes_total", 0) / 1024
    return (
        f"[registry] {tag}: cache hit rate {rate:.1%} "
        f"({hits:.0f} hits / {misses:.0f} misses), "
        f"shuffle volume {shuffle_kib:.1f} KiB"
    )


class TestLiveCaching:
    def test_monte_carlo_cached(self, benchmark, live_dataset):
        def run():
            with Context(engine_config()) as ctx:
                scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
                return scorer.monte_carlo(60, seed=1, batch_size=20)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.info["cache_hits"] > 0

    def test_monte_carlo_uncached(self, benchmark, live_dataset):
        def run():
            with Context(engine_config()) as ctx:
                scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
                return scorer.monte_carlo(
                    60, seed=1, batch_size=20, cache_contributions=False
                )

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.info["cache_hits"] == 0

    def test_cached_faster_live(self, benchmark, live_dataset):
        """B1 live: same analysis, caching wins on wall clock -- and the
        engine metrics registry shows why (hit rate + shuffle volume)."""
        snap = REGISTRY.snapshot()
        with Context(engine_config()) as ctx:
            cached_scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
            start = time.perf_counter()
            cached_scorer.monte_carlo(60, seed=1, batch_size=10)
            cached = time.perf_counter() - start
        cached_delta = registry_delta(snap)
        snap = REGISTRY.snapshot()
        with Context(engine_config()) as ctx:
            uncached_scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
            start = time.perf_counter()
            uncached_scorer.monte_carlo(60, seed=1, batch_size=10, cache_contributions=False)
            uncached = time.perf_counter() - start
        uncached_delta = registry_delta(snap)
        for tag, delta in (("cached", cached_delta), ("no-cache", uncached_delta)):
            line = cache_summary_line(tag, delta)
            print(line)
            benchmark.extra_info[f"registry_{tag}"] = line
        benchmark.extra_info["live_cache_speedup"] = uncached / cached
        benchmark(lambda: None)
        assert cached_delta["engine_cache_hits_total"] > 0
        assert uncached_delta["engine_cache_hits_total"] == 0
        assert uncached > cached


class TestPaperScaleSimulation:
    @pytest.fixture(scope="class")
    def model(self):
        return SparkScorePerfModel()

    def test_simulate_table_v_10k(self, benchmark, model, paper_tables):
        cluster = emr_cluster(EXPERIMENT_B_10K.n_nodes)
        cached = model.predict(
            WorkloadSpec(1000, EXPERIMENT_B_10K.n_snps, 1000, "monte_carlo"), cluster
        )
        uncached = model.predict(
            WorkloadSpec(1000, EXPERIMENT_B_10K.n_snps, 1000, "monte_carlo", cache=False),
            cluster,
        )
        benchmark(lambda: cached.total_at(10_000))
        iters = PAPER_TABLE_V["iterations"]
        paper_tables.append(format_comparison_table(
            "Table V / Fig. 4 -- MC with caching, 10K SNPs, 18 nodes (seconds)",
            "iterations", iters,
            [cached.total_at(b) for b in iters],
            list(PAPER_TABLE_V["caching_avg"]),
        ))
        paper_tables.append(format_comparison_table(
            "Table V / Fig. 4 -- MC without caching, 10K SNPs, 18 nodes (seconds)",
            "iterations", iters,
            [uncached.total_at(b) if PAPER_TABLE_V["nocache_avg"][i] is not None else None
             for i, b in enumerate(iters)],
            list(PAPER_TABLE_V["nocache_avg"]),
        ))
        # headline claim: cached @ 10000 beats uncached @ 200
        assert cached.total_at(10_000) < uncached.total_at(200)

    def test_simulate_fig5_1m(self, benchmark, model, paper_tables):
        cluster = emr_cluster(EXPERIMENT_B_1M.n_nodes)
        cached = model.predict(
            WorkloadSpec(1000, EXPERIMENT_B_1M.n_snps, 1000, "monte_carlo"), cluster
        )
        uncached = model.predict(
            WorkloadSpec(1000, EXPERIMENT_B_1M.n_snps, 1000, "monte_carlo", cache=False),
            cluster,
        )
        benchmark(lambda: cached.total_at(1000))
        grid = [0, 10, 100, 1000]
        paper_tables.append(format_series_table(
            "Fig. 5 -- MC w/ and w/o caching, 1M SNPs, 18 nodes "
            "(claim: cached@1000 < uncached@10)",
            "iterations", grid,
            {
                "cached": [cached.total_at(b) for b in grid],
                "no cache": [uncached.total_at(b) if b <= 10 else None for b in grid],
            },
        ))
        assert cached.total_at(1000) < uncached.total_at(10)

    def test_per_iteration_collapse(self, benchmark, model):
        cluster = emr_cluster(18)
        cached = model.predict(WorkloadSpec(1000, 10_000, 1000, "monte_carlo"), cluster)
        uncached = model.predict(
            WorkloadSpec(1000, 10_000, 1000, "monte_carlo", cache=False), cluster
        )
        ratio = uncached.per_iteration_seconds / cached.per_iteration_seconds
        benchmark.extra_info["per_iteration_collapse"] = ratio
        benchmark(lambda: None)
        assert ratio > 50


class TestCacheEvictionAblation:
    """Beyond the paper: sweep the executor memory budget and watch the
    live engine degrade from all-cached to thrash-and-recompute."""

    @pytest.mark.parametrize("memory_kib", [262144, 48])
    def test_memory_budget(self, benchmark, live_dataset_small, memory_kib):
        config = EngineConfig(
            backend="serial",
            num_executors=2,
            executor_cores=1,
            executor_memory=memory_kib * 1024,
            default_parallelism=4,
        )

        def run():
            with Context(config) as ctx:
                scorer = DistributedSparkScore(ctx, live_dataset_small, flavor="vectorized")
                return scorer.monte_carlo(30, seed=1, batch_size=10)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        if memory_kib >= 262144:
            assert result.info["cache_hits"] > 0
        else:
            # a 48 KiB budget cannot hold any ~100 KiB contribution block:
            # every access falls back to lineage recomputation
            assert result.info["cache_hits"] == 0
            assert result.info["cache_misses"] > 0
