"""Ablations beyond the paper's figures (DESIGN.md section 6).

- score test vs Wald/LRT: the computational motivation of Section II --
  the score statistic needs one evaluation per SNP; Wald needs a Newton
  loop with convergence monitoring;
- algorithm flavor: the paper-faithful record-per-SNP pipeline vs the
  vectorized block pipeline (per-record overhead ablation);
- weights join strategy: RDD join (Algorithm 1 step 9) vs broadcast map;
- resampling vs asymptotic inference cost;
- serial vs threads backend.
"""

from __future__ import annotations

import time

import pytest

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.local import LocalSparkScore
from repro.engine.context import Context
from repro.stats.wald import cox_mle, score_test_statistics


class TestScoreVsWald:
    """The paper's core computational argument, measured."""

    def test_score_statistics(self, benchmark, live_dataset):
        benchmark(
            score_test_statistics, live_dataset.phenotype, live_dataset.genotypes.matrix
        )

    def test_wald_newton_raphson(self, benchmark, live_dataset):
        result = benchmark.pedantic(
            cox_mle, args=(live_dataset.phenotype, live_dataset.genotypes.matrix),
            rounds=2, iterations=1,
        )
        assert result.converged.all()

    def test_score_much_cheaper_than_wald(self, benchmark, live_dataset):
        pheno, G = live_dataset.phenotype, live_dataset.genotypes.matrix
        start = time.perf_counter()
        score_test_statistics(pheno, G)
        score_t = time.perf_counter() - start
        start = time.perf_counter()
        mle = cox_mle(pheno, G)
        wald_t = time.perf_counter() - start
        benchmark.extra_info["wald_over_score"] = wald_t / score_t
        benchmark.extra_info["mean_newton_iterations"] = float(mle.iterations.mean())
        benchmark(lambda: None)
        assert wald_t > 1.5 * score_t
        assert mle.iterations.mean() > 1.0


class TestFlavorAblation:
    """Record-per-SNP (paper) vs block-vectorized pipelines."""

    def _run(self, dataset, flavor):
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2, default_parallelism=4
        )
        with Context(config) as ctx:
            scorer = DistributedSparkScore(ctx, dataset, flavor=flavor, block_size=256)
            return scorer.monte_carlo(30, seed=1, batch_size=15)

    def test_flavor_paper(self, benchmark, live_dataset_small):
        benchmark.pedantic(self._run, args=(live_dataset_small, "paper"), rounds=2, iterations=1)

    def test_flavor_vectorized(self, benchmark, live_dataset_small):
        benchmark.pedantic(
            self._run, args=(live_dataset_small, "vectorized"), rounds=2, iterations=1
        )

    def test_vectorized_faster(self, benchmark, live_dataset):
        start = time.perf_counter()
        a = self._run(live_dataset, "paper")
        paper_t = time.perf_counter() - start
        start = time.perf_counter()
        b = self._run(live_dataset, "vectorized")
        vec_t = time.perf_counter() - start
        assert (a.exceed_counts == b.exceed_counts).all()
        benchmark.extra_info["vectorized_speedup"] = paper_t / vec_t
        benchmark(lambda: None)
        assert vec_t < paper_t


class TestJoinStrategyAblation:
    @pytest.mark.parametrize("strategy", ["rdd_join", "broadcast"])
    def test_join_strategy(self, benchmark, live_dataset_small, strategy):
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2, default_parallelism=4
        )

        def run():
            with Context(config) as ctx:
                scorer = DistributedSparkScore(
                    ctx, live_dataset_small, flavor="paper", join_strategy=strategy
                )
                return scorer.monte_carlo(10, seed=1, batch_size=10)

        benchmark.pedantic(run, rounds=2, iterations=1)


class TestInferenceCostComparison:
    def test_asymptotic(self, benchmark, live_dataset_small):
        local = LocalSparkScore(live_dataset_small)
        benchmark.pedantic(local.asymptotic, kwargs={"method": "liu"}, rounds=3, iterations=1)

    def test_monte_carlo_1000(self, benchmark, live_dataset_small):
        local = LocalSparkScore(live_dataset_small)
        benchmark.pedantic(local.monte_carlo, args=(1000, 3), rounds=3, iterations=1)

    def test_permutation_100(self, benchmark, live_dataset_small):
        local = LocalSparkScore(live_dataset_small)
        benchmark.pedantic(local.permutation, args=(100, 3), rounds=3, iterations=1)


class TestBackendAblation:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_backend(self, benchmark, live_dataset, backend):
        config = EngineConfig(
            backend=backend, num_executors=2, executor_cores=2, default_parallelism=4
        )

        def run():
            with Context(config) as ctx:
                scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
                return scorer.monte_carlo(30, seed=1, batch_size=15)

        benchmark.pedantic(run, rounds=2, iterations=1)


class TestSetStatisticVariants:
    """SKAT vs burden vs SKAT-O cost on the same replicate stream."""

    def test_skat_monte_carlo(self, benchmark, live_dataset_small):
        local = LocalSparkScore(live_dataset_small)
        benchmark.pedantic(local.monte_carlo, args=(500, 3), rounds=3, iterations=1)

    def test_skat_o_grid(self, benchmark, live_dataset_small):
        from repro.stats.skato import skato_resampling

        local = LocalSparkScore(live_dataset_small)
        U = local.contributions()
        result = benchmark.pedantic(
            skato_resampling,
            args=(U, live_dataset_small.weights, live_dataset_small.snpsets.set_ids,
                  live_dataset_small.n_sets, 500),
            kwargs={"seed": 3},
            rounds=2, iterations=1,
        )
        assert result.pvalues.shape == (live_dataset_small.n_sets,)

    def test_variant_maxt(self, benchmark, live_dataset_small):
        from repro.stats.resampling.multipletesting import westfall_young_maxt

        local = LocalSparkScore(live_dataset_small)
        U = local.contributions()
        result = benchmark.pedantic(
            westfall_young_maxt, args=(U, 500), kwargs={"seed": 3}, rounds=2, iterations=1
        )
        assert result.adjusted_pvalues.shape[0] == live_dataset_small.n_snps


class TestPermutationFastPath:
    """GEMM permutation path for covariate-free GLM phenotypes."""

    @pytest.fixture(scope="class")
    def gaussian_sampler(self, live_dataset_small):
        import numpy as np

        from repro.stats.resampling.permutation import PermutationResampler
        from repro.stats.score.base import QuantitativePhenotype
        from repro.stats.score.gaussian import GaussianScoreModel

        rng = np.random.default_rng(2)
        model = GaussianScoreModel(
            QuantitativePhenotype(rng.normal(size=live_dataset_small.n_patients))
        )
        return PermutationResampler(
            model,
            live_dataset_small.genotypes.matrix.astype(float),
            live_dataset_small.weights,
            live_dataset_small.snpsets.set_ids,
            live_dataset_small.n_sets,
        )

    def test_vectorized(self, benchmark, gaussian_sampler):
        benchmark.pedantic(
            gaussian_sampler.run, args=(200, 1), kwargs={"vectorized": True},
            rounds=3, iterations=1,
        )

    def test_per_replicate(self, benchmark, gaussian_sampler):
        benchmark.pedantic(
            gaussian_sampler.run, args=(200, 1), kwargs={"vectorized": False},
            rounds=2, iterations=1,
        )
