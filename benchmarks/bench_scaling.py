"""Figure 6 / Table VI: strong scaling, plus the Table I hardware record.

Live part: the same workload on 1, 2, and 4 executor-cores worth of thread
parallelism -- more resources, same input.  Simulated part: the 1M-SNP
Monte Carlo workload on 6/12/18 simulated EMR nodes, reproducing the
two-orders-of-magnitude gap the paper attributes to 18 nodes at 20
iterations (the cached U RDD fits at 18 nodes and thrashes at 6 -- see
EXPERIMENTS.md).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.experiments import FIG6_ITERATIONS, FIG6_NODES
from repro.bench.tables import format_series_table
from repro.cluster.nodes import M3_2XLARGE, emr_cluster
from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec
from repro.engine.context import Context


class TestTableI:
    def test_hardware_record(self, benchmark, paper_tables):
        benchmark(lambda: M3_2XLARGE)
        paper_tables.append(
            "== Table I -- m3.2xlarge (encoded in repro.cluster.nodes) ==\n\n"
            f"  processor: {M3_2XLARGE.processor}\n"
            f"  vCPU:      {M3_2XLARGE.vcpus}\n"
            f"  memory:    {M3_2XLARGE.memory_gib:g} GiB\n"
            f"  storage:   2 x {M3_2XLARGE.storage_gb/2:g} GB"
        )


class TestLiveStrongScaling:
    @pytest.mark.parametrize("executors,cores", [(1, 1), (2, 2), (4, 2)])
    def test_thread_scaling(self, benchmark, live_dataset, executors, cores):
        config = EngineConfig(
            backend="threads",
            num_executors=executors,
            executor_cores=cores,
            default_parallelism=executors * cores * 2,
        )

        def run():
            with Context(config) as ctx:
                scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
                return scorer.monte_carlo(40, seed=2, batch_size=20)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_more_slots_not_slower(self, benchmark, live_dataset):
        """Sanity: 4x2 threads should not lose badly to 1x1 on real work."""

        def timed(executors, cores):
            config = EngineConfig(
                backend="threads",
                num_executors=executors,
                executor_cores=cores,
                default_parallelism=8,
            )
            with Context(config) as ctx:
                scorer = DistributedSparkScore(ctx, live_dataset, flavor="vectorized")
                start = time.perf_counter()
                scorer.monte_carlo(40, seed=2, batch_size=20)
                return time.perf_counter() - start

        single = timed(1, 1)
        many = timed(4, 2)
        benchmark.extra_info["live_speedup_4x2_vs_1x1"] = single / many
        benchmark(lambda: None)
        assert many < 3.0 * single  # engine overhead must not swamp the gain


class TestPaperScaleSimulation:
    def test_simulate_fig6(self, benchmark, paper_tables):
        model = SparkScorePerfModel()
        workload = WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo")
        runs = {n: model.predict(workload, emr_cluster(n)) for n in FIG6_NODES}
        benchmark(lambda: [runs[n].total_at(20) for n in FIG6_NODES])
        paper_tables.append(format_series_table(
            "Table VI / Fig. 6 -- strong scaling, 1M SNPs, Monte Carlo",
            "iterations", list(FIG6_ITERATIONS),
            {
                f"{n} x m3.2xlarge": [runs[n].total_at(b) for b in FIG6_ITERATIONS]
                for n in FIG6_NODES
            },
        ))
        ratio = runs[6].total_at(20) / runs[18].total_at(20)
        paper_tables.append(
            f"   (18-node run at 20 iterations is {ratio:.0f}x faster than 6 nodes;\n"
            "    paper: 'two orders of magnitude smaller')"
        )
        assert ratio > 30
        assert runs[6].total_at(20) > runs[12].total_at(20) > runs[18].total_at(20)

    def test_cache_fit_boundary(self, benchmark):
        """The mechanism behind Fig. 6: 24 GB of cached U objects fits in
        18 x 3 GiB of storage memory but not in 6 x 3 GiB."""
        model = SparkScorePerfModel()
        workload = WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo")
        fits = {n: model.predict(workload, emr_cluster(n)).cache_fits for n in (6, 12, 18)}
        benchmark(lambda: None)
        assert fits == {6: False, 12: True, 18: True}
