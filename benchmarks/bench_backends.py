"""Backend shoot-out on the Monte Carlo resampling workload.

Runs the same MC job under the serial, threads, processes, and persistent
cluster backends, asserts the statistics are bit-identical, and emits
``BENCH_backends.json`` with wall-clock and driver-traffic numbers:

    PYTHONPATH=src python benchmarks/bench_backends.py --iterations 200

The processes backend only shows its multi-core speedup on a multi-core
host (the dispatch is asynchronous either way; on one core the pool just
adds serialization overhead).  The JSON records ``cpu_count`` so readers
can interpret the ratios.

The cold/warm sweep runs the identical analysis in several consecutive
fresh Contexts over one persistent cluster: job 1 pays the fleet spawn and
ships every task binary, warm jobs re-hit the workers' caches and publish
nothing (``transport_dedup_hits`` instead of bytes).  CI gates on
``warm_wall <= 0.5 * cold_wall``.

The adaptive (AQE) sweep runs a deliberately skewed shuffle -- one reduce
bucket carrying ~11x the records, with fixed per-record work -- under a
static plan and under the adaptive planner.  The planner splits the hot
bucket along map boundaries at the stage boundary, so the tail spreads
across all slots; results must stay bit-identical.  CI gates on
``adaptive_wall <= 0.7 * static_wall``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.local import LocalSparkScore
from repro.engine.context import Context
from repro.genomics.synthetic import SyntheticConfig, generate_dataset

BACKENDS = ("serial", "threads", "processes", "cluster")


def run_backend(dataset, backend: str, args, serializer: str | None = None) -> dict:
    serializer = serializer or args.serializer
    config = EngineConfig(
        backend=backend,
        num_executors=args.executors,
        executor_cores=args.cores,
        default_parallelism=args.executors * args.cores,
        serializer=serializer,
    )
    with Context(config) as ctx:
        # persistent backends share a transport across contexts; record the
        # traffic this run added, not the lifetime totals
        pub0 = ctx.transport.bytes_published if ctx.transport is not None else 0
        dedup0 = ctx.transport.dedup_hits if ctx.transport is not None else 0
        scorer = DistributedSparkScore(
            ctx, dataset, flavor=args.flavor, block_size=args.block_size
        )
        start = time.perf_counter()
        result = scorer.monte_carlo(
            args.iterations, seed=args.seed, batch_size=args.batch_size
        )
        wall = time.perf_counter() - start
        totals = [job.totals() for job in ctx.metrics.jobs]
        row = {
            "backend": backend,
            "serializer": serializer,
            "wall_seconds": wall,
            "driver_bytes_collected": sum(t.driver_bytes_collected for t in totals),
            "task_binary_bytes": sum(t.task_binary_bytes for t in totals),
            "shuffle_bytes": sum(t.shuffle_bytes_written for t in totals),
            "shuffle_compressed_bytes": sum(t.shuffle_compressed_bytes for t in totals),
            "serializer_seconds": sum(t.serializer_seconds for t in totals),
            "jobs_run": len(ctx.metrics.jobs),
            "observed": result.observed,
            "exceed_counts": result.exceed_counts,
        }
        if ctx.transport is not None:
            row["transport_bytes_published"] = ctx.transport.bytes_published - pub0
            row["transport_dedup_hits"] = ctx.transport.dedup_hits - dedup0
        return row


def cold_warm_sweep(dataset, args) -> dict:
    """The persistence drill: identical analysis, fresh Context each time,
    one long-lived cluster underneath.  Job 1 is cold (fleet spawn + every
    task binary shipped); warm jobs re-hit worker caches and ship ~refs.

    Walls here are *end-to-end per job* -- Context construction included --
    because the spawn cost is exactly what persistence amortizes.  A
    per-job processes baseline (pool torn down between jobs) anchors the
    comparison to what every job used to pay.
    """
    from repro.engine.backends import shutdown_shared_pool
    from repro.engine.cluster_backend import stop_all_clusters

    shutdown_shared_pool()
    start = time.perf_counter()
    baseline = run_backend(dataset, "processes", args)
    per_job_processes = time.perf_counter() - start
    shutdown_shared_pool()
    print(f"{'processes*':>10}: {per_job_processes:8.2f}s  (per-job pool: "
          f"spawn + analyze + teardown)")

    stop_all_clusters()  # guarantee job 1 really pays the spawn
    jobs = []
    for i in range(args.warm_jobs + 1):
        start = time.perf_counter()
        row = run_backend(dataset, "cluster", args)
        end_to_end = time.perf_counter() - start
        assert np.array_equal(row["exceed_counts"], baseline["exceed_counts"]), (
            f"cluster job {i} diverged from the processes baseline"
        )
        jobs.append({
            "job": "cold" if i == 0 else f"warm_{i}",
            "wall_seconds": end_to_end,
            "analyze_seconds": row["wall_seconds"],
            "task_binary_bytes": row["task_binary_bytes"],
            "transport_bytes_published": row.get("transport_bytes_published", 0),
            "transport_dedup_hits": row.get("transport_dedup_hits", 0),
        })
        print(
            f"{jobs[-1]['job']:>10}: {end_to_end:8.2f}s  "
            f"task-binaries {row['task_binary_bytes']:>10,} B  "
            f"published {jobs[-1]['transport_bytes_published']:>10,} B  "
            f"dedup hits {jobs[-1]['transport_dedup_hits']}"
        )
    cold = jobs[0]["wall_seconds"]
    warm = min(j["wall_seconds"] for j in jobs[1:])
    return {
        "jobs": jobs,
        "per_job_processes_wall_seconds": per_job_processes,
        "cold_wall_seconds": cold,
        "best_warm_wall_seconds": warm,
        "warm_speedup_vs_cold": cold / warm if warm > 0 else float("inf"),
        "warm_speedup_vs_per_job_processes": (
            per_job_processes / warm if warm > 0 else float("inf")
        ),
        # task binaries travel as ~refs on warm jobs (the blob itself dedups
        # against the persistent transport's content-hash index).  Explicitly
        # destroyed broadcasts (the per-batch MC multipliers) legitimately
        # republish, so bytes_published shrinks but need not reach zero.
        "warm_jobs_ship_binaries_by_ref": all(
            j["task_binary_bytes"] < 0.05 * max(jobs[0]["task_binary_bytes"], 1)
            for j in jobs[1:]
        ),
        "warm_jobs_hit_dedup": all(
            j["transport_dedup_hits"] > 0 for j in jobs[1:]
        ),
    }


def adaptive_sweep(args) -> dict:
    """Skewed-shuffle drill: static plan vs adaptive query execution.

    8 reduce buckets over 4 maps; bucket 3 holds 44 records, the rest 4
    each, and every record costs ``--adaptive-unit-ms`` of wall time on
    the reduce side.  Static makespan ~= the hot bucket (44 units on one
    slot); the adaptive split re-cuts it into 4 map-aligned pieces, so
    the ideal makespan drops toward total/slots (72/4 = 18 units).
    """
    unit = args.adaptive_unit_ms / 1000.0
    # one record per key per map, plus 10 hot extras per map: bucket
    # totals [4, 4, 4, 44, 4, 4, 4, 4] with the hot records spread evenly
    # across maps so the split has boundaries to cut along
    per_map = [
        [(k, f"m{m}-{k}") for k in range(8)]
        + [(3, f"m{m}-hot-{j}") for j in range(10)]
        for m in range(4)
    ]
    data = [record for chunk in per_map for record in chunk]

    def slow_value(v: str) -> str:
        time.sleep(unit)
        return v.upper()

    def run(adaptive: bool) -> tuple[list, float, dict]:
        config = EngineConfig(
            backend="threads",
            num_executors=2,
            executor_cores=2,
            default_parallelism=4,
            adaptive_enabled=adaptive,
        )
        with Context(config) as ctx:
            rdd = ctx.parallelize(data, 4).partition_by(8).map_values(slow_value)
            start = time.perf_counter()
            result = rdd.collect()
            wall = time.perf_counter() - start
            snap = ctx.adaptive.snapshot()
        return result, wall, snap

    static_result, static_wall, _ = run(adaptive=False)
    adaptive_result, adaptive_wall, snap = run(adaptive=True)
    identical = adaptive_result == static_result
    assert identical, "adaptive plan diverged from the static plan"
    assert snap["stages_rewritten"] >= 1, "planner never rewrote the hot stage"
    ratio = adaptive_wall / static_wall if static_wall > 0 else float("inf")
    print(f"{'static':>10}: {static_wall:8.2f}s  (hot bucket serialized on one slot)")
    print(f"{'adaptive':>10}: {adaptive_wall:8.2f}s  "
          f"({snap['stages_rewritten']} plan rewrite(s), ratio {ratio:.2f})")
    return {
        "records": len(data),
        "unit_seconds": unit,
        "bucket_totals": [4, 4, 4, 44, 4, 4, 4, 4],
        "static_wall_seconds": static_wall,
        "adaptive_wall_seconds": adaptive_wall,
        "adaptive_over_static": ratio,
        "stages_rewritten": snap["stages_rewritten"],
        "decisions": snap["decisions"],
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=200)
    parser.add_argument("--snps", type=int, default=2000)
    parser.add_argument("--snpsets", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--executors", type=int, default=2)
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--flavor", choices=["paper", "vectorized"], default="vectorized")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--serializer", choices=["pickle", "numpy", "compressed"],
                        default="pickle", help="serializer for the backend sweep")
    parser.add_argument("--skip-serializer-sweep", action="store_true",
                        help="skip the per-serializer sweep on the processes backend")
    parser.add_argument("--warm-jobs", type=int, default=2,
                        help="warm repetitions in the cluster cold/warm sweep "
                        "(0 skips the sweep)")
    parser.add_argument("--skip-adaptive-sweep", action="store_true",
                        help="skip the skewed-shuffle AQE static-vs-adaptive drill")
    parser.add_argument("--adaptive-unit-ms", type=float, default=10.0,
                        help="per-record reduce-side cost in the AQE drill "
                        "(default: 10 ms)")
    parser.add_argument("--output", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    dataset = generate_dataset(
        SyntheticConfig(
            n_patients=args.patients, n_snps=args.snps, n_snpsets=args.snpsets, seed=42
        )
    )

    local_start = time.perf_counter()
    local = LocalSparkScore(dataset).monte_carlo(
        args.iterations, seed=args.seed, batch_size=args.batch_size
    )
    local_wall = time.perf_counter() - local_start

    rows = []
    for backend in BACKENDS:
        row = run_backend(dataset, backend, args)
        status = "ok"
        if not np.array_equal(row["exceed_counts"], local.exceed_counts):
            status = "MISMATCH vs local"
        row["matches_local"] = status == "ok"
        rows.append(row)
        print(
            f"{backend:>10}: {row['wall_seconds']:8.2f}s  "
            f"driver {row['driver_bytes_collected']:>12,} B  "
            f"task-binaries {row['task_binary_bytes']:>12,} B  [{status}]"
        )

    for row in rows[1:]:
        assert np.array_equal(row["exceed_counts"], rows[0]["exceed_counts"]), (
            f"{row['backend']} diverged from serial"
        )

    serializer_rows = []
    if not args.skip_serializer_sweep:
        print()
        for serializer in ("pickle", "numpy", "compressed"):
            row = run_backend(dataset, "processes", args, serializer=serializer)
            assert np.array_equal(row["exceed_counts"], rows[0]["exceed_counts"]), (
                f"serializer {serializer} diverged"
            )
            row["matches_local"] = np.array_equal(
                row["exceed_counts"], local.exceed_counts
            )
            serializer_rows.append(row)
            print(
                f"{serializer:>10}: {row['wall_seconds']:8.2f}s  "
                f"shuffle {row['shuffle_bytes']:>10,} B raw / "
                f"{row['shuffle_compressed_bytes']:>10,} B framed  "
                f"task-binaries {row['task_binary_bytes']:>12,} B"
            )

    cold_warm = None
    if args.warm_jobs > 0:
        print()
        cold_warm = cold_warm_sweep(dataset, args)

    adaptive = None
    if not args.skip_adaptive_sweep:
        print()
        adaptive = adaptive_sweep(args)

    serial_wall = rows[0]["wall_seconds"]
    report = {
        "workload": {
            "patients": args.patients,
            "snps": args.snps,
            "snpsets": args.snpsets,
            "iterations": args.iterations,
            "batch_size": args.batch_size,
            "flavor": args.flavor,
            "executors": args.executors,
            "cores": args.cores,
        },
        "cpu_count": os.cpu_count(),
        "local_wall_seconds": local_wall,
        "backends": [
            {
                **{k: v for k, v in row.items() if k not in ("observed", "exceed_counts")},
                "speedup_vs_serial": serial_wall / row["wall_seconds"],
            }
            for row in rows
        ],
        "serializer_sweep_processes": [
            {k: v for k, v in row.items() if k not in ("observed", "exceed_counts")}
            for row in serializer_rows
        ],
        "cluster_cold_warm": cold_warm,
        "adaptive_sweep": adaptive,
        "bit_identical_across_backends": True,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nlocal reference: {local_wall:.2f}s; report written to {args.output}")

    # reap the intentionally persistent machinery before the interpreter exits
    from repro.engine.backends import shutdown_shared_pool
    from repro.engine.cluster_backend import stop_all_clusters

    stop_all_clusters()
    shutdown_shared_pool()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
