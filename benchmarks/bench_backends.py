"""Backend shoot-out on the Monte Carlo resampling workload.

Runs the same MC job under the serial, threads, and processes backends,
asserts the statistics are bit-identical, and emits ``BENCH_backends.json``
with wall-clock and driver-traffic numbers:

    PYTHONPATH=src python benchmarks/bench_backends.py --iterations 200

The processes backend only shows its multi-core speedup on a multi-core
host (the dispatch is asynchronous either way; on one core the pool just
adds serialization overhead).  The JSON records ``cpu_count`` so readers
can interpret the ratios.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.local import LocalSparkScore
from repro.engine.context import Context
from repro.genomics.synthetic import SyntheticConfig, generate_dataset

BACKENDS = ("serial", "threads", "processes")


def run_backend(dataset, backend: str, args, serializer: str | None = None) -> dict:
    serializer = serializer or args.serializer
    config = EngineConfig(
        backend=backend,
        num_executors=args.executors,
        executor_cores=args.cores,
        default_parallelism=args.executors * args.cores,
        serializer=serializer,
    )
    with Context(config) as ctx:
        scorer = DistributedSparkScore(
            ctx, dataset, flavor=args.flavor, block_size=args.block_size
        )
        start = time.perf_counter()
        result = scorer.monte_carlo(
            args.iterations, seed=args.seed, batch_size=args.batch_size
        )
        wall = time.perf_counter() - start
        totals = [job.totals() for job in ctx.metrics.jobs]
        row = {
            "backend": backend,
            "serializer": serializer,
            "wall_seconds": wall,
            "driver_bytes_collected": sum(t.driver_bytes_collected for t in totals),
            "task_binary_bytes": sum(t.task_binary_bytes for t in totals),
            "shuffle_bytes": sum(t.shuffle_bytes_written for t in totals),
            "shuffle_compressed_bytes": sum(t.shuffle_compressed_bytes for t in totals),
            "serializer_seconds": sum(t.serializer_seconds for t in totals),
            "jobs_run": len(ctx.metrics.jobs),
            "observed": result.observed,
            "exceed_counts": result.exceed_counts,
        }
        if ctx.transport is not None:
            row["transport_bytes_published"] = ctx.transport.bytes_published
            row["transport_dedup_hits"] = ctx.transport.dedup_hits
        return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=200)
    parser.add_argument("--snps", type=int, default=2000)
    parser.add_argument("--snpsets", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--executors", type=int, default=2)
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--flavor", choices=["paper", "vectorized"], default="vectorized")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--serializer", choices=["pickle", "numpy", "compressed"],
                        default="pickle", help="serializer for the backend sweep")
    parser.add_argument("--skip-serializer-sweep", action="store_true",
                        help="skip the per-serializer sweep on the processes backend")
    parser.add_argument("--output", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    dataset = generate_dataset(
        SyntheticConfig(
            n_patients=args.patients, n_snps=args.snps, n_snpsets=args.snpsets, seed=42
        )
    )

    local_start = time.perf_counter()
    local = LocalSparkScore(dataset).monte_carlo(
        args.iterations, seed=args.seed, batch_size=args.batch_size
    )
    local_wall = time.perf_counter() - local_start

    rows = []
    for backend in BACKENDS:
        row = run_backend(dataset, backend, args)
        status = "ok"
        if not np.array_equal(row["exceed_counts"], local.exceed_counts):
            status = "MISMATCH vs local"
        row["matches_local"] = status == "ok"
        rows.append(row)
        print(
            f"{backend:>10}: {row['wall_seconds']:8.2f}s  "
            f"driver {row['driver_bytes_collected']:>12,} B  "
            f"task-binaries {row['task_binary_bytes']:>12,} B  [{status}]"
        )

    for row in rows[1:]:
        assert np.array_equal(row["exceed_counts"], rows[0]["exceed_counts"]), (
            f"{row['backend']} diverged from serial"
        )

    serializer_rows = []
    if not args.skip_serializer_sweep:
        print()
        for serializer in ("pickle", "numpy", "compressed"):
            row = run_backend(dataset, "processes", args, serializer=serializer)
            assert np.array_equal(row["exceed_counts"], rows[0]["exceed_counts"]), (
                f"serializer {serializer} diverged"
            )
            row["matches_local"] = np.array_equal(
                row["exceed_counts"], local.exceed_counts
            )
            serializer_rows.append(row)
            print(
                f"{serializer:>10}: {row['wall_seconds']:8.2f}s  "
                f"shuffle {row['shuffle_bytes']:>10,} B raw / "
                f"{row['shuffle_compressed_bytes']:>10,} B framed  "
                f"task-binaries {row['task_binary_bytes']:>12,} B"
            )

    serial_wall = rows[0]["wall_seconds"]
    report = {
        "workload": {
            "patients": args.patients,
            "snps": args.snps,
            "snpsets": args.snpsets,
            "iterations": args.iterations,
            "batch_size": args.batch_size,
            "flavor": args.flavor,
            "executors": args.executors,
            "cores": args.cores,
        },
        "cpu_count": os.cpu_count(),
        "local_wall_seconds": local_wall,
        "backends": [
            {
                **{k: v for k, v in row.items() if k not in ("observed", "exceed_counts")},
                "speedup_vs_serial": serial_wall / row["wall_seconds"],
            }
            for row in rows
        ],
        "serializer_sweep_processes": [
            {k: v for k, v in row.items() if k not in ("observed", "exceed_counts")}
            for row in serializer_rows
        ],
        "bit_identical_across_backends": True,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nlocal reference: {local_wall:.2f}s; report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
