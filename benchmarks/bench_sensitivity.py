"""Figure 3: sensitivity -- iterations x SNPs held constant.

The paper fixes iterations x SNPs = 1e7 across three configurations and
observes that runtime is similar within each method while Monte Carlo
dominates permutation throughout.  The live part scales the product down
to 2e4 (iterations x SNPs) and measures the same invariance on the real
local engine; the simulated part replays the paper-scale configurations.

Note: the paper does not state the cluster size for this figure; we use
the 18-node Experiment B cluster so the 1M-SNP configuration sits in the
cache-fits regime (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.experiments import FIG3_CONFIGS
from repro.bench.tables import format_series_table
from repro.cluster.nodes import emr_cluster
from repro.core.local import LocalSparkScore
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec
from repro.genomics.synthetic import SyntheticConfig, generate_dataset

#: live configurations: iterations x SNPs = 40_000 in all three
LIVE_CONFIGS = ((100, 400), (40, 1000), (10, 4000))


class TestLiveSensitivity:
    @pytest.mark.parametrize("iterations,n_snps", LIVE_CONFIGS)
    def test_monte_carlo_constant_work(self, benchmark, iterations, n_snps):
        data = generate_dataset(
            SyntheticConfig(n_patients=200, n_snps=n_snps, n_snpsets=20, seed=1)
        )
        local = LocalSparkScore(data)
        benchmark.pedantic(local.monte_carlo, args=(iterations, 5), rounds=3, iterations=1)

    def test_mc_within_small_spread_live(self, benchmark):
        """MC wall time varies by < 10x across the constant-work configs."""
        times = []
        for iterations, n_snps in LIVE_CONFIGS:
            data = generate_dataset(
                SyntheticConfig(n_patients=200, n_snps=n_snps, n_snpsets=20, seed=1)
            )
            local = LocalSparkScore(data)
            local.observed_statistics()  # warm
            start = time.perf_counter()
            local.monte_carlo(iterations, seed=5)
            times.append(time.perf_counter() - start)
        benchmark.extra_info["live_spread"] = max(times) / min(times)
        benchmark(lambda: None)
        assert max(times) / min(times) < 10

    def test_mc_beats_perm_in_each_config_live(self, benchmark):
        for iterations, n_snps in LIVE_CONFIGS:
            data = generate_dataset(
                SyntheticConfig(n_patients=200, n_snps=n_snps, n_snpsets=20, seed=1)
            )
            local = LocalSparkScore(data)
            start = time.perf_counter()
            local.monte_carlo(iterations, seed=5)
            mc = time.perf_counter() - start
            start = time.perf_counter()
            local.permutation(iterations, seed=5)
            perm = time.perf_counter() - start
            assert mc < perm
        benchmark(lambda: None)


class TestPaperScaleSimulation:
    def test_simulate_fig3(self, benchmark, paper_tables):
        model = SparkScorePerfModel()
        cluster = emr_cluster(18)
        mc_totals, perm_totals, labels = [], [], []
        for iterations, n_snps in FIG3_CONFIGS:
            mc = model.predict(WorkloadSpec(1000, n_snps, 1000, "monte_carlo"), cluster)
            perm = model.predict(WorkloadSpec(1000, n_snps, 1000, "permutation"), cluster)
            mc_totals.append(mc.total_at(iterations))
            perm_totals.append(perm.total_at(iterations))
            labels.append(f"{iterations}x{n_snps}")
        benchmark(lambda: None)
        paper_tables.append(format_series_table(
            "Fig. 3 -- sensitivity: iterations x SNPs = 1e7 (18 nodes)",
            "iters x SNPs", labels,
            {"monte carlo": mc_totals, "permutation": perm_totals},
        ))
        # shape claims: similar within method, MC wins everywhere
        assert max(mc_totals) / min(mc_totals) < 10
        assert max(perm_totals) / min(perm_totals) < 10
        assert all(m < p for m, p in zip(mc_totals, perm_totals))
