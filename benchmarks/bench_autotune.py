"""Figure 7 / Tables VII-VIII: Spark-on-YARN container auto-tuning.

Simulated part: the three container shapes of Table VIII (equal aggregate
resources) on the 36-node Table VII cluster -- runtimes must be nearly
identical, as in Fig. 7.  Live part: the LiveTuner probes real engine runs
across partition counts / block sizes, the engine-level analogue of the
paper's "prototype and evaluate selected auto-tuning capabilities".
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENT_C, FIG7_ITERATIONS
from repro.bench.tables import format_series_table
from repro.cluster.nodes import emr_cluster
from repro.cluster.yarn import ResourceManager
from repro.config import EngineConfig
from repro.core.autotune import PAPER_CONTAINER_SHAPES, LiveTuner, ModelTuner
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec


class TestPaperScaleSimulation:
    def test_simulate_fig7(self, benchmark, paper_tables):
        tuner = ModelTuner(SparkScorePerfModel())
        workload = WorkloadSpec(
            EXPERIMENT_C.n_patients, EXPERIMENT_C.n_snps, EXPERIMENT_C.n_snpsets,
            "monte_carlo",
        )
        sweep = tuner.sweep_containers(
            workload, emr_cluster(EXPERIMENT_C.n_nodes), PAPER_CONTAINER_SHAPES
        )
        benchmark(lambda: [run.total_at(100) for run in sweep.values()])
        paper_tables.append(format_series_table(
            "Tables VII-VIII / Fig. 7 -- container shapes on 36 nodes, 1M SNPs",
            "iterations", list(FIG7_ITERATIONS),
            {
                f"{s.num_containers} containers": [run.total_at(b) for b in FIG7_ITERATIONS]
                for s, run in sweep.items()
            },
        ))
        totals = [run.total_at(100) for run in sweep.values()]
        spread = max(totals) / min(totals) - 1
        paper_tables.append(
            f"   (spread across container shapes: {spread:.1%}; "
            "paper: 'almost negligible')"
        )
        assert spread < 0.10

    def test_equal_aggregate_resources(self, benchmark):
        rm = ResourceManager(emr_cluster(36))
        cores = {
            rm.allocate(s.num_containers, s.memory_gib, s.cores).total_cores
            for s in PAPER_CONTAINER_SHAPES
        }
        benchmark(lambda: None)
        assert len(cores) == 1  # 252 vcores in every configuration

    def test_model_recommender(self, benchmark):
        tuner = ModelTuner(SparkScorePerfModel())
        workload = WorkloadSpec(1000, 100_000, 1000, "monte_carlo", iterations=1000)
        shape, run = benchmark.pedantic(
            tuner.recommend,
            args=(workload, emr_cluster(12)),
            kwargs=dict(
                container_counts=[12, 24, 36],
                memories_gib=[3.0, 5.0, 10.0],
                cores_options=[2, 3, 6],
            ),
            rounds=2,
            iterations=1,
        )
        assert run.total_seconds > 0


class TestLiveTuning:
    @pytest.fixture(scope="class")
    def tuner(self, live_dataset_small):
        return LiveTuner(
            live_dataset_small,
            config=EngineConfig(backend="serial", num_executors=2, executor_cores=2),
            probe_iterations=10,
        )

    def test_partition_sweep(self, benchmark, tuner):
        probes = benchmark.pedantic(tuner.sweep, args=([2, 8], [64]), rounds=2, iterations=1)
        assert len(probes) == 2

    def test_block_size_sweep(self, benchmark, tuner):
        probes = benchmark.pedantic(
            tuner.sweep, args=([4], [8, 256]), rounds=2, iterations=1
        )
        assert len(probes) == 2

    def test_best_probe_selected(self, benchmark, tuner):
        best = benchmark.pedantic(tuner.best, args=([2, 4], [64]), rounds=1, iterations=1)
        assert best.wall_seconds > 0
