"""Experiment A (Table II -> Figure 2 + Table III): MC vs permutation scaling.

Live part: measure Monte Carlo and permutation replicate costs on the real
engine at reduced scale and assert the paper's ordering (A1-A3 in
DESIGN.md).  Simulated part: replay the exact Table II workload (1000
patients x 100K SNPs x 1000 sets on 6 m3.2xlarge nodes) and print our
predicted seconds next to Table III's published numbers.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENT_A, PAPER_TABLE_III
from repro.bench.tables import format_comparison_table
from repro.cluster.nodes import emr_cluster
from repro.core.local import LocalSparkScore
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec


@pytest.fixture(scope="module")
def local(live_dataset):
    return LocalSparkScore(live_dataset)


class TestLiveScaling:
    """Real measurements at 1/50 scale; shapes must match Figure 2."""

    def test_observed_statistic(self, benchmark, local):
        benchmark(local.observed_statistics)

    def test_monte_carlo_16(self, benchmark, local):
        result = benchmark(local.monte_carlo, 16, 3)
        assert result.n_resamples == 16

    def test_monte_carlo_1000(self, benchmark, local):
        benchmark.pedantic(local.monte_carlo, args=(1000, 3), rounds=3, iterations=1)

    def test_permutation_16(self, benchmark, local):
        result = benchmark.pedantic(local.permutation, args=(16, 3), rounds=3, iterations=1)
        assert result.n_resamples == 16

    def test_mc_beats_permutation_at_equal_iterations(self, benchmark, local):
        """A2 live: per-replicate cost of MC is far below permutation's."""
        import time

        start = time.perf_counter()
        local.monte_carlo(64, seed=1)
        mc = time.perf_counter() - start
        start = time.perf_counter()
        local.permutation(64, seed=1)
        perm = time.perf_counter() - start
        assert perm > 2.0 * mc, f"permutation {perm:.3f}s vs MC {mc:.3f}s"
        benchmark.extra_info["live_speedup_at_64"] = perm / mc
        benchmark(lambda: None)


class TestPaperScaleSimulation:
    """Predicted Table III at the paper's exact parameters."""

    @pytest.fixture(scope="class")
    def predictions(self):
        model = SparkScorePerfModel()
        cluster = emr_cluster(EXPERIMENT_A.n_nodes)
        mc = model.predict(
            WorkloadSpec(EXPERIMENT_A.n_patients, EXPERIMENT_A.n_snps,
                         EXPERIMENT_A.n_snpsets, "monte_carlo"),
            cluster,
        )
        perm = model.predict(
            WorkloadSpec(EXPERIMENT_A.n_patients, EXPERIMENT_A.n_snps,
                         EXPERIMENT_A.n_snpsets, "permutation"),
            cluster,
        )
        return mc, perm

    def test_simulate_experiment_a(self, benchmark, predictions, paper_tables):
        mc, perm = predictions
        iters = PAPER_TABLE_III["iterations"]
        benchmark(lambda: [mc.total_at(b) for b in iters])

        paper_tables.append(format_comparison_table(
            "Table III / Fig. 2 -- Monte Carlo, 100K SNPs, 6 nodes (seconds)",
            "iterations", iters,
            [mc.total_at(b) for b in iters],
            list(PAPER_TABLE_III["monte_carlo_avg"]),
        ))
        paper_tables.append(format_comparison_table(
            "Table III / Fig. 2 -- Permutation, 100K SNPs, 6 nodes (seconds)",
            "iterations", iters,
            [perm.total_at(b) for b in iters],
            list(PAPER_TABLE_III["permutation_avg"]),
        ))

    def test_shape_a1_mc_flat_perm_linear(self, benchmark, predictions):
        mc, perm = predictions
        benchmark(lambda: None)
        assert mc.total_at(100) < 1.5 * mc.total_at(0)
        assert perm.total_at(16) > 10 * perm.total_at(0) * 0.9

    def test_shape_a2_order_of_magnitude_at_16(self, benchmark, predictions):
        mc, perm = predictions
        ratio = perm.total_at(16) / mc.total_at(16)
        benchmark.extra_info["simulated_ratio_at_16"] = ratio
        benchmark(lambda: None)
        assert ratio > 8.0  # paper: "an order of magnitude faster"

    def test_shape_a3_mc10000_below_perm16(self, benchmark, predictions):
        mc, perm = predictions
        benchmark(lambda: None)
        assert mc.total_at(10_000) < perm.total_at(16)
