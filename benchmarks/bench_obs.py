"""Observability overhead and the doctor's skew-recovery loop.

Four legs, one report (``BENCH_obs.json``):

1. **Overhead** -- the same compute-bound job runs bare (warning-level
   logging, no sinks) and fully loaded (debug logging with worker-side
   capture, log file, event log, diagnostics, the metrics sampler
   feeding the TSDB, and the alert engine evaluating the built-in
   rules every tick).  The whole observability plane must cost less
   than ``--max-overhead-pct`` (default 10%) of wall-clock.  The leg
   runs once per ``--overhead-backend`` (default: processes *and* the
   persistent cluster, whose trace propagation and FleetStats fold
   points ride in the task envelope and dispatch loop) and every
   backend must hold the same budget.

2. **Skew recovery** -- a heavy-tailed workload runs skewed, its event
   log is fed to the advisor (the same engine behind ``sparkscore
   doctor``), and the resulting ``repartition(N)`` recommendation is
   applied verbatim.  The rerun must beat the skewed wall-clock.

3. **Inference monitor** -- the same monte-carlo run executes bare, with
   a passive convergence monitor, and with the early-stop policy.  The
   monitor must price inside the same overhead budget; the early-stop
   run reports its replicate savings and must keep alpha=0.05
   significance calls identical to the full run.

4. **Post-mortem smoke** -- a fault-injected job fails under the flight
   recorder; the bundle must land, load, and name the injected failing
   task (the ``sparkscore postmortem`` contract CI greps for).

    PYTHONPATH=src python benchmarks/bench_obs.py

Each job repeats inside one warm context and the minimum wall is kept,
so pool spin-up doesn't pollute the comparison.  The skew leg models
blocking (I/O-bound) tasks with ``time.sleep`` under the threads
backend: sleeps yield exact per-task durations and overlap on any
host, so the load-balancing win from repartitioning shows even on a
single core, where CPU-bound tasks would just contend.  The overhead
leg stays CPU-bound (numpy) under the processes backend to price the
worker-side log capture against real compute.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.eventlog import read_event_log
from repro.obs.advisor import cache_pressure_from_jobs, diagnose


class _Burn:
    """Picklable unit of numpy work: ``units`` sweeps over a large vector."""

    def __init__(self, iters_per_unit: int) -> None:
        self.iters_per_unit = iters_per_unit

    def __call__(self, units: int) -> float:
        x = np.full(1 << 16, 1.0003)
        acc = 0.0
        for _ in range(units * self.iters_per_unit):
            acc += float(np.log1p(x).sum())
        return acc


class _SimTask:
    """Picklable blocking task: each unit sleeps for a fixed quantum."""

    def __init__(self, seconds_per_unit: float) -> None:
        self.seconds_per_unit = seconds_per_unit

    def __call__(self, units: int) -> int:
        time.sleep(units * self.seconds_per_unit)
        return units


def _make_config(args, backend: str) -> EngineConfig:
    return EngineConfig(
        backend=backend,
        num_executors=args.executors,
        executor_cores=args.cores,
        default_parallelism=args.executors * args.cores,
    )


def _best_wall(ctx: Context, items: list[int], partitions: int, task,
               repeats: int, repartition_to: int | None = None) -> float:
    """Min wall over ``repeats`` identical jobs in one (warming) context."""
    walls = []
    for _ in range(repeats):
        rdd = ctx.parallelize(items, partitions)
        if repartition_to is not None:
            rdd = rdd.repartition(repartition_to)
        start = time.perf_counter()
        rdd.map(task).sum()
        walls.append(time.perf_counter() - start)
    return min(walls)


def bench_overhead(args, burn: _Burn, backend: str) -> dict:
    """Balanced workload, bare vs fully-instrumented contexts.

    The two contexts stay open together and the repeats alternate between
    them, so slow load drift on the host hits both sides equally instead
    of masquerading as (or masking) instrumentation cost.  On the cluster
    backend both contexts share one persistent fleet, so the comparison
    additionally prices the fleet's observability fold points (trace
    context in every envelope, FleetStats sampling in the dispatch loop).
    """
    items = [1] * (args.partitions * 4)
    config = _make_config(args, backend)

    with tempfile.TemporaryDirectory() as tmp:
        with Context(config, log_level="warning") as bare_ctx, Context(
            config,
            log_level="debug",
            log_file=os.path.join(tmp, "driver-logs.jsonl"),
            event_log_path=os.path.join(tmp, "events.jsonl"),
            metrics_interval=args.metrics_interval,
            alerts=True,
        ) as loaded_ctx:
            bare_walls: list[float] = []
            loaded_walls: list[float] = []
            for _ in range(args.repeats):
                bare_walls.append(
                    _best_wall(bare_ctx, items, args.partitions, burn, 1)
                )
                loaded_walls.append(
                    _best_wall(loaded_ctx, items, args.partitions, burn, 1)
                )
            bare, loaded = min(bare_walls), min(loaded_walls)
            sampler_ticks = loaded_ctx.sampler.ticks
            alert_evaluations = loaded_ctx.alerts.evaluations

    overhead_pct = (loaded - bare) / bare * 100.0
    print(
        f"  overhead[{backend}]: bare {bare:6.3f}s, instrumented {loaded:6.3f}s "
        f"-> {overhead_pct:+.1f}% (budget {args.max_overhead_pct:.0f}%, "
        f"{sampler_ticks} sampler ticks, {alert_evaluations} alert passes)"
    )
    return {
        "backend": backend,
        "bare_wall_seconds": bare,
        "instrumented_wall_seconds": loaded,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": args.max_overhead_pct,
        "within_budget": overhead_pct < args.max_overhead_pct,
        "metrics_interval": args.metrics_interval,
        "sampler_ticks": sampler_ticks,
        "alert_evaluations": alert_evaluations,
    }


def bench_skew_recovery(args) -> dict:
    """Run skewed, doctor the event log, apply the advice, rerun."""
    per_part = 4
    items = [1] * (args.partitions - 1) * per_part + [args.heavy_units] * per_part
    task = _SimTask(args.sim_unit_ms / 1000.0)
    config = _make_config(args, "threads")

    with tempfile.TemporaryDirectory() as tmp:
        event_log = os.path.join(tmp, "skewed.jsonl")
        with Context(config, event_log_path=event_log) as ctx:
            skewed = _best_wall(ctx, items, args.partitions, task, args.repeats)
        jobs = read_event_log(event_log)

    recs = diagnose(jobs, cache=cache_pressure_from_jobs(jobs))
    skew_recs = [r for r in recs if r.rule == "repartition-skewed-stage"]
    assert skew_recs, (
        "doctor failed to flag the skewed stage; "
        f"rules fired: {sorted({r.rule for r in recs})}"
    )
    # repeats log one job each; take the stage with the worst evidence
    rec = max(skew_recs, key=lambda r: r.evidence.get("max_over_median", 0))
    target = rec.evidence["recommended_partitions"]
    print(f"  doctor: {rec.title}")
    print(f"  doctor: applying repartition({target})")

    with Context(config) as ctx:
        fixed = _best_wall(
            ctx, items, args.partitions, task, args.repeats, repartition_to=target
        )

    improvement_pct = (skewed - fixed) / skewed * 100.0
    print(
        f"  skewed {skewed:6.3f}s -> repartitioned {fixed:6.3f}s "
        f"({improvement_pct:+.1f}%)"
    )
    return {
        "skewed_wall_seconds": skewed,
        "repartitioned_wall_seconds": fixed,
        "improvement_pct": improvement_pct,
        "recommended_partitions": target,
        "recommendation": rec.title,
        "doctor_rules_fired": sorted({r.rule for r in recs}),
        "skew_evidence": rec.evidence,
    }


def bench_inference_monitor(args) -> dict:
    """Convergence-monitor overhead and early-stop savings (local engine).

    The same monte-carlo run executes bare, with a passive monitor (fold +
    CI classification every batch, the always-on telemetry cost), and with
    the early-stop policy attached.  The passive monitor must price inside
    the same ``--max-overhead-pct`` budget as the rest of the plane; the
    early-stop run reports the replicate savings and must keep the
    alpha=0.05 significance calls identical to the full run.
    """
    from repro.core.local import LocalSparkScore
    from repro.genomics.synthetic import SyntheticConfig, generate_dataset
    from repro.obs.inference import ConvergenceMonitor, EarlyStopPolicy

    dataset = generate_dataset(SyntheticConfig(
        n_patients=120, n_snps=400, n_snpsets=20, seed=29,
    ))
    analysis = LocalSparkScore(dataset)
    iterations = args.inference_replicates

    def run(policy=None, passive=False):
        best, result, monitor = float("inf"), None, None
        for _ in range(args.repeats):
            mon = None
            if passive or policy is not None:
                mon = ConvergenceMonitor(
                    n_sets=dataset.n_sets, method="monte_carlo",
                    planned_replicates=iterations, policy=policy,
                )
            start = time.perf_counter()
            result = analysis.monte_carlo(iterations, seed=7, monitor=mon)
            wall = time.perf_counter() - start
            if wall < best:
                best, monitor = wall, mon
        return best, result, monitor

    bare_wall, bare_result, _ = run()
    monitored_wall, monitored_result, _ = run(passive=True)
    overhead_pct = (monitored_wall - bare_wall) / bare_wall * 100.0
    assert np.array_equal(
        bare_result.exceed_counts, monitored_result.exceed_counts
    ), "passive monitoring must be bit-identical"

    stopped_wall, stopped_result, monitor = run(
        policy=EarlyStopPolicy(min_replicates=64)
    )
    used = stopped_result.n_resamples
    saved = monitor.replicates_saved
    savings_pct = saved / iterations * 100.0
    calls_full = bare_result.pvalues() < 0.05
    calls_stopped = monitor.pvalues("plugin") < 0.05
    calls_identical = bool(np.array_equal(calls_full, calls_stopped))

    print(
        f"  monitor: bare {bare_wall:6.3f}s, monitored {monitored_wall:6.3f}s "
        f"-> {overhead_pct:+.1f}% (budget {args.max_overhead_pct:.0f}%)"
    )
    print(
        f"  early stop: {used}/{iterations} replicates "
        f"({savings_pct:.0f}% saved), wall {stopped_wall:6.3f}s, "
        f"alpha=0.05 calls identical: {calls_identical}"
    )
    return {
        "replicates_planned": iterations,
        "snpsets": dataset.n_sets,
        "bare_wall_seconds": bare_wall,
        "monitored_wall_seconds": monitored_wall,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": args.max_overhead_pct,
        "within_budget": overhead_pct < args.max_overhead_pct,
        "early_stop_wall_seconds": stopped_wall,
        "replicates_used": used,
        "replicates_saved": saved,
        "savings_pct": savings_pct,
        "alpha_calls_identical": calls_identical,
    }


def bench_postmortem_smoke(args) -> dict:
    """Fail one task on purpose; the flight recorder must name it."""
    from repro.engine.faults import FaultInjector, FaultPlan
    from repro.engine.scheduler import JobFailedError
    from repro.obs.flightrecorder import load_bundle

    fail_partition = 2
    config = _make_config(args, "serial").copy(max_task_retries=0)
    with tempfile.TemporaryDirectory() as tmp:
        plan = FaultPlan(fail_partition_attempts={fail_partition: 99})
        with Context(
            config,
            fault_injector=FaultInjector(plan),
            flight_recorder=tmp,
            metrics_interval=args.metrics_interval,
            alerts=True,
        ) as ctx:
            try:
                ctx.parallelize([1] * (args.partitions * 4), args.partitions).sum()
            except JobFailedError:
                pass
            assert ctx.flight_recorder.bundles, "no post-mortem bundle written"
            bundle = load_bundle(ctx.flight_recorder.bundles[-1])
    failing = bundle.get("failing_task") or {}
    assert failing.get("partition") == fail_partition, (
        f"bundle blamed the wrong task: {failing}"
    )
    print(
        f"  postmortem: bundle names task "
        f"{failing['stage_id']}.{failing['partition']}#{failing['attempt']} "
        f"({len(bundle.get('events', []))} events, "
        f"{len(bundle.get('logs', []))} log records captured)"
    )
    return {
        "failing_task": failing,
        "events_captured": len(bundle.get("events", [])),
        "logs_captured": len(bundle.get("logs", [])),
        "has_series": bool(bundle.get("series")),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--overhead-backend", nargs="+",
                        choices=["serial", "threads", "processes", "cluster"],
                        default=["processes", "cluster"],
                        help="backend(s) for the overhead leg, each gated on "
                             "the same budget (skew leg is threads)")
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--executors", type=int, default=2)
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--unit-iters", type=int, default=40,
                        help="numpy sweeps per work unit (scales wall-clock)")
    parser.add_argument("--heavy-units", type=int, default=12,
                        help="work units per item in the heavy tail")
    parser.add_argument("--sim-unit-ms", type=float, default=10.0,
                        help="sleep per work unit in the skew leg")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--metrics-interval", type=float, default=0.1,
                        help="sampler interval for the instrumented legs")
    parser.add_argument("--inference-replicates", type=int, default=2048,
                        help="planned replicates for the convergence-monitor leg")
    parser.add_argument("--max-overhead-pct", type=float, default=10.0)
    parser.add_argument("--output", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    burn = _Burn(args.unit_iters)

    overhead_by_backend = {}
    for backend in args.overhead_backend:
        print(f"observability overhead ({backend}):")
        overhead_by_backend[backend] = bench_overhead(args, burn, backend)
    overhead = overhead_by_backend[args.overhead_backend[0]]
    if "cluster" in overhead_by_backend:
        # the overhead fleet served its purpose; later legs use their own
        # backends and the report should not leak a running cluster
        from repro.engine.cluster_backend import stop_all_clusters

        stop_all_clusters()

    print("skew recovery:")
    recovery = bench_skew_recovery(args)

    print("inference convergence monitor:")
    inference = bench_inference_monitor(args)

    print("post-mortem smoke:")
    postmortem = bench_postmortem_smoke(args)

    report = {
        "workload": {
            "overhead_backend": args.overhead_backend,
            "partitions": args.partitions,
            "executors": args.executors,
            "cores": args.cores,
            "unit_iters": args.unit_iters,
            "heavy_units": args.heavy_units,
            "sim_unit_ms": args.sim_unit_ms,
            "repeats": args.repeats,
        },
        "cpu_count": os.cpu_count(),
        "overhead": overhead,
        "overhead_by_backend": overhead_by_backend,
        "skew_recovery": recovery,
        "inference_monitor": inference,
        "postmortem_smoke": postmortem,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nreport written to {args.output}")

    for backend, leg in overhead_by_backend.items():
        assert leg["within_budget"], (
            f"observability overhead on {backend} "
            f"{leg['overhead_pct']:.1f}% exceeds "
            f"{args.max_overhead_pct:.0f}% budget"
        )
    assert recovery["improvement_pct"] > 0, (
        "applying the doctor's repartition advice did not improve wall-clock"
    )
    assert inference["within_budget"], (
        f"convergence-monitor overhead {inference['overhead_pct']:.1f}% "
        f"exceeds {args.max_overhead_pct:.0f}% budget"
    )
    assert inference["alpha_calls_identical"], (
        "early stopping changed an alpha=0.05 significance call"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
