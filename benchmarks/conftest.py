"""Benchmark harness plumbing.

Every benchmark here does two things:

1. **live measurement** -- pytest-benchmark times real engine/local runs at
   reduced scale, so relative claims (MC vs permutation, cached vs
   uncached, flavor ablations) are measured on real hardware;
2. **paper-scale replay** -- the calibrated simulator predicts the exact
   workloads of Tables II/IV/VI/VII-VIII, and the resulting rows are
   rendered next to the paper's published numbers.

Rendered tables are collected via the ``paper_tables`` fixture and printed
in the terminal summary, so ``pytest benchmarks/ --benchmark-only | tee
bench_output.txt`` captures both the timing stats and the reproduction
tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.genomics.synthetic import SyntheticConfig, generate_dataset

_TABLES: list[str] = []


@pytest.fixture
def paper_tables():
    """Append rendered table strings; they print in the terminal summary."""
    return _TABLES


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")


@pytest.fixture(scope="session")
def live_dataset():
    """Live benchmark workload: Experiment A's shape at 1/50 scale."""
    return generate_dataset(
        SyntheticConfig(n_patients=200, n_snps=2000, n_snpsets=50, seed=42)
    )


@pytest.fixture(scope="session")
def live_dataset_small():
    return generate_dataset(
        SyntheticConfig(n_patients=100, n_snps=500, n_snpsets=20, seed=43)
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)
