"""Serializer/transport smoke benchmark with structural assertions.

A fast data-plane health check (CI runs it on every push): runs one Monte
Carlo workload per serializer on the processes backend and asserts the
structural properties the data-plane overhaul guarantees -- not wall-clock,
which CI machines can't promise:

- statistics are bit-identical across serializers;
- ``task_binary_bytes`` stays under a dedup budget (the compressed stage
  binary is charged once per executor, later tasks pay only the ref);
- with the compressed serializer, framed shuffle bytes land strictly below
  the raw serialized bytes;
- the shared-memory/temp-file transport publishes each binary once: bytes
  published stay at or below the accounted task-binary bytes even though
  every task references a binary.

    PYTHONPATH=src python benchmarks/bench_serializer.py
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.engine.context import Context
from repro.genomics.synthetic import SyntheticConfig, generate_dataset

SERIALIZERS = ("pickle", "numpy", "compressed")


def run_one(dataset, serializer: str, args) -> dict:
    config = EngineConfig(
        backend="processes",
        num_executors=args.executors,
        executor_cores=args.cores,
        default_parallelism=args.executors * args.cores,
        serializer=serializer,
        # small workload: lower the by-ref threshold so task binaries take
        # the transport path the assertions below exercise
        transport_min_bytes=1024,
    )
    with Context(config) as ctx:
        scorer = DistributedSparkScore(
            ctx, dataset, flavor="vectorized", block_size=args.block_size
        )
        start = time.perf_counter()
        result = scorer.monte_carlo(
            args.iterations, seed=args.seed, batch_size=args.batch_size
        )
        wall = time.perf_counter() - start
        totals = [job.totals() for job in ctx.metrics.jobs]
        return {
            "serializer": serializer,
            "wall_seconds": wall,
            "task_binary_bytes": sum(t.task_binary_bytes for t in totals),
            "shuffle_bytes": sum(t.shuffle_bytes_written for t in totals),
            "shuffle_compressed_bytes": sum(t.shuffle_compressed_bytes for t in totals),
            "serializer_seconds": sum(t.serializer_seconds for t in totals),
            "driver_bytes_collected": sum(t.driver_bytes_collected for t in totals),
            "num_tasks": sum(len(s.tasks) for j in ctx.metrics.jobs for s in j.stages),
            "transport_bytes_published": ctx.transport.bytes_published,
            "transport_dedup_hits": ctx.transport.dedup_hits,
            "exceed_counts": result.exceed_counts,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=120)
    parser.add_argument("--snps", type=int, default=800)
    parser.add_argument("--snpsets", type=int, default=20)
    parser.add_argument("--iterations", type=int, default=60)
    parser.add_argument("--batch-size", type=int, default=30)
    parser.add_argument("--block-size", type=int, default=128)
    parser.add_argument("--executors", type=int, default=2)
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--task-binary-budget", type=int, default=4_000_000,
                        help="assert total task_binary_bytes stays below this")
    parser.add_argument("--output", default=None, help="optional JSON report path")
    args = parser.parse_args(argv)

    dataset = generate_dataset(
        SyntheticConfig(
            n_patients=args.patients, n_snps=args.snps, n_snpsets=args.snpsets, seed=42
        )
    )

    rows = [run_one(dataset, serializer, args) for serializer in SERIALIZERS]
    for row in rows:
        print(
            f"{row['serializer']:>10}: {row['wall_seconds']:6.2f}s  "
            f"task-binaries {row['task_binary_bytes']:>10,} B  "
            f"shuffle {row['shuffle_bytes']:>9,} B raw / "
            f"{row['shuffle_compressed_bytes']:>9,} B framed  "
            f"published {row['transport_bytes_published']:>9,} B"
        )

    # 1. bit-identical statistics across serializers
    for row in rows[1:]:
        assert np.array_equal(row["exceed_counts"], rows[0]["exceed_counts"]), (
            f"serializer {row['serializer']} changed the statistics"
        )

    # 2. task-binary dedup holds the accounted bytes under budget
    for row in rows:
        assert row["task_binary_bytes"] < args.task_binary_budget, (
            f"{row['serializer']}: task_binary_bytes {row['task_binary_bytes']:,} "
            f"exceeds budget {args.task_binary_budget:,} -- per-executor dedup broken?"
        )
        assert 0 < row["transport_bytes_published"] <= row["task_binary_bytes"], (
            f"{row['serializer']}: published {row['transport_bytes_published']:,} B "
            f"vs accounted {row['task_binary_bytes']:,} B -- binaries are being "
            "re-published per task instead of shipped by ref"
        )

    # 3. compression bites on the shuffle plane
    compressed = next(r for r in rows if r["serializer"] == "compressed")
    assert 0 < compressed["shuffle_compressed_bytes"] < compressed["shuffle_bytes"], (
        f"compressed serializer did not shrink shuffle frames "
        f"({compressed['shuffle_compressed_bytes']:,} vs {compressed['shuffle_bytes']:,})"
    )
    # uncompressed serializers frame 1:1
    for row in rows:
        if row["serializer"] != "compressed":
            assert row["shuffle_compressed_bytes"] == row["shuffle_bytes"]

    print("\nall structural assertions passed")
    if args.output:
        report = [
            {k: v for k, v in row.items() if k != "exceed_counts"} for row in rows
        ]
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
