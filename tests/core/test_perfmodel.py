"""Performance model: the paper's shape claims must hold in simulation."""

import pytest

from repro.cluster.costmodel import CostModel
from repro.cluster.nodes import emr_cluster
from repro.cluster.yarn import ResourceManager
from repro.core.perfmodel import PredictedRun, SparkScorePerfModel, WorkloadSpec


@pytest.fixture(scope="module")
def pm():
    return SparkScorePerfModel()


@pytest.fixture(scope="module")
def exp_a_mc(pm):
    return pm.predict(WorkloadSpec(1000, 100_000, 1000, "monte_carlo"), emr_cluster(6))


@pytest.fixture(scope="module")
def exp_a_perm(pm):
    return pm.predict(WorkloadSpec(1000, 100_000, 1000, "permutation"), emr_cluster(6))


class TestExperimentAShapes:
    """Fig. 2 / Table III claims."""

    def test_t0_near_paper(self, exp_a_mc):
        assert exp_a_mc.total_at(0) == pytest.approx(509.4, rel=0.25)

    def test_mc_flat_up_to_100_iterations(self, exp_a_mc):
        assert exp_a_mc.total_at(100) < 1.5 * exp_a_mc.total_at(0)

    def test_perm_grows_linearly_with_t0_slope(self, exp_a_perm):
        slope = exp_a_perm.per_iteration_seconds
        assert slope == pytest.approx(exp_a_perm.total_at(0), rel=0.35)

    def test_mc_order_of_magnitude_faster_at_16(self, exp_a_mc, exp_a_perm):
        assert exp_a_perm.total_at(16) / exp_a_mc.total_at(16) > 8.0

    def test_mc_10000_cheaper_than_perm_16(self, exp_a_mc, exp_a_perm):
        assert exp_a_mc.total_at(10_000) < exp_a_perm.total_at(16)

    def test_against_paper_table_iii(self, exp_a_mc, exp_a_perm):
        from repro.bench.experiments import PAPER_TABLE_III

        iters = PAPER_TABLE_III["iterations"]
        for b, mc_paper, perm_paper in zip(
            iters, PAPER_TABLE_III["monte_carlo_avg"], PAPER_TABLE_III["permutation_avg"]
        ):
            assert exp_a_mc.total_at(b) == pytest.approx(mc_paper, rel=0.6)
            if perm_paper is not None:
                assert exp_a_perm.total_at(b) == pytest.approx(perm_paper, rel=0.6)


class TestSensitivityShapes:
    """Fig. 3: iterations x SNPs constant => comparable runtime per method.

    The paper does not state the cluster size for this figure; we use 18
    nodes, where the 1M-SNP contributions RDD fits in cache (see
    EXPERIMENTS.md) -- at 6 nodes the Fig. 6 thrashing regime would
    dominate the 1M point, contradicting the figure's "quite similar"
    claim.
    """

    def test_constant_work_similar_runtime(self, pm):
        cluster = emr_cluster(18)
        totals = []
        for iters, snps in ((1000, 10_000), (100, 100_000), (10, 1_000_000)):
            run = pm.predict(WorkloadSpec(1000, snps, 1000, "monte_carlo"), cluster)
            totals.append(run.total_at(iters))
        assert max(totals) / min(totals) < 10  # same order of magnitude

    def test_mc_below_perm_everywhere(self, pm):
        cluster = emr_cluster(18)
        for iters, snps in ((1000, 10_000), (100, 100_000), (10, 1_000_000)):
            mc = pm.predict(WorkloadSpec(1000, snps, 1000, "monte_carlo"), cluster)
            perm = pm.predict(WorkloadSpec(1000, snps, 1000, "permutation"), cluster)
            assert mc.total_at(iters) < perm.total_at(iters)

    def test_perm_within_method_similar(self, pm):
        cluster = emr_cluster(18)
        totals = []
        for iters, snps in ((1000, 10_000), (100, 100_000), (10, 1_000_000)):
            run = pm.predict(WorkloadSpec(1000, snps, 1000, "permutation"), cluster)
            totals.append(run.total_at(iters))
        assert max(totals) / min(totals) < 10


class TestExperimentBShapes:
    """Figs. 4-5 / Table V: caching claims."""

    def test_10k_cached_10000_faster_than_uncached_200(self, pm):
        cluster = emr_cluster(18)
        cached = pm.predict(WorkloadSpec(1000, 10_000, 1000, "monte_carlo"), cluster)
        uncached = pm.predict(
            WorkloadSpec(1000, 10_000, 1000, "monte_carlo", cache=False), cluster
        )
        assert cached.total_at(10_000) < uncached.total_at(200)

    def test_1m_cached_1000_faster_than_uncached_10(self, pm):
        cluster = emr_cluster(18)
        cached = pm.predict(WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo"), cluster)
        uncached = pm.predict(
            WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo", cache=False), cluster
        )
        assert cached.total_at(1000) < uncached.total_at(10)

    def test_cached_per_iteration_collapse(self, pm):
        cluster = emr_cluster(18)
        cached = pm.predict(WorkloadSpec(1000, 10_000, 1000, "monte_carlo"), cluster)
        uncached = pm.predict(
            WorkloadSpec(1000, 10_000, 1000, "monte_carlo", cache=False), cluster
        )
        assert uncached.per_iteration_seconds / cached.per_iteration_seconds > 50

    def test_b_t0_near_paper(self, pm):
        run = pm.predict(WorkloadSpec(1000, 10_000, 1000, "monte_carlo"), emr_cluster(18))
        assert run.total_at(0) == pytest.approx(94.0, rel=0.3)


class TestStrongScalingShapes:
    """Fig. 6 / Table VI."""

    def test_6_nodes_thrashes_18_fits(self, pm):
        w = WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo")
        r6 = pm.predict(w, emr_cluster(6))
        r18 = pm.predict(w, emr_cluster(18))
        assert not r6.cache_fits
        assert r18.cache_fits

    def test_two_orders_of_magnitude_at_20_iterations(self, pm):
        w = WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo")
        t6 = pm.predict(w, emr_cluster(6)).total_at(20)
        t18 = pm.predict(w, emr_cluster(18)).total_at(20)
        assert t6 / t18 > 30  # "two orders of magnitude smaller"

    def test_monotone_in_nodes(self, pm):
        w = WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo")
        times = [pm.predict(w, emr_cluster(n)).total_at(20) for n in (6, 12, 18)]
        assert times[0] > times[1] > times[2]


class TestAutoTuningShapes:
    """Fig. 7 / Tables VII-VIII: container shape barely matters."""

    def test_container_configs_within_ten_percent(self, pm):
        rm = ResourceManager(emr_cluster(36))
        w = WorkloadSpec(1000, 1_000_000, 1000, "monte_carlo")
        totals = []
        for count, memory, cores in ((42, 10, 6), (84, 5, 3), (126, 3, 2)):
            allocation = rm.allocate(count, memory, cores)
            totals.append(pm.predict(w, allocation).total_at(100))
        assert max(totals) / min(totals) < 1.10


class TestModelMechanics:
    def test_total_linear_in_iterations(self, exp_a_mc):
        t0, t10 = exp_a_mc.total_at(0), exp_a_mc.total_at(10)
        assert exp_a_mc.total_at(20) == pytest.approx(2 * t10 - t0)

    def test_predict_grid(self, pm):
        grid = pm.predict_grid(
            WorkloadSpec(1000, 10_000, 100, "monte_carlo"), emr_cluster(6), [0, 10, 100]
        )
        assert set(grid) == {0, 10, 100}
        assert grid[0] < grid[10] < grid[100]

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(0, 1, 1)
        with pytest.raises(ValueError):
            WorkloadSpec(1, 1, 1, method="bootstrap")
        with pytest.raises(ValueError):
            WorkloadSpec(1, 1, 1, iterations=-1)

    def test_breakdown_fields(self, exp_a_mc):
        assert exp_a_mc.breakdown["slots"] > 0
        assert exp_a_mc.breakdown["cache_effective"]
        assert isinstance(exp_a_mc, PredictedRun)

    def test_custom_cost_model(self):
        pm = SparkScorePerfModel(CostModel(app_startup_s=0.0))
        run = pm.predict(WorkloadSpec(10, 10, 1, "monte_carlo"), emr_cluster(1))
        assert run.startup_seconds < 5  # only container launches remain
