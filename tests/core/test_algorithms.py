"""Distributed Algorithms 1-3 vs the local reference (the central oracle)."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.local import LocalSparkScore
from repro.engine.context import Context
from repro.engine.faults import FaultInjector, FaultPlan
from repro.genomics.io.dataset_io import write_dataset
from repro.hdfs.filesystem import MiniHDFS


@pytest.fixture(scope="module")
def reference(small_dataset):
    local = LocalSparkScore(small_dataset)
    return {
        "observed": local.observed_statistics(),
        "mc": local.monte_carlo(100, seed=5),
        "perm": local.permutation(25, seed=5),
    }


def make_ctx(**overrides):
    defaults = dict(backend="serial", num_executors=2, executor_cores=2, default_parallelism=4)
    defaults.update(overrides)
    return Context(EngineConfig(**defaults))


@pytest.mark.parametrize("flavor", ["paper", "vectorized"])
class TestFlavorsMatchLocal:
    def test_observed(self, small_dataset, reference, flavor):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor=flavor, block_size=64)
            assert np.allclose(scorer.observed_statistics(), reference["observed"])

    def test_monte_carlo_counts_identical(self, small_dataset, reference, flavor):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor=flavor, block_size=64)
            result = scorer.monte_carlo(100, seed=5)
            assert np.array_equal(result.exceed_counts, reference["mc"].exceed_counts)

    def test_permutation_counts_identical(self, small_dataset, reference, flavor):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor=flavor, block_size=64)
            result = scorer.permutation(25, seed=5)
            assert np.array_equal(result.exceed_counts, reference["perm"].exceed_counts)

    def test_uncached_same_results(self, small_dataset, reference, flavor):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor=flavor)
            result = scorer.monte_carlo(100, seed=5, cache_contributions=False)
            assert np.array_equal(result.exceed_counts, reference["mc"].exceed_counts)

    def test_threads_backend(self, small_dataset, reference, flavor):
        with make_ctx(backend="threads") as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor=flavor)
            result = scorer.monte_carlo(100, seed=5)
            assert np.array_equal(result.exceed_counts, reference["mc"].exceed_counts)


class TestJoinStrategies:
    def test_broadcast_join_matches(self, small_dataset, reference):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(
                ctx, small_dataset, flavor="paper", join_strategy="broadcast"
            )
            assert np.allclose(scorer.observed_statistics(), reference["observed"])

    def test_invalid_strategy_rejected(self, small_dataset):
        with make_ctx() as ctx:
            with pytest.raises(ValueError):
                DistributedSparkScore(ctx, small_dataset, join_strategy="magic")

    def test_invalid_flavor_rejected(self, small_dataset):
        with make_ctx() as ctx:
            with pytest.raises(ValueError):
                DistributedSparkScore(ctx, small_dataset, flavor="hybrid")


class TestCachingBehavior:
    def test_cache_hits_recorded_across_iterations(self, small_dataset):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor="vectorized")
            result = scorer.monte_carlo(60, seed=1, batch_size=20, cache_contributions=True)
            assert result.info["cache_hits"] > 0

    def test_no_cache_means_no_hits(self, small_dataset):
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor="vectorized")
            result = scorer.monte_carlo(60, seed=1, batch_size=20, cache_contributions=False)
            assert result.info["cache_hits"] == 0

    def test_cached_runs_fewer_recomputes(self, small_dataset):
        """Caching saves work: compare compute effort via cache misses."""
        with make_ctx() as ctx_a:
            cached = DistributedSparkScore(ctx_a, small_dataset, flavor="vectorized").monte_carlo(
                40, seed=1, batch_size=10
            )
        with make_ctx() as ctx_b:
            uncached = DistributedSparkScore(ctx_b, small_dataset, flavor="vectorized").monte_carlo(
                40, seed=1, batch_size=10, cache_contributions=False
            )
        assert cached.info["cache_misses"] < uncached.info["cache_misses"] or (
            cached.info["cache_hits"] > 0 and uncached.info["cache_hits"] == 0
        )


class TestTextInputPaths:
    def test_local_files_parse_stage(self, small_dataset, reference, tmp_path):
        paths = write_dataset(small_dataset, str(tmp_path / "ds"))
        with make_ctx() as ctx:
            scorer = DistributedSparkScore(
                ctx,
                small_dataset,
                flavor="paper",
                input_paths={"genotypes": paths["genotypes"], "weights": paths["weights"]},
            )
            assert np.allclose(scorer.observed_statistics(), reference["observed"])

    def test_hdfs_files(self, small_dataset, reference):
        fs = MiniHDFS(num_datanodes=3, block_size=8192)
        paths = write_dataset(small_dataset, "/exp", hdfs=fs)
        config = EngineConfig(backend="serial", num_executors=2, default_parallelism=4)
        with Context(config, hdfs=fs) as ctx:
            scorer = DistributedSparkScore(
                ctx,
                small_dataset,
                flavor="vectorized",
                input_paths={"genotypes": paths["genotypes"], "weights": paths["weights"]},
            )
            assert np.allclose(scorer.observed_statistics(), reference["observed"])
            result = scorer.monte_carlo(50, seed=5)
            local = LocalSparkScore(small_dataset).monte_carlo(50, seed=5)
            assert np.array_equal(result.exceed_counts, local.exceed_counts)


class TestFaultToleranceEndToEnd:
    def test_executor_kill_does_not_change_counts(self, small_dataset, reference):
        plan = FaultPlan(kill_executor_after_tasks={"exec-1": 5})
        config = EngineConfig(backend="serial", num_executors=3, executor_cores=1, default_parallelism=6)
        with Context(config, fault_injector=FaultInjector(plan)) as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor="vectorized")
            result = scorer.monte_carlo(100, seed=5)
            assert np.array_equal(result.exceed_counts, reference["mc"].exceed_counts)
            assert ctx.fault_injector.killed_executors == {"exec-1"}

    def test_transient_task_failures_do_not_change_counts(self, small_dataset, reference):
        plan = FaultPlan(fail_partition_attempts={0: 1, 2: 1})
        config = EngineConfig(backend="serial", num_executors=2, executor_cores=2, default_parallelism=4)
        with Context(config, fault_injector=FaultInjector(plan)) as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor="paper")
            result = scorer.permutation(25, seed=5)
            assert np.array_equal(result.exceed_counts, reference["perm"].exceed_counts)


class TestValidation:
    def test_model_patient_mismatch(self, small_dataset, tiny_dataset):
        from repro.stats.score.cox import CoxScoreModel

        with make_ctx() as ctx:
            with pytest.raises(ValueError):
                DistributedSparkScore(
                    ctx, small_dataset, model=CoxScoreModel(tiny_dataset.phenotype)
                )
