"""Model-driven and live auto-tuning."""

import pytest

from repro.cluster.nodes import emr_cluster
from repro.cluster.yarn import AllocationError
from repro.core.autotune import (
    PAPER_CONTAINER_SHAPES,
    ContainerShape,
    LiveTuner,
    ModelTuner,
)
from repro.core.perfmodel import WorkloadSpec


@pytest.fixture(scope="module")
def tuner():
    return ModelTuner()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(1000, 100_000, 1000, "monte_carlo", iterations=100)


class TestModelTuner:
    def test_strong_scaling_returns_all_nodes(self, tuner, workload):
        runs = tuner.strong_scaling(workload, [6, 12, 18])
        assert set(runs) == {6, 12, 18}
        assert runs[6].total_seconds > runs[18].total_seconds

    def test_paper_shapes_all_allocate(self, tuner, workload):
        runs = tuner.sweep_containers(workload, emr_cluster(36))
        assert set(runs) == set(PAPER_CONTAINER_SHAPES)

    def test_feasible_shapes_filters(self, tuner):
        shapes = tuner.feasible_shapes(
            emr_cluster(4),
            container_counts=[4, 400],
            memories_gib=[5.0, 500.0],
            cores_options=[2],
        )
        kept = [s for s, _ in shapes]
        assert ContainerShape(4, 5.0, 2) in kept
        assert all(s.memory_gib < 500 for s in kept)
        assert all(s.num_containers < 400 for s in kept)

    def test_recommend_picks_cheapest(self, tuner, workload):
        shape, run = tuner.recommend(
            workload,
            emr_cluster(8),
            container_counts=[2, 8, 16],
            memories_gib=[4.0, 8.0],
            cores_options=[2, 4],
        )
        # sanity: the recommendation is among the grid and beats a tiny config
        small = tuner.model.predict(
            workload,
            __import__("repro.cluster.yarn", fromlist=["ResourceManager"]).ResourceManager(
                emr_cluster(8)
            ).allocate(2, 4.0, 2),
        )
        assert run.total_seconds <= small.total_seconds

    def test_recommend_empty_grid_raises(self, tuner, workload):
        with pytest.raises(AllocationError):
            tuner.recommend(
                workload, emr_cluster(1),
                container_counts=[100], memories_gib=[1000.0], cores_options=[64],
            )

    def test_shape_str(self):
        assert "42" in str(ContainerShape(42, 10.0, 6))


class TestLiveTuner:
    def test_probe_sweep(self, tiny_dataset):
        from repro.config import EngineConfig

        tuner = LiveTuner(
            tiny_dataset,
            config=EngineConfig(backend="serial", num_executors=2),
            probe_iterations=5,
        )
        probes = tuner.sweep([2, 4], [16])
        assert len(probes) == 2
        assert all(p.wall_seconds > 0 for p in probes)

    def test_best_is_minimum_of_its_sweep(self, tiny_dataset):
        from repro.config import EngineConfig

        tuner = LiveTuner(
            tiny_dataset,
            config=EngineConfig(backend="serial", num_executors=2),
            probe_iterations=5,
        )
        chosen = tuner.best([2, 4], [8, 32])
        # the chosen probe comes from the swept grid (wall times are
        # machine-dependent, so we only assert structural properties)
        assert chosen.num_partitions in (2, 4)
        assert chosen.block_size in (8, 32)
        assert chosen.wall_seconds > 0
