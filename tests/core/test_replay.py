"""Record/replay bridge between the engine and the cluster simulator."""

import operator

import pytest

from repro.core.replay import capture_job, replay, what_if_scaling


@pytest.fixture
def recorded_shuffle_job(ctx):
    rdd = ctx.parallelize([(i % 5, i) for i in range(200)], 8).reduce_by_key(operator.add)
    rdd.collect()
    return capture_job(ctx.metrics.last_job)


class TestCapture:
    def test_stage_structure(self, recorded_shuffle_job):
        rec = recorded_shuffle_job
        assert len(rec.stages) == 2
        map_stage, result_stage = rec.stages
        assert map_stage.parent_ids == ()
        assert result_stage.parent_ids == (map_stage.stage_id,)
        assert len(map_stage.tasks) == 8

    def test_total_task_seconds_positive(self, recorded_shuffle_job):
        assert recorded_shuffle_job.total_task_seconds > 0
        assert recorded_shuffle_job.n_tasks == 8 + 4

    def test_failed_attempts_excluded_by_default(self, ctx):
        from repro.config import EngineConfig
        from repro.engine.context import Context
        from repro.engine.faults import FaultInjector, FaultPlan

        plan = FaultPlan(fail_partition_attempts={0: 1})
        config = EngineConfig(backend="serial", num_executors=2, default_parallelism=4)
        with Context(config, fault_injector=FaultInjector(plan)) as fctx:
            fctx.parallelize(range(8), 4).sum()
            rec = capture_job(fctx.metrics.last_job)
            assert rec.n_tasks == 4  # retried partition counted once

    def test_dangling_parents_dropped_on_shuffle_reuse(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(operator.add)
        rdd.collect()
        rdd.collect()  # second job reuses the shuffle; map stage absent
        rec = capture_job(ctx.metrics.last_job)
        for stage in rec.stages:
            for parent in stage.parent_ids:
                assert parent in {s.stage_id for s in rec.stages}


class TestReplay:
    def test_single_slot_equals_serial_sum(self, recorded_shuffle_job):
        report = replay(recorded_shuffle_job, n_slots=1)
        assert report.makespan == pytest.approx(
            recorded_shuffle_job.total_task_seconds, rel=1e-6
        )

    def test_many_slots_bounded_by_critical_path(self, recorded_shuffle_job):
        report = replay(recorded_shuffle_job, n_slots=1000)
        critical = sum(
            max((t.duration for t in s.tasks), default=0.0)
            for s in recorded_shuffle_job.stages
        )
        assert report.makespan == pytest.approx(critical, rel=1e-6)

    def test_monotone_in_slots(self, recorded_shuffle_job):
        times = what_if_scaling(recorded_shuffle_job, [1, 2, 4, 64])
        values = [times[n] for n in (1, 2, 4, 64)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_core_speedup_scales(self, recorded_shuffle_job):
        slow = replay(recorded_shuffle_job, 2, core_speedup=1.0).makespan
        fast = replay(recorded_shuffle_job, 2, core_speedup=2.0).makespan
        assert fast == pytest.approx(slow / 2.0, rel=1e-6)

    def test_invalid_speedup(self, recorded_shuffle_job):
        with pytest.raises(ValueError):
            replay(recorded_shuffle_job, 2, core_speedup=0.0)

    def test_overheads_added(self, recorded_shuffle_job):
        base = replay(recorded_shuffle_job, 4).makespan
        heavy = replay(recorded_shuffle_job, 4, task_overhead_s=0.1).makespan
        assert heavy > base


class TestEndToEndWhatIf:
    def test_sparkscore_job_replay(self, small_dataset):
        """Record a real scoring job, then ask the 6-vs-18-node question."""
        from repro.config import EngineConfig
        from repro.core.algorithms import DistributedSparkScore
        from repro.engine.context import Context

        config = EngineConfig(backend="serial", num_executors=2, default_parallelism=8)
        with Context(config) as ctx:
            scorer = DistributedSparkScore(ctx, small_dataset, flavor="vectorized")
            scorer.observed_statistics()
            rec = capture_job(ctx.metrics.jobs[0])
        scaling = what_if_scaling(rec, [1, 8, 64])
        assert scaling[1] > scaling[8] >= scaling[64]
