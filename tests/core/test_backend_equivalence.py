"""Cross-backend equivalence: serial, threads, and processes must agree.

The engine's whole claim is that the backend is an execution detail --
identical statistics bit for bit, whichever pool runs the tasks.  These
tests pin that down for both algorithm flavors, plus the O(K) driver-byte
bound on resampling batches (executor-side exceedance counting).
"""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.engine.context import Context

BACKENDS = ("serial", "threads", "processes")
SERIALIZERS = ("pickle", "numpy", "compressed")


def _run(dataset, backend, flavor, serializer="pickle", **kwargs):
    config = EngineConfig(
        backend=backend, num_executors=2, executor_cores=2, default_parallelism=4,
        serializer=serializer,
    )
    with Context(config) as ctx:
        scorer = DistributedSparkScore(ctx, dataset, flavor=flavor, block_size=64)
        mc = scorer.monte_carlo(60, seed=9, batch_size=20, **kwargs)
        perm = scorer.permutation(16, seed=9, batch_size=8)
        return mc, perm


@pytest.mark.slow
@pytest.mark.parametrize("flavor", ["paper", "vectorized"])
class TestBackendsBitIdentical:
    @pytest.fixture(scope="class")
    def reference(self, small_dataset):
        out = {}
        for flavor in ("paper", "vectorized"):
            out[flavor] = _run(small_dataset, "serial", flavor)
        return out

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_matches_serial(self, small_dataset, reference, flavor, backend):
        mc_ref, perm_ref = reference[flavor]
        mc, perm = _run(small_dataset, backend, flavor)
        assert np.array_equal(mc.observed, mc_ref.observed)
        assert np.array_equal(mc.exceed_counts, mc_ref.exceed_counts)
        assert np.array_equal(perm.observed, perm_ref.observed)
        assert np.array_equal(perm.exceed_counts, perm_ref.exceed_counts)

    def test_flavors_agree(self, reference, flavor):
        mc, perm = reference[flavor]
        mc_v, perm_v = reference["vectorized"]
        assert np.array_equal(mc.exceed_counts, mc_v.exceed_counts)
        assert np.array_equal(perm.exceed_counts, perm_v.exceed_counts)


@pytest.mark.slow
class TestSerializersBitIdentical:
    """The serializer is a wire-format detail: every serializer on every
    backend must reproduce the serial/pickle statistics bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self, small_dataset):
        return _run(small_dataset, "serial", "vectorized", serializer="pickle")

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("serializer", ["numpy", "compressed"])
    def test_matches_pickle_serial(self, small_dataset, reference, backend, serializer):
        mc_ref, perm_ref = reference
        mc, perm = _run(small_dataset, backend, "vectorized", serializer=serializer)
        assert np.array_equal(mc.observed, mc_ref.observed)
        assert np.array_equal(mc.exceed_counts, mc_ref.exceed_counts)
        assert np.array_equal(mc.pvalues(), mc_ref.pvalues())
        assert np.array_equal(perm.observed, perm_ref.observed)
        assert np.array_equal(perm.exceed_counts, perm_ref.exceed_counts)
        assert np.array_equal(perm.pvalues(), perm_ref.pvalues())

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_pickle_on_pool_backends_matches(self, small_dataset, reference, backend):
        mc_ref, perm_ref = reference
        mc, perm = _run(small_dataset, backend, "vectorized", serializer="pickle")
        assert np.array_equal(mc.exceed_counts, mc_ref.exceed_counts)
        assert np.array_equal(perm.exceed_counts, perm_ref.exceed_counts)


class TestDriverTrafficBound:
    def test_mc_batch_collects_o_k_bytes(self, small_dataset):
        """Executor-side counting: an MC batch job hands the driver one
        (K,) int64 count vector, not P per-partition (batch, K) matrices."""
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2, default_parallelism=4
        )
        with Context(config) as ctx:
            scorer = DistributedSparkScore(
                ctx, small_dataset, flavor="vectorized", block_size=64
            )
            batch = 50
            scorer.monte_carlo(batch, seed=3, batch_size=batch)
            # the last job is the single MC batch (observed pass ran before)
            job = ctx.metrics.last_job
            collected = job.totals().driver_bytes_collected
            K = small_dataset.n_sets
            P = 4
            # O(K) ints plus per-record overhead -- far below one (batch, K)
            # float matrix per partition
            assert collected < P * batch * K * 8 / 2
            assert collected <= K * 8 + 512

    def test_permutation_batch_collects_o_k_bytes(self, small_dataset):
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2, default_parallelism=4
        )
        with Context(config) as ctx:
            scorer = DistributedSparkScore(
                ctx, small_dataset, flavor="vectorized", block_size=64
            )
            scorer.permutation(12, seed=3, batch_size=12)
            collected = ctx.metrics.last_job.totals().driver_bytes_collected
            assert collected <= small_dataset.n_sets * 8 + 512


class TestBatchedPermutationEquivalence:
    def test_batch_size_does_not_change_counts(self, small_dataset):
        """Batching permutations changes scheduling, never statistics."""
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2, default_parallelism=4
        )
        results = []
        for batch_size in (1, 5, 16):
            with Context(config) as ctx:
                scorer = DistributedSparkScore(
                    ctx, small_dataset, flavor="vectorized", block_size=64
                )
                results.append(
                    scorer.permutation(16, seed=2, batch_size=batch_size).exceed_counts
                )
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])
