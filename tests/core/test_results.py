"""Result containers."""

import numpy as np
import pytest

from repro.core.results import ResamplingResult, SnpSetResult


@pytest.fixture
def result():
    return ResamplingResult(
        method="monte_carlo",
        set_names=["a", "b", "c"],
        set_sizes=np.array([10, 5, 2]),
        observed=np.array([3.0, 9.0, 1.0]),
        exceed_counts=np.array([50, 2, 80]),
        n_resamples=100,
    )


class TestResamplingResult:
    def test_pvalues_plugin(self, result):
        assert result.pvalues().tolist() == [0.5, 0.02, 0.8]

    def test_pvalue_method_add_one(self, result):
        result.pvalue_method = "add_one"
        assert result.pvalues()[1] == pytest.approx(3 / 101)

    def test_getitem(self, result):
        r = result[1]
        assert isinstance(r, SnpSetResult)
        assert r.name == "b"
        assert r.n_snps == 5
        assert r.pvalue == pytest.approx(0.02)
        assert "b:" in str(r)

    def test_top_orders_by_pvalue(self, result):
        top = result.top(2)
        assert [r.name for r in top] == ["b", "a"]

    def test_top_tie_break_by_statistic(self):
        result = ResamplingResult(
            method="monte_carlo",
            set_names=["x", "y"],
            set_sizes=np.array([1, 1]),
            observed=np.array([1.0, 5.0]),
            exceed_counts=np.array([10, 10]),
            n_resamples=100,
        )
        assert [r.name for r in result.top(2)] == ["y", "x"]

    def test_to_table(self, result):
        table = result.to_table()
        assert "method=monte_carlo" in table
        assert table.count("\n") >= 5
        short = result.to_table(max_rows=1)
        assert "b" in short and "c" not in short.split("\n")[-1]

    def test_explicit_pvalues_win(self, result):
        result.explicit_pvalues = np.array([0.9, 0.8, 0.7])
        assert result.pvalues().tolist() == [0.9, 0.8, 0.7]

    def test_zero_resamples_nan(self):
        result = ResamplingResult(
            method="observed",
            set_names=["a"],
            set_sizes=np.array([1]),
            observed=np.array([1.0]),
            exceed_counts=np.array([0]),
            n_resamples=0,
        )
        assert np.isnan(result.pvalues()[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ResamplingResult(
                method="x",
                set_names=["a", "b"],
                set_sizes=np.array([1, 1]),
                observed=np.array([1.0]),
                exceed_counts=np.array([0, 0]),
                n_resamples=1,
            )

    def test_repr(self, result):
        assert "sets=3" in repr(result)
