"""The SparkScoreAnalysis facade."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.sparkscore import SparkScoreAnalysis
from repro.genomics.io.dataset_io import write_dataset
from repro.hdfs.filesystem import MiniHDFS


class TestConstruction:
    def test_local_default(self, small_dataset):
        analysis = SparkScoreAnalysis(small_dataset)
        assert analysis.engine == "local"
        assert analysis.ctx is None

    def test_distributed_owns_context(self, small_dataset):
        with SparkScoreAnalysis(
            small_dataset,
            engine="distributed",
            config=EngineConfig(backend="serial", num_executors=2),
        ) as analysis:
            assert analysis.ctx is not None
        assert analysis.ctx._stopped  # closed on exit

    def test_external_context_not_closed(self, small_dataset, ctx):
        analysis = SparkScoreAnalysis(small_dataset, engine="distributed", ctx=ctx)
        analysis.close()
        assert not ctx._stopped

    def test_unknown_engine(self, small_dataset):
        with pytest.raises(ValueError):
            SparkScoreAnalysis(small_dataset, engine="mpi")

    def test_local_rejects_engine_options(self, small_dataset):
        with pytest.raises(TypeError):
            SparkScoreAnalysis(small_dataset, flavor="paper")

    def test_repr(self, small_dataset):
        assert "snps=300" in repr(SparkScoreAnalysis(small_dataset))


class TestAnalyses:
    def test_local_and_distributed_agree(self, small_dataset):
        local = SparkScoreAnalysis(small_dataset)
        with SparkScoreAnalysis(
            small_dataset,
            engine="distributed",
            config=EngineConfig(backend="serial", num_executors=2, default_parallelism=4),
        ) as dist:
            assert np.allclose(local.observed().observed, dist.observed().observed)
            a = local.monte_carlo(60, seed=2)
            b = dist.monte_carlo(60, seed=2)
            assert np.array_equal(a.exceed_counts, b.exceed_counts)

    def test_asymptotic_available_on_distributed(self, small_dataset):
        with SparkScoreAnalysis(
            small_dataset, engine="distributed",
            config=EngineConfig(backend="serial", num_executors=2),
        ) as analysis:
            result = analysis.asymptotic()
            assert result.method == "asymptotic"
            assert np.all((result.pvalues() >= 0) & (result.pvalues() <= 1))

    def test_wald_comparator(self, small_dataset):
        analysis = SparkScoreAnalysis(small_dataset)
        mle = analysis.wald()
        assert mle.beta.shape == (small_dataset.n_snps,)
        assert np.all(mle.wald >= 0)

    def test_wald_requires_cox(self, small_dataset, rng):
        from repro.stats.score.base import QuantitativePhenotype
        from repro.stats.score.gaussian import GaussianScoreModel

        pheno = QuantitativePhenotype(rng.normal(size=small_dataset.n_patients))
        model = GaussianScoreModel(pheno)
        analysis = SparkScoreAnalysis(small_dataset, model=model)
        with pytest.raises(TypeError):
            analysis.wald()

    def test_marginal_scores(self, small_dataset):
        scores = SparkScoreAnalysis(small_dataset).marginal_scores()
        assert scores.shape == (small_dataset.n_snps,)

    def test_alternative_phenotype_models(self, small_dataset, rng):
        from repro.stats.score.base import QuantitativePhenotype
        from repro.stats.score.gaussian import GaussianScoreModel

        pheno = QuantitativePhenotype(rng.normal(size=small_dataset.n_patients))
        analysis = SparkScoreAnalysis(small_dataset, model=GaussianScoreModel(pheno))
        result = analysis.monte_carlo(50, seed=1)
        assert result.n_resamples == 50


class TestFromFiles:
    def test_local_files(self, small_dataset, tmp_path):
        write_dataset(small_dataset, str(tmp_path / "d"))
        analysis = SparkScoreAnalysis.from_files(str(tmp_path / "d"))
        assert np.allclose(
            analysis.observed().observed,
            SparkScoreAnalysis(small_dataset).observed().observed,
        )

    def test_hdfs_with_engine_parse(self, small_dataset):
        fs = MiniHDFS(num_datanodes=2, block_size=8192)
        write_dataset(small_dataset, "/in", hdfs=fs)
        from repro.engine.context import Context

        with Context(EngineConfig(backend="serial", num_executors=2), hdfs=fs) as ctx:
            analysis = SparkScoreAnalysis.from_files(
                "/in", hdfs=fs, parse_with_engine=True, engine="distributed", ctx=ctx
            )
            result = analysis.monte_carlo(30, seed=4)
            local = SparkScoreAnalysis(small_dataset).monte_carlo(30, seed=4)
            assert np.array_equal(result.exceed_counts, local.exceed_counts)

    def test_parse_with_engine_requires_distributed(self, small_dataset, tmp_path):
        write_dataset(small_dataset, str(tmp_path / "d"))
        with pytest.raises(ValueError):
            SparkScoreAnalysis.from_files(str(tmp_path / "d"), parse_with_engine=True)


class TestExtendedAnalyses:
    def test_skat_o(self, small_dataset):
        analysis = SparkScoreAnalysis(small_dataset)
        result = analysis.skat_o(iterations=200, seed=1)
        assert result.pvalues.shape == (small_dataset.n_sets,)
        assert np.all((result.pvalues > 0) & (result.pvalues <= 1))

    def test_skat_o_custom_grid(self, small_dataset):
        analysis = SparkScoreAnalysis(small_dataset)
        result = analysis.skat_o(iterations=100, seed=1, rho_grid=(0.0, 1.0))
        assert result.observed_grid.shape == (small_dataset.n_sets, 2)

    def test_variant_maxt(self, small_dataset):
        analysis = SparkScoreAnalysis(small_dataset)
        result = analysis.variant_maxt(iterations=200, seed=2)
        assert result.adjusted_pvalues.shape == (small_dataset.n_snps,)
        assert np.all(result.adjusted_pvalues >= result.raw_pvalues - 1e-12)

    def test_variant_maxt_single_step(self, small_dataset):
        analysis = SparkScoreAnalysis(small_dataset)
        down = analysis.variant_maxt(iterations=150, seed=3, step_down=True)
        single = analysis.variant_maxt(iterations=150, seed=3, step_down=False)
        assert np.all(single.adjusted_pvalues >= down.adjusted_pvalues - 1e-12)
