"""LocalSparkScore: the vectorized single-node reference."""

import numpy as np
import pytest

from repro.core.local import LocalSparkScore
from repro.stats.score.cox import CoxScoreModel
from repro.stats.skat import skat_statistics


@pytest.fixture(scope="module")
def local(small_dataset):
    return LocalSparkScore(small_dataset)


class TestObserved:
    def test_matches_direct_computation(self, small_dataset, local):
        model = CoxScoreModel(small_dataset.phenotype)
        scores = model.scores(small_dataset.genotypes.matrix.astype(float))
        expected = skat_statistics(
            scores, small_dataset.weights, small_dataset.snpsets.set_ids, small_dataset.n_sets
        )
        assert np.allclose(local.observed_statistics(), expected)

    def test_observed_result_object(self, local):
        result = local.observed()
        assert result.method == "observed"
        assert result.n_resamples == 0
        assert np.all(np.isnan(result.pvalues()))
        assert result.info["engine"] == "local"

    def test_contributions_shape(self, small_dataset, local):
        U = local.contributions()
        assert U.shape == (small_dataset.n_snps, small_dataset.n_patients)


class TestMonteCarloLocal:
    def test_cached_and_uncached_identical(self, local):
        a = local.monte_carlo(80, seed=3, cache_contributions=True)
        b = local.monte_carlo(80, seed=3, cache_contributions=False)
        assert np.array_equal(a.exceed_counts, b.exceed_counts)
        assert np.allclose(a.observed, b.observed)

    def test_batch_size_invariant(self, local):
        a = local.monte_carlo(60, seed=4, batch_size=7)
        b = local.monte_carlo(60, seed=4, batch_size=60)
        assert np.array_equal(a.exceed_counts, b.exceed_counts)

    def test_more_iterations_tighter_pvalues(self, local):
        small = local.monte_carlo(50, seed=5)
        large = local.monte_carlo(1000, seed=5)
        # p-values converge: large-B estimates differ from each other less
        assert large.n_resamples == 1000
        assert np.all(np.abs(small.pvalues() - large.pvalues()) < 0.2)


class TestPermutationLocal:
    def test_observed_consistent(self, local):
        perm = local.permutation(30, seed=6)
        assert np.allclose(perm.observed, local.observed_statistics())

    def test_statistics_matrix(self, local, small_dataset):
        stats = local.permutation_statistics(10, seed=7)
        assert stats.shape == (10, small_dataset.n_sets)
        assert np.all(stats >= 0)

    def test_mc_and_perm_agree(self, local):
        mc = local.monte_carlo(300, seed=8)
        perm = local.permutation(300, seed=8)
        assert np.all(np.abs(mc.pvalues() - perm.pvalues()) < 0.25)


class TestAsymptoticLocal:
    def test_matches_monte_carlo(self, local):
        asym = local.asymptotic(method="liu")
        mc = local.monte_carlo(2000, seed=9)
        assert np.all(np.abs(asym.pvalues() - mc.pvalues()) < 0.06)

    def test_method_recorded(self, local):
        assert local.asymptotic("satterthwaite").info["approximation"] == "satterthwaite"


class TestNullCalibration:
    def test_pvalues_roughly_uniform_under_null(self):
        """Type-I calibration: null p-values should look uniform."""
        from repro.genomics.synthetic import SyntheticConfig, generate_dataset

        data = generate_dataset(
            SyntheticConfig(n_patients=100, n_snps=400, n_snpsets=40, seed=21)
        )
        result = LocalSparkScore(data).monte_carlo(400, seed=2)
        p = result.pvalues()
        # crude uniformity checks, loose thresholds for 40 sets
        assert 0.3 < p.mean() < 0.7
        assert (p < 0.1).mean() < 0.3

    def test_model_mismatch_rejected(self, small_dataset, tiny_dataset):
        model = CoxScoreModel(tiny_dataset.phenotype)
        with pytest.raises(ValueError):
            LocalSparkScore(small_dataset, model)
