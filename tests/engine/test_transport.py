"""Shared-memory / temp-file transport: refs, dedup, lifecycle."""

import os
import pickle

import pytest

from repro.engine.transport import Transport, TransportRef, from_spec


@pytest.fixture(params=["auto", "file"])
def transport(request, tmp_path):
    if request.param == "file":
        t = Transport("file", str(tmp_path))
    else:
        t = Transport.create()
    yield t
    t.close()


class TestPutGet:
    def test_roundtrip(self, transport):
        blob = b"\x00\x01" * 5000
        assert transport.get(transport.put(blob)) == blob

    def test_ref_is_small_and_picklable(self, transport):
        ref = transport.put(b"x" * (1 << 20))
        assert ref.size == 1 << 20
        wire = pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(wire) < 512
        assert pickle.loads(wire) == ref

    def test_empty_blob(self, transport):
        ref = transport.put(b"")
        assert transport.get(ref) == b""

    def test_distinct_puts_get_distinct_refs(self, transport):
        r1 = transport.put(b"one")
        r2 = transport.put(b"two")
        assert r1.key != r2.key
        assert transport.get(r1) == b"one"
        assert transport.get(r2) == b"two"


class TestDedup:
    def test_same_content_shares_segment(self, transport):
        blob = b"payload" * 1000
        r1 = transport.put(blob, dedup=True)
        r2 = transport.put(blob, dedup=True)
        assert r1 == r2
        assert transport.dedup_hits == 1
        assert transport.bytes_published == len(blob)  # stored once

    def test_different_content_not_deduped(self, transport):
        r1 = transport.put(b"a" * 100, dedup=True)
        r2 = transport.put(b"b" * 100, dedup=True)
        assert r1.key != r2.key
        assert transport.dedup_hits == 0

    def test_non_dedup_put_always_writes(self, transport):
        blob = b"same"
        r1 = transport.put(blob)
        r2 = transport.put(blob)
        assert r1.key != r2.key


class TestLifecycle:
    def test_delete_removes_payload(self, transport):
        ref = transport.put(b"gone soon")
        transport.delete(ref)
        if ref.scheme == "file":
            assert not os.path.exists(ref.key)
        else:
            with pytest.raises(Exception):
                transport.get(ref)

    def test_delete_is_idempotent(self, transport):
        ref = transport.put(b"x")
        transport.delete(ref)
        transport.delete(ref)  # no raise

    def test_delete_clears_dedup_entry(self, transport):
        blob = b"dedup me" * 100
        r1 = transport.put(blob, dedup=True)
        transport.delete(r1)
        r2 = transport.put(blob, dedup=True)
        assert r2.key != r1.key  # re-published, not a stale ref

    def test_close_unlinks_created_refs(self, tmp_path):
        t = Transport("file", str(tmp_path))
        refs = [t.put(f"blob {i}".encode()) for i in range(3)]
        t.close()
        assert all(not os.path.exists(r.key) for r in refs)


class TestSpec:
    def test_spec_roundtrip(self, transport):
        blob = b"cross-process payload" * 200
        ref = transport.put(blob)
        remote = Transport(*transport.spec())
        assert remote.get(ref) == blob

    def test_from_spec_memoizes(self, transport):
        spec = transport.spec()
        assert from_spec(spec) is from_spec(spec)

    def test_from_spec_tracks_spec_changes(self, tmp_path):
        t1 = Transport("file", str(tmp_path / "a"))
        t2 = Transport("file", str(tmp_path / "b"))
        os.makedirs(t1.root)
        os.makedirs(t2.root)
        h1 = from_spec(t1.spec())
        h2 = from_spec(t2.spec())
        assert h1.root != h2.root

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            Transport("rdma", "")


class TestRefEquality:
    def test_frozen_dataclass(self):
        ref = TransportRef("file", "/tmp/x", 3, "aa")
        with pytest.raises(Exception):
            ref.size = 4
        assert ref == TransportRef("file", "/tmp/x", 3, "aa")
