"""Shared-memory / temp-file / socket transport: refs, dedup, lifecycle."""

import os
import pickle

import pytest

from repro.engine.transport import (
    SocketTransport,
    Transport,
    TransportRef,
    create_transport,
    from_spec,
)


@pytest.fixture(params=["auto", "file"])
def transport(request, tmp_path):
    if request.param == "file":
        t = Transport("file", str(tmp_path))
    else:
        t = Transport.create()
    yield t
    t.close()


class TestPutGet:
    def test_roundtrip(self, transport):
        blob = b"\x00\x01" * 5000
        assert transport.get(transport.put(blob)) == blob

    def test_ref_is_small_and_picklable(self, transport):
        ref = transport.put(b"x" * (1 << 20))
        assert ref.size == 1 << 20
        wire = pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(wire) < 512
        assert pickle.loads(wire) == ref

    def test_empty_blob(self, transport):
        ref = transport.put(b"")
        assert transport.get(ref) == b""

    def test_distinct_puts_get_distinct_refs(self, transport):
        r1 = transport.put(b"one")
        r2 = transport.put(b"two")
        assert r1.key != r2.key
        assert transport.get(r1) == b"one"
        assert transport.get(r2) == b"two"


class TestDedup:
    def test_same_content_shares_segment(self, transport):
        blob = b"payload" * 1000
        r1 = transport.put(blob, dedup=True)
        r2 = transport.put(blob, dedup=True)
        assert r1 == r2
        assert transport.dedup_hits == 1
        assert transport.bytes_published == len(blob)  # stored once

    def test_different_content_not_deduped(self, transport):
        r1 = transport.put(b"a" * 100, dedup=True)
        r2 = transport.put(b"b" * 100, dedup=True)
        assert r1.key != r2.key
        assert transport.dedup_hits == 0

    def test_non_dedup_put_always_writes(self, transport):
        blob = b"same"
        r1 = transport.put(blob)
        r2 = transport.put(blob)
        assert r1.key != r2.key


class TestLifecycle:
    def test_delete_removes_payload(self, transport):
        ref = transport.put(b"gone soon")
        transport.delete(ref)
        if ref.scheme == "file":
            assert not os.path.exists(ref.key)
        else:
            with pytest.raises(Exception):
                transport.get(ref)

    def test_delete_is_idempotent(self, transport):
        ref = transport.put(b"x")
        transport.delete(ref)
        transport.delete(ref)  # no raise

    def test_delete_clears_dedup_entry(self, transport):
        blob = b"dedup me" * 100
        r1 = transport.put(blob, dedup=True)
        transport.delete(r1)
        published = transport.bytes_published
        r2 = transport.put(blob, dedup=True)
        # re-materialized for real (not a stale ref to deleted storage)...
        assert transport.bytes_published == published + len(blob)
        assert transport.get(r2) == blob
        # ...under the *same* content-addressed key, so refs embedded in
        # task closures stay byte-identical across republications
        assert r2.key == r1.key

    def test_close_unlinks_created_refs(self, tmp_path):
        t = Transport("file", str(tmp_path))
        refs = [t.put(f"blob {i}".encode()) for i in range(3)]
        t.close()
        assert all(not os.path.exists(r.key) for r in refs)


class TestSpec:
    def test_spec_roundtrip(self, transport):
        blob = b"cross-process payload" * 200
        ref = transport.put(blob)
        remote = Transport(*transport.spec())
        assert remote.get(ref) == blob

    def test_from_spec_memoizes(self, transport):
        spec = transport.spec()
        assert from_spec(spec) is from_spec(spec)

    def test_from_spec_tracks_spec_changes(self, tmp_path):
        t1 = Transport("file", str(tmp_path / "a"))
        t2 = Transport("file", str(tmp_path / "b"))
        os.makedirs(t1.root)
        os.makedirs(t2.root)
        h1 = from_spec(t1.spec())
        h2 = from_spec(t2.spec())
        assert h1.root != h2.root

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            Transport("rdma", "")


class TestRefEquality:
    def test_frozen_dataclass(self):
        ref = TransportRef("file", "/tmp/x", 3, "aa")
        with pytest.raises(Exception):
            ref.size = 4
        assert ref == TransportRef("file", "/tmp/x", 3, "aa")


@pytest.fixture
def socket_pair():
    """A serving socket transport plus a client handle dialed into it."""
    server = SocketTransport.serve()
    client = SocketTransport(server.addr, secret=server.secret)
    yield server, client
    client.close()
    server.close()


class TestSocketTransport:
    def test_create_transport_tcp(self):
        t = create_transport("tcp")
        try:
            assert isinstance(t, SocketTransport)
            assert t.spec()[0] == "tcp"
        finally:
            t.close()

    def test_local_roundtrip_on_server(self, socket_pair):
        server, _ = socket_pair
        blob = b"\x07" * 4096
        assert server.get(server.put(blob)) == blob

    def test_client_push_and_get(self, socket_pair):
        server, client = socket_pair
        blob = b"over the wire" * 500
        ref = client.put(blob)
        assert ref.scheme == "tcp"
        assert client.get(ref) == blob
        assert server.get(ref) == blob  # landed in the server store

    def test_client_get_missing_raises(self, socket_pair):
        _, client = socket_pair
        missing = TransportRef("tcp", "tok-deadbeef", 4, None)
        with pytest.raises(KeyError):
            client.get(missing)

    def test_dedup_offer_short_circuits_payload(self, socket_pair):
        server, client = socket_pair
        blob = b"publish me once" * 1000
        r1 = client.put(blob, dedup=True)
        published = client.bytes_published
        # a *different* client handle with a cold memo: only the offer
        # (hash + size) crosses the wire, the server answers BLOB_HAVE
        fresh = SocketTransport(server.addr, secret=server.secret)
        try:
            r2 = fresh.put(blob, dedup=True)
        finally:
            fresh.close()
        assert r2 == r1
        assert fresh.bytes_published == 0
        assert fresh.dedup_hits == 1
        assert server.dedup_hits >= 1
        assert client.bytes_published == published  # original unaffected

    def test_dedup_memo_on_same_client(self, socket_pair):
        _, client = socket_pair
        blob = b"memo" * 2000
        r1 = client.put(blob, dedup=True)
        r2 = client.put(blob, dedup=True)
        assert r1 == r2
        assert client.dedup_hits == 1

    def test_delete_then_get_misses(self, socket_pair):
        server, client = socket_pair
        ref = client.put(b"short-lived")
        client.delete(ref)
        with pytest.raises(KeyError):
            client.get(ref)
        with pytest.raises(KeyError):
            server.get(ref)

    def test_delete_clears_server_dedup_index(self, socket_pair):
        server, client = socket_pair
        blob = b"dedup reset" * 300
        ref = client.put(blob, dedup=True)
        client.delete(ref)
        fresh = SocketTransport(server.addr, secret=server.secret)
        try:
            again = fresh.put(blob, dedup=True)
        finally:
            fresh.close()
        assert fresh.bytes_published == len(blob)  # re-pushed for real
        assert server.get(again) == blob

    def test_from_spec_builds_client(self, socket_pair):
        server, _ = socket_pair
        handle = from_spec(server.spec())
        assert isinstance(handle, SocketTransport)
        blob = b"spec-dialed payload"
        assert handle.get(handle.put(blob)) == blob

    def test_empty_blob(self, socket_pair):
        _, client = socket_pair
        ref = client.put(b"")
        assert client.get(ref) == b""


class TestSocketAuth:
    """Connections that cannot answer the HMAC challenge are dropped."""

    def test_wrong_secret_rejected(self, socket_pair):
        server, _ = socket_pair
        intruder = SocketTransport(server.addr, secret=b"not the secret")
        try:
            with pytest.raises((ConnectionError, OSError)):
                intruder.put(b"payload", dedup=True)
        finally:
            intruder.close()
        # the fleet keeps serving authenticated peers afterwards
        good = SocketTransport(server.addr, secret=server.secret)
        try:
            assert good.get(good.put(b"still alive")) == b"still alive"
        finally:
            good.close()

    def test_spec_carries_secret(self, socket_pair):
        server, _ = socket_pair
        scheme, addr, secret_hex = server.spec()
        assert scheme == "tcp" and addr == server.addr
        assert bytes.fromhex(secret_hex) == server.secret


class TestStoreEviction:
    """The serving store keeps dedup'd blobs under a byte budget."""

    def test_oldest_dedup_blob_evicted(self, socket_pair):
        server, client = socket_pair
        server.store_budget = 3000
        first = client.put(b"a" * 2000, dedup=True)
        second = client.put(b"b" * 2000, dedup=True)  # pushes store past budget
        assert server.evictions == 1
        with pytest.raises(KeyError):
            server.get(first)
        assert server.get(second) == b"b" * 2000
        # the evicted hash left the dedup index: a re-offer re-pushes
        fresh = SocketTransport(server.addr, secret=server.secret)
        try:
            again = fresh.put(b"a" * 2000, dedup=True)
            assert fresh.bytes_published == 2000
            assert server.get(again) == b"a" * 2000
        finally:
            fresh.close()

    def test_result_blobs_never_evicted(self, socket_pair):
        server, client = socket_pair
        server.store_budget = 1000
        result = client.put(b"r" * 5000)  # tok- key, exempt from eviction
        client.put(b"c" * 5000, dedup=True)
        assert server.get(result) == b"r" * 5000


class TestShmNamespace:
    """Dedup'd segment names are namespaced per transport handle."""

    def test_two_handles_never_share_segments(self):
        t1 = Transport.create()
        t2 = Transport.create()
        try:
            blob = b"shared content" * 500
            r1 = t1.put(blob, dedup=True)
            r2 = t2.put(blob, dedup=True)
            assert r1.key != r2.key  # no cross-handle unlink hazard
            # closing one handle must not strand the other's ref
            t1.close()
            assert t2.get(r2) == blob
        finally:
            t2.close()

    def test_namespace_stable_within_handle(self, transport):
        blob = b"stable" * 400
        r1 = transport.put(blob, dedup=True)
        transport.delete(r1)
        r2 = transport.put(blob, dedup=True)
        assert r1.key == r2.key  # refs in task closures stay byte-identical
