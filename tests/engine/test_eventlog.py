"""Event log persistence and cross-process replay."""

import json
import operator
from pathlib import Path

import pytest

from repro.core.replay import capture_job, replay
from repro.engine.eventlog import (
    FORMAT_VERSION,
    EventLogListener,
    read_adaptive,
    read_alerts,
    read_event_log,
    read_fleet,
    read_inference,
    read_logs,
    read_series,
    read_telemetry,
    series_to_points,
    write_event_log,
)

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


@pytest.fixture
def logged_jobs(ctx, tmp_path):
    ctx.parallelize(range(40), 4).map(lambda x: x + 1).sum()
    ctx.parallelize([(i % 3, 1) for i in range(30)], 4).reduce_by_key(operator.add).collect()
    path = str(tmp_path / "events.jsonl")
    n = write_event_log(ctx.metrics.jobs, path)
    assert n == 2
    return ctx.metrics.jobs, path


class TestRoundTrip:
    def test_job_fields_survive(self, logged_jobs):
        original, path = logged_jobs
        loaded = read_event_log(path)
        assert len(loaded) == 2
        for a, b in zip(original, loaded):
            assert a.job_id == b.job_id
            assert a.description == b.description
            assert a.wall_seconds == b.wall_seconds
            assert len(a.stages) == len(b.stages)

    def test_task_records_survive(self, logged_jobs):
        original, path = logged_jobs
        loaded = read_event_log(path)
        stage_a = original[1].stages[0]
        stage_b = loaded[1].stages[0]
        assert stage_a.is_shuffle_map == stage_b.is_shuffle_map
        assert [t.duration_seconds for t in stage_a.tasks] == [
            t.duration_seconds for t in stage_b.tasks
        ]
        assert stage_a.totals().shuffle_records_written == stage_b.totals().shuffle_records_written

    def test_append_mode(self, ctx, tmp_path):
        path = str(tmp_path / "log.jsonl")
        ctx.parallelize(range(4), 2).count()
        write_event_log([ctx.metrics.jobs[-1]], path)
        ctx.parallelize(range(4), 2).count()
        write_event_log([ctx.metrics.jobs[-1]], path)
        assert len(read_event_log(path)) == 2

    def test_replay_from_loaded_log(self, logged_jobs):
        """The history-server use case: load a log, run a what-if."""
        original, path = logged_jobs
        loaded = read_event_log(path)
        rec_orig = capture_job(original[1])
        rec_loaded = capture_job(loaded[1])
        assert replay(rec_loaded, 4).makespan == pytest.approx(
            replay(rec_orig, 4).makespan
        )


class TestErrors:
    def test_corrupt_line_mid_file(self, tmp_path):
        """Unparseable lines with content after them are real corruption,
        not a crash-truncated tail."""
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"event": "job"\n'
            '{"event": "heartbeat", "version": 3, "executor_id": "e0"}\n'
        )
        with pytest.raises(ValueError, match="line 1"):
            read_event_log(str(path))

    def test_truncated_final_line_warns_and_loads_rest(self, ctx, tmp_path):
        """A writer killed mid-write chops the last line; the reader keeps
        every complete job and warns instead of raising."""
        ctx.parallelize(range(8), 2).sum()
        path = str(tmp_path / "chopped.jsonl")
        write_event_log(ctx.metrics.jobs, path)
        full = open(path).read()
        with open(path, "a") as fh:
            fh.write(full[: len(full) // 2].rstrip("\n"))  # half a job line
        with pytest.warns(UserWarning, match="truncated"):
            jobs = read_event_log(path)
        assert len(jobs) == 1
        assert jobs[0].stages[0].num_tasks == 2

    def test_wrong_event_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "heartbeat", "version": 1}\n')
        with pytest.raises(ValueError):
            read_event_log(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "job", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            read_event_log(str(path))

    def test_blank_lines_skipped(self, ctx, tmp_path):
        ctx.parallelize([1], 1).count()
        path = str(tmp_path / "log.jsonl")
        write_event_log(ctx.metrics.jobs, path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(read_event_log(path)) == 1


class TestContextIntegration:
    def test_context_flushes_log_on_stop(self, tmp_path, serial_config):
        from repro.engine.context import Context

        path = str(tmp_path / "auto.jsonl")
        with Context(serial_config, event_log_path=path) as ctx:
            ctx.parallelize(range(10), 2).sum()
            ctx.parallelize(range(10), 2).count()
        jobs = read_event_log(path)
        assert len(jobs) == 2
        assert jobs[0].stages[0].num_tasks == 2

    def test_jobs_streamed_incrementally(self, tmp_path, serial_config):
        """Each job is on disk as soon as it ends, not only at stop()."""
        from repro.engine.context import Context

        path = str(tmp_path / "stream.jsonl")
        with Context(serial_config, event_log_path=path) as ctx:
            ctx.parallelize(range(4), 2).sum()
            assert len(read_event_log(path)) == 1
            ctx.parallelize(range(4), 2).count()
            assert len(read_event_log(path)) == 2


# hand-written v1 line: no submit_time/start_time, no size_estimation_seconds
_V1_LINE = json.dumps({
    "event": "job", "version": 1, "job_id": 0, "description": "legacy",
    "wall_seconds": 1.5, "num_task_failures": 0,
    "num_stage_resubmissions": 0, "num_executor_failures_observed": 0,
    "stages": [{
        "stage_id": 0, "name": "map", "num_tasks": 1, "attempt": 0,
        "parent_stage_ids": [], "is_shuffle_map": False, "wall_seconds": 1.5,
        "tasks": [{
            "stage_id": 0, "partition": 0, "attempt": 0, "executor_id": "e0",
            "duration_seconds": 1.4, "succeeded": True, "error": None,
            "metrics": {
                "records_read": 5, "records_written": 5,
                "shuffle_bytes_read": 0, "shuffle_bytes_written": 0,
                "shuffle_records_read": 0, "shuffle_records_written": 0,
                "cache_hits": 1, "cache_misses": 1, "remote_cache_hits": 0,
                "disk_blocks_read": 0, "compute_seconds": 1.3,
            },
        }],
    }],
})


class TestVersionCompat:
    def test_v1_line_loads_with_zero_defaults(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(_V1_LINE + "\n")
        (job,) = read_event_log(str(path))
        assert job.description == "legacy"
        assert job.submit_time == 0.0
        assert job.stages[0].submit_time == 0.0
        task = job.stages[0].tasks[0]
        assert task.start_time == 0.0
        assert task.metrics.size_estimation_seconds == 0.0
        assert task.metrics.cache_hits == 1  # v1 fields intact

    def test_v1_log_supports_history_analysis(self, tmp_path):
        """Critical-path/history math needs no timestamps."""
        from repro.obs.history import critical_path
        from repro.obs.spans import spans_from_jobs

        path = tmp_path / "v1.jsonl"
        path.write_text(_V1_LINE + "\n")
        (job,) = read_event_log(str(path))
        cp = critical_path(job)
        assert cp.critical_seconds == pytest.approx(1.4)
        assert len(spans_from_jobs([job])) == 3  # synthetic timeline works

    def test_writes_current_version(self, ctx, tmp_path):
        ctx.parallelize(range(4), 2).sum()
        path = str(tmp_path / "current.jsonl")
        write_event_log(ctx.metrics.jobs, path)
        with open(path) as fh:
            data = json.loads(fh.readline())
        assert data["version"] == FORMAT_VERSION == 8
        assert data["submit_time"] > 0.0
        assert data["stages"][0]["tasks"][0]["start_time"] > 0.0

    def test_v2_timestamps_survive_round_trip(self, ctx, tmp_path):
        ctx.parallelize(range(4), 2).sum()
        path = str(tmp_path / "v2.jsonl")
        write_event_log(ctx.metrics.jobs, path)
        (loaded,) = read_event_log(path)
        original = ctx.metrics.jobs[0]
        assert loaded.submit_time == original.submit_time
        assert loaded.stages[0].tasks[0].start_time == original.stages[0].tasks[0].start_time

    def test_committed_v2_fixture_still_loads(self):
        """Regression: a real v2 log on disk must keep loading as-is, with
        the v3 telemetry fields zero-defaulted."""
        (job,) = read_event_log(str(FIXTURES / "eventlog_v2.jsonl"))
        assert job.description == "sum at reduce"
        assert len(job.stages) == 2
        assert job.stages[0].is_shuffle_map
        totals = job.totals()
        assert totals.shuffle_bytes_written == 1010
        assert totals.task_binary_bytes == 5120
        # v3 fields default to zero on old logs
        task = job.stages[0].tasks[0]
        assert task.metrics.gc_pause_seconds == 0.0
        assert task.metrics.peak_rss_bytes == 0
        assert task.profile is None
        assert task.span_fragments == []
        assert read_telemetry(str(FIXTURES / "eventlog_v2.jsonl")) == []


class TestV3Telemetry:
    def test_profile_and_fragments_round_trip(self, tmp_path):
        from repro.config import EngineConfig
        from repro.engine.context import Context

        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2,
            default_parallelism=4, profile_fraction=1.0,
        )
        with Context(config) as ctx:
            ctx.parallelize(range(20), 2).map(lambda x: x * x).sum()
            jobs = ctx.metrics.jobs
        path = str(tmp_path / "v3.jsonl")
        write_event_log(jobs, path)
        (loaded,) = read_event_log(path)
        task = loaded.stages[0].tasks[0]
        assert task.profile, "profiled task should carry hotspot rows"
        assert {"func", "ncalls", "tottime", "cumtime"} <= set(task.profile[0])

    def test_heartbeat_lines_written_and_skipped(self, tmp_path):
        """Heartbeat records interleave in the stream; job readers skip
        them, read_telemetry returns them."""
        from repro.config import EngineConfig
        from repro.engine.context import Context

        path = str(tmp_path / "hb.jsonl")
        config = EngineConfig(
            backend="threads", num_executors=2, executor_cores=2,
            default_parallelism=4, heartbeat_interval=0.02,
        )
        with Context(config, event_log_path=path) as ctx:
            import time as _time

            ctx.parallelize(range(8), 4).map(
                lambda x: (_time.sleep(0.05), x)[1]
            ).sum()
        jobs = read_event_log(path)
        assert len(jobs) == 1
        telemetry = read_telemetry(path)
        assert telemetry, "expected heartbeat records in the v3 log"
        assert all(t["event"] == "heartbeat" for t in telemetry)
        assert all(t["version"] == FORMAT_VERSION for t in telemetry)
        assert any(t["executor_id"].startswith("exec-") for t in telemetry)

    def test_v1_heartbeat_line_still_rejected(self, tmp_path):
        """Only version >= 3 telemetry lines are skippable; a non-job line
        claiming v1/v2 is corruption and must raise (compat guarantee)."""
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "heartbeat", "version": 2}\n')
        with pytest.raises(ValueError):
            read_event_log(str(path))


class TestV4Logs:
    def _run_logged(self, tmp_path, level="debug"):
        from repro.config import EngineConfig
        from repro.engine.context import Context

        path = str(tmp_path / "v4.jsonl")
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2,
            default_parallelism=4, log_level=level,
        )
        with Context(config, event_log_path=path) as ctx:
            ctx.parallelize(range(20), 4).map(lambda x: x + 1).sum()
        return path

    def test_log_records_interleave_and_recover(self, tmp_path):
        path = self._run_logged(tmp_path)
        records = read_logs(path)
        assert records, "expected structured log lines in the v4 log"
        messages = {r.message for r in records}
        assert "job started" in messages and "job finished" in messages
        finished = [r for r in records if r.message == "task finished"]
        assert {(r.job_id, r.stage_id, r.partition) for r in finished} == {
            (0, 0, p) for p in range(4)
        }

    def test_job_readers_skip_log_lines(self, tmp_path):
        path = self._run_logged(tmp_path)
        jobs = read_event_log(path)
        assert len(jobs) == 1
        # and telemetry readers don't confuse log lines with heartbeats
        assert all(t["event"] != "log" for t in read_telemetry(path))

    def test_level_gates_the_side_channel(self, tmp_path):
        quiet = read_logs(self._run_logged(tmp_path, level="error"))
        assert quiet == []

    def test_old_fixture_has_no_logs(self):
        assert read_logs(str(FIXTURES / "eventlog_v2.jsonl")) == []

    def test_committed_truncated_fixture_loads_partially(self):
        """Regression: the chopped fixture simulates a driver killed
        mid-write; the complete first job must survive."""
        with pytest.warns(UserWarning, match="truncated"):
            jobs = read_event_log(str(FIXTURES / "eventlog_truncated.jsonl"))
        assert len(jobs) == 1
        assert jobs[0].description == "sum at reduce"


class TestV5Monitoring:
    def test_committed_v4_fixture_still_loads(self):
        """Regression: a real v4 log keeps loading whole -- jobs, telemetry,
        and logs intact, with the v5 side channels reading as empty."""
        path = str(FIXTURES / "eventlog_v4.jsonl")
        (job,) = read_event_log(path)
        assert job.stages and job.stages[0].tasks
        telemetry = read_telemetry(path)
        assert telemetry and all(t["event"] == "heartbeat" for t in telemetry)
        records = read_logs(path)
        assert any(r.message == "job finished" for r in records)
        assert read_series(path) == []
        assert read_alerts(path) == []

    def test_series_lines_round_trip(self, tmp_path):
        path = str(tmp_path / "v5.jsonl")
        listener = EventLogListener(path)
        listener.write_series(1.0, [("engine_jobs_total", {}, 3.0)])
        listener.write_series(2.0, [
            ("engine_jobs_total", {}, 4.0),
            ("engine_executor_rss_bytes", {"executor": "exec-0"}, 1024.0),
        ])
        listener.close()
        records = read_series(path)
        assert [r["time"] for r in records] == [1.0, 2.0]
        points = series_to_points(records)
        assert points[("engine_jobs_total", ())] == [(1.0, 3.0), (2.0, 4.0)]
        assert points[("engine_executor_rss_bytes", (("executor", "exec-0"),))] == [
            (2.0, 1024.0)
        ]

    def test_alert_lines_round_trip(self, tmp_path):
        path = str(tmp_path / "v5.jsonl")
        listener = EventLogListener(path)
        transition = {
            "time": 5.0, "transition": "firing", "rule": "heartbeat_loss",
            "severity": "critical", "metric": "engine_executor_heartbeats_total",
            "labels": {"executor": "exec-1"}, "value": 2.5, "description": "d",
        }
        listener.write_alert(transition)
        listener.close()
        (loaded,) = read_alerts(path)
        assert loaded["event"] == "alert"
        assert loaded["version"] == FORMAT_VERSION
        for key, value in transition.items():
            assert loaded[key] == value

    def test_side_channels_interleave_with_jobs(self, tmp_path, serial_config):
        from repro.engine.context import Context

        path = str(tmp_path / "live.jsonl")
        config = serial_config.copy(metrics_interval=0.02)
        with Context(config, event_log_path=path) as ctx:
            ctx.parallelize(range(20), 4).map(lambda x: x + 1).sum()
            # wait for at least one sampler tick to observe the job counters
            import time as _time

            deadline = _time.monotonic() + 5.0
            while ctx._event_log_listener.series_written == 0:
                assert _time.monotonic() < deadline, "no series line landed"
                _time.sleep(0.02)
        assert len(read_event_log(path)) == 1
        points = series_to_points(read_series(path))
        names = {name for name, _ in points}
        assert "engine_jobs_total" in names
        # job readers and the other side channels ignore series lines
        assert all(t["event"] == "heartbeat" for t in read_telemetry(path))

    def test_fleet_lines_round_trip(self, tmp_path):
        path = str(tmp_path / "v6.jsonl")
        listener = EventLogListener(path)
        listener.write_fleet({"jobs_served": 3, "tasks_completed": 12,
                              "tasks_by_driver": {"abc": 12}})
        listener.close()
        assert listener.fleet_written == 1
        (snap,) = read_fleet(path)
        assert snap["jobs_served"] == 3
        assert snap["tasks_by_driver"] == {"abc": 12}
        # job readers and the other side channels skip fleet lines
        assert read_event_log(path) == []
        assert read_telemetry(path) == []
        assert read_series(path) == []

    def test_torn_final_line_tolerated_by_side_channels(self, tmp_path):
        """A writer killed mid-series-line must not poison any reader."""
        path = str(tmp_path / "torn.jsonl")
        listener = EventLogListener(path)
        listener.write_series(1.0, [("engine_jobs_total", {}, 3.0)])
        listener.write_alert({"time": 2.0, "transition": "firing", "rule": "r"})
        listener.close()
        with open(path, "a") as fh:
            fh.write('{"event":"series","version":5,"time":3.0,"samp')  # torn
        assert [r["time"] for r in read_series(path)] == [1.0]
        assert [a["rule"] for a in read_alerts(path)] == ["r"]
        with pytest.warns(UserWarning, match="truncated"):
            assert read_event_log(path) == []  # no jobs, but no crash either


class TestV6Fleet:
    def test_cluster_context_writes_fleet_line_on_stop(self, tmp_path):
        """A cluster-backed context appends one v6 ``fleet`` line at stop:
        the cluster-resident snapshot the next driver cannot rebuild."""
        from repro.config import EngineConfig
        from repro.engine.context import Context

        path = str(tmp_path / "fleet.jsonl")
        config = EngineConfig(
            backend="cluster", num_executors=2, executor_cores=2,
            default_parallelism=4,
        )
        with Context(config, event_log_path=path) as ctx:
            ctx.parallelize(range(8), 4).map(_plus_two).sum()
            trace_id = ctx.trace_id
            assert read_fleet(path) == []  # written at stop, not before
        (snap,) = read_fleet(path)
        assert snap["jobs_served"] >= 1
        assert snap["tasks_by_driver"].get(trace_id, 0) >= 4
        assert "fleet_tasks_total" in snap["series_names"]
        # the fleet line never confuses the job reader
        assert len(read_event_log(path)) == 1

    def test_serial_context_writes_no_fleet_line(self, tmp_path, serial_config):
        from repro.engine.context import Context

        path = str(tmp_path / "serial.jsonl")
        with Context(serial_config, event_log_path=path) as ctx:
            ctx.parallelize(range(8), 4).sum()
        assert read_fleet(path) == []

    def test_committed_v6_fixture_still_loads(self):
        """Regression: a real v6 log keeps loading whole -- job, telemetry,
        logs, and the fleet side channel all intact."""
        path = str(FIXTURES / "eventlog_v6.jsonl")
        (job,) = read_event_log(path)
        assert job.stages and job.stages[0].tasks
        assert read_telemetry(path), "expected heartbeat lines in the v6 log"
        (snap,) = read_fleet(path)
        assert snap["jobs_served"] == 1
        assert snap["tasks_completed"] == 4
        assert snap["warm"]["binaries_cached"] == 1
        assert "fleet_slot_occupancy" in snap["series_names"]

    def test_old_fixtures_have_no_fleet(self):
        assert read_fleet(str(FIXTURES / "eventlog_v2.jsonl")) == []
        assert read_fleet(str(FIXTURES / "eventlog_v4.jsonl")) == []


class TestV7Adaptive:
    def test_committed_v7_fixture_still_loads(self):
        """Regression: a real v7 log keeps loading whole -- job, logs, and
        the adaptive side channel intact, with v8 inference reading empty."""
        path = str(FIXTURES / "eventlog_v7.jsonl")
        (job,) = read_event_log(path)
        assert job.stages and job.stages[0].tasks
        assert any(r.message == "job finished" for r in read_logs(path))
        (decision,) = read_adaptive(path)
        assert decision["kind"] == "split"
        assert decision["old_partitions"] == 4
        assert decision["new_partitions"] == 6
        assert read_inference(path) == []


class TestV8Inference:
    def test_inference_lines_round_trip(self, tmp_path):
        """Listener hooks write flushed ``inference`` lines the reader
        recovers verbatim."""
        from repro.engine.listener import (
            InferenceBatchCompleted,
            SnpSetConverged,
        )

        path = str(tmp_path / "v8.jsonl")
        listener = EventLogListener(path)
        listener.on_inference_batch_completed(InferenceBatchCompleted(
            method="monte_carlo", batch_width=64, replicates_total=64,
            planned_replicates=512, sets_total=3, sets_converged=1,
            min_pvalue=0.01,
        ))
        listener.on_snp_set_converged(SnpSetConverged(
            method="monte_carlo", set_index=0, set_name="set0",
            status="decided_significant", pvalue=0.01, ci_low=0.002,
            ci_high=0.04, replicates=64,
        ))
        listener.close()
        assert listener.inference_written == 2
        batch, decision = read_inference(path)
        assert batch["kind"] == "batch"
        assert batch["replicates_total"] == 64
        assert batch["planned_replicates"] == 512
        assert decision["kind"] == "converged"
        assert decision["set_name"] == "set0"
        assert decision["status"] == "decided_significant"
        assert decision["ci_low"] == pytest.approx(0.002)
        # job readers and the other side channels skip inference lines
        assert read_event_log(path) == []
        assert read_adaptive(path) == []
        assert read_telemetry(path) == []

    def test_committed_v8_fixture_still_loads(self):
        """Regression: a real v8 log (early-stopped monte-carlo run) keeps
        loading whole -- jobs, logs, and the inference side channel."""
        path = str(FIXTURES / "eventlog_v8.jsonl")
        jobs = read_event_log(path)
        assert jobs and all(j.stages for j in jobs)
        records = read_inference(path)
        batches = [r for r in records if r["kind"] == "batch"]
        converged = [r for r in records if r["kind"] == "converged"]
        assert batches and converged
        final = batches[-1]
        assert final["early_stop"] is True
        assert final["sets_converged"] == final["sets_total"] == 6
        assert final["replicates_total"] + final["replicates_saved"] == \
            final["planned_replicates"]
        assert all(r["status"] in ("decided_significant", "decided_null")
                   for r in converged)
        assert all(0.0 <= r["ci_low"] <= r["pvalue"] <= r["ci_high"] <= 1.0
                   or r["ci_low"] <= r["ci_high"]
                   for r in converged)

    def test_live_run_writes_inference_lines(self, tmp_path, serial_config):
        """An early-stopped analysis streams its convergence trail into the
        context's event log."""
        from repro.core.sparkscore import SparkScoreAnalysis
        from repro.engine.context import Context
        from repro.genomics.synthetic import SyntheticConfig, generate_dataset

        dataset = generate_dataset(SyntheticConfig(
            n_snps=30, n_patients=60, n_snpsets=3, seed=1,
        ))
        path = str(tmp_path / "live.jsonl")
        config = serial_config.copy(inference_early_stop=True)
        with Context(config, event_log_path=path) as ctx:
            analysis = SparkScoreAnalysis(dataset, engine="distributed", ctx=ctx)
            result = analysis.monte_carlo(256, seed=0, batch_size=64)
        records = read_inference(path)
        batches = [r for r in records if r["kind"] == "batch"]
        assert batches, "expected inference batch lines in the v8 log"
        assert batches[-1]["replicates_total"] == result.n_resamples
        assert len(read_event_log(path)) >= 1  # jobs unharmed

    def test_torn_final_inference_line_tolerated(self, tmp_path):
        """A writer killed mid-inference-line must not poison any reader."""
        from repro.engine.listener import InferenceBatchCompleted

        path = str(tmp_path / "torn.jsonl")
        listener = EventLogListener(path)
        listener.on_inference_batch_completed(InferenceBatchCompleted(
            method="permutation", batch_width=16, replicates_total=16,
            planned_replicates=128, sets_total=2, sets_converged=0,
        ))
        listener.close()
        with open(path, "a") as fh:
            fh.write('{"event":"inference","version":8,"kind":"batc')  # torn
        (batch,) = read_inference(path)
        assert batch["replicates_total"] == 16
        with pytest.warns(UserWarning, match="truncated"):
            assert read_event_log(path) == []  # no jobs, but no crash either

    def test_old_fixtures_have_no_inference(self):
        assert read_inference(str(FIXTURES / "eventlog_v2.jsonl")) == []
        assert read_inference(str(FIXTURES / "eventlog_v4.jsonl")) == []
        assert read_inference(str(FIXTURES / "eventlog_v6.jsonl")) == []


def _plus_two(x):
    return x + 2
