"""Event log persistence and cross-process replay."""

import operator

import pytest

from repro.core.replay import capture_job, replay
from repro.engine.eventlog import read_event_log, write_event_log


@pytest.fixture
def logged_jobs(ctx, tmp_path):
    ctx.parallelize(range(40), 4).map(lambda x: x + 1).sum()
    ctx.parallelize([(i % 3, 1) for i in range(30)], 4).reduce_by_key(operator.add).collect()
    path = str(tmp_path / "events.jsonl")
    n = write_event_log(ctx.metrics.jobs, path)
    assert n == 2
    return ctx.metrics.jobs, path


class TestRoundTrip:
    def test_job_fields_survive(self, logged_jobs):
        original, path = logged_jobs
        loaded = read_event_log(path)
        assert len(loaded) == 2
        for a, b in zip(original, loaded):
            assert a.job_id == b.job_id
            assert a.description == b.description
            assert a.wall_seconds == b.wall_seconds
            assert len(a.stages) == len(b.stages)

    def test_task_records_survive(self, logged_jobs):
        original, path = logged_jobs
        loaded = read_event_log(path)
        stage_a = original[1].stages[0]
        stage_b = loaded[1].stages[0]
        assert stage_a.is_shuffle_map == stage_b.is_shuffle_map
        assert [t.duration_seconds for t in stage_a.tasks] == [
            t.duration_seconds for t in stage_b.tasks
        ]
        assert stage_a.totals().shuffle_records_written == stage_b.totals().shuffle_records_written

    def test_append_mode(self, ctx, tmp_path):
        path = str(tmp_path / "log.jsonl")
        ctx.parallelize(range(4), 2).count()
        write_event_log([ctx.metrics.jobs[-1]], path)
        ctx.parallelize(range(4), 2).count()
        write_event_log([ctx.metrics.jobs[-1]], path)
        assert len(read_event_log(path)) == 2

    def test_replay_from_loaded_log(self, logged_jobs):
        """The history-server use case: load a log, run a what-if."""
        original, path = logged_jobs
        loaded = read_event_log(path)
        rec_orig = capture_job(original[1])
        rec_loaded = capture_job(loaded[1])
        assert replay(rec_loaded, 4).makespan == pytest.approx(
            replay(rec_orig, 4).makespan
        )


class TestErrors:
    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "job"\n')
        with pytest.raises(ValueError, match="line 1"):
            read_event_log(str(path))

    def test_wrong_event_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "heartbeat", "version": 1}\n')
        with pytest.raises(ValueError):
            read_event_log(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "job", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            read_event_log(str(path))

    def test_blank_lines_skipped(self, ctx, tmp_path):
        ctx.parallelize([1], 1).count()
        path = str(tmp_path / "log.jsonl")
        write_event_log(ctx.metrics.jobs, path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(read_event_log(path)) == 1


class TestContextIntegration:
    def test_context_flushes_log_on_stop(self, tmp_path, serial_config):
        from repro.engine.context import Context

        path = str(tmp_path / "auto.jsonl")
        with Context(serial_config, event_log_path=path) as ctx:
            ctx.parallelize(range(10), 2).sum()
            ctx.parallelize(range(10), 2).count()
        jobs = read_event_log(path)
        assert len(jobs) == 2
        assert jobs[0].stages[0].num_tasks == 2
