"""Persistent cluster backend: warm caches, lifecycle events, socket dispatch.

The tentpole property under test: a second job over an *identical* stage --
even from a brand-new :class:`Context` -- republishes nothing.  Task-binary
identity is the SHA-256 of the compressed closure blob, so the workload
functions here are module-level (lambdas on different source lines pickle
differently and would defeat the content-hash on purpose-built tests).
"""

import time

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.engine.cluster_backend import (
    ClusterHead,
    ClusterManager,
    cluster_shutdown,
    cluster_status,
    get_cluster,
)
from repro.engine.context import Context
from repro.engine.listener import (
    CollectingListener,
    ExecutorDecommissioned,
    ExecutorRegistered,
    ListenerBus,
)
from repro.obs.registry import REGISTRY


def _cluster_config(**overrides) -> EngineConfig:
    base = dict(
        backend="cluster",
        num_executors=2,
        executor_cores=2,
        default_parallelism=4,
    )
    base.update(overrides)
    return EngineConfig(**base)


def _square(x):
    return x * x


def _warm_workload_shm(ctx: Context):
    return ctx.parallelize(range(64), 4).map(_square).sum()


def _warm_workload_tcp(ctx: Context):
    return ctx.parallelize(range(64), 4).map(_square).reduce(lambda a, b: a + b)


def _counter_total(name: str) -> float:
    inst = REGISTRY.get(name)
    if inst is None:
        return 0.0
    return sum(child.value for child in inst.children().values())


class _BusOnly:
    """The slice of Context that ClusterManager.attach/decommission touch."""

    def __init__(self):
        self.listener_bus = ListenerBus()
        self.sink = self.listener_bus.add_listener(CollectingListener())


class TestCorrectness:
    def test_matches_serial(self, serial_config):
        with Context(serial_config) as sctx:
            expected = sctx.parallelize(range(100), 4).map(_square).collect()
        with Context(_cluster_config()) as cctx:
            assert cctx.parallelize(range(100), 4).map(_square).collect() == expected

    def test_shuffle_over_cluster(self):
        with Context(_cluster_config()) as ctx:
            pairs = ctx.parallelize([(i % 3, i) for i in range(30)], 4)
            got = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert got == {k: sum(i for i in range(30) if i % 3 == k) for k in range(3)}

    def test_broadcast_over_cluster(self):
        with Context(_cluster_config()) as ctx:
            table = ctx.broadcast({i: i * 10 for i in range(8)})
            got = ctx.parallelize(range(8), 4).map(lambda x: table.value[x]).collect()
        assert got == [i * 10 for i in range(8)]

    def test_task_errors_surface(self):
        with Context(_cluster_config()) as ctx:
            with pytest.raises(Exception, match="boom"):
                ctx.parallelize(range(4), 4).map(_raise_boom).collect()


def _raise_boom(x):
    raise ValueError("boom")


class TestTwoJobWarmth:
    """The issue's drill: job 2 on a warm fleet republishes nothing.

    Parameterized over both persistence paths: the default local transport
    (shm/file) and the socket transport (length-prefixed TCP frames with
    SHA-256 dedup offers).
    """

    @pytest.mark.parametrize("scheme,workload", [
        ("auto", _warm_workload_shm),
        ("tcp", _warm_workload_tcp),
    ])
    def test_warm_job_republishes_nothing(self, scheme, workload):
        config = _cluster_config(transport_scheme=scheme)
        expected = sum(x * x for x in range(64))

        with Context(config) as ctx1:
            assert workload(ctx1) == expected
            manager = ctx1.backend._manager
            cold_binary_bytes = ctx1.metrics.last_job.totals().task_binary_bytes
        # context torn down; the fleet and its transport live on
        published_after_cold = manager.transport.bytes_published
        dedup_after_cold = manager.transport.dedup_hits
        cache_hits_before = _counter_total("task_binary_cache_hits_total")

        with Context(config) as ctx2:
            assert ctx2.backend._manager is manager  # same persistent fleet
            assert workload(ctx2) == expected
            warm_binary_bytes = ctx2.metrics.last_job.totals().task_binary_bytes

        # zero task-binary republication: the driver's dedup'd put was
        # answered from the content-hash index, no payload moved
        assert manager.transport.bytes_published == published_after_cold
        assert manager.transport.dedup_hits > dedup_after_cold
        # the warm job charges only pickled refs, not the compressed blob
        assert 0 < warm_binary_bytes < cold_binary_bytes
        assert warm_binary_bytes <= 4 * 512  # ~ref cost per task
        # worker-side task-binary LRU hits flowed home through the registry
        assert _counter_total("task_binary_cache_hits_total") > cache_hits_before

    def test_broadcast_memo_hits_on_second_job(self):
        memo_before = _counter_total("broadcast_memo_hits_total")
        with Context(_cluster_config()) as ctx:
            # incompressible and > _BROADCAST_TRANSPORT_MIN, so the value
            # travels by transport ref and workers go through the memo
            payload = np.random.default_rng(0).integers(
                0, 255, 100_000, dtype=np.uint8
            ).tobytes()
            table = ctx.broadcast(payload)
            job = ctx.parallelize(range(8), 4).map(lambda x: table.value[x])
            first = job.collect()
            second = job.collect()  # same partitions land on the same slots
        assert first == second == [payload[i] for i in range(8)]
        assert _counter_total("broadcast_memo_hits_total") > memo_before

    def test_stable_placement_routes_by_partition(self):
        config = _cluster_config()
        with Context(config) as ctx:
            ctx.parallelize(range(8), 4).map(_square).collect()
            execs = {
                rec.partition: rec.executor_id
                for rec in ctx.metrics.last_job.stages[0].tasks
            }
            ctx.parallelize(range(8), 4).map(_square).collect()
            execs2 = {
                rec.partition: rec.executor_id
                for rec in ctx.metrics.last_job.stages[0].tasks
            }
        assert execs == execs2  # partition -> executor mapping is sticky


class TestLifecycle:
    def test_attach_announces_cold_then_warm(self):
        manager = ClusterManager(num_executors=1, executor_cores=1)
        try:
            first = _BusOnly()
            manager.attach(first)
            cold = [e for e in first.sink.events if isinstance(e, ExecutorRegistered)]
            assert [e.executor_id for e in cold] == ["exec-0"]
            assert not cold[0].warm
            assert cold[0].pid > 0 and cold[0].slots == 1
            manager.detach(first)

            second = _BusOnly()
            manager.attach(second)
            warm = [e for e in second.sink.events if isinstance(e, ExecutorRegistered)]
            assert warm and all(e.warm for e in warm)
        finally:
            manager.stop()

    def test_decommission_drains_and_announces(self):
        # a dedicated 2x1 shape so draining exec-1 cannot degrade the
        # session-shared 2x2 fleet other tests warm up
        config = _cluster_config(num_executors=2, executor_cores=1,
                                 default_parallelism=2)
        manager = get_cluster(config)
        try:
            with Context(config) as ctx:
                sink = ctx.add_listener(CollectingListener())
                ctx.parallelize(range(4), 2).map(_square).collect()
                ctx.backend.decommission("exec-1")
                deadline = time.monotonic() + 5.0
                gone = []
                while time.monotonic() < deadline and not gone:
                    gone = [
                        e for e in sink.events
                        if isinstance(e, ExecutorDecommissioned)
                    ]
                    time.sleep(0.02)
                assert gone and gone[0].executor_id == "exec-1"
                assert gone[0].reason == "drained"
                states = {
                    i["executor_id"]: i["state"] for i in manager.executor_info()
                }
                assert states["exec-1"] == "decommissioned"
                # tasks placed on the retired executor fall back to survivors
                got = ctx.parallelize(range(4), 2).map(_square).collect()
                assert got == [x * x for x in range(4)]
        finally:
            manager.stop()

    def test_executor_info_shape(self):
        config = _cluster_config()
        with Context(config) as ctx:
            ctx.parallelize(range(4), 4).map(_square).collect()
            infos = ctx.backend.executor_info()
        assert [i["executor_id"] for i in infos] == ["exec-0", "exec-1"]
        for info in infos:
            assert info["state"] == "registered"
            assert info["slots"] == 2
            assert info["pid"] > 0
            assert info["tasks_done"] >= 1
            assert info["warm"] is True
            assert info["binaries_cached"] >= 1

    def test_heartbeats_flow_over_sockets(self):
        config = _cluster_config(heartbeat_interval=0.05)
        with Context(config) as ctx:
            ctx.parallelize(range(4), 4).map(_sleep_a_beat).collect()
            hub = ctx.heartbeats
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and hub.records_received == 0:
                time.sleep(0.02)
            # cluster workers heartbeat over their REGISTER socket; the hub
            # drains them from the manager-owned queue like any other backend
            assert hub.records_received > 0


def _sleep_a_beat(x):
    time.sleep(0.15)
    return x


class TestBitEquivalence:
    """Socket transport must not perturb numerics: identical bytes out."""

    def test_mc_workload_bitwise_equal(self):
        def draw(seed):
            rng = np.random.default_rng(seed)
            return rng.standard_normal(256).sum()

        with Context(EngineConfig(backend="serial", default_parallelism=4)) as sctx:
            reference = sctx.parallelize(range(16), 4).map(draw).collect()
        with Context(_cluster_config(transport_scheme="tcp")) as cctx:
            over_sockets = cctx.parallelize(range(16), 4).map(draw).collect()
        assert all(
            np.asarray(a).tobytes() == np.asarray(b).tobytes()
            for a, b in zip(reference, over_sockets)
        )


class TestListenerAuth:
    """The manager's worker listener drops peers that fail the handshake."""

    def test_unauthenticated_peer_dropped(self):
        import socket as socketlib

        from repro.engine import frames as fr

        manager = ClusterManager(num_executors=1, executor_cores=1)
        try:
            host, _, port = manager.address.rpartition(":")
            with socketlib.create_connection((host, int(port)), timeout=5.0) as conn:
                challenge = fr.recv_frame(conn)
                assert challenge is not None and challenge[0] == fr.CHALLENGE
                # wrong digest, then a REGISTER that must never be unpickled
                fr.send_frame(conn, fr.AUTH, b"\x00" * 32)
                fr.send_frame(conn, fr.REGISTER, b"crafted pickle payload")
                conn.settimeout(5.0)
                try:
                    data = conn.recv(1)
                except OSError:
                    data = b""
                assert data == b""  # dropped without a reply
            # the real (authenticated) fleet is untouched
            assert all(h.alive for h in manager.workers)
        finally:
            manager.stop()


class TestExternalHead:
    def test_attach_run_status_stop(self):
        head = ClusterHead(num_executors=1, executor_cores=2, port=0)
        try:
            config = _cluster_config(
                num_executors=1, cluster_address=head.address,
                cluster_secret=head.secret,
            )
            with Context(config) as ctx:
                got = ctx.parallelize(range(20), 4).map(_square).collect()
            assert got == [x * x for x in range(20)]

            rows = cluster_status(head.address, head.secret)
            assert [r["executor_id"] for r in rows] == ["exec-0"]
            assert rows[0]["tasks_done"] >= 4

            cluster_shutdown(head.address, head.secret)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not head.manager.stopped:
                time.sleep(0.05)
            assert head.manager.stopped
        finally:
            head.stop()

    def test_head_requires_secret(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_SECRET", raising=False)
        head = ClusterHead(num_executors=1, executor_cores=1, port=0)
        try:
            # wrong secret: the head drops the connection at the handshake,
            # before any frame of ours is deserialized
            with pytest.raises((ConnectionError, OSError)):
                cluster_status(head.address, "wrong-" + head.secret)
            # missing secret (no env fallback): refused client-side
            with pytest.raises(ConnectionError, match="secret"):
                cluster_status(head.address, None)
            # the right secret still works after the failed attempts
            rows = cluster_status(head.address, head.secret)
            assert [r["executor_id"] for r in rows] == ["exec-0"]
        finally:
            head.stop()


class TestSharedProcessPool:
    """Satellite: the processes backend keeps its pool across contexts."""

    def test_pool_survives_context_teardown(self):
        config = EngineConfig(
            backend="processes", num_executors=2, executor_cores=1,
            default_parallelism=2, heartbeat_interval=0.0,
        )
        with Context(config) as ctx1:
            ctx1.parallelize(range(4), 2).map(_square).collect()
            pool1 = ctx1.backend._ensure_pool()
            pids1 = {p.pid for p in pool1._processes.values()}
        with Context(config) as ctx2:
            ctx2.parallelize(range(4), 2).map(_square).collect()
            pool2 = ctx2.backend._ensure_pool()
            pids2 = {p.pid for p in pool2._processes.values()}
        assert pool1 is pool2
        assert pids1 == pids2  # same OS processes, not a lookalike pool

    def test_detached_backend_refuses_submits(self):
        config = EngineConfig(
            backend="processes", num_executors=1, executor_cores=1,
            default_parallelism=1, heartbeat_interval=0.0,
        )
        ctx = Context(config)
        backend = ctx.backend
        ctx.stop()
        with pytest.raises(RuntimeError, match="shut down"):
            backend.submit_pickled(b"")

    def test_pool_retires_on_shape_change(self):
        small = EngineConfig(
            backend="processes", num_executors=1, executor_cores=1,
            default_parallelism=1, heartbeat_interval=0.0,
        )
        large = EngineConfig(
            backend="processes", num_executors=2, executor_cores=2,
            default_parallelism=4, heartbeat_interval=0.0,
        )
        with Context(small) as ctx:
            ctx.parallelize([1], 1).map(_square).collect()
            pool_small = ctx.backend._ensure_pool()
        with Context(large) as ctx:
            ctx.parallelize(range(4), 4).map(_square).collect()
            pool_large = ctx.backend._ensure_pool()
        assert pool_small is not pool_large
