"""Serialized/compressed shuffle blocks and fault recovery through them.

The shuffle store holds serializer frames, not live lists; these tests pin
the frame lifecycle (write-side encode, adopt-without-re-encode, lazy
reduce-side decode), the compressed-byte accounting, and the FetchFailed ->
stage-resubmission recovery path running entirely over frames -- including
the worker-combined ``register_map_output`` route used by the process
backend.
"""

import operator

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.dependencies import Aggregator, ShuffleDependency
from repro.engine.faults import FaultInjector, FaultPlan
from repro.engine.metrics import TaskMetrics
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import FetchFailedError, ShuffleBlock, ShuffleManager

SERIALIZER_NAMES = ("pickle", "numpy", "compressed")


class _FakeRdd:
    pass


def make_dep(shuffle_id=0, partitions=2, aggregator=None):
    return ShuffleDependency(_FakeRdd(), HashPartitioner(partitions), shuffle_id, aggregator)


@pytest.mark.parametrize("serializer", SERIALIZER_NAMES)
class TestFrameStorage:
    def test_outputs_stored_as_frames(self, serializer):
        mgr = ShuffleManager(serializer=serializer)
        dep = make_dep(partitions=2)
        mgr.register_shuffle(0, 1)
        mgr.write_map_output(dep, 0, [(i, np.full(4, float(i))) for i in range(6)], "e0")
        blocks = mgr.fetch_blocks(0, 0)
        assert blocks and all(isinstance(b, ShuffleBlock) for b in blocks)
        assert all(isinstance(b.payload, bytes) for b in blocks)

    def test_fetch_decodes_bit_identical(self, serializer):
        mgr = ShuffleManager(serializer=serializer)
        dep = make_dep(partitions=2)
        mgr.register_shuffle(0, 1)
        records = [(i % 2, np.arange(5, dtype=np.float64) * i) for i in range(8)]
        mgr.write_map_output(dep, 0, records, "e0")
        got = list(mgr.fetch(0, 0)) + list(mgr.fetch(0, 1))
        assert len(got) == 8
        by_key = sorted(got, key=lambda kv: kv[1].sum())
        expect = sorted(records, key=lambda kv: kv[1].sum())
        for (gk, gv), (ek, ev) in zip(by_key, expect):
            assert gk == ek and np.array_equal(gv, ev)

    def test_serializer_seconds_metric(self, serializer):
        mgr = ShuffleManager(serializer=serializer)
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        mgr.write_map_output(dep, 0, [(1, "x")] * 50, "e0", metrics)
        assert metrics.serializer_seconds > 0
        read_metrics = TaskMetrics()
        list(mgr.fetch(0, 0, read_metrics))
        assert read_metrics.serializer_seconds > 0

    def test_register_map_output_adopts_frames_without_reencode(self, serializer):
        worker = ShuffleManager(track_bytes=False, serializer=serializer)
        dep = make_dep(partitions=2)
        worker.register_shuffle(0, 1)
        worker.write_map_output(dep, 0, [(0, "a"), (1, "b"), (2, "c")], "e0")
        buckets = worker._outputs[(0, 0)]

        driver = ShuffleManager(serializer=serializer)
        driver.register_shuffle(0, 1)
        metrics = TaskMetrics()
        status = driver.register_map_output(dep, 0, buckets, "e0", metrics)
        # adopted payloads are the very same frame objects
        assert driver._outputs[(0, 0)][0].payload is buckets[0].payload
        # driver prices bytes; worker already counted records
        assert metrics.shuffle_bytes_written == sum(status.bytes_by_reducer) > 0
        assert metrics.shuffle_records_written == 0
        assert sorted(driver.fetch(0, 0)) == [(0, "a"), (2, "c")]

    def test_register_map_output_encodes_legacy_lists(self, serializer):
        driver = ShuffleManager(serializer=serializer)
        dep = make_dep(partitions=2)
        driver.register_shuffle(0, 1)
        driver.register_map_output(dep, 0, {0: [(0, "a")], 1: [(1, "b")]}, "e0")
        assert list(driver.fetch(0, 1)) == [(1, "b")]


class TestCompressedAccounting:
    def test_compressed_bytes_below_serialized(self):
        mgr = ShuffleManager(serializer="compressed")
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        # highly compressible payload
        mgr.write_map_output(dep, 0, [(0, np.zeros(4096))], "e0", metrics)
        assert 0 < metrics.shuffle_compressed_bytes < metrics.shuffle_bytes_written

    def test_uncompressed_serializer_equal_bytes(self):
        mgr = ShuffleManager(serializer="pickle")
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        mgr.write_map_output(dep, 0, [(0, np.zeros(64))], "e0", metrics)
        assert metrics.shuffle_compressed_bytes == metrics.shuffle_bytes_written

    def test_worker_manager_skips_byte_pricing(self):
        mgr = ShuffleManager(track_bytes=False, serializer="compressed")
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        mgr.write_map_output(dep, 0, [(0, 1)] * 20, "e0", metrics)
        assert metrics.shuffle_bytes_written == 0
        assert metrics.shuffle_compressed_bytes == 0
        assert metrics.shuffle_records_written > 0  # records still counted

    def test_shuffle_write_event_carries_compressed_bytes(self):
        from repro.engine.listener import CollectingListener, ListenerBus, ShuffleWrite

        mgr = ShuffleManager(serializer="compressed")
        mgr.bus = ListenerBus()
        sink = mgr.bus.add_listener(CollectingListener(ShuffleWrite))
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 1)
        mgr.write_map_output(dep, 0, [(0, np.zeros(2048))], "e0")
        (event,) = sink.of(ShuffleWrite)
        assert 0 < event.compressed_bytes < event.bytes_written


@pytest.mark.parametrize("serializer", SERIALIZER_NAMES)
class TestFetchFailureOverFrames:
    def test_lost_executor_invalidates_frames(self, serializer):
        mgr = ShuffleManager(serializer=serializer)
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 2)
        mgr.write_map_output(dep, 0, [(1, "x")], "e0")
        mgr.write_map_output(dep, 1, [(1, "y")], "e1")
        mgr.remove_outputs_on_executor("e0")
        with pytest.raises(FetchFailedError) as exc:
            mgr.fetch_blocks(0, 0)
        assert exc.value.map_partition == 0

    def test_map_side_combine_through_frames(self, serializer):
        mgr = ShuffleManager(serializer=serializer)
        agg = Aggregator(lambda v: v, operator.add, operator.add)
        dep = make_dep(partitions=1, aggregator=agg)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        mgr.write_map_output(dep, 0, [(1, 1)] * 100, "e0", metrics)
        assert metrics.shuffle_records_written == 1
        assert list(mgr.fetch(0, 0)) == [(1, 100)]


def _make_ctx(backend, serializer, plan=None):
    injector = FaultInjector(plan) if plan is not None else None
    return Context(
        EngineConfig(
            backend=backend,
            num_executors=3,
            executor_cores=1,
            default_parallelism=6,
            serializer=serializer,
        ),
        fault_injector=injector,
    )


@pytest.mark.parametrize("serializer", SERIALIZER_NAMES)
class TestEngineRecoveryOverFrames:
    """FetchFailed -> parent-stage resubmission with the frame store."""

    def test_shuffle_output_lost_triggers_stage_resubmit(self, serializer):
        with _make_ctx("serial", serializer) as ctx:
            rdd = (
                ctx.parallelize([(i % 3, 1) for i in range(30)], 6)
                .reduce_by_key(operator.add)
            )
            first = dict(rdd.collect())
            victim = sorted({
                executor_id for _key, executor_id in ctx.shuffle_manager._writers.items()
            })[0]
            ctx.kill_executor(victim)
            missing = ctx.shuffle_manager.missing_maps(rdd.shuffle_dep.shuffle_id)
            assert missing  # frames actually vanished
            second = dict(rdd.collect())
            assert first == second == {0: 10, 1: 10, 2: 10}
            map_stages = [s for s in ctx.metrics.jobs[-1].stages if s.is_shuffle_map]
            assert map_stages and map_stages[0].num_tasks == len(missing)

    def test_injected_executor_loss_mid_shuffle(self, serializer):
        plan = FaultPlan(kill_executor_after_tasks={"exec-1": 2})
        with _make_ctx("serial", serializer, plan) as ctx:
            got = dict(
                ctx.parallelize([(i % 5, i) for i in range(50)], 10)
                .reduce_by_key(operator.add)
                .collect()
            )
            expected = {}
            for i in range(50):
                expected[i % 5] = expected.get(i % 5, 0) + i
            assert got == expected

    @pytest.mark.slow
    def test_recovery_through_worker_combined_route(self, serializer):
        """Process backend: map output flows through register_map_output
        (worker-encoded frames adopted by the driver), then an executor dies
        and the reduce recovers via resubmission of the lost maps."""
        with _make_ctx("processes", serializer) as ctx:
            rdd = (
                ctx.parallelize([(i % 4, i) for i in range(40)], 4)
                .reduce_by_key(operator.add)
            )
            first = dict(rdd.collect())
            victim = sorted({
                executor_id for _key, executor_id in ctx.shuffle_manager._writers.items()
            })[0]
            ctx.kill_executor(victim)
            assert ctx.shuffle_manager.missing_maps(rdd.shuffle_dep.shuffle_id)
            second = dict(rdd.collect())
        expected = {}
        for i in range(40):
            expected[i % 4] = expected.get(i % 4, 0) + i
        assert first == second == expected


@pytest.mark.parametrize("serializer", SERIALIZER_NAMES)
def test_wordcount_identical_across_serializers(serializer):
    words = ("the quick brown fox jumps over the lazy dog the end " * 10).split()
    with _make_ctx("serial", serializer) as ctx:
        got = dict(
            ctx.parallelize(words, 6).map(lambda w: (w, 1))
            .reduce_by_key(operator.add).collect()
        )
    with _make_ctx("serial", "pickle") as ctx:
        ref = dict(
            ctx.parallelize(words, 6).map(lambda w: (w, 1))
            .reduce_by_key(operator.add).collect()
        )
    assert got == ref
