"""Key-value operations: shuffles, joins, aggregation by key."""

import operator
from collections import defaultdict

import pytest

from repro.engine.partitioner import HashPartitioner


@pytest.fixture
def kv(ctx):
    return ctx.parallelize([(i % 5, i) for i in range(50)], 4)


class TestAggregations:
    def test_reduce_by_key(self, ctx, kv):
        expected = defaultdict(int)
        for i in range(50):
            expected[i % 5] += i
        assert dict(kv.reduce_by_key(operator.add).collect()) == dict(expected)

    def test_reduce_by_key_explicit_partitions(self, kv):
        out = kv.reduce_by_key(operator.add, num_partitions=7)
        assert out.num_partitions() == 7
        assert len(out.collect()) == 5

    def test_fold_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        assert dict(rdd.fold_by_key(10, operator.add).collect()) == {"a": 23, "b": 13}

    def test_aggregate_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        out = rdd.aggregate_by_key(
            (0, 0),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda x, y: (x[0] + y[0], x[1] + y[1]),
        )
        assert dict(out.collect()) == {"a": (3, 2), "b": (3, 1)}

    def test_group_by_key(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 3)
        grouped = {k: sorted(v) for k, v in rdd.group_by_key().collect()}
        assert grouped == {1: ["a", "c"], 2: ["b"]}

    def test_group_by(self, ctx):
        grouped = dict(ctx.parallelize(range(6), 2).group_by(lambda x: x % 2).collect())
        assert sorted(grouped[0]) == [0, 2, 4]
        assert sorted(grouped[1]) == [1, 3, 5]

    def test_combine_by_key_custom(self, ctx):
        rdd = ctx.parallelize([("x", 1), ("x", 2), ("y", 5)], 2)
        out = rdd.combine_by_key(
            create_combiner=lambda v: [v],
            merge_value=lambda acc, v: acc + [v],
            merge_combiners=lambda a, b: a + b,
            map_side_combine=False,
        )
        assert {k: sorted(v) for k, v in out.collect()} == {"x": [1, 2], "y": [5]}

    def test_count_by_key(self, kv):
        assert kv.count_by_key() == {k: 10 for k in range(5)}

    def test_map_side_combine_matches_no_combine(self, ctx):
        data = [(i % 3, float(i)) for i in range(30)]
        a = ctx.parallelize(data, 5).combine_by_key(
            lambda v: v, operator.add, operator.add, map_side_combine=True
        )
        b = ctx.parallelize(data, 5).combine_by_key(
            lambda v: v, operator.add, operator.add, map_side_combine=False
        )
        assert dict(a.collect()) == pytest.approx(dict(b.collect()))


class TestPartitioning:
    def test_partition_by_places_keys(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(20)], 3).partition_by(4)
        parts = rdd.collect_partitions()
        partitioner = HashPartitioner(4)
        for idx, part in enumerate(parts):
            for key, _ in part:
                assert partitioner.partition(key) == idx

    def test_partition_by_idempotent(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).partition_by(HashPartitioner(3))
        again = rdd.partition_by(HashPartitioner(3))
        assert again is rdd

    def test_map_values_preserves_partitioner(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(10)], 2).partition_by(3)
        assert rdd.map_values(str).partitioner == rdd.partitioner

    def test_plain_map_drops_partitioner(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(10)], 2).partition_by(3)
        assert rdd.map(lambda kv: (kv[0] + 1, kv[1])).partitioner is None

    def test_filter_preserves_partitioner(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(10)], 2).partition_by(3)
        assert rdd.filter(lambda kv: kv[0] > 2).partitioner == rdd.partitioner

    def test_key_changing_map_after_join_still_shuffles(self, ctx):
        """Regression: reduce_by_key after a key-changing map over a join
        must not reuse the join's partitioner (would yield partial sums)."""
        left = ctx.parallelize([(i, float(i)) for i in range(40)], 4)
        right = ctx.parallelize([(i, 1.0) for i in range(40)], 4)
        joined = left.join(right, num_partitions=4)
        regrouped = joined.map(lambda kv: (kv[0] % 4, kv[1][0])).reduce_by_key(operator.add, 4)
        got = dict(regrouped.collect())
        expected = defaultdict(float)
        for i in range(40):
            expected[i % 4] += float(i)
        assert got == pytest.approx(dict(expected))

    def test_co_partitioned_combine_skips_shuffle(self, ctx):
        rdd = ctx.parallelize([(i % 4, 1) for i in range(16)], 4).partition_by(4)
        before = len(ctx.metrics.jobs)
        out = rdd.reduce_by_key(operator.add, 4)
        assert dict(out.collect()) == {k: 4 for k in range(4)}
        job = ctx.metrics.jobs[-1]
        assert len(ctx.metrics.jobs) == before + 1
        # only the original partition_by shuffle exists in the lineage; the
        # combine itself added no shuffle-map stage beyond it
        shuffle_stages = [s for s in job.stages if s.is_shuffle_map]
        assert len(shuffle_stages) == 1


class TestJoins:
    def test_inner_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
        b = ctx.parallelize([(1, "x"), (3, "y"), (4, "z")], 2)
        assert sorted(a.join(b).collect()) == [(1, ("a", "x")), (3, ("c", "y"))]

    def test_join_duplicate_keys_cross_product(self, ctx):
        a = ctx.parallelize([(1, "a1"), (1, "a2")], 2)
        b = ctx.parallelize([(1, "b1"), (1, "b2")], 2)
        assert len(a.join(b).collect()) == 4

    def test_left_outer_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b")], 2)
        b = ctx.parallelize([(1, "x")], 2)
        out = dict(a.left_outer_join(b).collect())
        assert out == {1: ("a", "x"), 2: ("b", None)}

    def test_right_outer_join(self, ctx):
        a = ctx.parallelize([(1, "a")], 2)
        b = ctx.parallelize([(1, "x"), (2, "y")], 2)
        out = dict(a.right_outer_join(b).collect())
        assert out == {1: ("a", "x"), 2: (None, "y")}

    def test_full_outer_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b")], 2)
        b = ctx.parallelize([(2, "x"), (3, "y")], 2)
        out = dict(a.full_outer_join(b).collect())
        assert out == {1: ("a", None), 2: ("b", "x"), 3: (None, "y")}

    def test_cogroup_three_way(self, ctx):
        a = ctx.parallelize([(1, "a")], 1)
        b = ctx.parallelize([(1, "b"), (2, "b2")], 1)
        c = ctx.parallelize([(2, "c")], 1)
        out = {k: tuple(sorted(g) for g in gs) for k, gs in a.cogroup(b, c).collect()}
        assert out == {1: (["a"], ["b"], []), 2: ([], ["b2"], ["c"])}


class TestMisc:
    def test_keys_values(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b")], 1)
        assert rdd.keys().collect() == [1, 2]
        assert rdd.values().collect() == ["a", "b"]

    def test_flat_map_values(self, ctx):
        rdd = ctx.parallelize([(1, "ab")], 1)
        assert rdd.flat_map_values(list).collect() == [(1, "a"), (1, "b")]

    def test_collect_as_map(self, ctx):
        assert ctx.parallelize([(1, "a")], 1).collect_as_map() == {1: "a"}

    def test_lookup_unpartitioned(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 3)
        assert sorted(rdd.lookup(1)) == ["a", "c"]

    def test_lookup_partitioned_single_task(self, ctx):
        rdd = ctx.parallelize([(i, str(i)) for i in range(20)], 4).partition_by(4)
        rdd.count()  # materialize shuffle
        before = len(ctx.metrics.jobs)
        assert rdd.lookup(7) == ["7"]
        job = ctx.metrics.jobs[-1]
        assert len(ctx.metrics.jobs) == before + 1
        result_stage = [s for s in job.stages if not s.is_shuffle_map]
        assert result_stage[-1].num_tasks == 1

    def test_sort_by_key_ascending(self, ctx, rng):
        data = [(int(k), None) for k in rng.integers(0, 1000, size=200)]
        out = [k for k, _ in ctx.parallelize(data, 5).sort_by_key().collect()]
        assert out == sorted(out)

    def test_sort_by_key_descending(self, ctx, rng):
        data = [(int(k), None) for k in rng.integers(0, 1000, size=200)]
        out = [k for k, _ in ctx.parallelize(data, 5).sort_by_key(ascending=False).collect()]
        assert out == sorted(out, reverse=True)

    def test_sort_by(self, ctx):
        out = ctx.parallelize([3, 1, 2], 2).sort_by(lambda x: x).collect()
        assert out == [1, 2, 3]

    def test_sort_by_key_small_input(self, ctx):
        assert ctx.parallelize([(2, "b"), (1, "a")], 1).sort_by_key().collect() == [
            (1, "a"),
            (2, "b"),
        ]
