"""Local text file reading with Hadoop-style splits, and text output."""

import os

import pytest


class TestLocalTextFile:
    def write(self, tmp_path, name, lines):
        path = tmp_path / name
        path.write_text("".join(line + "\n" for line in lines))
        return str(path)

    def test_roundtrip_single_partition(self, ctx, tmp_path):
        lines = [f"line-{i}" for i in range(10)]
        path = self.write(tmp_path, "f.txt", lines)
        assert ctx.text_file(path, 1).collect() == lines

    @pytest.mark.parametrize("splits", [2, 3, 5, 16])
    def test_splits_cover_exactly_once(self, ctx, tmp_path, splits):
        lines = [f"row {i} with some padding text" for i in range(57)]
        path = self.write(tmp_path, "f.txt", lines)
        rdd = ctx.text_file(path, splits)
        assert rdd.collect() == lines

    def test_varied_line_lengths(self, ctx, tmp_path):
        lines = ["x" * (i % 37 + 1) for i in range(101)]
        path = self.write(tmp_path, "f.txt", lines)
        assert ctx.text_file(path, 7).collect() == lines

    def test_line_longer_than_split(self, ctx, tmp_path):
        lines = ["short", "y" * 500, "tail"]
        path = self.write(tmp_path, "f.txt", lines)
        assert ctx.text_file(path, 8).collect() == lines

    def test_missing_file_raises(self, ctx, tmp_path):
        with pytest.raises(FileNotFoundError):
            ctx.text_file(str(tmp_path / "nope"), 2)

    def test_directory_of_parts(self, ctx, tmp_path):
        d = tmp_path / "data"
        d.mkdir()
        (d / "part-00000").write_text("a\nb\n")
        (d / "part-00001").write_text("c\n")
        (d / "_SUCCESS").write_text("")
        out = ctx.text_file(str(d), 2).collect()
        assert out == ["a", "b", "c"]

    def test_records_read_metric(self, ctx, tmp_path):
        path = self.write(tmp_path, "f.txt", ["a", "b", "c"])
        ctx.text_file(path, 1).count()
        assert ctx.metrics.jobs[-1].totals().records_read == 3


class TestSaveAsTextFile:
    def test_local_roundtrip(self, ctx, tmp_path):
        out_dir = str(tmp_path / "out")
        ctx.parallelize(range(10), 3).save_as_text_file(out_dir)
        parts = sorted(os.listdir(out_dir))
        assert parts == ["part-00000", "part-00001", "part-00002"]
        back = ctx.text_file(out_dir, 3).map(int).collect()
        assert back == list(range(10))

    def test_hdfs_roundtrip(self, tmp_path):
        from repro.config import EngineConfig
        from repro.engine.context import Context
        from repro.hdfs.filesystem import MiniHDFS

        fs = MiniHDFS(num_datanodes=2)
        with Context(EngineConfig(default_parallelism=2), hdfs=fs) as ctx:
            ctx.parallelize(["x", "y", "z"], 2).save_as_text_file("hdfs://out/dir")
            files = [p for p in fs.listdir("/out/dir")]
            assert len(files) == 2
            combined = "".join(fs.read_text(p) for p in sorted(files))
            assert combined.split() == ["x", "y", "z"]

    def test_hdfs_write_without_fs_raises(self, ctx):
        with pytest.raises(RuntimeError):
            ctx.parallelize([1], 1).save_as_text_file("hdfs://x")
