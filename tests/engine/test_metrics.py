"""Metrics containers and the registry."""

from repro.engine.metrics import (
    JobMetrics,
    MetricsRegistry,
    StageMetrics,
    TaskMetrics,
    TaskRecord,
)


def make_record(duration=1.0, succeeded=True, **metric_overrides):
    metrics = TaskMetrics(**metric_overrides)
    return TaskRecord(
        stage_id=0, partition=0, attempt=0, executor_id="e0",
        duration_seconds=duration, metrics=metrics, succeeded=succeeded,
    )


class TestStageMetrics:
    def test_totals_sum_successful_only(self):
        stage = StageMetrics(stage_id=0, name="s", num_tasks=2)
        stage.tasks.append(make_record(cache_hits=2, shuffle_bytes_written=10))
        stage.tasks.append(make_record(succeeded=False, cache_hits=99))
        totals = stage.totals()
        assert totals.cache_hits == 2
        assert totals.shuffle_bytes_written == 10

    def test_total_task_seconds(self):
        stage = StageMetrics(stage_id=0, name="s", num_tasks=2)
        stage.tasks.append(make_record(duration=1.5))
        stage.tasks.append(make_record(duration=2.5))
        assert stage.total_task_seconds == 4.0


class TestJobMetrics:
    def test_totals_roll_up_stages(self):
        job = JobMetrics(job_id=0)
        for hits in (1, 2):
            stage = StageMetrics(stage_id=hits, name="s", num_tasks=1)
            stage.tasks.append(make_record(cache_hits=hits, records_read=10))
            job.stages.append(stage)
        totals = job.totals()
        assert totals.cache_hits == 3
        assert totals.records_read == 20


class TestRegistry:
    def test_last_job_and_totals(self):
        registry = MetricsRegistry()
        assert registry.last_job is None
        for i in range(2):
            job = JobMetrics(job_id=i)
            stage = StageMetrics(stage_id=0, name="s", num_tasks=1)
            stage.tasks.append(make_record(cache_hits=1, cache_misses=2))
            job.stages.append(stage)
            registry.add_job(job)
        assert registry.last_job.job_id == 1
        assert registry.total_cache_hits() == 2
        assert registry.total_cache_misses() == 4

    def test_clear(self):
        registry = MetricsRegistry()
        registry.add_job(JobMetrics(job_id=0))
        registry.clear()
        assert registry.last_job is None
        assert registry.jobs == []
