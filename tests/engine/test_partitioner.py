"""Partitioners and the portable hash."""

import pytest

from repro.engine.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    _portable_hash,
)


class TestPortableHash:
    @pytest.mark.parametrize(
        "key", [0, 1, -5, 2**40, "snp123", b"bytes", 3.14, ("a", 1), (1, (2, 3)), True, False]
    )
    def test_non_negative(self, key):
        assert _portable_hash(key) >= 0

    def test_deterministic_for_strings(self):
        # must not depend on PYTHONHASHSEED
        assert _portable_hash("chr1:12345") == 17389542

    def test_tuple_order_sensitive(self):
        assert _portable_hash((1, 2)) != _portable_hash((2, 1))

    def test_int_identity(self):
        assert _portable_hash(42) == 42


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner(7)
        for key in range(1000):
            assert 0 <= p.partition(key) < 7

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_same_key_same_partition(self):
        p = HashPartitioner(16)
        assert p.partition("gene-X") == p.partition("gene-X")


class TestRangePartitioner:
    def test_bounds(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition(5) == 0
        assert p.partition(10) == 0
        assert p.partition(11) == 1
        assert p.partition(25) == 2

    def test_empty_bounds_single_partition(self):
        p = RangePartitioner([])
        assert p.num_partitions == 1
        assert p.partition(99) == 0

    def test_equality_by_bounds(self):
        assert RangePartitioner([1]) == RangePartitioner([1])
        assert RangePartitioner([1]) != RangePartitioner([2])
        assert RangePartitioner([1]) != HashPartitioner(2)

    def test_abstract_base(self):
        with pytest.raises(NotImplementedError):
            Partitioner(2).partition(1)
