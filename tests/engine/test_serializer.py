"""Pluggable serializers: frame round-trips, compression, FrameBatch."""

import pickle

import numpy as np
import pytest

from repro.core.blocks import SnpBlock
from repro.engine.serializer import (
    CompressedSerializer,
    FrameBatch,
    NumpySerializer,
    PickleSerializer,
    Serializer,
    compress_blob,
    decompress_blob,
    get_serializer,
)

SERIALIZERS = [PickleSerializer(), NumpySerializer(), CompressedSerializer()]

SAMPLES = [
    None,
    True,
    False,
    0,
    -17,
    2**62,
    2**100,  # beyond int64: pickle fallback path in NumpySerializer
    3.14159,
    float("inf"),
    "",
    "héllo wörld",
    b"",
    b"\x00\xff raw bytes",
    [],
    [1, 2, 3],
    (4, 5),
    {"a": 1, 2: "b", None: [True, (1.5, b"x")]},
    [("key", 0), ("key", 1)],
]


def make_snp_block(n_snps=6, n_patients=4, n_sets=3, seed=0):
    rng = np.random.default_rng(seed)
    return SnpBlock(
        snp_ids=np.arange(n_snps, dtype=np.int64),
        set_ids=rng.integers(0, n_sets, n_snps).astype(np.int64),
        weights_sq=rng.random(n_snps),
        genotypes=rng.integers(0, 3, (n_snps, n_patients)).astype(np.float64),
        n_sets=n_sets,
    )


@pytest.mark.parametrize("ser", SERIALIZERS, ids=lambda s: s.name)
class TestRoundTrip:
    @pytest.mark.parametrize("obj", SAMPLES, ids=repr)
    def test_python_values(self, ser, obj):
        assert ser.loads(ser.dumps(obj)) == obj

    def test_python_value_types_preserved(self, ser):
        decoded = ser.loads(ser.dumps([1, (2,), [3], {4: 5}, "s", b"b"]))
        assert [type(v) for v in decoded] == [int, tuple, list, dict, str, bytes]

    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "int8", "bool"])
    def test_ndarray_bit_identical(self, ser, dtype):
        rng = np.random.default_rng(7)
        arr = (rng.random((5, 3)) * 100).astype(dtype)
        out = ser.loads(ser.dumps(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_ndarray_zero_dim_and_empty(self, ser):
        for arr in (np.array(3.5), np.empty((0, 4))):
            out = ser.loads(ser.dumps(arr))
            assert out.shape == arr.shape
            assert np.array_equal(out, arr)

    def test_fortran_order_array(self, ser):
        arr = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        assert np.array_equal(ser.loads(ser.dumps(arr)), arr)

    def test_numpy_scalar(self, ser):
        value = np.float64(2.718281828)
        out = ser.loads(ser.dumps(value))
        assert out == value and out.dtype == value.dtype

    def test_snp_block(self, ser):
        block = make_snp_block()
        out = ser.loads(ser.dumps(block))
        assert isinstance(out, SnpBlock)
        assert out.n_sets == block.n_sets
        for attr in ("snp_ids", "set_ids", "weights_sq", "genotypes"):
            assert np.array_equal(getattr(out, attr), getattr(block, attr))

    def test_decoded_arrays_are_writable(self, ser):
        out = ser.loads(ser.dumps(np.zeros(4)))
        out[0] = 1.0  # would raise on a frombuffer view of the frame
        assert out[0] == 1.0

    def test_shuffle_bucket_shape(self, ser):
        bucket = [(i % 3, np.full(8, float(i))) for i in range(12)]
        out = ser.loads(ser.dumps(bucket))
        assert len(out) == 12
        assert all(k == i % 3 and np.array_equal(v, np.full(8, float(i)))
                   for i, (k, v) in enumerate(out))


class TestNumpyFraming:
    def test_array_avoids_pickle(self):
        frame = NumpySerializer().dumps(np.arange(100, dtype=np.float64))
        assert frame[:1] == b"N"
        assert b"numpy.core.multiarray" not in frame  # no pickle round-trip

    def test_trailing_bytes_rejected(self):
        ser = NumpySerializer()
        with pytest.raises(ValueError, match="trailing"):
            ser.loads(ser.dumps(1) + b"junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            NumpySerializer().loads(b"\xffgarbage")

    def test_custom_object_falls_back_to_pickle(self):
        class Point:
            def __init__(self, x):
                self.x = x

            def __eq__(self, other):
                return self.x == other.x

        # defined locally so only an embedded-pickle frame could carry it
        # through __main__-visible classes; module-level import works fine
        frame = NumpySerializer().dumps({"p": 4 + 2j})
        assert NumpySerializer().loads(frame) == {"p": 4 + 2j}


class TestCompression:
    def test_small_frame_stays_raw(self):
        ser = CompressedSerializer(threshold=512)
        assert ser.dumps([1, 2])[:1] == b"R"

    def test_large_compressible_frame_is_zlib(self):
        ser = CompressedSerializer(threshold=512)
        frame = ser.dumps([0.0] * 4096)
        assert frame[:1] == b"Z"
        inner_size = len(ser.inner.dumps([0.0] * 4096))
        assert len(frame) < inner_size

    def test_encode_with_stats_reports_precompression_size(self):
        ser = CompressedSerializer(threshold=128)
        obj = list(range(1000))
        frame, serialized = ser.encode_with_stats(obj)
        assert serialized == len(ser.inner.dumps(obj))
        assert len(frame) < serialized

    def test_incompressible_payload_stays_raw(self):
        ser = CompressedSerializer(threshold=16)
        rng = np.random.default_rng(1)
        noise = rng.bytes(4096)  # random bytes do not compress
        assert ser.dumps(noise)[:1] == b"R"

    def test_bad_flag_rejected(self):
        with pytest.raises(ValueError, match="compression flag"):
            CompressedSerializer().loads(b"Qnope")


class TestBlobHelpers:
    def test_roundtrip_large(self):
        blob = b"abc" * 10_000
        framed = compress_blob(blob)
        assert framed[:1] == b"Z" and len(framed) < len(blob)
        assert decompress_blob(framed) == blob

    def test_roundtrip_small(self):
        framed = compress_blob(b"tiny")
        assert framed == b"Rtiny"
        assert decompress_blob(framed) == b"tiny"

    def test_bad_flag(self):
        with pytest.raises(ValueError):
            decompress_blob(b"Xoops")


class TestFrameBatch:
    def test_iterates_concatenated_records(self):
        ser = NumpySerializer()
        batch = FrameBatch([ser.dumps([(0, "a"), (1, "b")]), ser.dumps([(2, "c")])], ser)
        assert list(batch) == [(0, "a"), (1, "b"), (2, "c")]
        assert list(batch) == [(0, "a"), (1, "b"), (2, "c")]  # re-iterable

    def test_accepts_serializer_name(self):
        ser = get_serializer("compressed")
        batch = FrameBatch([ser.dumps([(1, 2)])], "compressed")
        assert list(batch) == [(1, 2)]

    def test_pickles_without_decoding(self):
        ser = CompressedSerializer()
        batch = FrameBatch([ser.dumps([(k, np.arange(4)) for k in range(3)])], ser)
        clone = pickle.loads(pickle.dumps(batch))
        assert [(k, v.tolist()) for k, v in clone] == [
            (k, list(range(4))) for k in range(3)
        ]


class TestRegistry:
    def test_names_resolve(self):
        assert isinstance(get_serializer("pickle"), PickleSerializer)
        assert isinstance(get_serializer("numpy"), NumpySerializer)
        assert isinstance(get_serializer("compressed"), CompressedSerializer)
        assert isinstance(get_serializer(None), PickleSerializer)

    def test_instance_passthrough(self):
        ser = CompressedSerializer(threshold=7)
        assert get_serializer(ser) is ser

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown serializer"):
            get_serializer("json")

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Serializer().dumps(1)
