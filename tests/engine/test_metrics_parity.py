"""Cross-backend metrics parity.

The same analysis must surface the same metric series names (with
consistent deterministic totals) on the driver registry whether tasks ran
serially, on threads, or in worker processes.  For the process backend
this exercises the worker -> driver registry-delta shipping path: the
increments happen in another process and only reach the driver because
each task result carries a delta that the scheduler merges.
"""

import operator

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.obs.registry import REGISTRY

BACKENDS = ("serial", "threads", "processes")


def _double(x):
    return x * 2


def _run_workload(backend):
    """Run a two-job workload (one with a shuffle) and return the registry
    delta it produced plus the action results."""
    config = EngineConfig(
        backend=backend, num_executors=2, executor_cores=2,
        default_parallelism=4, heartbeat_interval=0.0,
    )
    before = REGISTRY.snapshot(include_histograms=True)
    with Context(config) as ctx:
        total = ctx.parallelize(range(60), 4).map(_double).sum()
        pairs = sorted(
            ctx.parallelize([(i % 4, 1) for i in range(40)], 4)
            .reduce_by_key(operator.add)
            .collect()
        )
        tasks = sum(len(s.tasks) for j in ctx.metrics.jobs for s in j.stages)
        binary_bytes = sum(
            j.totals().task_binary_bytes for j in ctx.metrics.jobs
        )
    after = REGISTRY.snapshot(include_histograms=True)
    delta = {
        name: after[name] - before.get(name, 0.0)
        for name in after
        if after[name] != before.get(name, 0.0)
    }
    return {
        "total": total,
        "pairs": pairs,
        "tasks": tasks,
        "binary_bytes": binary_bytes,
        "delta": delta,
    }


@pytest.fixture(scope="module")
def runs():
    return {backend: _run_workload(backend) for backend in BACKENDS}


class TestParity:
    def test_results_identical(self, runs):
        for backend in BACKENDS:
            assert runs[backend]["total"] == 2 * sum(range(60))
            assert runs[backend]["pairs"] == [(0, 10), (1, 10), (2, 10), (3, 10)]

    def test_worker_series_present_on_driver_everywhere(self, runs):
        """The point-of-execution series must reach the driver registry no
        matter where execution happened."""
        for backend in BACKENDS:
            delta = runs[backend]["delta"]
            for kind in ("result", "shuffle_map"):
                key = f'repro_worker_task_seconds_count{{kind="{kind}"}}'
                assert delta.get(key, 0) > 0, f"{key} missing under {backend}"

    def test_worker_task_counts_match_task_records(self, runs):
        for backend in BACKENDS:
            delta = runs[backend]["delta"]
            observed = sum(
                v for k, v in delta.items()
                if k.startswith("repro_worker_task_seconds_count")
            )
            assert observed == runs[backend]["tasks"], backend

    def test_deterministic_engine_totals_match(self, runs):
        """Counters derived from record counts are backend-invariant."""
        keys = (
            "engine_jobs_total",
            'engine_tasks_total{outcome="success"}',
            'engine_shuffle_records_total{direction="written"}',
            'engine_shuffle_records_total{direction="read"}',
        )
        reference = runs["serial"]["delta"]
        for backend in ("threads", "processes"):
            delta = runs[backend]["delta"]
            for key in keys:
                assert delta.get(key) == reference.get(key), (backend, key)

    def test_metric_name_sets_consistent(self, runs):
        """Serial's engine/worker series are a subset of every other
        backend's (processes legitimately adds serialization-path series
        such as task-binary bytes)."""
        def names(run):
            # gauges (e.g. peak-RSS high-water marks) may legitimately not
            # move on a later run, GC-pause counters only move when the
            # collector happens to fire inside a task, and the diagnostics
            # bridge counters (skew/stragglers/alerts) only move when the
            # scheduler's timing happens to trip a detector; compare
            # deterministic monotonic series only
            nondeterministic = (
                "gc_pause", "stage_skew", "stragglers", "alerts_fired",
            )
            return {
                k for k in run["delta"]
                if k.startswith(("engine_", "repro_worker_"))
                and k.split("{")[0].endswith(("_total", "_count", "_sum"))
                and not any(tag in k for tag in nondeterministic)
            }

        base = names(runs["serial"])
        assert base  # sanity: the workload moved the registry
        for backend in ("threads", "processes"):
            missing = base - names(runs[backend])
            assert not missing, f"{backend} lost series: {sorted(missing)}"

    def test_task_binary_bytes_counted_under_processes(self, runs):
        """Only the process backend pickles per-stage task binaries; its
        byte counter must be live both in TaskMetrics and the registry."""
        assert runs["processes"]["binary_bytes"] > 0
        assert runs["processes"]["delta"].get("engine_task_binary_bytes_total", 0) > 0

    def test_gc_pause_counter_exists_everywhere(self, runs):
        for backend in BACKENDS:
            # value may legitimately be 0.0 (no collection during the tasks),
            # but the series must exist on the driver registry
            snapshot = REGISTRY.snapshot()
            assert "repro_worker_gc_pause_seconds_total" in snapshot, backend
