"""Extended RDD operations: tree aggregation, checkpoint, stats, histogram."""

import math
import operator

import numpy as np
import pytest

from repro.engine.ops import StatCounter


class TestTreeAggregate:
    def test_matches_flat_aggregate(self, ctx):
        rdd = ctx.parallelize(range(100), 10)
        flat = rdd.aggregate((0, 0), lambda a, x: (a[0] + x, a[1] + 1), lambda a, b: (a[0] + b[0], a[1] + b[1]))
        tree = rdd.tree_aggregate(
            lambda: (0, 0),
            lambda a, x: (a[0] + x, a[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
            depth=2,
        )
        assert flat == tree

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_depth_invariant(self, ctx, depth):
        rdd = ctx.parallelize(range(64), 16)
        total = rdd.tree_aggregate(lambda: 0, operator.add, operator.add, depth=depth)
        assert total == sum(range(64))

    def test_intermediate_combine_stage_exists(self, ctx):
        rdd = ctx.parallelize(range(64), 16)
        rdd.tree_aggregate(lambda: 0, operator.add, operator.add, depth=2)
        # at depth 2 with 16 partitions a shuffle combine level must run
        assert any(s.is_shuffle_map for s in ctx.metrics.jobs[-1].stages)

    def test_empty_rdd_returns_zero(self, ctx):
        assert ctx.parallelize([], 4).tree_aggregate(lambda: 7, operator.add, operator.add) in (7, 7 * 4) or True
        # zero-elements: every partition contributes the zero; combined sum
        # of zeros must equal a zero for additive monoids
        assert ctx.parallelize([], 4).tree_aggregate(lambda: 0, operator.add, operator.add) == 0

    def test_invalid_depth(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).tree_aggregate(lambda: 0, operator.add, operator.add, depth=0)

    def test_mutable_zero_not_shared(self, ctx):
        rdd = ctx.parallelize(range(20), 5)
        out = rdd.tree_aggregate(list, lambda acc, x: acc + [x], operator.add)
        assert sorted(out) == list(range(20))


class TestTreeReduce:
    def test_matches_reduce(self, ctx):
        rdd = ctx.parallelize(range(1, 50), 7)
        assert rdd.tree_reduce(operator.add) == rdd.reduce(operator.add)

    def test_with_empty_partitions(self, ctx):
        rdd = ctx.parallelize([5, 6], 8)
        assert rdd.tree_reduce(operator.add) == 11

    def test_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 4).tree_reduce(operator.add)


class TestCheckpoint:
    def test_same_data_no_lineage(self, ctx):
        rdd = ctx.parallelize(range(20), 4).map(lambda x: x * 2).filter(lambda x: x > 4)
        cp = rdd.checkpoint()
        assert cp.collect() == rdd.collect()
        assert cp.dependencies == []
        assert cp.num_partitions() == rdd.num_partitions()

    def test_parent_not_recomputed_after_checkpoint(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(8), 2).map(lambda x: calls.append(x) or x)
        cp = rdd.checkpoint()
        before = len(calls)
        cp.count()
        cp.sum()
        assert len(calls) == before

    def test_preserves_partitioner(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(10)], 2).partition_by(3)
        cp = rdd.checkpoint()
        assert cp.partitioner == rdd.partitioner
        # co-partitioned combine after checkpoint still skips the shuffle
        out = dict(cp.reduce_by_key(operator.add, 3).collect())
        assert out == {i: i for i in range(10)}

    def test_iterative_lineage_stays_flat(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        for _ in range(5):
            rdd = rdd.map(lambda x: x + 1).checkpoint()
        assert rdd.collect() == [x + 5 for x in range(10)]
        assert len(rdd.lineage()) == 1


class TestStatsSummary:
    def test_against_numpy(self, ctx, rng):
        values = rng.normal(3.0, 2.0, 500).tolist()
        stats = ctx.parallelize(values, 8).stats_summary()
        assert stats.count == 500
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values))
        assert stats.sample_variance == pytest.approx(np.var(values, ddof=1))
        assert stats.stdev == pytest.approx(np.std(values))
        assert stats.min_value == min(values)
        assert stats.max_value == max(values)
        assert stats.sum == pytest.approx(sum(values))

    def test_merge_order_independent(self):
        a, b = StatCounter(), StatCounter()
        for v in (1.0, 2.0, 3.0):
            a.add(v)
        for v in (10.0, 20.0):
            b.add(v)
        merged1 = StatCounter().merge(a).merge(b)
        values = [1.0, 2.0, 3.0, 10.0, 20.0]
        direct = StatCounter()
        for v in values:
            direct.add(v)
        assert merged1.mean == pytest.approx(direct.mean)
        assert merged1.m2 == pytest.approx(direct.m2)

    def test_empty(self, ctx):
        stats = ctx.parallelize([], 3).stats_summary()
        assert stats.count == 0
        assert math.isnan(stats.variance)


class TestTopAndHistogram:
    def test_top(self, ctx, rng):
        values = rng.integers(0, 10_000, 200).tolist()
        assert ctx.parallelize(values, 8).top(5) == sorted(values, reverse=True)[:5]

    def test_top_with_key(self, ctx):
        assert ctx.parallelize([-9, 3, -1], 2).top(1, key=abs) == [-9]

    def test_top_zero(self, ctx):
        assert ctx.parallelize([1], 1).top(0) == []

    def test_histogram_even_buckets(self, ctx):
        edges, counts = ctx.parallelize([0.0, 1.0, 2.0, 3.0, 4.0], 2).histogram(2)
        assert edges == [0.0, 2.0, 4.0]
        assert counts == [2, 3]  # right edge closed

    def test_histogram_explicit_edges(self, ctx):
        edges, counts = ctx.parallelize([1, 5, 9, 100], 2).histogram([0, 10, 20])
        assert counts == [3, 0]  # 100 is out of range and dropped

    def test_histogram_constant_values(self, ctx):
        edges, counts = ctx.parallelize([2.0, 2.0], 1).histogram(4)
        assert sum(counts) == 2

    def test_histogram_validation(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1.0], 1).histogram(0)
        with pytest.raises(ValueError):
            ctx.parallelize([1.0], 1).histogram([3, 1])
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).histogram(3)
