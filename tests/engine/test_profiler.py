"""Deterministic sampled profiling: selection, capture, aggregation."""

import pytest

from repro.engine.profiler import (
    aggregate_hotspots,
    profile_call,
    should_profile,
)


class TestShouldProfile:
    def test_boundaries(self):
        assert not should_profile(0.0, 0, 0)
        assert should_profile(1.0, 0, 0)
        assert all(should_profile(1.0, s, p) for s in range(5) for p in range(5))
        assert not any(should_profile(0.0, s, p) for s in range(5) for p in range(5))

    def test_deterministic(self):
        picks = [should_profile(0.3, 7, p) for p in range(100)]
        assert picks == [should_profile(0.3, 7, p) for p in range(100)]

    def test_fraction_roughly_honored(self):
        n = 2000
        hits = sum(
            should_profile(0.25, s, p) for s in range(20) for p in range(n // 20)
        )
        assert 0.15 * n < hits < 0.35 * n

    def test_independent_of_attempt_and_backend(self):
        """Selection keys on (stage, partition) only, so a retried task is
        re-profiled (or not) exactly like its first attempt."""
        assert should_profile(0.5, 3, 4) == should_profile(0.5, 3, 4)


class TestProfileCall:
    def test_result_and_rows(self):
        def work():
            return sum(x * x for x in range(5000))

        result, rows = profile_call(work, top_n=5)
        assert result == sum(x * x for x in range(5000))
        assert 0 < len(rows) <= 5
        for row in rows:
            assert {"func", "ncalls", "tottime", "cumtime"} <= set(row)
        # sorted by cumulative time, descending
        cums = [r["cumtime"] for r in rows]
        assert cums == sorted(cums, reverse=True)

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("task failure")

        with pytest.raises(RuntimeError, match="task failure"):
            profile_call(boom)


class TestAggregate:
    def test_merge_across_tasks(self):
        t1 = [
            {"func": "f", "ncalls": 10, "tottime": 0.5, "cumtime": 0.9},
            {"func": "g", "ncalls": 1, "tottime": 0.1, "cumtime": 0.1},
        ]
        t2 = [{"func": "f", "ncalls": 5, "tottime": 0.2, "cumtime": 1.1}]
        merged = aggregate_hotspots([t1, t2])
        assert [r["func"] for r in merged] == ["f", "g"]
        f = merged[0]
        assert f["ncalls"] == 15
        assert f["tottime"] == pytest.approx(0.7)
        assert f["cumtime"] == pytest.approx(1.1)  # per-task max, not sum
        assert f["tasks"] == 2

    def test_empty_and_none_rows(self):
        assert aggregate_hotspots([]) == []
        assert aggregate_hotspots([None, [], None]) == []
