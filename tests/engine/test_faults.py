"""Fault injection: task retry, executor loss, lineage recovery."""

import operator

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.faults import FaultInjector, FaultPlan
from repro.engine.scheduler import JobFailedError


def make_ctx(plan=None, **config_overrides):
    defaults = dict(backend="serial", num_executors=3, executor_cores=1, default_parallelism=6)
    defaults.update(config_overrides)
    injector = FaultInjector(plan) if plan is not None else None
    return Context(EngineConfig(**defaults), fault_injector=injector)


class TestTaskRetry:
    def test_transient_failure_retried(self):
        plan = FaultPlan(fail_partition_attempts={1: 1})
        with make_ctx(plan) as ctx:
            out = ctx.parallelize(range(12), 6).map(lambda x: x * 2).collect()
            assert out == [x * 2 for x in range(12)]
            assert ctx.fault_injector.injected_failures >= 1
            assert ctx.metrics.jobs[-1].num_task_failures >= 1

    def test_double_failure_still_recovers(self):
        plan = FaultPlan(fail_partition_attempts={0: 2})
        with make_ctx(plan) as ctx:
            assert ctx.parallelize(range(6), 6).sum() == 15

    def test_budget_exhausted_fails_job(self):
        plan = FaultPlan(fail_partition_attempts={0: 99})
        with make_ctx(plan, max_task_retries=2) as ctx:
            with pytest.raises(JobFailedError):
                ctx.parallelize(range(6), 6).sum()

    def test_retry_does_not_duplicate_accumulator(self):
        plan = FaultPlan(fail_partition_attempts={2: 1})
        with make_ctx(plan) as ctx:
            acc = ctx.accumulator(0)
            ctx.parallelize(range(12), 6).foreach(lambda x: acc.add(1))
            # partition 2 ran twice, but its adds merged exactly once
            assert acc.value == 12
            assert ctx.fault_injector.injected_failures == 1


class TestExecutorLoss:
    def test_kill_mid_job_recovers(self):
        plan = FaultPlan(kill_executor_after_tasks={"exec-0": 1})
        with make_ctx(plan) as ctx:
            out = ctx.parallelize(range(24), 8).map(lambda x: x + 1).sum()
            assert out == sum(range(1, 25))
            dead = [e for e in ctx.executors if not e.alive]
            assert len(dead) == 1
            assert ctx.metrics.jobs[-1].num_executor_failures_observed == 1

    def test_cached_blocks_lost_and_recomputed(self):
        with make_ctx() as ctx:
            calls = []
            rdd = ctx.parallelize(range(12), 6).map(lambda x: calls.append(x) or x).cache()
            assert rdd.sum() == 66
            first_pass = len(calls)
            victim = ctx.executors[0]
            held = len(victim.block_manager.block_ids())
            assert held > 0
            ctx.kill_executor(victim.executor_id)
            assert rdd.sum() == 66  # recomputed via lineage
            assert len(calls) > first_pass

    def test_all_executors_dead_raises(self):
        with make_ctx() as ctx:
            for executor in ctx.executors:
                ctx.kill_executor(executor.executor_id)
            with pytest.raises(JobFailedError):
                ctx.parallelize(range(4), 2).count()

    def test_shuffle_output_lost_triggers_stage_resubmit(self):
        with make_ctx() as ctx:
            rdd = ctx.parallelize([(i % 3, 1) for i in range(30)], 6).reduce_by_key(operator.add)
            first = dict(rdd.collect())
            # find an executor that wrote shuffle output and kill it
            writers = {
                executor_id
                for (_sid, _mp), executor_id in ctx.shuffle_manager._writers.items()
            }
            victim = sorted(writers)[0]
            lost = ctx.shuffle_manager.missing_maps(rdd.shuffle_dep.shuffle_id)
            ctx.kill_executor(victim)
            missing = ctx.shuffle_manager.missing_maps(rdd.shuffle_dep.shuffle_id)
            assert missing > lost  # outputs actually vanished
            second = dict(rdd.collect())
            assert first == second
            # the scheduler recomputed exactly the lost map partitions
            map_stages = [s for s in ctx.metrics.jobs[-1].stages if s.is_shuffle_map]
            assert map_stages and map_stages[0].num_tasks == len(missing)

    def test_kill_unknown_executor_raises(self):
        with make_ctx() as ctx:
            with pytest.raises(KeyError):
                ctx.kill_executor("nope")

    def test_fault_injected_executor_loss_during_shuffle_job(self):
        plan = FaultPlan(kill_executor_after_tasks={"exec-1": 2})
        with make_ctx(plan) as ctx:
            rdd = ctx.parallelize([(i % 5, i) for i in range(50)], 10).reduce_by_key(operator.add)
            got = dict(rdd.collect())
            expected = {}
            for i in range(50):
                expected[i % 5] = expected.get(i % 5, 0) + i
            assert got == expected


class TestResultsUnchangedUnderFaults:
    """The headline fault-tolerance property: injected failures never
    change analysis results, only metrics."""

    @pytest.mark.parametrize("plan", [
        FaultPlan(fail_partition_attempts={0: 1, 3: 1}),
        FaultPlan(kill_executor_after_tasks={"exec-2": 3}),
    ])
    def test_wordcount_stable(self, plan):
        words = ("the quick brown fox jumps over the lazy dog the end " * 20).split()
        with make_ctx() as clean_ctx:
            clean = dict(
                clean_ctx.parallelize(words, 8)
                .map(lambda w: (w, 1))
                .reduce_by_key(operator.add)
                .collect()
            )
        with make_ctx(plan) as faulty_ctx:
            faulty = dict(
                faulty_ctx.parallelize(words, 8)
                .map(lambda w: (w, 1))
                .reduce_by_key(operator.add)
                .collect()
            )
        assert clean == faulty
