"""Locality-aware task placement: HDFS blocks and cached partitions."""

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.hdfs.filesystem import MiniHDFS


@pytest.fixture
def hdfs_ctx():
    """Three executors on host-0/1/2 over a 3-datanode HDFS (same hosts)."""
    fs = MiniHDFS(num_datanodes=3, block_size=256, replication=1, seed=0)
    config = EngineConfig(
        backend="serial", num_executors=3, executor_cores=1, default_parallelism=3
    )
    with Context(config, hdfs=fs) as ctx:
        yield ctx, fs


class TestHdfsLocality:
    def test_tasks_run_on_block_hosts(self, hdfs_ctx):
        ctx, fs = hdfs_ctx
        lines = [f"record-{i:04d}" for i in range(60)]
        fs.write_text("/data.txt", "\n".join(lines) + "\n")
        rdd = ctx.text_file("hdfs://data.txt")
        assert rdd.collect() == lines
        job = ctx.metrics.last_job
        # with replication 1, every partition has exactly one valid host;
        # each task must have run on the executor at that host
        host_of_executor = {e.executor_id: e.host for e in ctx.executors}
        for record in job.stages[-1].tasks:
            preferred = rdd.preferred_locations(record.partition)
            assert host_of_executor[record.executor_id] in preferred

    def test_locality_survives_narrow_transforms(self, hdfs_ctx):
        ctx, fs = hdfs_ctx
        fs.write_text("/x.txt", "\n".join(str(i) for i in range(40)) + "\n")
        rdd = ctx.text_file("hdfs://x.txt").map(int).filter(lambda v: v % 2 == 0)
        base = ctx.text_file("hdfs://x.txt")
        for split in range(rdd.num_partitions()):
            assert rdd.preferred_locations(split) == base.preferred_locations(split)

    def test_dead_host_falls_back(self, hdfs_ctx):
        ctx, fs = hdfs_ctx
        fs.write_text("/y.txt", "\n".join(str(i) for i in range(40)) + "\n")
        rdd = ctx.text_file("hdfs://y.txt")
        # kill the executor on host-0; its blocks are still on dn-0 (alive),
        # so tasks run non-locally but correctly
        ctx.kill_executor("exec-0")
        assert rdd.map(int).sum() == sum(range(40))


class TestCacheLocality:
    def test_tasks_return_to_cached_executor(self):
        config = EngineConfig(
            backend="serial", num_executors=3, executor_cores=1, default_parallelism=6
        )
        with Context(config) as ctx:
            rdd = ctx.parallelize(range(60), 6).map(lambda x: x * 2).cache()
            rdd.count()  # populate caches
            holder_of = {}
            for executor in ctx.executors:
                for block_id in executor.block_manager.block_ids():
                    holder_of[block_id[1]] = executor.executor_id
            rdd.sum()  # second pass should honor cache locality
            job = ctx.metrics.last_job
            for record in job.stages[-1].tasks:
                assert record.executor_id == holder_of[record.partition]
            assert job.totals().remote_cache_hits == 0

    def test_remote_fetch_when_holder_busy_dead(self):
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=1, default_parallelism=4
        )
        with Context(config) as ctx:
            rdd = ctx.parallelize(range(40), 4).cache()
            rdd.count()
            victim = ctx.executors[0]
            held = {b[1] for b in victim.block_manager.block_ids()}
            assert held
            ctx.kill_executor(victim.executor_id)
            # blocks on the dead executor are recomputed; survivor's blocks
            # still hit cache
            assert rdd.sum() == sum(range(40))
            totals = ctx.metrics.last_job.totals()
            assert totals.cache_hits >= 1
            assert totals.cache_misses >= 1
