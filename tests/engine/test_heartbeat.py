"""Executor heartbeats: liveness reporting, timeout detection, recovery."""

import os
import time

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.listener import (
    CollectingListener,
    ExecutorHeartbeat,
    ExecutorLost,
    ExecutorTimedOut,
    TaskEnd,
)


def _slow(x):
    time.sleep(0.05)
    return x


class TestHeartbeatFlow:
    def test_threads_backend_emits_heartbeats(self):
        config = EngineConfig(
            backend="threads", num_executors=2, executor_cores=2,
            default_parallelism=4, heartbeat_interval=0.02,
        )
        with Context(config) as ctx:
            collected = ctx.add_listener(CollectingListener(ExecutorHeartbeat))
            assert ctx.parallelize(range(8), 4).map(_slow).sum() == 28
            beats = collected.of(ExecutorHeartbeat)
            assert beats, "busy executors should heartbeat"
            assert ctx.heartbeats.records_received == len(beats)
            for beat in beats:
                assert beat.executor_id.startswith("exec-")
                assert beat.worker_pid == os.getpid()  # driver-hosted
                assert beat.rss_bytes > 0

    def test_process_backend_heartbeats_cross_process(self):
        config = EngineConfig(
            backend="processes", num_executors=2, executor_cores=2,
            default_parallelism=4, heartbeat_interval=0.05,
        )
        with Context(config) as ctx:
            collected = ctx.add_listener(CollectingListener(ExecutorHeartbeat))
            total = ctx.parallelize(range(16), 8).map(_slow).sum()
            assert total == 120
            # worker heartbeats may still be in the manager queue; give the
            # hub a couple of drain ticks
            deadline = time.time() + 2.0
            while not collected.of(ExecutorHeartbeat) and time.time() < deadline:
                time.sleep(0.05)
            beats = collected.of(ExecutorHeartbeat)
            assert beats, "worker processes should heartbeat over the queue"
            assert any(b.worker_pid != os.getpid() for b in beats), (
                "heartbeats must originate in the worker processes"
            )

    def test_heartbeats_disabled(self):
        config = EngineConfig(
            backend="serial", num_executors=1, executor_cores=1,
            default_parallelism=2, heartbeat_interval=0.0,
        )
        with Context(config) as ctx:
            assert ctx.heartbeats is None
            assert ctx.parallelize(range(4), 2).sum() == 6


class TestTimeoutRecovery:
    def test_stalled_executor_times_out_and_task_retries(self):
        """The headline fault drill: an executor freezes mid-task (stops
        heartbeating), the monitor declares it lost, and the scheduler
        retries its in-flight task on a healthy executor instead of
        hanging the job."""
        config = EngineConfig(
            backend="threads", num_executors=2, executor_cores=2,
            default_parallelism=2, heartbeat_interval=0.03,
            heartbeat_timeout=0.3,
        )
        with Context(config) as ctx:
            collected = ctx.add_listener(CollectingListener())
            stalled: dict[str, str] = {}

            def work(x):
                from repro.engine.task import current_task_context

                tc = current_task_context()
                if tc.partition == 0 and tc.attempt == 0 and not stalled:
                    stalled["executor"] = tc.executor_id
                    for executor in ctx.executors:
                        if executor.executor_id == tc.executor_id:
                            executor.suspend_heartbeats()
                    time.sleep(1.5)  # well past the heartbeat timeout
                return x * 10

            result = ctx.parallelize([1, 2], 2).map(work).collect()
            assert result == [10, 20]

            frozen = stalled["executor"]
            timeouts = collected.of(ExecutorTimedOut)
            assert [e.executor_id for e in timeouts] == [frozen]
            assert timeouts[0].seconds_since_heartbeat >= 0.3
            losses = collected.of(ExecutorLost)
            assert frozen in [e.executor_id for e in losses]

            # bus ordering: timeout -> loss -> successful retry elsewhere
            events = collected.events
            t_timeout = events.index(timeouts[0])
            t_loss = events.index(losses[0])
            retry_end = next(
                e for e in collected.of(TaskEnd)
                if e.record.partition == 0 and e.record.succeeded
            )
            assert t_timeout < t_loss < events.index(retry_end)
            assert retry_end.record.executor_id != frozen
            assert retry_end.record.attempt == 1

            # the frozen executor is dead; the survivor is alive
            by_id = {e.executor_id: e for e in ctx.executors}
            assert not by_id[frozen].alive

    def test_timed_out_flag_consumed_once(self):
        config = EngineConfig(
            backend="threads", num_executors=2, executor_cores=2,
            default_parallelism=4, heartbeat_interval=0.02,
        )
        with Context(config) as ctx:
            hub = ctx.heartbeats
            assert hub.take_timed_out() == set()
            hub._pending_timeouts.add("exec-0")
            assert hub.take_timed_out() == {"exec-0"}
            assert hub.take_timed_out() == set()


class TestExecutorSuspend:
    def test_suspend_and_resume(self):
        from repro.engine.executor import Executor

        executor = Executor("exec-9", "host-0", 2, 1 << 20)
        assert not executor.heartbeats_suspended
        executor.suspend_heartbeats()
        assert executor.heartbeats_suspended
        executor.resume_heartbeats()
        assert not executor.heartbeats_suspended

    def test_revive_clears_suspension(self):
        from repro.engine.executor import Executor

        executor = Executor("exec-9", "host-0", 2, 1 << 20)
        executor.suspend_heartbeats()
        executor.kill()
        executor.revive()
        assert not executor.heartbeats_suspended


class TestConfig:
    def test_heartbeat_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(heartbeat_interval=-1.0)
        with pytest.raises(ValueError):
            EngineConfig(heartbeat_timeout=-0.1)

    def test_spark_aliases(self):
        config = (
            EngineConfig()
            .set("spark.executor.heartbeatInterval", "0.25")
            .set("spark.network.timeout", "12")
        )
        assert config.heartbeat_interval == 0.25
        assert config.heartbeat_timeout == 12.0
