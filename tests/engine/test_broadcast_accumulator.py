"""Broadcast variables and accumulators."""

import operator
import pickle

import pytest

from repro.engine.accumulator import Accumulator, AccumulatorBuffer
from repro.engine.broadcast import Broadcast, BroadcastDestroyedError


class TestBroadcast:
    def test_value_visible_in_tasks(self, ctx):
        table = ctx.broadcast({1: "one", 2: "two"})
        out = ctx.parallelize([1, 2, 1], 2).map(lambda x: table.value[x]).collect()
        assert out == ["one", "two", "one"]

    def test_size_bytes(self, ctx):
        b = ctx.broadcast(list(range(1000)))
        assert b.size_bytes > 1000

    def test_destroy_blocks_access(self, ctx):
        b = ctx.broadcast("payload")
        b.destroy()
        with pytest.raises(BroadcastDestroyedError):
            _ = b.value
        with pytest.raises(BroadcastDestroyedError):
            _ = b.size_bytes

    def test_unique_ids(self, ctx):
        assert ctx.broadcast(1).id != ctx.broadcast(2).id

    def test_repr(self):
        b = Broadcast(7, "x")
        assert "7" in repr(b)
        b.destroy()
        assert "destroyed" in repr(b)

    def test_worker_memo_is_lru_capped(self, monkeypatch):
        # persistent executors hold the memo for the life of the fleet, so
        # it must evict rather than accumulate every broadcast ever seen
        from repro.engine import broadcast as bc
        from repro.engine import transport as tp

        t = tp.Transport.create()
        monkeypatch.setattr(bc, "_WORKER_VALUES_MAX", 2)
        monkeypatch.setattr(tp, "_WORKER", {"spec": t.spec(), "transport": t})
        bc._WORKER_VALUES.clear()
        try:
            for i in range(4):
                b = Broadcast(i, list(range(i, i + 2000)), transport=t,
                              transport_min=0)
                clone = pickle.loads(pickle.dumps(b))
                assert clone.value[0] == i  # fetched by ref through the memo
            assert len(bc._WORKER_VALUES) == 2
        finally:
            bc._WORKER_VALUES.clear()
            t.close()


class TestAccumulator:
    def test_task_side_adds_merge_at_driver(self, ctx):
        acc = ctx.accumulator(0)
        ctx.parallelize(range(20), 4).foreach(lambda x: acc.add(x))
        assert acc.value == sum(range(20))

    def test_driver_side_add_is_direct(self, ctx):
        acc = ctx.accumulator(5)
        acc.add(3)
        assert acc.value == 8

    def test_adds_inside_shuffle_map_tasks(self, ctx):
        import operator as op

        acc = ctx.accumulator(0)
        rdd = ctx.parallelize([(i % 2, i) for i in range(10)], 2).map(
            lambda kv: (acc.add(1) or kv[0], kv[1])
        )
        rdd.reduce_by_key(op.add).collect()
        assert acc.value == 10

    def test_manual_merge_dedup(self):
        acc = Accumulator(0, 0)
        acc._merge(1, 0, 5)
        acc._merge(1, 0, 5)  # same stage/partition: retried task
        acc._merge(1, 1, 2)
        assert acc.value == 7

    def test_custom_op(self):
        acc = Accumulator(0, 1.0, op=operator.mul, zero=1.0)
        acc._merge(0, 0, 3.0)
        acc._merge(0, 1, 4.0)
        assert acc.value == 12.0

    def test_list_accumulator(self):
        acc = Accumulator(0, [])
        acc._merge(0, 0, [1, 2])
        acc._merge(0, 1, [3])
        assert sorted(acc.value) == [1, 2, 3]

    def test_non_numeric_without_zero_rejected(self):
        with pytest.raises(ValueError):
            Accumulator(0, {"a": 1})

    def test_reset(self):
        acc = Accumulator(0, 0)
        acc._merge(0, 0, 5)
        acc.reset(0)
        acc._merge(0, 0, 3)  # dedup record cleared
        assert acc.value == 3

    def test_picklable_without_lock(self):
        acc = Accumulator(3, 10)
        clone = pickle.loads(pickle.dumps(acc))
        assert clone.value == 10
        clone._merge(0, 0, 1)
        assert clone.value == 11

    def test_buffer_strict_registration(self):
        acc = Accumulator(0, 0)
        buffer = AccumulatorBuffer({})
        with pytest.raises(KeyError):
            buffer.add(acc, 1)

    def test_buffer_merge_path(self):
        acc = Accumulator(0, 0)
        buffer = AccumulatorBuffer({0: acc})
        buffer.add(acc, 2)
        buffer.add(acc, 3)
        buffer.merge_into_driver(stage_id=1, partition=0)
        assert acc.value == 5

    def test_tasks_update_accumulator_via_buffer(self, ctx):
        # end-to-end: accumulator updates flow through task contexts; the
        # engine merges once per successful partition
        acc = ctx.accumulator(0)
        rdd = ctx.parallelize(range(10), 5)
        # run a job whose func records partition sizes through the shared
        # accumulator object captured in the action closure executed inside
        # the task (shared-state backends share driver objects directly)
        sizes = ctx.run_job(rdd, lambda it: sum(1 for _ in it))
        assert sum(sizes) == 10
