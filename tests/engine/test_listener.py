"""Listener bus: typed dispatch, ordering, and listener isolation."""

import operator

import pytest

from repro.engine.listener import (
    BlockCached,
    CollectingListener,
    EngineEvent,
    JobEnd,
    JobStart,
    Listener,
    ListenerBus,
    ShuffleFetch,
    ShuffleWrite,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
    TaskStart,
    _handler_name,
)


class TestHandlerNames:
    def test_camel_to_snake(self):
        assert _handler_name(JobStart) == "on_job_start"
        assert _handler_name(StageSubmitted) == "on_stage_submitted"
        assert _handler_name(TaskEnd) == "on_task_end"
        assert _handler_name(BlockCached) == "on_block_cached"


class TestBusMechanics:
    def test_post_reaches_generic_and_typed_hooks(self):
        calls = []

        class Both(Listener):
            def on_event(self, event):
                calls.append(("generic", type(event).__name__))

            def on_job_start(self, event):
                calls.append(("typed", event.job_id))

        bus = ListenerBus()
        bus.add_listener(Both())
        bus.post(JobStart(job_id=7, description="d"))
        assert calls == [("generic", "JobStart"), ("typed", 7)]

    def test_events_delivered_in_posting_order(self):
        bus = ListenerBus()
        sink = bus.add_listener(CollectingListener())
        bus.post(JobStart(job_id=0))
        bus.post(StageSubmitted(stage_id=0, attempt=0, name="s", num_tasks=1, job_id=0))
        bus.post(TaskStart(stage_id=0, partition=0, attempt=0, executor_id="e0"))
        assert sink.names() == ["JobStart", "StageSubmitted", "TaskStart"]

    def test_bus_stamps_monotonic_time(self):
        bus = ListenerBus()
        sink = bus.add_listener(CollectingListener())
        bus.post(JobStart(job_id=0))
        bus.post(JobStart(job_id=1))
        t0, t1 = (e.time for e in sink.events)
        assert 0.0 < t0 <= t1

    def test_raising_listener_is_isolated(self):
        class Broken(Listener):
            def on_event(self, event):
                raise RuntimeError("boom")

        bus = ListenerBus()
        broken = bus.add_listener(Broken())
        sink = bus.add_listener(CollectingListener())
        bus.post(JobStart(job_id=1))
        # the healthy listener still got the event...
        assert sink.names() == ["JobStart"]
        # ...and the failure is recorded, not raised
        assert len(bus.listener_errors) == 1
        listener, event, exc = bus.listener_errors[0]
        assert listener is broken
        assert isinstance(event, JobStart)
        assert str(exc) == "boom"

    def test_remove_listener(self):
        bus = ListenerBus()
        sink = bus.add_listener(CollectingListener())
        bus.remove_listener(sink)
        bus.post(JobStart(job_id=0))
        assert sink.events == []
        bus.remove_listener(sink)  # double-remove is a no-op

    def test_stop_closes_listeners_and_isolates_close_errors(self):
        closed = []

        class Closer(Listener):
            def close(self):
                closed.append(True)

        class BadCloser(Listener):
            def close(self):
                raise OSError("disk gone")

        bus = ListenerBus()
        bus.add_listener(Closer())
        bus.add_listener(BadCloser())
        bus.stop()
        assert closed == [True]
        assert any(isinstance(exc, OSError) for _, _, exc in bus.listener_errors)
        assert bus.listeners == []

    def test_collecting_listener_filter(self):
        bus = ListenerBus()
        only_jobs = bus.add_listener(CollectingListener(JobStart, JobEnd))
        bus.post(JobStart(job_id=0))
        bus.post(TaskStart(stage_id=0, partition=0, attempt=0, executor_id="e0"))
        assert only_jobs.names() == ["JobStart"]


class TestEngineIntegration:
    def test_job_lifecycle_event_order(self, ctx):
        sink = ctx.add_listener(CollectingListener())
        ctx.parallelize(range(8), 2).map(lambda x: x * 2).sum()

        names = sink.names()
        assert names[0] == "JobStart"
        assert names[-1] == "JobEnd"
        # lifecycle nesting: job wraps stages wrap tasks
        assert names.index("StageSubmitted") < names.index("TaskStart")
        assert names.index("TaskStart") < names.index("TaskEnd")
        assert names.index("TaskEnd") <= names.index("StageCompleted")
        ends = sink.of(TaskEnd)
        assert len(ends) == 2
        assert all(e.record.succeeded for e in ends)
        (job_end,) = sink.of(JobEnd)
        assert job_end.succeeded and job_end.job.stages

    def test_shuffle_and_stage_events(self, ctx):
        sink = ctx.add_listener(CollectingListener(ShuffleWrite, ShuffleFetch, StageCompleted))
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
        pairs.reduce_by_key(operator.add).collect()

        writes = sink.of(ShuffleWrite)
        assert len(writes) == 4  # one per map partition
        # map-side combine: each partition writes one record per distinct key
        assert sum(e.records_written for e in writes) == 12
        fetches = sink.of(ShuffleFetch)
        assert sum(e.records_read for e in fetches) == sum(e.records_written for e in writes)
        stages = sink.of(StageCompleted)
        assert len(stages) == 2 and not any(e.failed for e in stages)

    def test_failed_job_posts_job_end(self, ctx):
        sink = ctx.add_listener(CollectingListener(JobEnd))

        def explode(x):
            raise ValueError("bad record")

        with pytest.raises(Exception):
            ctx.parallelize(range(4), 2).map(explode).collect()
        (job_end,) = sink.of(JobEnd)
        assert not job_end.succeeded

    def test_listener_error_does_not_fail_job(self, ctx):
        class Broken(Listener):
            def on_task_end(self, event):
                raise RuntimeError("observer bug")

        ctx.add_listener(Broken())
        assert ctx.parallelize(range(6), 2).sum() == 15
        assert ctx.listener_bus.listener_errors
