"""Adaptive query execution: skew remaps, speculation, serializer tuning.

Three layers of coverage:

- ``build_remap`` unit tests: the pure re-cutting algorithm (split along
  map boundaries, coalesce tiny runs, identity passthrough, order
  preservation);
- engine tests on every backend: AQE on must be bit-identical to AQE off
  on a skewed workload, with the planner actually rewriting the plan;
- the speculation fault drill: a straggling first attempt loses the race
  to its twin, the twin's result commits exactly once (accumulators,
  task records), and the loser is discarded quietly.
"""

from __future__ import annotations

import time

import pytest

from repro.config import EngineConfig
from repro.engine.adaptive import SpeculationPolicy, build_remap
from repro.engine.context import Context
from repro.engine.task import current_task_context

from tests.conftest import DEFAULT_BACKEND


def _skewed_pairs(hot_records: int = 400, keys: int = 8, base: int = 5):
    """Hash-partitionable pairs where key 3's bucket dwarfs the others."""
    data = [(k, i) for k in range(keys) for i in range(base)]
    data += [(3, i) for i in range(hot_records)]
    return data


def _adaptive_config(backend: str, **overrides) -> EngineConfig:
    base = dict(
        backend=backend,
        num_executors=2,
        executor_cores=2,
        default_parallelism=4,
        adaptive_enabled=True,
    )
    base.update(overrides)
    return EngineConfig(**base)


# -- build_remap --------------------------------------------------------------


class TestBuildRemap:
    def test_balanced_layout_is_identity(self):
        counts = [[10, 10], [11, 9], [10, 12], [9, 10]]
        assert build_remap(
            0, counts, max_over_median=4.0, max_splits=8,
            coalesce_ratio=0.25, splittable=True,
        ) is None

    def test_hot_bucket_splits_along_map_boundaries(self):
        counts = [[100, 100, 100, 100]] + [[1, 1, 1, 1]] * 7
        remap = build_remap(
            0, counts, max_over_median=4.0, max_splits=8,
            coalesce_ratio=0.01, splittable=True,
        )
        assert remap is not None
        assert remap.new_partitions > len(counts)
        # every piece of old bucket 0 is a contiguous map range of bucket 0
        pieces = [
            seg for part in remap.segments for seg in part if seg[0] == 0
        ]
        assert len(pieces) > 1
        covered = sorted((lo, hi) for _, lo, hi in pieces)
        assert covered[0][0] == 0 and covered[-1][1] == 4
        for (_, hi), (lo, _) in zip(covered, covered[1:]):
            assert hi == lo  # contiguous, non-overlapping

    def test_unsplittable_hot_bucket_stays_whole(self):
        counts = [[100, 100, 100, 100]] + [[1, 1, 1, 1]] * 7
        remap = build_remap(
            0, counts, max_over_median=4.0, max_splits=8,
            coalesce_ratio=0.25, splittable=False,
        )
        if remap is not None:  # coalesce may still fire for the tiny run
            for part in remap.segments:
                hot = [seg for seg in part if seg[0] == 0]
                if hot:
                    assert hot == [(0, 0, 4)]

    def test_tiny_run_coalesces_alongside_a_split(self):
        # a skewed layout (the rewrite trigger) whose tail is a run of
        # tiny buckets: the same rewrite merges them whole
        counts = [[100, 100]] + [[10, 10]] * 4 + [[1, 1]] * 3
        remap = build_remap(
            0, counts, max_over_median=4.0, max_splits=8,
            coalesce_ratio=0.25, splittable=True,
        )
        assert remap is not None
        merged = [part for part in remap.segments if len(part) > 1]
        assert merged, "the tiny tail must coalesce into one partition"
        assert {old for old, _, _ in merged[0]} == {5, 6, 7}

    def test_remap_preserves_record_order(self):
        counts = [[30, 5, 25, 1], [1, 1, 1, 1], [1, 1, 1, 1], [2, 2, 2, 2]]
        remap = build_remap(
            0, counts, max_over_median=2.0, max_splits=4,
            coalesce_ratio=0.25, splittable=True,
        )
        assert remap is not None
        # concatenating the new partitions replays old buckets in order,
        # and within one old bucket the map ranges ascend contiguously
        seen: dict[int, int] = {}
        last_bucket = -1
        for part in remap.segments:
            for old, lo, hi in part:
                assert lo < hi
                assert old >= last_bucket
                last_bucket = old
                assert seen.get(old, 0) == lo
                seen[old] = hi
        assert seen == {0: 4, 1: 4, 2: 4, 3: 4}


class TestSpeculationPolicy:
    def test_threshold_floors_at_min_runtime(self):
        policy = SpeculationPolicy(multiplier=2.0, min_runtime=0.5, quantile=0.5)
        assert policy.threshold([0.01, 0.01, 0.01]) == 0.5
        assert policy.threshold([1.0, 1.0, 1.0]) == 2.0

    def test_ready_waits_for_quantile(self):
        policy = SpeculationPolicy(multiplier=2.0, min_runtime=0.1, quantile=0.75)
        assert not policy.ready(2, 8)
        assert policy.ready(6, 8)

    def test_from_config(self):
        config = EngineConfig(speculation_multiplier=3.0,
                              speculation_min_runtime=0.2,
                              speculation_quantile=0.5)
        policy = SpeculationPolicy.from_config(config)
        assert (policy.multiplier, policy.min_runtime, policy.quantile) == (
            3.0, 0.2, 0.5
        )


# -- cross-backend bit-equivalence -------------------------------------------


BACKENDS = ["serial", "threads", "processes", "cluster"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_skew_rebalance_bit_identical_across_backends(backend):
    data = _skewed_pairs()

    def run(adaptive: bool):
        config = _adaptive_config(backend) if adaptive else EngineConfig(
            backend=backend, num_executors=2, executor_cores=2,
            default_parallelism=4,
        )
        with Context(config) as ctx:
            rdd = ctx.parallelize(data, 4).partition_by(8).map_values(
                lambda v: v * 2
            )
            result = rdd.collect()
            snap = ctx.adaptive.snapshot()
        return result, snap

    static, static_snap = run(adaptive=False)
    adapted, snap = run(adaptive=True)
    assert adapted == static  # bit-identical, order included
    assert static_snap["stages_rewritten"] == 0
    assert snap["stages_rewritten"] >= 1
    kinds = {d["kind"] for d in snap["decisions"]}
    assert kinds & {"split", "coalesce", "rebalance"}


def test_rebalanced_shuffle_feeding_downstream_shuffle():
    """A remapped map stage feeding another shuffle stays correct, and a
    static-plan job on the same lineage after revert recomputes cleanly."""
    data = _skewed_pairs()
    with Context(_adaptive_config(DEFAULT_BACKEND)) as ctx:
        grouped = ctx.parallelize(data, 4).partition_by(8).map(
            lambda kv: (kv[0] % 4, kv[1])
        ).reduce_by_key(lambda a, b: a + b, num_partitions=4)
        first = sorted(grouped.collect())
        second = sorted(grouped.collect())  # post-revert recompute
    with Context(EngineConfig(backend=DEFAULT_BACKEND, num_executors=2,
                              executor_cores=2, default_parallelism=4)) as ctx:
        expected = sorted(
            ctx.parallelize(data, 4).partition_by(8).map(
                lambda kv: (kv[0] % 4, kv[1])
            ).reduce_by_key(lambda a, b: a + b, num_partitions=4).collect()
        )
    assert first == expected
    assert second == expected


# -- speculation fault drill ---------------------------------------------------


def test_speculative_twin_wins_and_commits_exactly_once():
    config = EngineConfig(
        backend="threads", num_executors=2, executor_cores=2,
        default_parallelism=4, speculation_enabled=True,
        speculation_multiplier=2.0, speculation_min_runtime=0.05,
        speculation_quantile=0.5,
    )
    hot = 6
    with Context(config) as ctx:
        seen = ctx.accumulator(0)

        def compute(split, it):
            tc = current_task_context()
            seen.add(1)
            if tc.partition == hot and not tc.speculative:
                time.sleep(1.2)  # the straggling original
            else:
                time.sleep(0.02)
            return iter([sum(it)])

        rdd = ctx.parallelize(range(80), 8).map_partitions_with_index(compute)
        start = time.perf_counter()
        result = rdd.collect()
        elapsed = time.perf_counter() - start
        snap = ctx.adaptive.snapshot()
        jobs = ctx.metrics.jobs_snapshot()

        # parallelize slices contiguously: partition p holds [10p, 10p+10)
        assert sorted(result) == sorted(
            sum(range(p * 10, p * 10 + 10)) for p in range(8)
        )
        # first-result-wins: the twin launched, won, and the loser's merge
        # never ran -- the accumulator saw 9 attempts but committed 8
        assert snap["speculative_launched"] == 1
        assert snap["speculative_won"] == 1
        assert elapsed < 1.2
        records = [
            rec
            for job in jobs
            for stage in job.stages
            for rec in stage.tasks
            if rec.partition == hot
        ]
        committed = [rec for rec in records if rec.succeeded]
        assert len(committed) == 1
        assert committed[0].speculative is True
        assert committed[0].attempt == 1
        assert seen.value == 8


def test_speculation_disabled_on_serial_backend():
    config = EngineConfig(
        backend="serial", num_executors=1, executor_cores=1,
        default_parallelism=1, speculation_enabled=True,
        speculation_min_runtime=0.0,
    )
    with Context(config) as ctx:
        assert ctx.parallelize(range(10), 4).map(lambda x: x + 1).collect() == [
            x + 1 for x in range(10)
        ]
        assert ctx.adaptive.snapshot()["speculative_launched"] == 0


# -- serializer auto-selection -------------------------------------------------


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_serializer_auto_selected_per_shuffle(backend):
    # genuinely distinct payloads: constant-folded repeats pickle-memoize
    # into tiny frames and the probe correctly keeps "pickle"
    data = [(i % 8, ("row-%06d" % i) * 40) for i in range(400)]

    def run(adaptive: bool):
        config = _adaptive_config(backend) if adaptive else EngineConfig(
            backend=backend, num_executors=2, executor_cores=2,
            default_parallelism=4,
        )
        with Context(config) as ctx:
            result = ctx.parallelize(data, 4).partition_by(8).collect()
            snap = ctx.adaptive.snapshot()
        return result, snap

    static, _ = run(adaptive=False)
    adapted, snap = run(adaptive=True)
    assert adapted == static
    assert snap["serializer_picks"] >= 1
    picks = [d for d in snap["decisions"] if d["kind"] == "serializer"]
    assert picks and "compressed" in picks[0]["detail"]


# -- eventlog v7 side channel --------------------------------------------------


def test_eventlog_v7_adaptive_side_channel(tmp_path):
    from repro.engine.eventlog import read_adaptive, read_event_log

    path = str(tmp_path / "events.jsonl")
    config = _adaptive_config("threads", speculation_enabled=True)
    with Context(config, event_log_path=path) as ctx:
        ctx.parallelize(_skewed_pairs(), 4).partition_by(8).collect()
    jobs = read_event_log(path)
    assert len(jobs) == 1 and jobs[0].stages
    records = read_adaptive(path)
    assert records, "AQE decisions must land in the v7 side channel"
    plan = [r for r in records if r["kind"] != "speculation"]
    assert plan
    assert {"shuffle_id", "stage_id", "job_id", "old_partitions",
            "new_partitions", "detail"} <= set(plan[0])


def test_eventlog_roundtrips_speculative_flag(tmp_path):
    from repro.engine.eventlog import read_event_log

    path = str(tmp_path / "events.jsonl")
    config = EngineConfig(
        backend="threads", num_executors=2, executor_cores=2,
        default_parallelism=4, speculation_enabled=True,
        speculation_multiplier=2.0, speculation_min_runtime=0.05,
        speculation_quantile=0.5,
    )
    with Context(config, event_log_path=path) as ctx:
        def compute(split, it):
            tc = current_task_context()
            if tc.partition == 3 and not tc.speculative:
                time.sleep(1.0)
            else:
                time.sleep(0.02)
            return iter([sum(it)])

        ctx.parallelize(range(40), 8).map_partitions_with_index(compute).collect()
    jobs = read_event_log(path)
    speculative = [
        rec
        for job in jobs
        for stage in job.stages
        for rec in stage.tasks
        if rec.speculative
    ]
    assert speculative and all(rec.succeeded for rec in speculative)


# -- advisor integration -------------------------------------------------------


def test_advisor_recommends_enabling_adaptive():
    from repro.obs.advisor import diagnose

    config = EngineConfig(backend=DEFAULT_BACKEND, num_executors=2,
                          executor_cores=2, default_parallelism=4)

    def slow_value(v):
        # shuffle-read byte distributions stay driver-side on the
        # pickled backends, so the skew signal the advisor sees on
        # every backend is per-task duration: make the hot bucket's
        # records cost wall-clock, not just bytes.
        time.sleep(0.001)
        return v

    with Context(config) as ctx:
        (ctx.parallelize(_skewed_pairs(hot_records=200), 4)
            .partition_by(8).map_values(slow_value).collect())
        jobs = ctx.metrics.jobs_snapshot()
    off = diagnose(jobs, adaptive=False)
    assert any(r.rule == "enable-adaptive-execution" for r in off)
    on = diagnose(jobs, adaptive=True)
    assert not any(r.rule == "enable-adaptive-execution" for r in on)
    unknown = diagnose(jobs)  # provenance unknown: stay quiet
    assert not any(r.rule == "enable-adaptive-execution" for r in unknown)


def test_advisor_straggler_copy_mentions_speculation():
    from repro.obs import advisor
    import inspect

    source = inspect.getsource(advisor.rule_stragglers)
    assert "speculative retry unavailable" not in source
    assert "spark.speculation" in source


# -- explain() annotations -----------------------------------------------------


def test_explain_annotates_adaptive_decisions():
    with Context(_adaptive_config(DEFAULT_BACKEND)) as ctx:
        rdd = ctx.parallelize(_skewed_pairs(), 4).partition_by(8)
        before = rdd.explain()
        assert "adaptive execution: on" in before
        rdd.collect()
        after = rdd.explain()
        assert "<adaptive:" in after and "split" in after


# -- config aliases and CLI flags ---------------------------------------------


def test_spark_conf_aliases():
    config = EngineConfig()
    config.set("spark.sql.adaptive.enabled", "true")
    assert config.adaptive_enabled is True
    config.set("spark.adaptive.enabled", "false")
    assert config.adaptive_enabled is False
    config.set("spark.speculation", "true")
    assert config.speculation_enabled is True
    config.set("spark.speculation.multiplier", "3.5")
    assert config.speculation_multiplier == 3.5
    config.set("spark.speculation.minTaskRuntime", "0.25")
    assert config.speculation_min_runtime == 0.25
    config.set("spark.speculation.quantile", "0.9")
    assert config.speculation_quantile == 0.9
    config.set("spark.adaptive.maxSplits", "4")
    assert config.adaptive_max_splits == 4
    config.set("spark.adaptive.coalesceRatio", "0.1")
    assert config.adaptive_coalesce_ratio == 0.1
    config.set("spark.adaptive.serializer", "false")
    assert config.adaptive_serializer is False


def test_config_validation_rejects_bad_adaptive_values():
    with pytest.raises(ValueError):
        EngineConfig(adaptive_max_splits=0)
    with pytest.raises(ValueError):
        EngineConfig(adaptive_coalesce_ratio=1.5)
    with pytest.raises(ValueError):
        EngineConfig(speculation_multiplier=0.5)
    with pytest.raises(ValueError):
        EngineConfig(speculation_quantile=0.0)


def test_cli_adaptive_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["analyze", "d", "--adaptive"])
    assert args.adaptive is True
    args = parser.parse_args(["analyze", "d", "--no-adaptive"])
    assert args.adaptive is False
    args = parser.parse_args(["analyze", "d"])
    assert args.adaptive is None
    with pytest.raises(SystemExit):
        parser.parse_args(["analyze", "d", "--adaptive", "--no-adaptive"])
