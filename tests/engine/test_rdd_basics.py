"""Narrow transformations and actions of the base RDD."""

import operator

import pytest

from repro.engine.rdd import _slice_collection


class TestParallelize:
    def test_collect_roundtrip(self, ctx):
        data = list(range(37))
        assert ctx.parallelize(data, 5).collect() == data

    def test_partition_count(self, ctx):
        assert ctx.parallelize(range(10), 3).num_partitions() == 3

    def test_default_parallelism_used(self, ctx):
        assert ctx.parallelize(range(10)).num_partitions() == 4

    def test_more_partitions_than_elements(self, ctx):
        rdd = ctx.parallelize([1, 2], 8)
        assert rdd.num_partitions() == 8
        assert rdd.collect() == [1, 2]

    def test_empty_collection(self, ctx):
        assert ctx.parallelize([], 3).collect() == []

    def test_zero_partitions_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 0)

    def test_slice_collection_preserves_order_and_coverage(self):
        slices = _slice_collection(list(range(11)), 4)
        assert [x for part in slices for x in part] == list(range(11))
        assert len(slices) == 4

    def test_range_helper(self, ctx):
        assert ctx.range(5).collect() == [0, 1, 2, 3, 4]
        assert ctx.range(2, 10, 3).collect() == [2, 5, 8]


class TestTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize(range(5), 2).map(lambda x: x * 10).collect() == [0, 10, 20, 30, 40]

    def test_filter(self, ctx):
        assert ctx.parallelize(range(10), 3).filter(lambda x: x % 3 == 0).collect() == [0, 3, 6, 9]

    def test_flat_map(self, ctx):
        out = ctx.parallelize([1, 2, 3], 2).flat_map(lambda x: [x] * x).collect()
        assert out == [1, 2, 2, 3, 3, 3]

    def test_chained_lazy_transforms(self, ctx):
        rdd = ctx.parallelize(range(100), 4).map(lambda x: x + 1).filter(lambda x: x % 2 == 0)
        assert rdd.count() == 50

    def test_map_partitions(self, ctx):
        out = ctx.parallelize(range(8), 4).map_partitions(lambda it: [sum(it)]).collect()
        assert out == [1, 5, 9, 13]

    def test_map_partitions_with_index(self, ctx):
        out = (
            ctx.parallelize(range(8), 4)
            .map_partitions_with_index(lambda i, it: [(i, sum(it))])
            .collect()
        )
        assert out == [(0, 1), (1, 5), (2, 9), (3, 13)]

    def test_glom(self, ctx):
        assert ctx.parallelize(range(4), 2).glom().collect() == [[0, 1], [2, 3]]

    def test_key_by(self, ctx):
        assert ctx.parallelize([3, 4], 1).key_by(lambda x: x % 2).collect() == [(1, 3), (0, 4)]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3, 4], 2)
        u = a.union(b)
        assert u.num_partitions() == 4
        assert u.collect() == [1, 2, 3, 4]

    def test_context_union_many(self, ctx):
        rdds = [ctx.parallelize([i], 1) for i in range(5)]
        assert ctx.union(rdds).collect() == [0, 1, 2, 3, 4]

    def test_coalesce(self, ctx):
        rdd = ctx.parallelize(range(12), 6).coalesce(2)
        assert rdd.num_partitions() == 2
        assert rdd.collect() == list(range(12))

    def test_coalesce_never_increases(self, ctx):
        rdd = ctx.parallelize(range(4), 2).coalesce(10)
        assert rdd.num_partitions() == 2

    def test_repartition_can_increase_partitions(self, ctx):
        rdd = ctx.parallelize(range(12), 2).repartition(6)
        assert rdd.num_partitions() == 6
        assert sorted(rdd.collect()) == list(range(12))

    def test_repartition_balances_a_skewed_partition(self, ctx):
        sizes = ctx.parallelize(range(64), 1).repartition(4).glom().map(len).collect()
        assert sizes == [16, 16, 16, 16]

    def test_repartition_rejects_nonpositive(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).repartition(0)

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        first = rdd.sample(0.1, seed=3).collect()
        second = rdd.sample(0.1, seed=3).collect()
        assert first == second
        assert 40 < len(first) < 200

    def test_sample_fraction_bounds(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        assert rdd.sample(0.0).collect() == []
        assert rdd.sample(1.0).count() == 10
        with pytest.raises(ValueError):
            rdd.sample(1.5)

    def test_distinct(self, ctx):
        out = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct()
        assert sorted(out.collect()) == [1, 2, 3]

    def test_zip_with_index(self, ctx):
        out = ctx.parallelize(list("abcd"), 3).zip_with_index().collect()
        assert out == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(17), 4).count() == 17

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 11), 3).reduce(operator.add) == 55

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 2).reduce(operator.add)

    def test_reduce_with_empty_partitions(self, ctx):
        assert ctx.parallelize([5], 4).reduce(operator.add) == 5

    def test_fold(self, ctx):
        assert ctx.parallelize(range(5), 2).fold(0, operator.add) == 10

    def test_aggregate(self, ctx):
        total, count = ctx.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    def test_sum_min_max_mean(self, ctx):
        rdd = ctx.parallelize([4, 1, 7, 2], 2)
        assert rdd.sum() == 14
        assert rdd.min() == 1
        assert rdd.max() == 7
        assert rdd.mean() == pytest.approx(3.5)

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).mean()

    def test_first_and_take(self, ctx):
        rdd = ctx.parallelize(range(100), 10)
        assert rdd.first() == 0
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.take(0) == []
        assert len(rdd.take(1000)) == 100

    def test_first_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).first()

    def test_take_ordered(self, ctx):
        rdd = ctx.parallelize([5, 3, 9, 1, 7], 3)
        assert rdd.take_ordered(3) == [1, 3, 5]
        assert rdd.take_ordered(2, key=lambda x: -x) == [9, 7]

    def test_count_by_value(self, ctx):
        out = ctx.parallelize(list("aabbbc"), 3).count_by_value()
        assert out == {"a": 2, "b": 3, "c": 1}

    @pytest.mark.shared_driver_state
    def test_foreach_side_effects(self, ctx):
        seen = []
        ctx.parallelize(range(5), 2).foreach(seen.append)
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_collect_partitions(self, ctx):
        parts = ctx.parallelize(range(6), 3).collect_partitions()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_run_job_partition_subset(self, ctx):
        rdd = ctx.parallelize(range(8), 4)
        out = ctx.run_job(rdd, list, partitions=[1, 3])
        assert out == [[2, 3], [6, 7]]


class TestIntrospection:
    def test_lineage_lists_ancestors(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map(str).filter(bool)
        names = [r.name for r in rdd.lineage()]
        assert names == ["parallelize", "map", "filter"]

    def test_debug_string_mentions_shuffle(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(operator.add)
        assert "shuffle" in rdd.to_debug_string()

    def test_repr(self, ctx):
        assert "partitions=2" in repr(ctx.parallelize([1], 2))

    def test_debug_string_shows_storage_level(self, ctx):
        from repro.engine.storage import StorageLevel

        rdd = ctx.parallelize(range(8), 4).map(str).persist(StorageLevel.MEMORY_SER)
        assert "<memory_ser: 0/4 cached>" in rdd.to_debug_string()
        rdd.collect()
        assert "<memory_ser: 4/4 cached>" in rdd.to_debug_string()
        assert "cached" not in rdd.lineage()[0].to_debug_string()  # uncached parent

    def test_explain_summarizes_shuffles(self, ctx):
        rdd = (
            ctx.parallelize(range(12), 3)
            .map(lambda x: (x % 4, x))
            .reduce_by_key(operator.add, num_partitions=2)
        )
        plan = rdd.explain()
        assert "shuffle 0: 3 map partition(s) -> 2 reduce partition(s)" in plan
        assert "HashPartitioner" in plan

    def test_explain_flat_lineage(self, ctx):
        plan = ctx.parallelize(range(4), 2).map(str).explain()
        assert "single stage" in plan
