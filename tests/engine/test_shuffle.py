"""Shuffle manager: map output registry, fetch, combiner logic, loss."""

import operator

import pytest

from repro.engine.dependencies import Aggregator, ShuffleDependency
from repro.engine.metrics import TaskMetrics
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import FetchFailedError, ShuffleManager


class _FakeRdd:
    pass


def make_dep(shuffle_id=0, partitions=2, aggregator=None):
    return ShuffleDependency(_FakeRdd(), HashPartitioner(partitions), shuffle_id, aggregator)


class TestWriteFetch:
    def test_roundtrip(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=2)
        mgr.register_shuffle(0, 1)
        mgr.write_map_output(dep, 0, [(0, "a"), (1, "b"), (2, "c")], "e0")
        part0 = list(mgr.fetch(0, 0))
        part1 = list(mgr.fetch(0, 1))
        assert sorted(part0) == [(0, "a"), (2, "c")]
        assert part1 == [(1, "b")]

    def test_fetch_merges_all_maps(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 2)
        mgr.write_map_output(dep, 0, [(1, "x")], "e0")
        mgr.write_map_output(dep, 1, [(1, "y")], "e1")
        assert sorted(mgr.fetch(0, 0)) == [(1, "x"), (1, "y")]

    def test_fetch_unregistered_raises_keyerror(self):
        with pytest.raises(KeyError):
            list(ShuffleManager().fetch(5, 0))

    def test_fetch_missing_map_raises(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 2)
        mgr.write_map_output(dep, 0, [(1, "x")], "e0")
        with pytest.raises(FetchFailedError) as exc:
            list(mgr.fetch(0, 0))
        assert exc.value.map_partition == 1

    def test_missing_maps_tracking(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 3)
        assert mgr.missing_maps(0) == {0, 1, 2}
        mgr.write_map_output(dep, 1, [], "e0")
        assert mgr.missing_maps(0) == {0, 2}

    def test_map_side_combine_reduces_records(self):
        mgr = ShuffleManager()
        agg = Aggregator(lambda v: v, operator.add, operator.add)
        dep = make_dep(partitions=1, aggregator=agg)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        mgr.write_map_output(dep, 0, [(1, 1)] * 100, "e0", metrics)
        assert metrics.shuffle_records_written == 1
        assert list(mgr.fetch(0, 0)) == [(1, 100)]

    def test_no_combine_keeps_records(self):
        mgr = ShuffleManager()
        agg = Aggregator(lambda v: [v], lambda a, v: a + [v], operator.add, map_side_combine=False)
        dep = make_dep(partitions=1, aggregator=agg)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        mgr.write_map_output(dep, 0, [(1, 1)] * 10, "e0", metrics)
        assert metrics.shuffle_records_written == 10

    def test_bytes_metrics_tracked(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=2)
        mgr.register_shuffle(0, 1)
        metrics = TaskMetrics()
        status = mgr.write_map_output(dep, 0, [(i, i) for i in range(10)], "e0", metrics)
        assert metrics.shuffle_bytes_written > 0
        assert len(status.bytes_by_reducer) == 2


class TestFailureHandling:
    def test_remove_outputs_on_executor(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 2)
        mgr.write_map_output(dep, 0, [(1, "x")], "e0")
        mgr.write_map_output(dep, 1, [(1, "y")], "e1")
        lost = mgr.remove_outputs_on_executor("e0")
        assert lost == {0: {0}}
        assert mgr.missing_maps(0) == {0}
        with pytest.raises(FetchFailedError):
            list(mgr.fetch(0, 0))

    def test_unregister_shuffle(self):
        mgr = ShuffleManager()
        dep = make_dep(partitions=1)
        mgr.register_shuffle(0, 1)
        mgr.write_map_output(dep, 0, [(1, "x")], "e0")
        mgr.unregister_shuffle(0)
        with pytest.raises(KeyError):
            mgr.missing_maps(0)


class TestShuffleReuseAcrossJobs:
    def test_second_action_skips_map_stage(self, ctx):
        rdd = ctx.parallelize([(i % 3, 1) for i in range(30)], 4).reduce_by_key(operator.add)
        first = dict(rdd.collect())
        jobs_before = len(ctx.metrics.jobs)
        second = dict(rdd.collect())
        assert first == second == {0: 10, 1: 10, 2: 10}
        job = ctx.metrics.jobs[-1]
        assert len(ctx.metrics.jobs) == jobs_before + 1
        # map outputs were still registered: no shuffle-map stage re-ran
        assert all(not s.is_shuffle_map or s.num_tasks == 0 for s in job.stages) or not any(
            s.is_shuffle_map for s in job.stages
        )
