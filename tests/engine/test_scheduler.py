"""DAG construction and scheduling behavior."""

import itertools
import operator

import pytest

from repro.engine.dag import StageGraph, upstream_shuffle_deps
from repro.engine.scheduler import stage_cached_rdd_blocks, stage_shuffle_inputs


class TestStageGraph:
    def test_no_shuffle_single_stage(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map(str).filter(bool)
        graph = StageGraph(rdd, itertools.count())
        assert len(graph) == 1
        assert not graph.result_stage.is_shuffle_map

    def test_one_shuffle_two_stages(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(operator.add)
        graph = StageGraph(rdd, itertools.count())
        assert len(graph) == 2
        assert len(graph.result_stage.parents) == 1
        assert graph.result_stage.parents[0].is_shuffle_map

    def test_join_three_stages(self, ctx):
        a = ctx.parallelize([(1, 1)], 2)
        b = ctx.parallelize([(1, 2)], 2)
        graph = StageGraph(a.join(b), itertools.count())
        # two shuffle-map stages (one per join side) + result
        assert len(graph) == 3

    def test_chained_shuffles(self, ctx):
        rdd = (
            ctx.parallelize([(i % 4, 1) for i in range(16)], 4)
            .reduce_by_key(operator.add)
            .map(lambda kv: (kv[0] % 2, kv[1]))
            .reduce_by_key(operator.add)
        )
        graph = StageGraph(rdd, itertools.count())
        assert len(graph) == 3
        order = [s.id for s in graph.all_stages()]
        assert order == sorted(order)

    def test_shared_shuffle_memoized(self, ctx):
        base = ctx.parallelize([(1, 1), (2, 2)], 2).reduce_by_key(operator.add)
        merged = base.map_values(lambda v: v + 1).union(base.map_values(lambda v: v + 2))
        graph = StageGraph(merged, itertools.count())
        # the shared parent shuffle appears once, not twice
        assert len(graph.shuffle_stages) == 1

    def test_upstream_deps_stop_at_shuffle(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(operator.add).map_values(str)
        deps = upstream_shuffle_deps(rdd)
        assert len(deps) == 1

    def test_stage_names(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(operator.add)
        graph = StageGraph(rdd, itertools.count())
        names = [s.name for s in graph.all_stages()]
        assert any("shuffle_map" in n for n in names)
        assert any("result" in n for n in names)


class TestProcessBackendHelpers:
    def test_stage_shuffle_inputs(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(operator.add, 3).map_values(str)
        shuffle_id = rdd.lineage()[-2].shuffle_dep.shuffle_id  # type: ignore[attr-defined]
        assert stage_shuffle_inputs(rdd, 1) == {(shuffle_id, 1)}

    def test_stage_shuffle_inputs_empty_for_narrow(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map(str)
        assert stage_shuffle_inputs(rdd, 0) == set()

    def test_stage_cached_blocks(self, ctx):
        base = ctx.parallelize(range(4), 2).cache()
        rdd = base.map(str)
        assert stage_cached_rdd_blocks(rdd, 1) == {(base.id, 1)}

    def test_cached_blocks_not_traversed_past_shuffle(self, ctx):
        base = ctx.parallelize([(1, 1)], 2).cache()
        rdd = base.reduce_by_key(operator.add)
        assert stage_cached_rdd_blocks(rdd, 0) == set()


class TestExecutionDeterminism:
    def test_threads_match_serial(self, ctx, threads_ctx):
        data = [(i % 7, float(i)) for i in range(200)]

        def pipeline(context):
            return dict(
                context.parallelize(data, 8)
                .map_values(lambda v: v * 2)
                .reduce_by_key(operator.add)
                .collect()
            )

        assert pipeline(ctx) == pytest.approx(pipeline(threads_ctx))

    def test_metrics_recorded_per_job(self, ctx):
        ctx.parallelize(range(10), 2).count()
        ctx.parallelize(range(10), 2).count()
        assert len(ctx.metrics.jobs) == 2
        job = ctx.metrics.last_job
        assert job.wall_seconds > 0
        assert job.stages[0].num_tasks == 2
        assert all(rec.succeeded for rec in job.stages[0].tasks)

    def test_stopped_context_rejects_work(self, serial_config):
        from repro.engine.context import Context

        context = Context(serial_config)
        context.stop()
        with pytest.raises(RuntimeError):
            context.parallelize([1], 1)

    def test_executor_task_counts(self, ctx):
        ctx.parallelize(range(16), 8).count()
        ran = sum(e.tasks_run for e in ctx.executors)
        assert ran == 8
