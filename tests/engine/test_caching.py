"""Block-manager caching: hits, eviction, spill, remote fetch."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.engine.blockmanager import BlockManager, BlockManagerMaster, estimate_size
from repro.engine.context import Context
from repro.engine.storage import StorageLevel


class _OpaquePayload:
    """Module-level (picklable) slotted record with wildly varying payload
    sizes -- the shape that used to be mis-sized by the per-type memo."""

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data

    def __reduce__(self):
        return (type(self), (self.data,))


class TestCachedRdd:
    def test_second_action_hits_cache(self, ctx):
        rdd = ctx.parallelize(range(100), 4).map(lambda x: x * 2).cache()
        assert rdd.sum() == 9900
        assert rdd.sum() == 9900
        job = ctx.metrics.jobs[-1]
        assert job.totals().cache_hits == 4
        assert job.totals().cache_misses == 0

    def test_first_action_misses(self, ctx):
        rdd = ctx.parallelize(range(10), 2).cache()
        rdd.count()
        assert ctx.metrics.jobs[-1].totals().cache_misses == 2

    @pytest.mark.shared_driver_state
    def test_cached_computation_runs_once(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(4), 2).map(lambda x: calls.append(x) or x).cache()
        rdd.count()
        rdd.count()
        assert len(calls) == 4

    @pytest.mark.shared_driver_state
    def test_unpersist_recomputes(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(4), 2).map(lambda x: calls.append(x) or x).cache()
        rdd.count()
        rdd.unpersist()
        assert not rdd.is_cached
        rdd.count()
        assert len(calls) == 8

    def test_persist_levels_rejected_type(self, ctx):
        with pytest.raises(TypeError):
            ctx.parallelize([1], 1).persist("memory")

    def test_memory_ser_roundtrip(self, ctx):
        rdd = ctx.parallelize([np.arange(5), np.arange(3)], 2).persist(StorageLevel.MEMORY_SER)
        first = rdd.collect()
        second = rdd.collect()
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
        assert ctx.metrics.jobs[-1].totals().cache_hits == 2

    def test_cached_partition_count(self, ctx):
        rdd = ctx.parallelize(range(10), 5).cache()
        assert ctx.cached_partition_count(rdd) == 0
        rdd.count()
        assert ctx.cached_partition_count(rdd) == 5

    @pytest.mark.shared_driver_state
    def test_downstream_of_cache_uses_cached_parent(self, ctx):
        calls = []
        base = ctx.parallelize(range(6), 3).map(lambda x: calls.append(x) or x).cache()
        base.count()
        assert base.map(lambda x: x + 1).sum() == 21
        assert len(calls) == 6


class TestBlockManager:
    def test_put_get(self):
        bm = BlockManager("e0", memory_budget=1 << 20)
        data = bm.put((1, 0), iter([1, 2, 3]), StorageLevel.MEMORY)
        assert data == [1, 2, 3]
        assert bm.get((1, 0)) == [1, 2, 3]

    def test_get_missing_returns_none(self):
        bm = BlockManager("e0", memory_budget=1 << 20)
        assert bm.get((9, 9)) is None

    def test_lru_eviction(self):
        payload = [np.zeros(1000)] # ~8KB
        bm = BlockManager("e0", memory_budget=20_000)
        bm.put((1, 0), list(payload), StorageLevel.MEMORY)
        bm.put((1, 1), list(payload), StorageLevel.MEMORY)
        # touch block 0 so block 1 is the LRU victim
        bm.get((1, 0))
        bm.put((1, 2), list(payload), StorageLevel.MEMORY)
        assert bm.get((1, 1)) is None
        assert bm.get((1, 0)) is not None
        assert bm.evictions >= 1

    def test_oversized_block_not_cached(self):
        bm = BlockManager("e0", memory_budget=100)
        data = bm.put((1, 0), [np.zeros(10_000)], StorageLevel.MEMORY)
        assert len(data) == 1  # still returned
        assert bm.get((1, 0)) is None

    def test_spill_to_disk_and_reload(self, tmp_path):
        payload = [np.arange(1000)]
        bm = BlockManager("e0", memory_budget=10_000, spill_dir=str(tmp_path))
        bm.put((1, 0), list(payload), StorageLevel.MEMORY_AND_DISK)
        bm.put((1, 1), list(payload), StorageLevel.MEMORY_AND_DISK)
        # (1, 0) evicted -> spilled, still readable
        assert bm.spills >= 1
        reloaded = bm.get((1, 0))
        assert reloaded is not None
        assert np.array_equal(reloaded[0], payload[0])

    def test_remove_frees_memory(self):
        bm = BlockManager("e0", memory_budget=1 << 20)
        bm.put((1, 0), [1], StorageLevel.MEMORY)
        used = bm.memory_used
        assert used > 0
        bm.remove((1, 0))
        assert bm.memory_used == 0
        assert not bm.contains((1, 0))

    def test_estimate_size_numpy_exact_ish(self):
        arr = np.zeros(1000)
        assert estimate_size(arr) >= arr.nbytes

    def test_estimate_size_nested(self):
        assert estimate_size([1, "ab", (2.0,)]) > 0

    def test_estimate_size_slotted_records_sized_structurally(self):
        """Regression: ``__slots__``-only records used to fall through to
        the per-type pickled-size memo, so after the sample window a
        100x-larger payload was sized like a tiny one.  Slot values are now
        walked like ``__dict__`` attributes, so each instance is sized from
        its own payload."""
        for _ in range(20):  # would have primed the old memo with tiny sizes
            estimate_size(_OpaquePayload(b"x" * 10))
        assert estimate_size(_OpaquePayload(b"y" * 100_000)) >= 100_000
        assert estimate_size(_OpaquePayload(b"x" * 10)) < 1_000

    def test_estimate_size_opaque_drift_disables_memo(self):
        """Regression for truly opaque types (no __dict__, no slots): a size
        drift must be detected within the bounded refresh window and, once
        seen, permanently disable the stale average for that type."""
        import array
        import pickle as _pickle

        for _ in range(20):
            estimate_size(array.array("b", b"x" * 10))
        big = array.array("b", b"y" * 100_000)
        true_size = len(_pickle.dumps(big, protocol=_pickle.HIGHEST_PROTOCOL))
        estimates = [estimate_size(big) for _ in range(10)]
        # a periodic re-measure fires within the window, blows the spread
        # guard, and every estimate after that is exact
        assert estimates[-1] >= true_size
        assert estimate_size(big) >= true_size

    def test_estimate_size_homogeneous_opaque_uses_memo(self):
        """Same-sized instances of an opaque type amortize to O(1) sizing
        without drifting far from the true pickled size."""
        import array

        sizes = {estimate_size(array.array("b", b"z" * 1000)) for _ in range(20)}
        assert all(900 < s < 1300 for s in sizes)

    def test_serialized_level_uses_configured_serializer(self):
        from repro.engine.serializer import CompressedSerializer

        bm = BlockManager("e0", memory_budget=1 << 20)
        bm.serializer = CompressedSerializer(threshold=64)
        data = [np.zeros(512) for _ in range(4)]
        bm.put((7, 0), data, StorageLevel.MEMORY_SER)
        # compressed frames shrink the accounted footprint well below raw
        assert bm.memory_used < sum(a.nbytes for a in data)
        out = bm.get((7, 0))
        assert len(out) == 4 and all(np.array_equal(a, b) for a, b in zip(out, data))

    def test_spill_roundtrip_with_serializer(self, tmp_path):
        from repro.engine.serializer import NumpySerializer

        bm = BlockManager("e0", memory_budget=256, spill_dir=str(tmp_path))
        bm.serializer = NumpySerializer()
        data = [np.arange(100, dtype=np.float64)]
        bm.put((3, 0), data, StorageLevel.MEMORY_AND_DISK)
        assert bm.was_spilled((3, 0))
        out = bm.get((3, 0))
        assert np.array_equal(out[0], data[0])


class TestBlockMaster:
    def test_register_and_locations(self):
        master = BlockManagerMaster()
        master.register_block((1, 0), "e0")
        master.register_block((1, 0), "e1")
        assert master.locations((1, 0)) == ["e0", "e1"]

    def test_remove_executor_reports_lost(self):
        master = BlockManagerMaster()
        bm = BlockManager("e0", 1 << 20)
        master.register_manager(bm)
        master.register_block((1, 0), "e0")
        master.register_block((1, 1), "e0")
        master.register_block((1, 1), "e1")
        lost = master.remove_executor("e0")
        assert lost == [(1, 0)]
        assert master.locations((1, 1)) == ["e1"]

    def test_get_remote_repairs_stale_registry(self):
        master = BlockManagerMaster()
        bm = BlockManager("e0", 1 << 20)
        master.register_manager(bm)
        master.register_block((1, 0), "e0")  # registered but never stored
        assert master.get_remote((1, 0), excluding="e9") is None
        assert master.locations((1, 0)) == []

    def test_remote_fetch_across_executors(self):
        config = EngineConfig(backend="serial", num_executors=2, executor_cores=1, default_parallelism=2)
        with Context(config) as ctx:
            rdd = ctx.parallelize(range(8), 2).cache()
            rdd.count()  # populates both executors
            # force all tasks onto one executor by killing the other
            holders = {
                e.executor_id: e.block_manager.block_ids() for e in ctx.executors
            }
            assert sum(len(v) for v in holders.values()) == 2
            total = rdd.sum()
            assert total == 28

    def test_eviction_pressure_metrics(self):
        config = EngineConfig(
            backend="serial",
            num_executors=1,
            executor_cores=1,
            executor_memory=64 * 1024,  # tiny cache
            default_parallelism=4,
        )
        with Context(config) as ctx:
            rdd = ctx.parallelize([np.zeros(4000) for _ in range(8)], 8).cache()
            rdd.count()
            rdd.count()
            totals = ctx.metrics.jobs[-1].totals()
            # most blocks were evicted, so second pass recomputes
            assert totals.cache_misses > 0
