"""Execution backends: serial, threads, processes."""

import operator
import time

import pytest

from repro.config import EngineConfig
from repro.engine.backends import ProcessBackend, SerialBackend, ThreadBackend, make_backend
from repro.engine.context import Context
from repro.engine.storage import StorageLevel


def _square(x):
    return x * x


def _key_mod3(x):
    return (x % 3, x)


def _sleep_window(x):
    """Busy-sleep marker: returns this task's (start, end) wall-clock span."""
    start = time.monotonic()
    time.sleep(0.4)
    return (start, time.monotonic())


class TestBackendFactory:
    def test_make_each(self):
        assert isinstance(make_backend(EngineConfig(backend="serial")), SerialBackend)
        backend = make_backend(EngineConfig(backend="threads"))
        assert isinstance(backend, ThreadBackend)
        backend.shutdown()

    def test_unknown_rejected_at_config(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="gpu")

    def test_thread_parallelism_from_config(self):
        backend = make_backend(EngineConfig(backend="threads", num_executors=3, executor_cores=4))
        assert backend.parallelism == 12
        backend.shutdown()


class TestThreadBackend:
    def test_large_fanout(self):
        with Context(EngineConfig(backend="threads", num_executors=4, executor_cores=2, default_parallelism=16)) as ctx:
            assert ctx.parallelize(range(10_000), 16).map(_square).sum() == sum(
                x * x for x in range(10_000)
            )

    def test_shuffle_under_threads(self):
        with Context(EngineConfig(backend="threads", num_executors=2, executor_cores=2, default_parallelism=8)) as ctx:
            out = dict(
                ctx.parallelize(range(999), 8).map(_key_mod3).reduce_by_key(operator.add).collect()
            )
            assert sum(out.values()) == sum(range(999))

    def test_caching_under_threads(self):
        with Context(EngineConfig(backend="threads", num_executors=2, executor_cores=2, default_parallelism=8)) as ctx:
            rdd = ctx.parallelize(range(100), 8).map(_square).cache()
            assert rdd.sum() == rdd.sum()
            totals = ctx.metrics.jobs[-1].totals()
            assert totals.cache_hits == 8


@pytest.mark.slow
class TestProcessBackend:
    """Process backend needs picklable closures (module-level functions)."""

    @pytest.fixture
    def pctx(self):
        config = EngineConfig(
            backend="processes", num_executors=2, executor_cores=1, default_parallelism=4
        )
        with Context(config) as context:
            yield context

    def test_map_collect(self, pctx):
        assert pctx.parallelize(range(50), 4).map(_square).collect() == [
            x * x for x in range(50)
        ]

    def test_shuffle_job(self, pctx):
        out = dict(
            pctx.parallelize(range(30), 4).map(_key_mod3).reduce_by_key(operator.add).collect()
        )
        expected = {}
        for x in range(30):
            expected[x % 3] = expected.get(x % 3, 0) + x
        assert out == expected

    def test_cache_round_trips_to_driver(self, pctx):
        rdd = pctx.parallelize(range(20), 4).map(_square).cache()
        assert rdd.sum() == rdd.sum()
        cached = sum(len(e.block_manager.block_ids()) for e in pctx.executors)
        assert cached == 4

    def test_tasks_overlap_in_time(self, pctx):
        """Regression: dispatch must not serialize the pool.

        The old ``_ImmediateFuture`` wrapper blocked the driver inside each
        ``submit``, so task N+1 could not start until task N finished.  With
        pool-future chaining both sleepers must be asleep simultaneously --
        this holds even on a single-core host.
        """
        windows = pctx.parallelize([0, 1], 2).map(_sleep_window).collect()
        starts = [w[0] for w in windows]
        ends = [w[1] for w in windows]
        assert max(starts) < min(ends), f"tasks ran sequentially: {windows}"

    def test_task_binary_bytes_recorded_once_per_attempt(self, pctx):
        pctx.parallelize(range(40), 4).map(_square).collect()
        totals = pctx.metrics.last_job.totals()
        assert totals.task_binary_bytes > 0
        # every attempt reports the same per-stage blob size
        sizes = {
            rec.metrics.task_binary_bytes
            for rec in pctx.metrics.last_job.stages[0].tasks
            if rec.succeeded
        }
        assert len(sizes) == 1

    def test_driver_bytes_collected_recorded(self, pctx):
        pctx.parallelize(range(40), 4).map(_square).collect()
        totals = pctx.metrics.last_job.totals()
        assert totals.driver_bytes_collected > 0

    def test_remote_cache_respects_storage_level(self, pctx):
        """Regression: blocks computed in workers must be merged at the
        RDD's requested storage level, not hardcoded MEMORY."""
        rdd = pctx.parallelize(range(20), 4).map(_square).persist(StorageLevel.MEMORY_SER)
        rdd.sum()
        levels = {
            block.level
            for executor in pctx.executors
            for block in executor.block_manager._blocks.values()
        }
        assert levels == {StorageLevel.MEMORY_SER}
