"""MiniHDFS: blocks, replication, failures, namespace."""

import pytest

from repro.hdfs.filesystem import (
    BlockLostError,
    FileExistsAlready,
    FileNotFound,
    MiniHDFS,
)


@pytest.fixture
def fs():
    return MiniHDFS(num_datanodes=4, block_size=64, replication=2, seed=1)


class TestWriteRead:
    def test_roundtrip(self, fs):
        fs.write_text("/a/b.txt", "hello\nworld\n")
        assert fs.read_text("/a/b.txt") == "hello\nworld\n"

    def test_hdfs_scheme_paths_normalized(self, fs):
        fs.write_text("hdfs://a/b.txt", "x")
        assert fs.exists("/a/b.txt")
        assert fs.read_text("/a/b.txt") == "x"

    def test_blocks_line_aligned(self, fs):
        lines = [f"line-{i:04d}" for i in range(40)]
        fs.write_text("/f", "\n".join(lines) + "\n")
        blocks = fs.blocks("/f")
        assert len(blocks) > 1
        for block in blocks:
            data = fs.read_block(block)
            assert data.endswith(b"\n")  # whole lines only
        reassembled = b"".join(fs.read_block(b) for b in blocks).decode()
        assert reassembled.splitlines() == lines

    def test_line_longer_than_block_stays_whole(self, fs):
        content = "short\n" + "x" * 300 + "\nend\n"
        fs.write_text("/f", content)
        assert fs.read_text("/f") == content
        for block in fs.blocks("/f"):
            text = fs.read_block(block).decode()
            assert text == "" or text.endswith("\n")

    def test_binary_write_fixed_blocks(self, fs):
        payload = bytes(range(256)) * 2
        fs.write_bytes("/bin", payload)
        assert fs.read_bytes("/bin") == payload
        assert all(b.length <= 64 for b in fs.blocks("/bin"))

    def test_empty_file(self, fs):
        fs.write_text("/empty", "")
        assert fs.read_text("/empty") == ""
        assert fs.status("/empty").num_blocks == 1

    def test_overwrite(self, fs):
        fs.write_text("/f", "one")
        fs.write_text("/f", "two")
        assert fs.read_text("/f") == "two"

    def test_no_overwrite_flag(self, fs):
        fs.write_text("/f", "one")
        with pytest.raises(FileExistsAlready):
            fs.write_text("/f", "two", overwrite=False)

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFound):
            fs.read_text("/nope")


class TestReplication:
    def test_each_block_replicated(self, fs):
        fs.write_text("/f", "data\n" * 100)
        for block in fs.blocks("/f"):
            assert len(block.replicas) == 2
            assert len(set(block.replicas)) == 2

    def test_replication_capped_by_datanodes(self):
        fs = MiniHDFS(num_datanodes=1, replication=3)
        fs.write_text("/f", "x")
        assert len(fs.blocks("/f")[0].replicas) == 1

    def test_block_locations_are_hosts(self, fs):
        fs.write_text("/f", "x")
        locs = fs.block_locations(fs.blocks("/f")[0])
        assert locs and all(l.startswith("host-") for l in locs)

    def test_read_survives_one_datanode_loss(self, fs):
        fs.write_text("/f", "payload\n" * 50)
        fs.kill_datanode("dn-0")
        assert fs.read_text("/f") == "payload\n" * 50

    def test_read_fails_when_all_replicas_lost(self, fs):
        fs.write_text("/f", "payload\n" * 50)
        for name in fs.datanode_names():
            fs.kill_datanode(name)
        with pytest.raises(BlockLostError):
            fs.read_text("/f")

    def test_under_replication_detected_and_repaired(self, fs):
        fs.write_text("/f", "payload\n" * 200)
        fs.kill_datanode("dn-1")
        under = fs.under_replicated_blocks()
        assert under  # dn-1 held something
        fixed = fs.re_replicate()
        assert fixed == len(under)
        assert fs.under_replicated_blocks() == []
        fs.kill_datanode("dn-0")
        assert fs.read_text("/f")  # still fully readable

    def test_revive_datanode(self, fs):
        fs.write_text("/f", "x")
        fs.kill_datanode("dn-0")
        fs.revive_datanode("dn-0")
        assert fs.read_text("/f") == "x"

    def test_placement_spreads_load(self, fs):
        for i in range(20):
            fs.write_text(f"/f{i}", "x" * 50)
        usage = fs.datanode_usage()
        assert all(v > 0 for v in usage.values())


class TestNamespace:
    def test_exists_listdir_status(self, fs):
        fs.write_text("/d/a", "1")
        fs.write_text("/d/b", "2")
        assert fs.exists("/d/a")
        assert fs.listdir("/d") == ["/d/a", "/d/b"]
        st = fs.status("/d/a")
        assert st.size == 1

    def test_delete_frees_blocks(self, fs):
        fs.write_text("/f", "payload" * 100)
        used_before = sum(fs.datanode_usage().values())
        fs.delete("/f")
        assert not fs.exists("/f")
        assert sum(fs.datanode_usage().values()) < used_before

    def test_delete_missing_is_noop(self, fs):
        fs.delete("/nothing")

    def test_status_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.status("/zzz")


class TestHdfsRdd:
    def test_text_file_partitions_per_block(self):
        from repro.config import EngineConfig
        from repro.engine.context import Context

        fs = MiniHDFS(num_datanodes=3, block_size=128, replication=2)
        lines = [f"record-{i:05d}" for i in range(100)]
        fs.write_text("/data.txt", "\n".join(lines) + "\n")
        with Context(EngineConfig(default_parallelism=2), hdfs=fs) as ctx:
            rdd = ctx.text_file("hdfs://data.txt")
            assert rdd.num_partitions() == len(fs.blocks("/data.txt"))
            assert rdd.collect() == lines
            assert rdd.preferred_locations(0)  # locality hints exist

    def test_text_file_without_hdfs_raises(self, ctx):
        with pytest.raises(RuntimeError):
            ctx.text_file("hdfs://data.txt")
