"""Instance specs and YARN container allocation."""

import pytest

from repro.cluster.nodes import M3_2XLARGE, ClusterSpec, InstanceSpec, emr_cluster
from repro.cluster.yarn import AllocationError, ResourceManager


class TestSpecs:
    def test_table_i_values(self):
        assert M3_2XLARGE.vcpus == 8
        assert M3_2XLARGE.memory_gib == 30.0
        assert M3_2XLARGE.storage_gb == 160.0
        assert "Ivy Bridge" in M3_2XLARGE.processor

    def test_cluster_totals(self):
        cluster = emr_cluster(6)
        assert cluster.total_vcpus == 48
        assert cluster.total_memory_gib == 180.0
        assert "6 x m3.2xlarge" in str(cluster)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            InstanceSpec("x", "p", 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            ClusterSpec(M3_2XLARGE, 0)


class TestAllocation:
    def test_paper_fig7_shapes_fit_36_nodes(self):
        rm = ResourceManager(emr_cluster(36))
        for count, memory, cores in ((42, 10, 6), (84, 5, 3), (126, 3, 2)):
            allocation = rm.allocate(count, memory, cores)
            assert allocation.num_containers == count
            assert sum(allocation.per_node) == count

    def test_equal_aggregate_cores_in_fig7(self):
        rm = ResourceManager(emr_cluster(36))
        totals = {
            rm.allocate(c, m, k).total_cores
            for c, m, k in ((42, 10, 6), (84, 5, 3), (126, 3, 2))
        }
        assert totals == {252}

    def test_memory_capacity_enforced(self):
        rm = ResourceManager(emr_cluster(2))
        with pytest.raises(AllocationError):
            rm.allocate(10, 28.0, 1)  # only 1 x 28GiB fits per 30GiB node

    def test_strict_cores_mode(self):
        rm = ResourceManager(emr_cluster(36), strict_cores=True)
        with pytest.raises(AllocationError):
            rm.allocate(42, 10.0, 6)  # 42 six-core containers need core oversubscription
        assert rm.allocate(36, 10.0, 6).num_containers == 36

    def test_container_too_big_for_node(self):
        rm = ResourceManager(emr_cluster(4))
        with pytest.raises(AllocationError):
            rm.allocate(1, 100.0, 2)

    def test_invalid_shape(self):
        rm = ResourceManager(emr_cluster(2))
        with pytest.raises(AllocationError):
            rm.allocate(0, 1.0, 1)
        with pytest.raises(AllocationError):
            rm.allocate(1, -1.0, 1)

    def test_breadth_first_packing(self):
        rm = ResourceManager(emr_cluster(4))
        allocation = rm.allocate(6, 5.0, 2)
        assert sorted(allocation.per_node, reverse=True) == [2, 2, 1, 1]

    def test_slot_hosts(self):
        rm = ResourceManager(emr_cluster(2))
        allocation = rm.allocate(2, 5.0, 3)
        hosts = allocation.slot_hosts()
        assert len(hosts) == 6
        assert set(hosts) == {"node-0", "node-1"}

    def test_default_allocation(self):
        allocation = ResourceManager(emr_cluster(3)).default_allocation()
        assert allocation.num_containers == 3
        assert allocation.cores_per_container == 7

    def test_str(self):
        allocation = ResourceManager(emr_cluster(2)).allocate(2, 5.0, 2)
        assert "2 containers" in str(allocation)
