"""Network topology model."""

import pytest

from repro.cluster.nodes import emr_cluster
from repro.cluster.topology import Topology


class TestStructure:
    def test_rack_count(self):
        topo = Topology(emr_cluster(45), nodes_per_rack=20)
        assert topo.n_racks == 3

    def test_rack_of(self):
        topo = Topology(emr_cluster(45), nodes_per_rack=20)
        assert topo.rack_of(0) == 0
        assert topo.rack_of(19) == 0
        assert topo.rack_of(20) == 1

    def test_graph_size(self):
        topo = Topology(emr_cluster(6), nodes_per_rack=4)
        # 6 hosts + 2 racks + core
        assert topo.graph.number_of_nodes() == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(emr_cluster(2), nodes_per_rack=0)
        with pytest.raises(ValueError):
            Topology(emr_cluster(2), uplink_oversubscription=0.5)


class TestBandwidth:
    def test_same_node_infinite(self):
        topo = Topology(emr_cluster(4))
        assert topo.path_bandwidth_gbps(1, 1) == float("inf")

    def test_same_rack_nic_bound(self):
        topo = Topology(emr_cluster(4), nodes_per_rack=4)
        assert topo.path_bandwidth_gbps(0, 1) == pytest.approx(1.0)

    def test_cross_rack_may_be_uplink_bound(self):
        topo = Topology(emr_cluster(40), nodes_per_rack=20, uplink_oversubscription=40.0)
        # uplink = 1 * 20/40 = 0.5 Gbps < NIC
        assert topo.path_bandwidth_gbps(0, 25) == pytest.approx(0.5)


class TestTransferTimes:
    def test_broadcast_zero_payload(self):
        assert Topology(emr_cluster(8)).broadcast_seconds(0) == 0.0

    def test_broadcast_single_node(self):
        assert Topology(emr_cluster(1)).broadcast_seconds(10**9) == 0.0

    def test_broadcast_log_rounds(self):
        topo = Topology(emr_cluster(8))
        one_gb = 10**9
        t = topo.broadcast_seconds(one_gb)
        per_round = one_gb * 8 / 1e9
        assert t == pytest.approx(4 * per_round)  # ceil(log2(9)) = 4

    def test_shuffle_scales_down_with_nodes(self):
        small = Topology(emr_cluster(4)).shuffle_seconds(10**9)
        large = Topology(emr_cluster(16)).shuffle_seconds(10**9)
        assert large < small

    def test_shuffle_zero_cases(self):
        assert Topology(emr_cluster(1)).shuffle_seconds(10**9) == 0.0
        assert Topology(emr_cluster(4)).shuffle_seconds(0) == 0.0
