"""Discrete-event cluster simulator."""

import pytest

from repro.cluster.simulation import ClusterSimulator, SimStage, SimTask, even_tasks


def make_sim(slots=4, overhead=0.0, sigma=0.0, seed=0):
    return ClusterSimulator(slots, task_overhead_s=overhead, straggler_sigma=sigma, seed=seed)


class TestSingleStage:
    def test_perfect_parallelism(self):
        sim = make_sim(slots=4)
        report = sim.run([SimStage(0, even_tasks(40.0, 4))])
        assert report.makespan == pytest.approx(10.0)
        assert report.utilization == pytest.approx(1.0)

    def test_queueing_waves(self):
        sim = make_sim(slots=2)
        report = sim.run([SimStage(0, [SimTask(1.0)] * 5)])
        # 5 unit tasks on 2 slots: 3 waves
        assert report.makespan == pytest.approx(3.0)

    def test_task_overhead_charged(self):
        sim = make_sim(slots=1, overhead=0.5)
        report = sim.run([SimStage(0, [SimTask(1.0)] * 2)])
        assert report.makespan == pytest.approx(3.0)

    def test_launch_overhead_serial(self):
        sim = make_sim(slots=4)
        report = sim.run([SimStage(0, even_tasks(4.0, 4), launch_overhead=2.0)])
        assert report.makespan == pytest.approx(3.0)

    def test_empty_stage(self):
        sim = make_sim()
        report = sim.run([SimStage(0, [])])
        assert report.makespan == 0.0


class TestDag:
    def test_barrier_between_stages(self):
        sim = make_sim(slots=4)
        stages = [
            SimStage(0, even_tasks(8.0, 4)),
            SimStage(1, even_tasks(4.0, 4), parent_ids=(0,)),
        ]
        report = sim.run(stages)
        assert report.makespan == pytest.approx(3.0)
        s0, s1 = report.stages
        assert s1.start == pytest.approx(s0.finish)

    def test_diamond_dependencies(self):
        sim = make_sim(slots=2)
        stages = [
            SimStage(0, [SimTask(1.0)]),
            SimStage(1, [SimTask(2.0)], parent_ids=(0,)),
            SimStage(2, [SimTask(3.0)], parent_ids=(0,)),
            SimStage(3, [SimTask(1.0)], parent_ids=(1, 2)),
        ]
        report = sim.run(stages)
        # 1 + max(2,3) + 1 = 5 (stages 1 and 2 overlap on 2 slots)
        assert report.makespan == pytest.approx(5.0)

    def test_cycle_detected(self):
        sim = make_sim()
        stages = [
            SimStage(0, [SimTask(1.0)], parent_ids=(1,)),
            SimStage(1, [SimTask(1.0)], parent_ids=(0,)),
        ]
        with pytest.raises(ValueError):
            sim.run(stages)

    def test_start_time_offset(self):
        sim = make_sim(slots=1)
        report = sim.run([SimStage(0, [SimTask(2.0)])], start_time=100.0)
        assert report.makespan == pytest.approx(2.0)
        assert report.stages[0].start == pytest.approx(100.0)


class TestStragglers:
    def test_deterministic_given_seed(self):
        a = make_sim(sigma=0.3, seed=7).run([SimStage(0, [SimTask(1.0)] * 20)])
        b = make_sim(sigma=0.3, seed=7).run([SimStage(0, [SimTask(1.0)] * 20)])
        assert a.makespan == b.makespan

    def test_stragglers_stretch_makespan(self):
        base = make_sim(slots=4).run([SimStage(0, [SimTask(1.0)] * 16)]).makespan
        noisy = make_sim(slots=4, sigma=0.5, seed=3).run(
            [SimStage(0, [SimTask(1.0)] * 16)]
        ).makespan
        assert noisy > base

    def test_zero_sigma_noise_free(self):
        report = make_sim(slots=3, sigma=0.0).run([SimStage(0, [SimTask(2.0)] * 3)])
        assert report.makespan == pytest.approx(2.0)


class TestValidation:
    def test_bad_slots(self):
        with pytest.raises(ValueError):
            ClusterSimulator(0)

    def test_bad_task(self):
        with pytest.raises(ValueError):
            SimTask(-1.0)

    def test_even_tasks(self):
        tasks = even_tasks(10.0, 4)
        assert len(tasks) == 4
        assert sum(t.duration for t in tasks) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            even_tasks(1.0, 0)
        with pytest.raises(ValueError):
            even_tasks(-1.0, 2)
