"""Benchmark registry and table rendering."""

import pytest

from repro.bench.experiments import (
    EXPERIMENT_A,
    EXPERIMENT_B_1M,
    EXPERIMENT_B_10K,
    EXPERIMENT_C,
    FIG3_CONFIGS,
    PAPER_TABLE_III,
    PAPER_TABLE_V,
)
from repro.bench.tables import format_comparison_table, format_series_table


class TestExperimentSpecs:
    def test_table_ii_parameters(self):
        assert EXPERIMENT_A.n_patients == 1000
        assert EXPERIMENT_A.n_snps == 100_000
        assert EXPERIMENT_A.n_snpsets == 1000
        assert EXPERIMENT_A.n_nodes == 6
        assert EXPERIMENT_A.avg_snps_per_set == 100

    def test_table_iv_parameters(self):
        assert EXPERIMENT_B_10K.n_nodes == EXPERIMENT_B_1M.n_nodes == 18
        assert EXPERIMENT_B_10K.n_snps == 10_000
        assert EXPERIMENT_B_1M.n_snps == 1_000_000

    def test_table_vii_parameters(self):
        assert EXPERIMENT_C.n_nodes == 36

    def test_synthetic_config_builder(self):
        config = EXPERIMENT_B_10K.synthetic_config(seed=3, n_patients=50)
        assert config.n_snps == 10_000
        assert config.n_patients == 50  # override wins
        assert config.seed == 3

    def test_fig3_constant_work(self):
        products = {iters * snps for iters, snps in FIG3_CONFIGS}
        assert products == {10_000_000}

    def test_published_tables_aligned(self):
        t3 = PAPER_TABLE_III
        assert len(t3["iterations"]) == len(t3["monte_carlo_avg"]) == len(t3["permutation_avg"])
        t5 = PAPER_TABLE_V
        assert len(t5["iterations"]) == len(t5["caching_avg"]) == len(t5["nocache_avg"])

    def test_paper_headline_numbers(self):
        # the specific values quoted throughout DESIGN/EXPERIMENTS
        assert PAPER_TABLE_III["monte_carlo_avg"][0] == 509.4
        assert PAPER_TABLE_III["permutation_avg"][4] == 8818.6
        assert PAPER_TABLE_V["caching_avg"][-1] == 1928.6


class TestTables:
    def test_series_handles_none(self):
        out = format_series_table("t", "x", [1, 2], {"a": [1.0, None]})
        assert "-" in out
        assert "1.0 s" in out

    def test_comparison_ratio(self):
        out = format_comparison_table("t", "x", [1], [2.0], [4.0])
        assert "0.50x" in out

    def test_comparison_missing_paper_value(self):
        out = format_comparison_table("t", "x", [1, 2], [2.0, 3.0], [4.0, None])
        assert out.count("-") >= 2

    def test_titles_present(self):
        assert "== my title ==" in format_series_table("my title", "x", [], {"s": []})
