"""The tuning advisor: rules, ranking, and rendering."""

from __future__ import annotations

import json

from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics, TaskRecord
from repro.obs.advisor import (
    DiagnosisInput,
    Recommendation,
    cache_pressure_from_jobs,
    diagnose,
    recommendations_to_json,
    render_recommendations,
    rule_cache_thrash,
    rule_container_sizing,
    rule_repartition_skew,
    rule_stragglers,
    rule_tiny_tasks,
)
from repro.obs.diagnostics import CachePressureReport


def make_job(durations, records=None, job_id=0, executors=None):
    records = records if records is not None else [10] * len(durations)
    executors = executors or [f"exec-{i % 2}" for i in range(len(durations))]
    tasks = [
        TaskRecord(
            stage_id=1,
            partition=i,
            attempt=0,
            executor_id=executors[i],
            duration_seconds=d,
            metrics=TaskMetrics(records_read=r),
            succeeded=True,
        )
        for i, (d, r) in enumerate(zip(durations, records))
    ]
    stage = StageMetrics(stage_id=1, name="map", num_tasks=len(tasks), tasks=tasks)
    return JobMetrics(job_id=job_id, description="test job", stages=[stage])


class TestRepartitionRule:
    def test_fires_on_skew_with_concrete_target(self):
        job = make_job([0.1] * 7 + [1.0])
        (rec,) = rule_repartition_skew(DiagnosisInput(jobs=[job]))
        assert rec.rule == "repartition-skewed-stage"
        assert rec.stage_id == 1
        # 8 tasks x factor capped at 4
        assert rec.evidence["recommended_partitions"] == 32
        assert "repartition(32)" in rec.action
        assert "rdd.explain()" in rec.action

    def test_quiet_on_balanced_stage(self):
        job = make_job([0.1] * 8)
        assert rule_repartition_skew(DiagnosisInput(jobs=[job])) == []


class TestStragglerRule:
    def test_slow_executor_signature(self):
        # both stragglers on exec-9: blame the executor, not the data
        durations = [0.2] * 6 + [1.5, 1.5]
        executors = ["exec-0"] * 6 + ["exec-9", "exec-9"]
        job = make_job(durations, executors=executors)
        (rec,) = rule_stragglers(DiagnosisInput(jobs=[job]))
        assert "slow-executor signature" in rec.title
        assert "exec-9" in rec.title

    def test_scattered_stragglers_suggest_repartition(self):
        durations = [0.2] * 6 + [1.5, 1.5]
        executors = ["exec-0"] * 6 + ["exec-1", "exec-2"]
        job = make_job(durations, executors=executors)
        (rec,) = rule_stragglers(DiagnosisInput(jobs=[job]))
        assert "slow-executor" not in rec.title
        assert "repartition" in rec.action


class TestCacheThrashRule:
    def test_critical_when_hit_rate_collapses(self):
        cache = CachePressureReport(
            blocks_cached=10, blocks_evicted=8, blocks_spilled=0,
            cache_hits=1, cache_misses=9,
        )
        (rec,) = rule_cache_thrash(DiagnosisInput(cache=cache))
        assert rec.severity == "critical"
        assert "MEMORY_AND_DISK" in rec.action  # evictions recompute

    def test_spilled_evictions_soften_the_advice(self):
        cache = CachePressureReport(
            blocks_cached=10, blocks_evicted=8, blocks_spilled=8,
            cache_hits=4, cache_misses=6,
        )
        (rec,) = rule_cache_thrash(DiagnosisInput(cache=cache))
        assert rec.severity == "warning"
        assert "MEMORY_AND_DISK" not in rec.action

    def test_healthy_cache_is_quiet(self):
        cache = CachePressureReport(
            blocks_cached=10, blocks_evicted=1, cache_hits=9, cache_misses=1,
        )
        assert rule_cache_thrash(DiagnosisInput(cache=cache)) == []


class TestTinyTasksRule:
    def test_fires_on_many_sub_ms_tasks(self):
        job = make_job([0.002] * 32)
        (rec,) = rule_tiny_tasks(DiagnosisInput(jobs=[job]))
        assert rec.rule == "tiny-tasks"
        assert rec.evidence["recommended_partitions"] == 8

    def test_quiet_below_task_count_threshold(self):
        job = make_job([0.002] * 8)
        assert rule_tiny_tasks(DiagnosisInput(jobs=[job])) == []


class TestContainerSizingRule:
    def test_always_fires_when_jobs_ran(self):
        (rec,) = rule_container_sizing(DiagnosisInput(jobs=[make_job([0.1] * 4)]))
        assert rec.severity == "info"
        assert "executor_cores=2" in rec.action

    def test_silent_without_jobs(self):
        assert rule_container_sizing(DiagnosisInput()) == []


class TestDiagnose:
    def test_ranked_most_urgent_first(self):
        job = make_job([0.1] * 7 + [1.0])
        cache = CachePressureReport(
            blocks_cached=10, blocks_evicted=9, cache_hits=1, cache_misses=9,
        )
        recs = diagnose([job], cache=cache)
        severities = [r.severity for r in recs]
        assert severities == sorted(
            severities, key=lambda s: {"critical": 3, "warning": 2, "info": 1}[s],
            reverse=True,
        )
        assert recs[0].rule == "cache-thrash"
        assert recs[-1].severity == "info"

    def test_healthy_run_yields_only_sizing_info(self):
        recs = diagnose([make_job([0.1] * 8)], cache=CachePressureReport())
        assert [r.rule for r in recs] == ["container-sizing"]

    def test_thresholds_are_tunable(self):
        job = make_job([0.1] * 7 + [0.35])
        strict = diagnose([job], cache=CachePressureReport(),
                          skew_max_over_median=3.0)
        lax = diagnose([job], cache=CachePressureReport(),
                       skew_max_over_median=10.0)
        assert any(r.rule == "repartition-skewed-stage" for r in strict)
        assert not any(r.rule == "repartition-skewed-stage" for r in lax)

    def test_cache_pressure_from_jobs_counts_hits(self):
        job = make_job([0.1] * 4)
        job.stages[0].tasks[0].metrics.cache_hits = 3
        job.stages[0].tasks[1].metrics.cache_misses = 1
        report = cache_pressure_from_jobs([job])
        assert report.cache_hits == 3
        assert report.cache_misses == 1


class TestRendering:
    def test_empty_report(self):
        assert "telemetry looks healthy" in render_recommendations([])

    def test_table_and_actions(self):
        recs = diagnose(
            [make_job([0.1] * 7 + [1.0])], cache=CachePressureReport()
        )
        text = render_recommendations(recs)
        assert "severity" in text and "finding" in text
        assert "[1]" in text and "action:" in text

    def test_json_is_parseable_and_ranked(self):
        recs = [
            Recommendation(rule="a", severity="info", title="t", action="x"),
            Recommendation(rule="b", severity="critical", title="u", action="y",
                           stage_id=3, job_id=0),
        ]
        data = json.loads(recommendations_to_json(recs))
        assert [d["rule"] for d in data] == ["a", "b"]
        assert data[1]["stage_id"] == 3
