"""Span construction, JSONL round-trip, and Chrome trace export."""

import json

from repro.engine.eventlog import read_event_log, write_event_log
from repro.engine.listener import (
    JobEnd,
    JobStart,
    ListenerBus,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
)
from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics, TaskRecord
from repro.obs.spans import (
    Span,
    TracingListener,
    read_spans_jsonl,
    spans_from_jobs,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)


def _record(stage_id=0, partition=0, duration=0.25, start=0.0, executor="e0"):
    return TaskRecord(
        stage_id=stage_id, partition=partition, attempt=0, executor_id=executor,
        duration_seconds=duration, metrics=TaskMetrics(), succeeded=True,
        start_time=start,
    )


def _job(job_id=0):
    stage = StageMetrics(stage_id=0, name="map", num_tasks=2, wall_seconds=0.6)
    stage.tasks = [_record(partition=0, duration=0.5), _record(partition=1, duration=0.3)]
    return JobMetrics(job_id=job_id, description="demo", wall_seconds=0.7,
                      stages=[stage])


class TestTracingListener:
    def test_builds_job_stage_task_hierarchy(self):
        bus = ListenerBus()
        tracer = bus.add_listener(TracingListener())
        bus.post(JobStart(job_id=3, description="d"))
        bus.post(StageSubmitted(stage_id=0, attempt=0, name="map", num_tasks=1, job_id=3))
        stage = StageMetrics(stage_id=0, name="map", num_tasks=1)
        stage.tasks.append(_record())
        bus.post(TaskEnd(record=stage.tasks[0]))
        bus.post(StageCompleted(stage=stage, job_id=3))
        bus.post(JobEnd(job_id=3, job=JobMetrics(job_id=3, stages=[stage])))

        by_cat = {s.category: s for s in tracer.spans}
        assert set(by_cat) == {"job", "stage", "task"}
        assert by_cat["stage"].parent_id == by_cat["job"].span_id
        assert by_cat["task"].parent_id == by_cat["stage"].span_id
        assert by_cat["job"].end >= by_cat["job"].start
        assert by_cat["task"].attrs["executor_id"] == "e0"

    def test_live_spans_from_engine(self, serial_config, tmp_path):
        from repro.engine.context import Context

        path = str(tmp_path / "live.json")
        with Context(serial_config, trace_path=path) as ctx:
            ctx.parallelize(range(8), 2).map(lambda x: x + 1).sum()
            cats = [s.category for s in ctx.spans]
            assert cats.count("job") == 1
            assert cats.count("task") == 2
        with open(path) as fh:
            assert json.load(fh)["traceEvents"]


class TestOfflineSpans:
    def test_spans_from_jobs_hierarchy(self):
        spans = spans_from_jobs([_job()])
        assert [s.category for s in spans] == ["job", "stage", "task", "task"]
        job_span, stage_span, t0, t1 = spans
        assert stage_span.parent_id == job_span.span_id
        assert t0.parent_id == t1.parent_id == stage_span.span_id

    def test_synthetic_timeline_for_v1_logs(self):
        # all timestamps zero (a v1 log): spans still get a usable timeline
        spans = spans_from_jobs([_job(0), _job(1)])
        jobs = [s for s in spans if s.category == "job"]
        assert jobs[1].start >= jobs[0].end  # jobs laid out sequentially
        tasks = [s for s in spans if s.category == "task"]
        assert all(t.duration > 0 for t in tasks)

    def test_round_trip_through_event_log(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        write_event_log([_job()], path)
        spans = spans_from_jobs(read_event_log(path))
        assert len(spans) == 4


class TestJsonlRoundTrip:
    def test_spans_survive(self, tmp_path):
        spans = spans_from_jobs([_job()])
        path = str(tmp_path / "trace.jsonl")
        n = write_spans_jsonl(spans, path)
        assert n == len(spans)
        loaded = read_spans_jsonl(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]


class TestChromeTrace:
    def test_structure(self):
        trace = to_chrome_trace(spans_from_jobs([_job()]))
        events = trace["traceEvents"]
        x = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(x) == 4
        assert all(isinstance(e["tid"], int) for e in x)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x)
        thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert "driver" in thread_names and "e0" in thread_names

    def test_tasks_on_executor_track_stages_on_driver(self):
        trace = to_chrome_trace(spans_from_jobs([_job()]))
        x = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        driver_tid = 0
        for e in x:
            if e["cat"] in ("job", "stage"):
                assert e["tid"] == driver_tid
            else:
                assert e["tid"] != driver_tid

    def test_empty_trace(self):
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_write_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(spans_from_jobs([_job()]), path)
        with open(path) as fh:
            data = json.load(fh)
        assert data["traceEvents"]


class TestSpanDataclass:
    def test_duration_never_negative(self):
        span = Span(1, None, "x", "task", 5.0, 4.0)
        assert span.duration == 0.0

    def test_dict_round_trip(self):
        span = Span(1, None, "x", "task", 1.0, 2.0, {"k": "v"})
        assert Span.from_dict(span.to_dict()) == span
