"""Stage summaries, straggler percentiles, and critical-path math."""

import pytest

from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics, TaskRecord
from repro.obs.history import (
    aggregate_cache_stats,
    critical_path,
    percentile,
    render_history,
    render_job_summary,
    summarize_stage,
)


def _task(stage_id, partition, duration, succeeded=True, hits=0, misses=0):
    return TaskRecord(
        stage_id=stage_id, partition=partition, attempt=0, executor_id="e0",
        duration_seconds=duration,
        metrics=TaskMetrics(cache_hits=hits, cache_misses=misses),
        succeeded=succeeded,
    )


def _stage(stage_id, durations, parents=(), name=None):
    stage = StageMetrics(
        stage_id=stage_id, name=name or f"stage{stage_id}",
        num_tasks=len(durations), parent_stage_ids=tuple(parents),
        wall_seconds=max(durations, default=0.0),
    )
    stage.tasks = [_task(stage_id, i, d) for i, d in enumerate(durations)]
    return stage


class TestPercentile:
    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_single(self):
        assert percentile([3.0], 50) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        vals = [5.0, 1.0, 3.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 5.0


class TestStageSummary:
    def test_straggler_percentiles(self):
        durations = [1.0] * 19 + [10.0]
        s = summarize_stage(_stage(0, durations))
        assert s.p50 == pytest.approx(1.0)
        assert s.max == 10.0
        assert s.p95 > s.p50

    def test_failed_tasks_counted_but_excluded_from_durations(self):
        stage = _stage(0, [1.0, 2.0])
        stage.tasks.append(_task(0, 2, 99.0, succeeded=False))
        s = summarize_stage(stage)
        assert s.failures == 1
        assert s.max == 2.0
        assert s.task_seconds == pytest.approx(3.0)


class TestCriticalPath:
    def test_linear_chain(self):
        # 0 -> 1 -> 2, stage cost = slowest task
        job = JobMetrics(job_id=0, wall_seconds=10.0, stages=[
            _stage(0, [2.0, 1.0]),
            _stage(1, [3.0], parents=(0,)),
            _stage(2, [1.0, 4.0], parents=(1,)),
        ])
        cp = critical_path(job)
        assert cp.path == [0, 1, 2]
        assert cp.critical_seconds == pytest.approx(2.0 + 3.0 + 4.0)
        assert cp.total_task_seconds == pytest.approx(11.0)
        assert cp.max_speedup == pytest.approx(11.0 / 9.0)

    def test_diamond_picks_slower_branch(self):
        #    0
        #   / \
        #  1   2     stage1 is the slow branch
        #   \ /
        #    3
        job = JobMetrics(job_id=0, stages=[
            _stage(0, [1.0]),
            _stage(1, [5.0], parents=(0,)),
            _stage(2, [2.0], parents=(0,)),
            _stage(3, [1.0], parents=(1, 2)),
        ])
        cp = critical_path(job)
        assert cp.path == [0, 1, 3]
        assert cp.critical_seconds == pytest.approx(7.0)

    def test_resubmitted_stage_attempts_add(self):
        first = _stage(1, [2.0], parents=(0,))
        retry = _stage(1, [3.0], parents=(0,))
        retry.attempt = 1
        job = JobMetrics(job_id=0, stages=[_stage(0, [1.0]), first, retry])
        cp = critical_path(job)
        assert cp.critical_seconds == pytest.approx(1.0 + 2.0 + 3.0)

    def test_wide_parallel_job_has_high_speedup(self):
        # one stage, many equal tasks: critical path = one task
        job = JobMetrics(job_id=0, stages=[_stage(0, [1.0] * 8)])
        cp = critical_path(job)
        assert cp.critical_seconds == pytest.approx(1.0)
        assert cp.max_speedup == pytest.approx(8.0)

    def test_empty_job(self):
        cp = critical_path(JobMetrics(job_id=0))
        assert cp.path == []
        assert cp.max_speedup == 1.0

    def test_cycle_in_corrupt_log_terminates(self):
        a = _stage(0, [1.0], parents=(1,))
        b = _stage(1, [1.0], parents=(0,))
        cp = critical_path(JobMetrics(job_id=0, stages=[a, b]))
        assert cp.critical_seconds > 0  # no hang, some sane answer


class TestRendering:
    def _job(self):
        job = JobMetrics(job_id=4, description="mc batch", wall_seconds=3.0, stages=[
            _stage(0, [1.0, 2.0]),
            _stage(1, [0.5], parents=(0,)),
        ])
        job.stages[0].tasks[0].metrics.cache_hits = 3
        job.stages[0].tasks[0].metrics.cache_misses = 1
        return job

    def test_job_summary_mentions_key_facts(self):
        out = render_job_summary(self._job())
        assert "job 4" in out and "mc batch" in out
        assert "critical path" in out
        assert "max speedup" in out
        assert "75.0% hit rate" in out

    def test_render_history_overall_footer(self):
        out = render_history([self._job(), self._job()])
        assert "== overall: 2 jobs ==" in out
        assert "cache hit rate" in out
        assert "shuffle volume" in out

    def test_render_history_empty(self):
        assert "no jobs" in render_history([])


class TestAggregateCacheStats:
    def test_rollup(self):
        job = JobMetrics(job_id=0, stages=[_stage(0, [1.0])])
        job.stages[0].tasks[0].metrics.cache_hits = 2
        job.stages[0].tasks[0].metrics.cache_misses = 2
        agg = aggregate_cache_stats([job, job])
        assert agg["cache_hits"] == 4
        assert agg["cache_hit_rate"] == pytest.approx(0.5)
        assert agg["total_task_seconds"] == pytest.approx(2.0)
