"""Convergence monitor: interval math, classification, early stopping."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.engine.listener import (
    InferenceBatchCompleted,
    Listener,
    ListenerBus,
    SnpSetConverged,
)
from repro.obs.inference import (
    DECIDED_NULL,
    DECIDED_SIGNIFICANT,
    DECISION_CONFIDENCE,
    UNDECIDED,
    ConvergenceMonitor,
    EarlyStopPolicy,
    binomial_interval,
    clopper_pearson_interval,
    wilson_interval,
)


class CollectingListener(Listener):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


class TestIntervals:
    def test_wilson_brackets_the_proportion(self):
        low, high = wilson_interval(5, 100)
        assert low < 0.05 < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_vectorized(self):
        low, high = wilson_interval(np.array([0, 50, 100]), 100)
        assert low.shape == high.shape == (3,)
        assert low[0] == 0.0 and high[2] == 1.0
        assert np.all(low <= high)

    def test_wilson_narrows_with_n(self):
        _, high_small = wilson_interval(5, 100)
        _, high_large = wilson_interval(500, 10_000)
        assert high_large - 0.05 < high_small - 0.05

    def test_clopper_pearson_brackets_and_hits_boundaries(self):
        pytest.importorskip("scipy")  # exact CI needs beta.ppf
        low, high = clopper_pearson_interval(3, 200)
        assert low < 3 / 200 < high
        low0, high0 = clopper_pearson_interval(np.array([0, 200]), 200)
        assert low0[0] == 0.0 and high0[1] == 1.0

    def test_dispatch_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown CI method"):
            binomial_interval(1, 10, "wald")

    def test_zero_n_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)


class TestPassiveMonitor:
    def test_fold_returns_input_unchanged(self):
        monitor = ConvergenceMonitor(n_sets=3)
        batch = np.array([1, 5, 9], dtype=np.int64)
        out = monitor.fold(batch, 10)
        np.testing.assert_array_equal(out, batch)
        assert monitor.replicates_total == 10
        assert not monitor.done  # passive monitors never stop the loop

    def test_bit_identical_accumulation(self, rng):
        """counts += fold(batch) == counts += batch, replicate for replicate."""
        monitor = ConvergenceMonitor(n_sets=4)
        plain = np.zeros(4, dtype=np.int64)
        monitored = np.zeros(4, dtype=np.int64)
        for _ in range(12):
            batch = rng.integers(0, 17, size=4)
            plain += batch
            monitored += monitor.fold(batch, 16)
        np.testing.assert_array_equal(plain, monitored)
        np.testing.assert_array_equal(monitor.denominators, 12 * 16)

    def test_classification_without_policy_is_telemetry_only(self):
        """Sets classify (dashboards want status) but nothing masks."""
        monitor = ConvergenceMonitor(n_sets=2, min_replicates=64)
        monitor.fold(np.array([0, 120]), 128)
        monitor.fold(np.array([0, 120]), 128)
        assert monitor.status[0] == DECIDED_SIGNIFICANT
        assert monitor.status[1] == DECIDED_NULL
        assert not monitor.done
        assert monitor.active_mask().all()

    def test_pvalues_plugin_and_add_one(self):
        monitor = ConvergenceMonitor(n_sets=2)
        monitor.fold(np.array([2, 50]), 100)
        np.testing.assert_allclose(monitor.pvalues("plugin"), [0.02, 0.5])
        np.testing.assert_allclose(
            monitor.pvalues("add_one"), [3 / 101, 51 / 101]
        )
        with pytest.raises(ValueError):
            monitor.pvalues("bogus")


class TestClassification:
    def test_min_replicates_floor_gates_decisions(self):
        monitor = ConvergenceMonitor(
            n_sets=1, policy=EarlyStopPolicy(min_replicates=256)
        )
        monitor.fold(np.array([0]), 128)
        assert monitor.status == [UNDECIDED]
        monitor.fold(np.array([0]), 128)
        assert monitor.status == [DECIDED_SIGNIFICANT]
        assert monitor.decided_at[0] == 256

    def test_decisions_are_sticky(self):
        monitor = ConvergenceMonitor(
            n_sets=1, policy=EarlyStopPolicy(min_replicates=64)
        )
        monitor.fold(np.array([0]), 256)
        assert monitor.status == [DECIDED_SIGNIFICANT]
        frozen = (monitor.exceed[0], monitor.denominators[0])
        # a wildly contradictory batch cannot reopen or move the set
        monitor.fold(np.array([256]), 256)
        assert monitor.status == [DECIDED_SIGNIFICANT]
        assert (monitor.exceed[0], monitor.denominators[0]) == frozen

    def test_masking_freezes_decided_sets_only(self):
        monitor = ConvergenceMonitor(
            n_sets=2, policy=EarlyStopPolicy(min_replicates=64)
        )
        # set 0 decisively significant, set 1 straddles alpha
        monitor.fold(np.array([0, 13]), 256)
        assert monitor.status[0] == DECIDED_SIGNIFICANT
        assert monitor.status[1] == UNDECIDED
        monitor.fold(np.array([5, 13]), 256)
        assert monitor.exceed[0] == 0  # frozen
        assert monitor.denominators[0] == 256
        assert monitor.exceed[1] == 26  # still accumulating
        assert monitor.denominators[1] == 512

    def test_done_when_all_sets_decided(self):
        monitor = ConvergenceMonitor(
            n_sets=2, planned_replicates=1024,
            policy=EarlyStopPolicy(min_replicates=64),
        )
        monitor.fold(np.array([0, 240]), 256)
        assert monitor.done
        assert monitor.sets_converged == 2
        monitor.finish()
        assert monitor.replicates_saved == 1024 - 256
        monitor.finish()  # idempotent
        assert monitor.replicates_saved == 1024 - 256

    def test_frozen_pvalues_honor_per_set_denominators(self):
        monitor = ConvergenceMonitor(
            n_sets=2, policy=EarlyStopPolicy(min_replicates=64)
        )
        monitor.fold(np.array([0, 128]), 256)
        monitor.fold(np.array([9, 128]), 256)
        pvals = monitor.pvalues("plugin")
        assert pvals[0] == 0.0  # frozen at 0/256, masked increment ignored
        assert pvals[1] == pytest.approx(0.5)

    def test_shape_and_width_validation(self):
        monitor = ConvergenceMonitor(n_sets=2)
        with pytest.raises(ValueError, match="one entry per set"):
            monitor.fold(np.array([1, 2, 3]), 10)
        with pytest.raises(ValueError, match="batch_width"):
            monitor.fold(np.array([1, 2]), 0)
        with pytest.raises(ValueError, match="set_names"):
            ConvergenceMonitor(n_sets=2, set_names=["only-one"])


class TestEvents:
    def test_batch_and_converged_events_posted(self):
        bus = ListenerBus()
        collector = CollectingListener()
        bus.add_listener(collector)
        monitor = ConvergenceMonitor(
            n_sets=2, method="monte_carlo", planned_replicates=512,
            set_names=["geneA", "geneB"], bus=bus,
            policy=EarlyStopPolicy(min_replicates=64),
        )
        monitor.fold(np.array([0, 200]), 256)
        monitor.finish()
        batches = [e for e in collector.events
                   if isinstance(e, InferenceBatchCompleted)]
        converged = [e for e in collector.events
                     if isinstance(e, SnpSetConverged)]
        assert len(batches) == 2  # one per fold + the final accounting event
        assert batches[0].batch_width == 256
        assert batches[0].replicates_saved == 0
        assert batches[-1].batch_width == 0
        assert batches[-1].replicates_saved == 512 - 256
        assert batches[-1].early_stop is True
        assert {e.set_name for e in converged} == {"geneA", "geneB"}
        by_name = {e.set_name: e for e in converged}
        assert by_name["geneA"].status == DECIDED_SIGNIFICANT
        assert by_name["geneB"].status == DECIDED_NULL
        assert by_name["geneA"].ci_high < 0.05 < by_name["geneB"].ci_low

    def test_passive_finish_posts_no_savings(self):
        bus = ListenerBus()
        collector = CollectingListener()
        bus.add_listener(collector)
        monitor = ConvergenceMonitor(
            n_sets=1, planned_replicates=128, bus=bus
        )
        monitor.fold(np.array([3]), 128)
        monitor.finish()
        finals = [e for e in collector.events
                  if isinstance(e, InferenceBatchCompleted) and e.batch_width == 0]
        assert finals and finals[0].replicates_saved == 0


class TestPolicyConfig:
    def test_from_config_disabled_returns_none(self):
        config = EngineConfig(
            backend="serial", num_executors=1, executor_cores=1,
            default_parallelism=1,
        )
        assert EarlyStopPolicy.from_config(config) is None

    def test_from_config_carries_knobs(self):
        config = EngineConfig(
            backend="serial", num_executors=1, executor_cores=1,
            default_parallelism=1, inference_early_stop=True,
            inference_alpha=0.01, inference_ci="clopper-pearson",
            inference_min_replicates=32,
        )
        policy = EarlyStopPolicy.from_config(config)
        assert policy is not None
        assert policy.alpha == 0.01
        assert policy.ci == "clopper-pearson"
        assert policy.min_replicates == 32
        assert policy.mask_converged is True

    def test_spark_style_aliases(self):
        config = EngineConfig(
            backend="serial", num_executors=1, executor_cores=1,
            default_parallelism=1,
        )
        config.set("spark.inference.earlyStop", "true")
        config.set("spark.inference.alpha", "0.01")
        config.set("spark.inference.ci", "clopper-pearson")
        config.set("spark.inference.minReplicates", "128")
        assert config.inference_early_stop is True
        assert config.inference_alpha == 0.01
        assert config.inference_ci == "clopper-pearson"
        assert config.inference_min_replicates == 128

    def test_validation(self):
        base = dict(
            backend="serial", num_executors=1, executor_cores=1,
            default_parallelism=1,
        )
        with pytest.raises(ValueError, match="inference_alpha"):
            EngineConfig(**base, inference_alpha=1.5)
        with pytest.raises(ValueError, match="inference_ci"):
            EngineConfig(**base, inference_ci="wald")
        with pytest.raises(ValueError, match="inference_min_replicates"):
            EngineConfig(**base, inference_min_replicates=0)


class TestResamplerIntegration:
    def test_montecarlo_bit_identical_with_passive_monitor(self, tiny_dataset):
        from repro.core.local import LocalSparkScore

        plain = LocalSparkScore(tiny_dataset).monte_carlo(128, seed=5)
        monitor = ConvergenceMonitor(
            n_sets=tiny_dataset.n_sets, planned_replicates=128
        )
        watched = LocalSparkScore(tiny_dataset).monte_carlo(
            128, seed=5, monitor=monitor
        )
        np.testing.assert_array_equal(plain.exceed_counts, watched.exceed_counts)
        np.testing.assert_array_equal(plain.pvalues(), watched.pvalues())
        assert monitor.replicates_total == 128

    def test_permutation_bit_identical_with_passive_monitor(self, tiny_dataset):
        from repro.core.local import LocalSparkScore

        plain = LocalSparkScore(tiny_dataset).permutation(64, seed=5)
        monitor = ConvergenceMonitor(
            n_sets=tiny_dataset.n_sets, planned_replicates=64
        )
        watched = LocalSparkScore(tiny_dataset).permutation(
            64, seed=5, monitor=monitor
        )
        np.testing.assert_array_equal(plain.exceed_counts, watched.exceed_counts)

    def test_early_stop_truncates_and_agrees_at_alpha(self, tiny_dataset):
        """The acceptance drill in miniature: early stopping must spend
        fewer replicates yet make the same alpha=0.05 significance calls."""
        from repro.core.local import LocalSparkScore

        full = LocalSparkScore(tiny_dataset).monte_carlo(2048, seed=5)
        monitor = ConvergenceMonitor(
            n_sets=tiny_dataset.n_sets, planned_replicates=2048,
            policy=EarlyStopPolicy(min_replicates=64),
        )
        stopped = LocalSparkScore(tiny_dataset).monte_carlo(
            2048, seed=5, monitor=monitor
        )
        assert stopped.n_resamples < 2048
        assert monitor.replicates_saved == 2048 - stopped.n_resamples
        calls_full = full.pvalues() < 0.05
        calls_stopped = monitor.pvalues("plugin") < 0.05
        np.testing.assert_array_equal(calls_full, calls_stopped)

    def test_distributed_passive_monitoring_always_on(self, ctx, tiny_dataset):
        """The distributed path mints a monitor even with early stop off:
        telemetry is unconditional, action is opt-in."""
        from repro.core.sparkscore import SparkScoreAnalysis

        analysis = SparkScoreAnalysis(tiny_dataset, engine="distributed", ctx=ctx)
        result = analysis.monte_carlo(128, seed=3, batch_size=64)
        assert result.info["early_stop"] is False
        assert result.info["replicates_planned"] == 128
        assert result.info["replicates_saved"] == 0
        snap = ctx.inference.snapshot()
        assert snap["enabled"] is False
        assert snap["runs"] and snap["runs"][-1]["replicates_total"] == 128

    def test_distributed_rejects_caller_monitor(self, ctx, tiny_dataset):
        from repro.core.sparkscore import SparkScoreAnalysis

        analysis = SparkScoreAnalysis(tiny_dataset, engine="distributed", ctx=ctx)
        with pytest.raises(TypeError, match="mints its own monitor"):
            analysis.monte_carlo(
                64, monitor=ConvergenceMonitor(n_sets=tiny_dataset.n_sets)
            )

    def test_distributed_early_stop_saves_replicates(self, tiny_dataset):
        from repro.core.sparkscore import SparkScoreAnalysis
        from repro.engine.context import Context

        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=2,
            default_parallelism=4, inference_early_stop=True,
        )
        with Context(config) as ctx:
            analysis = SparkScoreAnalysis(
                tiny_dataset, engine="distributed", ctx=ctx
            )
            result = analysis.monte_carlo(2048, seed=3, batch_size=64)
        assert result.info["early_stop"] is True
        assert result.n_resamples < 2048
        assert (result.n_resamples + result.info["replicates_saved"] == 2048)
        # registry counters folded from the bus events
        from repro.obs.registry import REGISTRY

        rendered = REGISTRY.render()
        assert "engine_inference_replicates_total" in rendered
        assert "engine_inference_replicates_saved_total" in rendered


class TestAdvisorRules:
    def _final_batch(self, **overrides):
        base = {
            "event": "inference", "kind": "batch", "method": "monte_carlo",
            "batch_width": 0, "replicates_total": 4096,
            "planned_replicates": 4096, "sets_total": 4, "sets_converged": 4,
            "replicates_saved": 0, "min_pvalue": 0.25, "early_stop": False,
        }
        base.update(overrides)
        return base

    def test_enable_early_stop_fires_on_wasted_replicates(self):
        from repro.obs.advisor import DiagnosisInput, rule_enable_early_stop

        early = self._final_batch(
            batch_width=64, replicates_total=512, sets_converged=4,
        )
        final = self._final_batch()
        (rec,) = rule_enable_early_stop(DiagnosisInput(
            jobs=[], inference=[early, final],
        ))
        assert "--early-stop" in rec.action
        assert rec.evidence["replicates_past_decisiveness"] == 4096 - 512

    def test_enable_early_stop_silent_when_already_on(self):
        from repro.obs.advisor import DiagnosisInput, rule_enable_early_stop

        final = self._final_batch(early_stop=True, replicates_saved=3500)
        assert rule_enable_early_stop(
            DiagnosisInput(jobs=[], inference=[final])
        ) == []

    def test_insufficient_resamples_recommends_budget(self):
        from repro.obs.advisor import (
            DiagnosisInput,
            rule_insufficient_resamples,
        )

        # min p at the floor 1/(B+1): far more replicates needed for a
        # 10% relative error at that p
        final = self._final_batch(
            replicates_total=100, planned_replicates=100, min_pvalue=0.0099,
        )
        (rec,) = rule_insufficient_resamples(DiagnosisInput(
            jobs=[], inference=[final],
        ))
        assert rec.evidence["required_resamples"] > 100
        assert "--iterations" in rec.action

    def test_insufficient_resamples_silent_when_budget_ample(self):
        from repro.obs.advisor import (
            DiagnosisInput,
            rule_insufficient_resamples,
        )

        final = self._final_batch(
            replicates_total=100_000, planned_replicates=100_000,
            min_pvalue=0.3,
        )
        assert rule_insufficient_resamples(
            DiagnosisInput(jobs=[], inference=[final])
        ) == []


class TestFleetTelemetry:
    def test_note_inference_lands_in_snapshot(self):
        from repro.obs.fleet import FleetStats

        stats = FleetStats()
        stats.note_inference("driver-1", {
            "method": "monte_carlo", "replicates_total": 512,
            "planned_replicates": 2048, "replicates_per_sec": 1000.0,
            "sets_converged": 3, "sets_total": 8, "early_stop": True,
        })
        snap = stats.snapshot()
        info = snap["inference_by_driver"]["driver-1"]
        assert info["replicates_total"] == 512
        assert "fleet_replicates_total" in snap["series_names"]

    def test_note_inference_ignores_garbage(self):
        from repro.obs.fleet import FleetStats

        stats = FleetStats()
        stats.note_inference("driver-1", "not-a-dict")
        assert stats.snapshot()["inference_by_driver"] == {}
