"""Metrics registry: instruments, labels, exposition, and the bus bridge."""

import pytest

from repro.engine.listener import (
    BlockCached,
    BlockEvicted,
    JobEnd,
    ListenerBus,
    ShuffleFetch,
    ShuffleWrite,
    TaskEnd,
)
from repro.engine.metrics import JobMetrics, TaskMetrics, TaskRecord
from repro.obs.registry import MetricsListener, Registry


class TestCounter:
    def test_inc_and_value(self):
        c = Registry().counter("hits_total", "hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counters_never_decrease(self):
        c = Registry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        c = Registry().counter("ops_total", labelnames=("kind",))
        c.labels(kind="read").inc(3)
        c.labels(kind="write").inc()
        assert c.labels(kind="read").value == 3
        assert c.labels(kind="write").value == 1

    def test_wrong_labels_rejected(self):
        c = Registry().counter("ops_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.labels(color="red")
        with pytest.raises(ValueError):
            c.inc()  # labeled instrument needs .labels()


class TestGauge:
    def test_set_and_dec(self):
        g = Registry().gauge("depth")
        g.set(10)
        g.dec(3)
        assert g.value == 7

    def test_dec_invalid_on_counter(self):
        c = Registry().counter("n_total")
        with pytest.raises(TypeError):
            c.dec()


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        h = Registry().histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_quantile_upper_bound(self):
        h = Registry().histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.05)
        h.observe(5.0)
        assert h.labels().quantile(0.5) == 0.1
        assert h.labels().quantile(1.0) == 10.0

    def test_observe_invalid_on_counter(self):
        c = Registry().counter("n_total")
        with pytest.raises(TypeError):
            c.observe(1.0)


class TestRegistry:
    def test_registration_is_idempotent(self):
        r = Registry()
        a = r.counter("jobs_total", "jobs")
        b = r.counter("jobs_total")
        assert a is b

    def test_kind_conflict_raises(self):
        r = Registry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")

    def test_render_prometheus_text(self):
        r = Registry()
        r.counter("jobs_total", "jobs run", labelnames=("engine",)).labels(
            engine="local"
        ).inc(2)
        r.histogram("dur_seconds", "durations", buckets=(1.0,)).observe(0.5)
        text = r.render()
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{engine="local"} 2' in text
        assert 'dur_seconds_bucket{le="1"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 0.5" in text
        assert "dur_seconds_count 1" in text

    def test_snapshot_skips_histograms(self):
        r = Registry()
        r.counter("a_total").inc()
        r.histogram("b_seconds").observe(1.0)
        snap = r.snapshot()
        assert snap == {"a_total": 1}


class TestMetricsListener:
    def _bus(self):
        registry = Registry()
        bus = ListenerBus()
        bus.add_listener(MetricsListener(registry))
        return bus, registry

    def _record(self, succeeded=True, hits=0, misses=0, duration=0.5):
        return TaskRecord(
            stage_id=0, partition=0, attempt=0, executor_id="e0",
            duration_seconds=duration,
            metrics=TaskMetrics(cache_hits=hits, cache_misses=misses),
            succeeded=succeeded,
        )

    def test_task_outcomes_and_cache_counts(self):
        bus, registry = self._bus()
        bus.post(TaskEnd(record=self._record(hits=2, misses=1)))
        bus.post(TaskEnd(record=self._record(succeeded=False)))
        snap = registry.snapshot()
        assert snap['engine_tasks_total{outcome="success"}'] == 1
        assert snap['engine_tasks_total{outcome="failure"}'] == 1
        assert snap["engine_cache_hits_total"] == 2
        assert snap["engine_cache_misses_total"] == 1
        assert registry.get("engine_task_seconds").count == 1  # failures excluded

    def test_shuffle_and_block_series(self):
        bus, registry = self._bus()
        bus.post(ShuffleWrite(shuffle_id=0, map_partition=0, executor_id="e0",
                              bytes_written=100, records_written=10))
        bus.post(ShuffleFetch(shuffle_id=0, reduce_partition=0, records_read=10))
        bus.post(BlockCached(block_id=("rdd", 1, 0), executor_id="e0",
                             size=64, level="memory"))
        bus.post(BlockEvicted(block_id=("rdd", 1, 0), executor_id="e0",
                              size=64, spilled=False))
        snap = registry.snapshot()
        assert snap["engine_shuffle_bytes_total"] == 100
        assert snap['engine_shuffle_records_total{direction="write"}'] == 10
        assert snap['engine_shuffle_records_total{direction="read"}'] == 10
        assert snap["engine_blocks_cached_total"] == 1
        assert snap["engine_block_bytes_cached_total"] == 64
        assert snap["engine_blocks_evicted_total"] == 1

    def test_job_end_counts(self):
        bus, registry = self._bus()
        bus.post(JobEnd(job_id=0, job=JobMetrics(job_id=0)))
        assert registry.snapshot()["engine_jobs_total"] == 1
