"""Metrics registry: instruments, labels, exposition, and the bus bridge."""

import pytest

from repro.engine.listener import (
    BlockCached,
    BlockEvicted,
    JobEnd,
    ListenerBus,
    ShuffleFetch,
    ShuffleWrite,
    TaskEnd,
)
from repro.engine.metrics import JobMetrics, TaskMetrics, TaskRecord
from repro.obs.registry import MetricsListener, Registry


class TestCounter:
    def test_inc_and_value(self):
        c = Registry().counter("hits_total", "hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counters_never_decrease(self):
        c = Registry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        c = Registry().counter("ops_total", labelnames=("kind",))
        c.labels(kind="read").inc(3)
        c.labels(kind="write").inc()
        assert c.labels(kind="read").value == 3
        assert c.labels(kind="write").value == 1

    def test_wrong_labels_rejected(self):
        c = Registry().counter("ops_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.labels(color="red")
        with pytest.raises(ValueError):
            c.inc()  # labeled instrument needs .labels()


class TestGauge:
    def test_set_and_dec(self):
        g = Registry().gauge("depth")
        g.set(10)
        g.dec(3)
        assert g.value == 7

    def test_dec_invalid_on_counter(self):
        c = Registry().counter("n_total")
        with pytest.raises(TypeError):
            c.dec()


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        h = Registry().histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_quantile_upper_bound(self):
        h = Registry().histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.05)
        h.observe(5.0)
        assert h.labels().quantile(0.5) == 0.1
        assert h.labels().quantile(1.0) == 10.0

    def test_observe_invalid_on_counter(self):
        c = Registry().counter("n_total")
        with pytest.raises(TypeError):
            c.observe(1.0)


class TestRegistry:
    def test_registration_is_idempotent(self):
        r = Registry()
        a = r.counter("jobs_total", "jobs")
        b = r.counter("jobs_total")
        assert a is b

    def test_kind_conflict_raises(self):
        r = Registry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")

    def test_render_prometheus_text(self):
        r = Registry()
        r.counter("jobs_total", "jobs run", labelnames=("engine",)).labels(
            engine="local"
        ).inc(2)
        r.histogram("dur_seconds", "durations", buckets=(1.0,)).observe(0.5)
        text = r.render()
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{engine="local"} 2' in text
        assert 'dur_seconds_bucket{le="1"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 0.5" in text
        assert "dur_seconds_count 1" in text

    def test_snapshot_skips_histograms(self):
        r = Registry()
        r.counter("a_total").inc()
        r.histogram("b_seconds").observe(1.0)
        snap = r.snapshot()
        assert snap == {"a_total": 1}


class TestMetricsListener:
    def _bus(self):
        registry = Registry()
        bus = ListenerBus()
        bus.add_listener(MetricsListener(registry))
        return bus, registry

    def _record(self, succeeded=True, hits=0, misses=0, duration=0.5):
        return TaskRecord(
            stage_id=0, partition=0, attempt=0, executor_id="e0",
            duration_seconds=duration,
            metrics=TaskMetrics(cache_hits=hits, cache_misses=misses),
            succeeded=succeeded,
        )

    def test_task_outcomes_and_cache_counts(self):
        bus, registry = self._bus()
        bus.post(TaskEnd(record=self._record(hits=2, misses=1)))
        bus.post(TaskEnd(record=self._record(succeeded=False)))
        snap = registry.snapshot()
        assert snap['engine_tasks_total{outcome="success"}'] == 1
        assert snap['engine_tasks_total{outcome="failure"}'] == 1
        assert snap["engine_cache_hits_total"] == 2
        assert snap["engine_cache_misses_total"] == 1
        assert registry.get("engine_task_seconds").count == 1  # failures excluded

    def test_shuffle_and_block_series(self):
        bus, registry = self._bus()
        bus.post(ShuffleWrite(shuffle_id=0, map_partition=0, executor_id="e0",
                              bytes_written=100, records_written=10))
        bus.post(ShuffleFetch(shuffle_id=0, reduce_partition=0, records_read=10))
        bus.post(BlockCached(block_id=("rdd", 1, 0), executor_id="e0",
                             size=64, level="memory"))
        bus.post(BlockEvicted(block_id=("rdd", 1, 0), executor_id="e0",
                              size=64, spilled=False))
        snap = registry.snapshot()
        assert snap["engine_shuffle_bytes_total"] == 100
        assert snap['engine_shuffle_records_total{direction="write"}'] == 10
        assert snap['engine_shuffle_records_total{direction="read"}'] == 10
        assert snap["engine_blocks_cached_total"] == 1
        assert snap["engine_block_bytes_cached_total"] == 64
        assert snap["engine_blocks_evicted_total"] == 1

    def test_job_end_counts(self):
        bus, registry = self._bus()
        bus.post(JobEnd(job_id=0, job=JobMetrics(job_id=0)))
        assert registry.snapshot()["engine_jobs_total"] == 1


class TestExposition:
    def test_label_values_escaped(self):
        registry = Registry()
        c = registry.counter("esc_total", "t", labelnames=("path",))
        c.labels(path='a\\b"c\nd').inc()
        (sample,) = [
            line for line in registry.render().splitlines()
            if line.startswith("esc_total{")
        ]
        assert sample == 'esc_total{path="a\\\\b\\"c\\nd"} 1'

    def test_help_text_escaped(self):
        registry = Registry()
        registry.counter("h_total", "line one\nline two \\ backslash")
        rendered = registry.render()
        assert "# HELP h_total line one\\nline two \\\\ backslash" in rendered
        assert "\nline two" not in rendered.replace("\\n", "")

    def test_stable_ordering_is_deterministic(self):
        def build():
            registry = Registry()
            b = registry.counter("b_total", "b", labelnames=("x",))
            a = registry.gauge("a_gauge", "a")
            b.labels(x="2").inc(2)
            b.labels(x="1").inc()
            a.set(5)
            return registry.render()

        first, second = build(), build()
        assert first == second
        lines = [l for l in first.splitlines() if not l.startswith("#")]
        assert lines == ["a_gauge 5", 'b_total{x="1"} 1', 'b_total{x="2"} 2']

    def test_openmetrics_render_timestamps_and_eof(self):
        registry = Registry()
        registry.counter("om_total", "t").inc(3)
        rendered = registry.render(openmetrics=True, timestamp=12.3456)
        assert "om_total 3 12.346" in rendered
        assert rendered.rstrip().endswith("# EOF")
        # plain render stays timestamp- and EOF-free
        plain = registry.render()
        assert "om_total 3\n" in plain and "# EOF" not in plain

    def test_openmetrics_histogram_series_timestamped(self):
        registry = Registry()
        registry.histogram("om_seconds", "t", buckets=(1.0, 2.0)).observe(1.5)
        lines = registry.render(openmetrics=True, timestamp=7.0).splitlines()
        assert 'om_seconds_bucket{le="2"} 1 7' in lines
        assert "om_seconds_count 1 7" in lines

    def test_monitoring_counters_bridge_from_bus(self):
        from repro.engine.listener import (
            AlertFired,
            StageSkewDetected,
            StragglerDetected,
        )

        registry = Registry()
        bus = ListenerBus()
        bus.add_listener(MetricsListener(registry))
        bus.post(StageSkewDetected(stage_id=0, job_id=0, metric="duration",
                                   max_over_median=20.0))
        bus.post(StragglerDetected(stage_id=0, job_id=0, partition=3,
                                   attempt=0, executor_id="e0",
                                   duration_seconds=9.0, median_seconds=1.0))
        bus.post(AlertFired(rule="r", severity="critical", metric="m",
                            labels={}, value=1.0, description=""))
        bus.stop()
        snap = registry.snapshot()
        assert snap["engine_stage_skew_total"] == 1
        assert snap["engine_stragglers_total"] == 1
        assert snap['engine_alerts_fired_total{severity="critical"}'] == 1
