"""ProgressTracker state machine and Spark-style console bars."""

import io

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.listener import (
    ExecutorHeartbeat,
    ExecutorTimedOut,
    JobEnd,
    JobStart,
    ListenerBus,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
    TaskStart,
)
from repro.engine.metrics import JobMetrics, StageMetrics, TaskRecord
from repro.engine.task import TaskContext
from repro.obs.progress import ConsoleProgressListener, ProgressTracker


def _task_end(stage_id, partition, succeeded=True):
    tc = TaskContext(stage_id, partition, 0, "exec-0")
    return TaskEnd(TaskRecord(
        stage_id=stage_id, partition=partition, attempt=0,
        executor_id="exec-0", duration_seconds=0.01, metrics=tc.metrics,
        succeeded=succeeded, error=None if succeeded else "boom",
    ))


def _tracked():
    """A tracker wired to a real bus (typed hooks dispatch there)."""
    bus = ListenerBus()
    tracker = bus.add_listener(ProgressTracker())
    return bus, tracker


class TestTracker:
    def test_job_and_stage_lifecycle(self):
        bus, tracker = _tracked()
        bus.post(JobStart(job_id=0, description="sum"))
        bus.post(StageSubmitted(
            stage_id=0, attempt=0, name="stage 0", job_id=0, num_tasks=2
        ))
        bus.post(TaskStart(stage_id=0, partition=0, attempt=0,
                           executor_id="exec-0"))
        snap = tracker.snapshot()
        assert snap["jobs"][0]["state"] == "running"
        assert snap["stages"][0]["active_tasks"] == 1
        assert snap["stages"][0]["completed_tasks"] == 0

        bus.post(_task_end(0, 0))
        bus.post(_task_end(0, 1))
        snap = tracker.snapshot()
        assert snap["stages"][0]["completed_tasks"] == 2
        assert snap["stages"][0]["active_tasks"] == 0

        job = JobMetrics(job_id=0, description="sum", wall_seconds=0.1)
        stage = StageMetrics(stage_id=0, name="stage 0", num_tasks=2)
        bus.post(StageCompleted(stage=stage, job_id=0))
        bus.post(JobEnd(job_id=0, job=job, succeeded=True))
        snap = tracker.snapshot()
        assert snap["stages"][0]["state"] == "complete"
        assert snap["jobs"][0]["state"] == "succeeded"
        assert tracker.active_stages() == []
        assert not bus.listener_errors

    def test_failed_tasks_counted(self):
        bus, tracker = _tracked()
        bus.post(StageSubmitted(
            stage_id=0, attempt=0, name="s", job_id=0, num_tasks=2
        ))
        bus.post(_task_end(0, 0, succeeded=False))
        assert tracker.snapshot()["stages"][0]["failed_tasks"] == 1

    def test_stage_retry_tracked_separately(self):
        bus, tracker = _tracked()
        bus.post(StageSubmitted(
            stage_id=0, attempt=0, name="s", job_id=0, num_tasks=2
        ))
        bus.post(StageSubmitted(
            stage_id=0, attempt=1, name="s", job_id=0, num_tasks=2
        ))
        bus.post(_task_end(0, 0))
        stages = tracker.snapshot()["stages"]
        assert len(stages) == 2
        # task events land on the newest attempt
        by_attempt = {s["attempt"]: s for s in stages}
        assert by_attempt[1]["completed_tasks"] == 1
        assert by_attempt[0]["completed_tasks"] == 0

    def test_executor_liveness_from_heartbeats(self):
        bus, tracker = _tracked()
        beat = ExecutorHeartbeat(
            executor_id="exec-0", inflight=((0, 1, 0),),
            records_read=42, rss_bytes=1 << 20, worker_pid=123,
        )
        bus.post(beat)
        bus.post(beat)
        bus.post(ExecutorTimedOut(executor_id="exec-0",
                                  seconds_since_heartbeat=1.0))
        (info,) = tracker.snapshot()["executors"]
        assert info["heartbeats"] == 2
        assert info["records_read"] == 42
        assert info["worker_pid"] == 123
        assert info["state"] == "timed_out"


class TestConsoleBars:
    def test_bar_rendered_and_cleared(self):
        out = io.StringIO()
        config = EngineConfig(backend="serial", num_executors=1,
                              executor_cores=1, default_parallelism=4)
        with Context(config) as ctx:
            console = ConsoleProgressListener(
                ctx.progress, stream=out, min_interval=0.0
            )
            ctx.add_listener(console)
            ctx.parallelize(range(16), 4).sum()
        text = out.getvalue()
        assert "[Stage 0:" in text
        assert text.endswith("\r"), "bar must be cleared once the job ends"

    def test_bar_format(self):
        bus, tracker = _tracked()
        bus.post(StageSubmitted(
            stage_id=3, attempt=0, name="s", job_id=0, num_tasks=48
        ))
        for p in range(12):
            bus.post(_task_end(3, p))
        console = ConsoleProgressListener(tracker, stream=io.StringIO(), width=50)
        (stage,) = tracker.active_stages()
        bar = console._bar(stage)
        assert bar.startswith("[Stage 3:")
        assert bar.endswith("(12/48)]")
        assert "=" * 12 + ">" in bar  # 50 * 12/48 = 12 filled columns

    def test_closed_stream_tolerated(self):
        bus, tracker = _tracked()
        bus.post(StageSubmitted(
            stage_id=0, attempt=0, name="s", job_id=0, num_tasks=2
        ))
        stream = io.StringIO()
        console = ConsoleProgressListener(tracker, stream=stream, min_interval=0.0)
        console.on_task_end(_task_end(0, 0))
        stream.close()
        console.on_task_end(_task_end(0, 1))  # must not raise
        console.close()
