"""The fleet observability plane: cross-process trace propagation and
cluster-resident metrics federation.

Two properties anchor this file.  First, trace stitching: every backend
-- in-process or across the cluster's socket boundary -- must produce
the *same* span tree for the same job, with worker task-phase spans
parented under the driver's stage spans and every span stamped with the
driver's trace id.  Second, persistence: :class:`FleetStats` lives in
the cluster manager, so its series must survive Context teardown and be
queryable by later drivers (and distinguish drivers by trace id).

Workload functions are module-level: task-binary identity is the hash of
the pickled closure, and lambdas on different source lines would defeat
the warm-cache assertions.
"""

import json
import types
import urllib.request

import pytest

from repro.config import EngineConfig
from repro.engine.cluster_backend import ClusterHead, fleet_status
from repro.engine.context import Context
from repro.obs.fleet import FleetStats, render_fleet_families


def _cluster_config(**overrides) -> EngineConfig:
    base = dict(
        backend="cluster",
        num_executors=2,
        executor_cores=2,
        default_parallelism=4,
    )
    base.update(overrides)
    return EngineConfig(**base)


def _add_one(x):
    return x + 1


def _raise_boom(x):
    raise ValueError("boom")


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        assert resp.status == 200
        return json.loads(resp.read().decode())


# -- FleetStats unit behavior -------------------------------------------------


class TestFleetStats:
    def test_task_attribution_by_driver(self):
        fs = FleetStats()
        fs.note_attach("trace-a")
        assert fs.current_driver() == "trace-a"
        fs.note_task_done("exec-0", "trace-a")
        fs.note_task_done("exec-1", "trace-a")
        fs.note_task_done("exec-0", None, ok=False)
        fs.note_detach()
        assert fs.current_driver() == ""

        snap = fs.snapshot()
        assert snap["jobs_served"] == 1
        assert snap["tasks_completed"] == 3
        assert snap["task_errors"] == 1
        assert snap["tasks_by_driver"] == {"trace-a": 2, "unattributed": 1}
        assert snap["drivers_seen"] == ["trace-a", "unattributed"]
        assert snap["uptime_seconds"] >= 0.0
        # the per-driver throughput series is keyed by executor AND driver
        labels = {
            (s["labels"].get("executor_id"), s["labels"].get("driver"))
            for s in snap["series"] if s["name"] == "fleet_tasks_total"
        }
        assert ("exec-0", "trace-a") in labels
        assert ("exec-0", "unattributed") in labels

    def test_heartbeat_folds_per_executor_series(self):
        fs = FleetStats()
        record = types.SimpleNamespace(
            executor_id="exec-7", rss_bytes=1 << 20, inflight=[1, 2],
            records_read=42,
        )
        fs.note_heartbeat(record)
        snap = fs.snapshot()
        assert snap["heartbeats_received"] == 1
        assert {"fleet_executor_rss_bytes", "fleet_executor_inflight",
                "fleet_records_read"} <= set(snap["series_names"])
        by_name = {s["name"]: s for s in snap["series"]}
        assert by_name["fleet_executor_rss_bytes"]["labels"] == {
            "executor_id": "exec-7"
        }
        assert by_name["fleet_executor_inflight"]["samples"][-1][1] == 2.0

    def test_lifecycle_ring_is_bounded(self):
        fs = FleetStats()
        for i in range(300):
            fs.note_lifecycle(f"exec-{i % 4}", "registered")
        snap = fs.snapshot()
        assert len(snap["lifecycle"]) == 256
        # oldest entries fell off; every row is a [time, executor, state] triple
        assert all(len(row) == 3 for row in snap["lifecycle"])

    def test_snapshot_is_json_safe(self):
        fs = FleetStats()
        fs.note_attach("t")
        fs.note_task_done("exec-0", "t")
        fs.note_frame_bytes(bytes_in=10, bytes_out=20)
        json.dumps(fs.snapshot())  # must not raise


class TestRenderFleetFamilies:
    def _snapshot(self):
        fs = FleetStats()
        fs.note_attach("t")
        fs.note_task_done("exec-0", "t")
        fs.note_heartbeat(types.SimpleNamespace(
            executor_id="exec-0", rss_bytes=100.0, inflight=[], records_read=1,
        ))
        return fs.snapshot()

    def test_renders_help_type_and_labeled_samples(self):
        lines = render_fleet_families(self._snapshot())
        assert "# TYPE fleet_tasks_total counter" in lines
        assert "# TYPE fleet_executor_rss_bytes gauge" in lines
        sample = next(l for l in lines if l.startswith("fleet_tasks_total{"))
        assert 'driver="t"' in sample and 'executor_id="exec-0"' in sample

    def test_skip_set_guards_family_collisions(self):
        """A family the Context registry already exposes must not appear a
        second time -- duplicate HELP/TYPE blocks are a scrape error."""
        lines = render_fleet_families(
            self._snapshot(), skip={"fleet_tasks_total"}
        )
        assert not any("fleet_tasks_total" in l for l in lines)
        assert any("fleet_executor_rss_bytes" in l for l in lines)


# -- trace stitching across backends -----------------------------------------


def _span_index(spans):
    return {s.span_id: s for s in spans}


def _tree_shape(spans):
    """Canonical stitched-tree shape: (category, parent category) edge
    multiset over the core hierarchy, independent of ids and timing."""
    by_id = _span_index(spans)
    return sorted(
        (s.category,
         by_id[s.parent_id].category if s.parent_id in by_id else None)
        for s in spans if s.category in ("job", "stage", "task")
    )


def _phase_chains(spans):
    """(phase name, parent category chain) for every worker task-phase
    fragment -- the cross-process stitching under test."""
    by_id = _span_index(spans)
    chains = set()
    for span in spans:
        if span.category != "task_phase":
            continue
        task = by_id[span.parent_id]
        stage = by_id[task.parent_id]
        job = by_id[stage.parent_id]
        chains.add((span.attrs["phase"], task.category, stage.category,
                    job.category))
    return chains


class TestTraceParity:
    BACKENDS = ("serial", "threads", "processes", "cluster")

    def _run_traced(self, backend, tmp_path):
        config = EngineConfig(
            backend=backend, num_executors=2, executor_cores=2,
            default_parallelism=4,
        )
        path = str(tmp_path / f"{backend}.jsonl")
        with Context(config, trace_path=path) as ctx:
            assert ctx.parallelize(range(12), 4).map(_add_one).sum() == 78
            return ctx.trace_id, list(ctx.spans)

    def test_every_backend_stitches_the_same_tree(self, tmp_path):
        shapes, phases = {}, {}
        for backend in self.BACKENDS:
            trace_id, spans = self._run_traced(backend, tmp_path)
            # every span -- including worker-shipped fragments -- carries
            # the driver's trace id
            assert {s.attrs.get("trace_id") for s in spans} == {trace_id}
            shapes[backend] = _tree_shape(spans)
            phases[backend] = _phase_chains(spans)
        # one job span, one stage under it, four tasks under the stage --
        # identically stitched whether tasks ran in-process or over sockets
        assert len(set(map(tuple, shapes.values()))) == 1
        assert shapes["cluster"] == [
            ("job", None), ("stage", "job"),
            ("task", "stage"), ("task", "stage"),
            ("task", "stage"), ("task", "stage"),
        ]
        # worker task phases cross the process/socket boundary and stitch
        # under task -> stage -> job exactly as they do on the local pool
        assert phases["cluster"] == phases["processes"]
        assert {p for p, *_ in phases["cluster"]} >= {
            "deserialize", "compute", "result_serialize"
        }
        assert all(
            chain == ["task", "stage", "job"]
            for _, *chain in phases["cluster"]
        )

    def test_cluster_chrome_trace_has_worker_phase_tracks(self, tmp_path):
        """Acceptance: the exported Chrome trace from a cluster job carries
        worker task-phase slices on executor tracks, stamped with the
        driver's trace id."""
        path = str(tmp_path / "cluster_trace.json")
        with Context(_cluster_config(), trace_path=path) as ctx:
            ctx.parallelize(range(12), 4).map(_add_one).sum()
            trace_id = ctx.trace_id
        with open(path) as fh:
            trace = json.load(fh)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_cat = {}
        for e in slices:
            by_cat.setdefault(e["cat"], []).append(e)
        assert set(by_cat) == {"job", "stage", "task", "task_phase"}
        assert all(e["args"]["trace_id"] == trace_id for e in slices)
        # job/stage on the driver track (tid 0); worker phases elsewhere
        assert all(e["tid"] == 0 for e in by_cat["job"] + by_cat["stage"])
        assert all(e["tid"] != 0 for e in by_cat["task_phase"])

    def test_two_drivers_keep_distinct_trace_ids_on_one_fleet(self):
        """Two successive Contexts share the persistent fleet but must stay
        distinguishable: distinct trace ids, each attributed its own tasks
        in the fleet's per-driver ledger."""
        config = _cluster_config()
        with Context(config) as ctx1:
            ctx1.parallelize(range(8), 4).map(_add_one).collect()
            first_trace = ctx1.trace_id
            manager = ctx1.backend._manager
        with Context(config) as ctx2:
            assert ctx2.backend._manager is manager  # same persistent fleet
            ctx2.parallelize(range(8), 4).map(_add_one).collect()
            second_trace = ctx2.trace_id
        assert first_trace != second_trace
        snap = manager.fleet_snapshot()
        assert snap["tasks_by_driver"].get(first_trace, 0) >= 4
        assert snap["tasks_by_driver"].get(second_trace, 0) >= 4
        assert {first_trace, second_trace} <= set(snap["drivers_seen"])


# -- federation surfaces ------------------------------------------------------


class TestFleetSurfaces:
    def test_api_fleet_persists_across_contexts(self):
        """Acceptance: /api/fleet serves per-executor series that survive
        Context teardown -- the second driver sees the first's history."""
        config = _cluster_config()
        with Context(config, ui_port=0) as ctx1:
            ctx1.parallelize(range(16), 4).map(_add_one).sum()
            first_trace = ctx1.trace_id
            first = _get_json(ctx1.ui_url + "/api/fleet")
            assert first["enabled"] is True
            jobs_before = first["jobs_served"]
        with Context(config, ui_port=0) as ctx2:
            ctx2.parallelize(range(16), 4).map(_add_one).sum()
            snap = _get_json(ctx2.ui_url + "/api/fleet?window=3600")
        assert snap["enabled"] is True
        assert snap["jobs_served"] >= jobs_before + 1
        assert snap["uptime_seconds"] > 0
        tasks_series = [
            s for s in snap["series"] if s["name"] == "fleet_tasks_total"
        ]
        assert {s["labels"]["executor_id"] for s in tasks_series} \
            >= {"exec-0", "exec-1"}
        # the dead driver's series persisted in the fleet store
        assert first_trace in {s["labels"].get("driver") for s in tasks_series}
        assert snap["warm"]["binaries_cached"] >= 1

    def test_api_fleet_disabled_off_cluster(self, serial_config):
        with Context(serial_config, ui_port=0) as ctx:
            assert _get_json(ctx.ui_url + "/api/fleet") == {"enabled": False}

    def test_metrics_exposition_includes_fleet_families_once(self):
        """Satellite: fleet series join /metrics with their own families,
        never colliding with the Context registry's, and stay inside the
        exposition's # EOF terminator."""
        with Context(_cluster_config(), ui_port=0) as ctx:
            ctx.parallelize(range(16), 4).map(_add_one).sum()
            with urllib.request.urlopen(ctx.ui_url + "/metrics", timeout=5.0) as r:
                body = r.read().decode()
        assert "# TYPE fleet_tasks_total counter" in body
        type_lines = [l for l in body.splitlines() if l.startswith("# TYPE ")]
        families = [l.split()[2] for l in type_lines]
        assert len(families) == len(set(families)), "duplicate metric family"
        assert body.rstrip().endswith("# EOF")

    def test_fleet_status_over_head_socket(self):
        """The FLEET frame round-trips the snapshot through an external
        head, and per-connection driver labels attribute the tasks."""
        head = ClusterHead(num_executors=1, executor_cores=2, port=0)
        try:
            config = _cluster_config(
                num_executors=1, cluster_address=head.address,
                cluster_secret=head.secret,
            )
            with Context(config) as ctx:
                ctx.parallelize(range(8), 4).map(_add_one).collect()
            snap = fleet_status(head.address, head.secret)
            assert snap["jobs_served"] >= 1
            assert snap["tasks_completed"] >= 4
            assert sum(snap["tasks_by_driver"].values()) >= 4
            # the attach payload named the driver; no fallback conn label
            assert any(d.startswith("driver-") for d in snap["drivers_seen"])
            assert "fleet_tasks_total" in snap["series_names"]
        finally:
            head.stop()

    def test_postmortem_bundle_carries_fleet_snapshot(self, tmp_path):
        """Satellite: a job failure on a persistent fleet dumps the
        cluster-resident history into the post-mortem bundle."""
        from repro.obs.flightrecorder import load_bundle

        with Context(_cluster_config(), flight_recorder=str(tmp_path)) as ctx:
            with pytest.raises(Exception, match="boom"):
                ctx.parallelize(range(4), 4).map(_raise_boom).collect()
            (path,) = ctx.flight_recorder.bundles
        fleet = load_bundle(path)["fleet"]
        assert fleet["jobs_served"] >= 1
        assert fleet["task_errors"] >= 1
        assert "warm" in fleet and "lifecycle" in fleet


class TestFleetCli:
    def test_cluster_status_and_top_render_fleet_state(self, capsys):
        from repro.cli import main

        head = ClusterHead(num_executors=1, executor_cores=2, port=0)
        try:
            config = _cluster_config(
                num_executors=1, cluster_address=head.address,
                cluster_secret=head.secret,
            )
            with Context(config) as ctx:
                ctx.parallelize(range(8), 4).map(_add_one).collect()

            rc = main(["cluster", "status", "--address", head.address,
                       "--secret", head.secret])
            out = capsys.readouterr().out
            assert rc == 0
            assert "job(s) served" in out and "warm-cache bytes saved" in out

            rc = main(["cluster", "top", "--address", head.address,
                       "--secret", head.secret, "--iterations", "1"])
            out = capsys.readouterr().out
            assert rc == 0
            assert f"fleet at {head.address}" in out
            assert "exec-0" in out and "occupancy trend" in out
            assert "warm cache:" in out
        finally:
            head.stop()
