"""The in-memory TSDB: series retention tiers, queries, store, sampler."""

import math
import threading
import time

import pytest

from repro.obs.registry import Registry
from repro.obs.timeseries import (
    Bin,
    MetricsSampler,
    Series,
    TimeSeriesStore,
    label_key,
)


class TestLabelKey:
    def test_canonical_sorted_pairs(self):
        assert label_key({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))
        assert label_key(None) == ()
        assert label_key([("x", 1)]) == (("x", "1"),)

    def test_order_insensitive(self):
        assert label_key({"a": "1", "b": "2"}) == label_key({"b": "2", "a": "1"})


class TestSeriesRetention:
    def test_append_tracks_change(self):
        s = Series("m")
        assert s.append(1.0, 5.0) is True      # first sample is a change
        assert s.append(2.0, 5.0) is False     # same value
        assert s.append(3.0, 6.0) is True
        assert s.last_change == 3.0
        assert s.samples_recorded == 3

    def test_raw_ring_bounded(self):
        s = Series("m", raw_capacity=4, downsample_factor=2)
        for i in range(10):
            s.append(float(i), float(i))
        assert len(s.raw) == 4
        assert s.raw[0][0] == 6.0  # oldest retained raw sample

    def test_evictions_fold_into_bins_not_dropped(self):
        s = Series("m", raw_capacity=2, downsample_factor=2)
        for i in range(8):
            s.append(float(i), float(i * 10))
        # 6 evicted samples -> 3 complete bins of 2
        assert len(s.downsampled) == 3
        first = s.downsampled[0]
        assert (first.min, first.max, first.count) == (0.0, 10.0, 2)
        assert first.mean == pytest.approx(5.0)

    def test_partial_bin_pending_until_full(self):
        s = Series("m", raw_capacity=1, downsample_factor=4)
        for i in range(3):
            s.append(float(i), 1.0)
        # 2 evictions, factor 4: nothing downsampled yet, pending holds them
        assert len(s.downsampled) == 0
        assert s._pending is not None and s._pending.count == 2

    def test_downsampled_ring_bounded(self):
        s = Series("m", raw_capacity=1, downsample_factor=1,
                   downsampled_capacity=5)
        for i in range(100):
            s.append(float(i), float(i))
        assert len(s.downsampled) == 5

    def test_memory_strictly_bounded(self):
        s = Series("m", raw_capacity=8, downsample_factor=4,
                   downsampled_capacity=16)
        for i in range(10_000):
            s.append(float(i), float(i))
        assert len(s.raw) <= 8
        assert len(s.downsampled) <= 16


class TestSeriesQueries:
    def test_samples_merges_tiers_in_time_order(self):
        s = Series("m", raw_capacity=2, downsample_factor=2)
        for i in range(6):
            s.append(float(i), float(i))
        pts = s.samples()
        times = [t for t, _ in pts]
        assert times == sorted(times)
        # raw tail present at full resolution
        assert pts[-1] == (5.0, 5.0)
        # downsampled history present as bin means at midpoints
        assert (0.5, 0.5) in pts

    def test_samples_range_clip(self):
        s = Series("m")
        for i in range(10):
            s.append(float(i), float(i))
        assert [t for t, _ in s.samples(3.0, 6.0)] == [3.0, 4.0, 5.0, 6.0]

    def test_latest(self):
        s = Series("m")
        assert s.latest() is None
        s.append(1.0, 7.0)
        assert s.latest() == (1.0, 7.0)

    def test_rate_over_window(self):
        s = Series("m", kind="counter")
        for i in range(11):
            s.append(float(i), float(i * 3))  # +3/s
        assert s.rate(window=5.0, now=10.0) == pytest.approx(3.0)

    def test_rate_ignores_counter_resets(self):
        s = Series("m", kind="counter")
        s.append(0.0, 100.0)
        s.append(1.0, 110.0)
        s.append(2.0, 5.0)    # process restart: counter reset
        s.append(3.0, 15.0)
        # positive deltas only: 10 + 10 over 3 seconds
        assert s.rate(window=10.0, now=3.0) == pytest.approx(20.0 / 3.0)

    def test_rate_empty_or_single_point(self):
        s = Series("m")
        assert s.rate(5.0, now=1.0) == 0.0
        s.append(0.0, 1.0)
        assert s.rate(5.0, now=1.0) == 0.0

    def test_percentile_interpolates(self):
        s = Series("m")
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            s.append(float(i), v)
        assert s.percentile(0.0, window=10.0, now=3.0) == 10.0
        assert s.percentile(1.0, window=10.0, now=3.0) == 40.0
        assert s.percentile(0.5, window=10.0, now=3.0) == pytest.approx(25.0)

    def test_percentile_empty(self):
        assert Series("m").percentile(0.9, window=5.0) == 0.0

    def test_window_stats(self):
        s = Series("m")
        for i, v in enumerate([5.0, 1.0, 9.0]):
            s.append(float(i), v)
        stats = s.window_stats(window=10.0, now=2.0)
        assert stats == {
            "count": 3, "min": 1.0, "max": 9.0,
            "mean": pytest.approx(5.0), "first": 5.0, "last": 9.0,
        }

    def test_seconds_since_change(self):
        s = Series("m")
        assert s.seconds_since_change(5.0) == math.inf
        s.append(1.0, 2.0)
        s.append(2.0, 2.0)   # no change
        assert s.seconds_since_change(5.0) == pytest.approx(4.0)
        s.append(3.0, 4.0)
        assert s.seconds_since_change(5.0) == pytest.approx(2.0)

    def test_to_dict_shape(self):
        s = Series("m", label_key({"a": "1"}), kind="counter")
        s.append(1.0, 2.0)
        d = s.to_dict()
        assert d == {
            "name": "m", "labels": {"a": "1"}, "kind": "counter",
            "samples": [[1.0, 2.0]],
        }


class TestTimeSeriesStore:
    def test_series_get_or_create(self):
        store = TimeSeriesStore()
        a = store.series("m", {"x": "1"})
        assert store.series("m", {"x": "1"}) is a
        assert store.series("m", {"x": "2"}) is not a

    def test_cardinality_cap(self):
        store = TimeSeriesStore(max_series=3)
        for i in range(5):
            store.record("m", 1.0, labels={"i": str(i)}, t=float(i))
        assert len(store.all_series("m")) == 3
        assert store.series_dropped == 2

    def test_record_and_query_label_filter(self):
        store = TimeSeriesStore()
        store.record("m", 1.0, labels={"e": "a", "z": "1"}, t=0.0)
        store.record("m", 2.0, labels={"e": "b"}, t=0.0)
        hits = store.query("m", labels={"e": "a"})
        assert len(hits) == 1
        assert hits[0]["labels"] == {"e": "a", "z": "1"}
        assert store.query("other") == []

    def test_observe_registry_counters_and_gauges(self):
        reg = Registry()
        c = reg.counter("t_jobs_total", "jobs")
        g = reg.gauge("t_rss", "rss", labelnames=("executor",))
        c.inc(2)
        g.labels(executor="e0").set(42.0)
        store = TimeSeriesStore()
        changed = store.observe_registry(reg, now=1.0)
        assert ("t_jobs_total", {}, 2.0) in changed
        assert ("t_rss", {"executor": "e0"}, 42.0) in changed
        # unchanged second tick reports nothing but still appends samples
        assert store.observe_registry(reg, now=2.0) == []
        (s,) = store.query("t_jobs_total")
        assert s["samples"] == [[1.0, 2.0], [2.0, 2.0]]

    def test_observe_registry_histograms_become_count_and_sum(self):
        reg = Registry()
        h = reg.histogram("t_task_seconds", "durations")
        h.observe(0.5)
        h.observe(1.5)
        store = TimeSeriesStore()
        changed = dict(
            (name, value) for name, _, value in store.observe_registry(reg, now=0.0)
        )
        assert changed["t_task_seconds_count"] == 2.0
        assert changed["t_task_seconds_sum"] == pytest.approx(2.0)
        (count_series,) = store.all_series("t_task_seconds_count")
        assert count_series.kind == "counter"

    def test_store_rate_sums_matching_series(self):
        store = TimeSeriesStore()
        for t in range(6):
            store.record("c", t * 2.0, labels={"e": "a"}, t=float(t), kind="counter")
            store.record("c", t * 3.0, labels={"e": "b"}, t=float(t), kind="counter")
        assert store.rate("c", window=5.0, now=5.0) == pytest.approx(5.0)
        assert store.rate("c", window=5.0, labels={"e": "a"}, now=5.0) == pytest.approx(2.0)

    def test_dump_trims_to_window_and_skips_empty(self):
        store = TimeSeriesStore()
        for t in range(10):
            store.record("m", float(t), t=float(t))
        store.record("old", 1.0, t=0.0)
        dump = store.dump(window=3.0, now=9.0)
        names = {d["name"] for d in dump}
        assert names == {"m"}  # "old" has no samples in the window
        (m,) = dump
        assert [t for t, _ in m["samples"]] == [6.0, 7.0, 8.0, 9.0]

    def test_names_sorted(self):
        store = TimeSeriesStore()
        store.record("b", 1.0, t=0.0)
        store.record("a", 1.0, t=0.0)
        assert store.names() == ["a", "b"]

    def test_concurrent_records_safe(self):
        store = TimeSeriesStore()

        def pump(tag):
            for i in range(200):
                store.record("m", float(i), labels={"t": tag}, t=float(i))

        threads = [threading.Thread(target=pump, args=(str(n),)) for n in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert sum(s.samples_recorded for s in store.all_series("m")) == 800


class TestMetricsSampler:
    def _fresh(self, interval=0.02):
        reg = Registry()
        counter = reg.counter("s_ticks_total", "test counter")
        store = TimeSeriesStore()
        return reg, counter, store, MetricsSampler(store, reg, interval=interval)

    def test_manual_tick_feeds_sinks_and_hooks(self):
        reg, counter, store, sampler = self._fresh()
        seen_sinks, seen_hooks = [], []
        sampler.add_tick_sink(lambda now, changed: seen_sinks.append(changed))
        sampler.add_tick_hook(seen_hooks.append)
        counter.inc()
        sampler.tick(now=1.0)
        assert seen_sinks == [[("s_ticks_total", {}, 1.0)]]
        assert seen_hooks == [1.0]
        # no change -> sinks skipped, hooks still run (alerts need the clock)
        sampler.tick(now=2.0)
        assert len(seen_sinks) == 1
        assert seen_hooks == [1.0, 2.0]

    def test_consumer_errors_isolated(self):
        reg, counter, store, sampler = self._fresh()

        def bad_sink(now, changed):
            raise RuntimeError("sink boom")

        def bad_hook(now):
            raise RuntimeError("hook boom")

        good = []
        sampler.add_tick_sink(bad_sink)
        sampler.add_tick_sink(lambda now, changed: good.append(changed))
        sampler.add_tick_hook(bad_hook)
        counter.inc()
        sampler.tick(now=1.0)
        assert good, "a raising sink must not starve later sinks"
        assert len(sampler.consumer_errors) == 2

    def test_thread_lifecycle_and_final_flush(self):
        reg, counter, store, sampler = self._fresh(interval=0.01)
        sampler.start()
        try:
            deadline = time.monotonic() + 5.0
            while sampler.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sampler.ticks >= 3
        finally:
            counter.inc(7)  # lands via the stop()-time flush tick
            sampler.stop()
        assert not any(
            t.name == "repro-metrics-sampler" for t in threading.enumerate()
        )
        (s,) = store.all_series("s_ticks_total")
        assert s.latest()[1] == 7.0

    def test_stop_idempotent_without_start(self):
        reg, counter, store, sampler = self._fresh()
        sampler.stop()  # never started: still safe, runs the flush tick
        assert sampler.ticks == 1
