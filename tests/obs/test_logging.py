"""Structured logging: records, the bus, sinks, context, worker capture."""

from __future__ import annotations

import json

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.obs.logging import (
    LOG_BUS,
    ConsoleLogSink,
    JsonlLogSink,
    LogBus,
    LogRecord,
    StructuredLogger,
    capture_logs,
    current_log_context,
    format_record,
    log_context,
)


def make_record(**kwargs) -> LogRecord:
    base = dict(time=1.0, level="info", logger="t", message="hello")
    base.update(kwargs)
    return LogRecord(**base)


class TestLogRecord:
    def test_to_dict_omits_unset_correlation(self):
        d = make_record().to_dict()
        assert d == {"time": 1.0, "level": "info", "logger": "t", "message": "hello"}

    def test_round_trip(self):
        rec = make_record(
            job_id=3, stage_id=7, partition=1, attempt=0, executor_id="exec-2",
            fields={"rows": 10},
        )
        back = LogRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back == rec
        assert back.correlation() == (3, 7, 1, 0, "exec-2")


class TestLogBus:
    def test_level_gating_counts_suppressed(self):
        bus = LogBus(level="warning")
        bus.emit(make_record(level="info"))
        bus.emit(make_record(level="error"))
        assert bus.records_emitted == 1
        assert bus.records_suppressed == 1
        assert [r.level for r in bus.records()] == ["error"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            LogBus(level="verbose")
        with pytest.raises(ValueError):
            LogBus().set_level("trace")

    def test_ring_is_bounded(self):
        bus = LogBus(capacity=4, level="debug")
        for i in range(10):
            bus.emit(make_record(message=f"m{i}"))
        assert [r.message for r in bus.records()] == ["m6", "m7", "m8", "m9"]
        assert bus.records_emitted == 10

    def test_records_filter_and_limit(self):
        bus = LogBus(level="debug")
        for level in ("debug", "info", "warning", "debug", "error"):
            bus.emit(make_record(level=level))
        assert len(bus.records(level="info")) == 3
        assert [r.level for r in bus.records(level="info", limit=2)] == [
            "warning", "error",
        ]

    def test_raising_sink_is_isolated(self):
        bus = LogBus(level="debug")
        seen = []

        def bad(record):
            raise RuntimeError("sink boom")

        bus.add_sink(bad)
        bus.add_sink(seen.append)
        bus.emit(make_record())
        assert len(seen) == 1  # later sinks still ran
        assert len(bus.sink_errors) == 1
        assert "sink boom" in str(bus.sink_errors[0][2])

    def test_replay_bypasses_level_gate(self):
        bus = LogBus(level="error")
        bus.replay(make_record(level="debug"))
        assert bus.records_emitted == 1

    def test_remove_sink(self):
        bus = LogBus(level="debug")
        seen = []
        sink = bus.add_sink(seen.append)
        bus.remove_sink(sink)
        bus.emit(make_record())
        assert seen == []


class TestLogContext:
    def test_frames_nest_and_pop(self):
        assert current_log_context() == {}
        with log_context(job_id=1):
            with log_context(stage_id=2, partition=0):
                assert current_log_context() == {
                    "job_id": 1, "stage_id": 2, "partition": 0,
                }
            assert current_log_context() == {"job_id": 1}
        assert current_log_context() == {}

    def test_logger_folds_context_and_fields(self):
        bus = LogBus(level="debug")
        logger = StructuredLogger("test", bus)
        with log_context(job_id=5, stage_id=1, custom="ctx"):
            logger.info("msg", executor_id="exec-0", rows=42)
        (rec,) = bus.records()
        assert rec.job_id == 5
        assert rec.stage_id == 1
        assert rec.executor_id == "exec-0"
        # non-correlation keys land in fields, from both sources
        assert rec.fields == {"custom": "ctx", "rows": 42}

    def test_suppressed_before_formatting(self):
        bus = LogBus(level="error")
        logger = StructuredLogger("test", bus)
        logger.debug("never", rows=1)
        assert bus.records() == []
        assert bus.records_suppressed == 1


class TestCaptureLogs:
    def test_captures_and_restores(self):
        bus = LogBus(level="warning")
        logger = StructuredLogger("test", bus)
        with capture_logs(bus, level="debug") as records:
            logger.debug("inside")
        logger.debug("outside")
        assert [r.message for r in records] == ["inside"]
        assert bus.level == "warning"  # restored
        assert all(r.message != "outside" for r in bus.records())


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlLogSink(path)
        sink(make_record(job_id=1, fields={"k": "v"}))
        sink.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert LogRecord.from_dict(json.loads(lines[0])).job_id == 1

    def test_format_record_shows_correlation(self):
        rec = make_record(
            level="warning", job_id=2, stage_id=4, partition=1, attempt=0,
            executor_id="exec-1", fields={"rows": 3},
        )
        line = format_record(rec)
        assert "WARNING" in line
        assert "job=2" in line and "stage=4" in line
        assert "task=1.0" in line and "exec=exec-1" in line
        assert "rows=3" in line

    def test_console_sink_survives_closed_stream(self, tmp_path):
        fh = open(tmp_path / "out.txt", "w")
        sink = ConsoleLogSink(fh)
        fh.close()
        sink(make_record())  # must not raise


class TestEngineIntegration:
    def _task_finished_keys(self, backend: str) -> set[tuple]:
        config = EngineConfig(
            backend=backend, num_executors=2, executor_cores=2,
            default_parallelism=4, log_level="debug",
        )
        LOG_BUS.clear()
        with Context(config) as ctx:
            (
                ctx.parallelize(range(200), 4)
                .map(lambda x: (x % 5, x))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            records = LOG_BUS.records()
        return {
            (r.job_id, r.stage_id, r.partition)
            for r in records
            if r.message == "task finished"
        }

    def test_correlation_identical_across_backends(self):
        """The same job logs the same (job, stage, partition) ids under
        every backend -- worker-side records ship home with full ids."""
        expected = {(0, s, p) for s in (0, 1) for p in range(4)}
        for backend in ("serial", "threads", "processes"):
            assert self._task_finished_keys(backend) == expected, backend

    def test_worker_records_carry_executor_ids(self):
        LOG_BUS.clear()
        config = EngineConfig(
            backend="processes", num_executors=2, executor_cores=1,
            default_parallelism=2, log_level="debug",
        )
        with Context(config) as ctx:
            ctx.parallelize(range(10), 2).map(lambda x: x + 1).collect()
        finished = [
            r for r in LOG_BUS.records() if r.message == "task finished"
        ]
        assert len(finished) == 2
        assert {r.executor_id for r in finished} <= {"exec-0", "exec-1"}
        assert all(r.attempt == 0 for r in finished)

    def test_context_restores_previous_bus_level(self):
        before = LOG_BUS.level
        with Context(EngineConfig(backend="serial", log_level="error")):
            assert LOG_BUS.level == "error"
        assert LOG_BUS.level == before

    def test_user_code_logs_from_tasks(self, ctx):
        """get_logger() inside a mapped function needs no plumbing."""
        LOG_BUS.clear()

        def tag(x):
            from repro.obs.logging import get_logger

            get_logger("user.task").warning("seen", value=x)
            return x

        ctx.parallelize([1, 2, 3], 3).map(tag).collect()
        seen = [r for r in LOG_BUS.records() if r.logger == "user.task"]
        assert len(seen) == 3
        assert all(r.stage_id is not None and r.partition is not None for r in seen)
