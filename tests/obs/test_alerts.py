"""The alerting engine: rules, the state machine, sinks, live heartbeat loss."""

import json
import threading
import time

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.listener import AlertFired, AlertResolved, Listener, ListenerBus
from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    ConsoleAlertSink,
    JsonlAlertSink,
    builtin_rules,
    load_rules,
)
from repro.obs.timeseries import TimeSeriesStore


def _store_with(name, points, labels=None, kind="counter"):
    store = TimeSeriesStore()
    for t, v in points:
        store.record(name, v, labels=labels, t=t, kind=kind)
    return store


class TestAlertRule:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            AlertRule(name="r", metric="m", kind="magic")

    def test_op_validated(self):
        with pytest.raises(ValueError, match="comparison"):
            AlertRule(name="r", metric="m", op="!=")

    def test_round_trips_through_dict(self):
        rule = AlertRule(
            name="r", metric="m", kind="rate", op=">=", threshold=2.5,
            window=7.0, for_seconds=1.0, severity="critical",
            description="d", labels={"executor": "e0"},
        )
        assert AlertRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown alert rule fields"):
            AlertRule.from_dict({"name": "r", "metric": "m", "tresholdd": 1})

    def test_gate_not_serialized(self):
        rule = AlertRule(name="r", metric="m", gate=lambda labels: True)
        assert "gate" not in rule.to_dict()

    def test_threshold_condition(self):
        store = _store_with("m", [(0.0, 1.0), (1.0, 9.0)])
        (series,) = store.all_series("m")
        rule = AlertRule(name="r", metric="m", op=">", threshold=5.0)
        assert rule.holds(series, now=1.0) == (True, 9.0)
        assert AlertRule(name="r", metric="m", op="<", threshold=5.0).holds(
            series, now=1.0
        ) == (False, 9.0)

    def test_rate_condition(self):
        store = _store_with("m", [(float(t), t * 2.0) for t in range(6)])
        (series,) = store.all_series("m")
        rule = AlertRule(name="r", metric="m", kind="rate", op=">",
                         threshold=1.0, window=5.0)
        holds, value = rule.holds(series, now=5.0)
        assert holds and value == pytest.approx(2.0)

    def test_absence_condition_compares_staleness_to_window(self):
        store = _store_with("m", [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
        (series,) = store.all_series("m")
        rule = AlertRule(name="r", metric="m", kind="absence", window=3.0)
        assert rule.holds(series, now=2.5) == (False, 2.5)   # changed 2.5s ago
        holds, value = rule.holds(series, now=4.0)
        assert holds and value == pytest.approx(4.0)

    def test_load_rules_accepts_list_and_wrapper(self, tmp_path):
        entries = [{"name": "a", "metric": "m"}, {"name": "b", "metric": "m"}]
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps(entries))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"rules": entries}))
        assert [r.name for r in load_rules(str(flat))] == ["a", "b"]
        assert [r.name for r in load_rules(str(wrapped))] == ["a", "b"]


class _Recorder(Listener):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        if isinstance(event, (AlertFired, AlertResolved)):
            self.events.append(event)


class TestStateMachine:
    def _manager(self, rule, store, bus=None):
        return AlertManager(store, bus=bus, rules=[rule])

    def test_fires_immediately_without_dwell(self):
        store = _store_with("m", [(0.0, 10.0)])
        mgr = self._manager(AlertRule(name="r", metric="m", threshold=5.0), store)
        (transition,) = mgr.evaluate(now=0.0)
        assert transition["transition"] == "firing"
        assert transition["value"] == 10.0
        (st,) = mgr.firing()
        assert st["rule"] == "r"

    def test_pending_dwell_absorbs_flapping(self):
        store = _store_with("m", [(0.0, 10.0)])
        rule = AlertRule(name="r", metric="m", threshold=5.0, for_seconds=1.0)
        mgr = self._manager(rule, store)
        assert mgr.evaluate(now=0.0) == []          # pending, not firing
        (st,) = mgr.states()
        assert st["state"] == "pending"
        # condition clears before the dwell elapses: back to inactive
        store.record("m", 1.0, t=0.5)
        assert mgr.evaluate(now=0.5) == []
        assert mgr.states()[0]["state"] == "inactive"
        # condition re-asserts and holds through the dwell: fires once
        store.record("m", 10.0, t=1.0)
        assert mgr.evaluate(now=1.0) == []
        (transition,) = mgr.evaluate(now=2.1)
        assert transition["transition"] == "firing"

    def test_firing_resolves_and_rearms(self):
        store = _store_with("m", [(0.0, 10.0)])
        mgr = self._manager(AlertRule(name="r", metric="m", threshold=5.0), store)
        mgr.evaluate(now=0.0)
        store.record("m", 1.0, t=1.0)
        (transition,) = mgr.evaluate(now=1.0)
        assert transition["transition"] == "resolved"
        assert mgr.firing() == []
        # a fresh breach fires again
        store.record("m", 11.0, t=2.0)
        (again,) = mgr.evaluate(now=2.0)
        assert again["transition"] == "firing"
        assert mgr.states()[0]["fired_count"] == 2

    def test_per_label_set_independent_states(self):
        store = TimeSeriesStore()
        store.record("m", 10.0, labels={"e": "a"}, t=0.0)
        store.record("m", 1.0, labels={"e": "b"}, t=0.0)
        mgr = self._manager(AlertRule(name="r", metric="m", threshold=5.0), store)
        (transition,) = mgr.evaluate(now=0.0)
        assert transition["labels"] == {"e": "a"}
        states = {s["labels"]["e"]: s["state"] for s in mgr.states()}
        assert states == {"a": "firing", "b": "inactive"}

    def test_label_filter_subset_match(self):
        store = TimeSeriesStore()
        store.record("m", 10.0, labels={"e": "a", "extra": "x"}, t=0.0)
        store.record("m", 10.0, labels={"e": "b"}, t=0.0)
        rule = AlertRule(name="r", metric="m", threshold=5.0, labels={"e": "a"})
        mgr = self._manager(rule, store)
        (transition,) = mgr.evaluate(now=0.0)
        assert transition["labels"]["e"] == "a"

    def test_gate_vetoes_and_clears_pending(self):
        store = _store_with("m", [(0.0, 10.0)])
        open_gate = [True]
        rule = AlertRule(
            name="r", metric="m", threshold=5.0, for_seconds=5.0,
            gate=lambda labels: open_gate[0],
        )
        mgr = self._manager(rule, store)
        mgr.evaluate(now=0.0)
        assert mgr.states()[0]["state"] == "pending"
        open_gate[0] = False
        mgr.evaluate(now=1.0)
        assert mgr.states()[0]["state"] == "inactive"
        # re-entry restarts the dwell from scratch: no instant fire at t=6
        open_gate[0] = True
        assert mgr.evaluate(now=6.0) == []
        assert mgr.states()[0]["state"] == "pending"

    def test_gate_exception_skips_series(self):
        store = _store_with("m", [(0.0, 10.0)])
        rule = AlertRule(
            name="r", metric="m", threshold=5.0,
            gate=lambda labels: 1 / 0,
        )
        mgr = self._manager(rule, store)
        assert mgr.evaluate(now=0.0) == []
        assert mgr.states() == []

    def test_bus_events_posted(self):
        bus = ListenerBus()
        recorder = _Recorder()
        bus.add_listener(recorder)
        store = _store_with("m", [(0.0, 10.0)])
        mgr = self._manager(
            AlertRule(name="r", metric="m", threshold=5.0, severity="critical"),
            store, bus=bus,
        )
        mgr.evaluate(now=0.0)
        store.record("m", 1.0, t=1.0)
        mgr.evaluate(now=1.0)
        bus.stop()
        kinds = [type(e).__name__ for e in recorder.events]
        assert kinds == ["AlertFired", "AlertResolved"]
        fired = recorder.events[0]
        assert (fired.rule, fired.severity, fired.value) == ("r", "critical", 10.0)

    def test_history_bounded(self):
        store = _store_with("m", [(0.0, 10.0)])
        mgr = AlertManager(
            store, rules=[AlertRule(name="r", metric="m", threshold=5.0)],
            history_capacity=4,
        )
        for i in range(8):
            store.record("m", 10.0, t=float(2 * i))
            mgr.evaluate(now=float(2 * i))
            store.record("m", 1.0, t=float(2 * i + 1))
            mgr.evaluate(now=float(2 * i + 1))
        assert len(mgr.history) == 4

    def test_sink_isolation_and_jsonl_sink(self, tmp_path):
        store = _store_with("m", [(0.0, 10.0)])
        mgr = AlertManager(store, rules=[AlertRule(name="r", metric="m", threshold=5.0)])
        path = tmp_path / "alerts.jsonl"
        sink = JsonlAlertSink(str(path))

        def bad(record):
            raise RuntimeError("sink boom")

        mgr.add_sink(bad)
        mgr.add_sink(sink)
        mgr.evaluate(now=0.0)
        sink.close()
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["transition"] == "firing" and record["rule"] == "r"

    def test_console_sink_routes_by_severity(self):
        from repro.obs.logging import LOG_BUS

        LOG_BUS.clear()
        sink = ConsoleAlertSink()
        sink({"transition": "firing", "rule": "r", "severity": "critical",
              "metric": "m", "value": 1.0, "labels": {"executor": "e0"}})
        sink({"transition": "resolved", "rule": "r", "severity": "warning",
              "metric": "m", "value": 0.0, "labels": {}})
        levels = {r.level for r in LOG_BUS.records() if r.message.startswith("alert ")}
        assert levels == {"error", "warning"}


class TestBuiltinRules:
    def test_expected_rule_set(self):
        rules = {r.name: r for r in builtin_rules()}
        assert set(rules) == {
            "heartbeat_loss", "gc_pause_pressure", "shuffle_spill_growth",
            "straggler_rate", "cache_thrash",
        }
        assert rules["heartbeat_loss"].kind == "absence"
        assert rules["heartbeat_loss"].severity == "critical"
        assert rules["gc_pause_pressure"].kind == "rate"

    def test_heartbeat_gate_threaded_through(self):
        gate = lambda labels: False  # noqa: E731
        rules = {r.name: r for r in builtin_rules(heartbeat_gate=gate, heartbeat_window=1.5)}
        assert rules["heartbeat_loss"].gate is gate
        assert rules["heartbeat_loss"].window == 1.5
        assert all(r.gate is None for name, r in rules.items() if name != "heartbeat_loss")


class TestLiveHeartbeatLoss:
    def test_pending_firing_resolved_on_a_live_context(self):
        """The acceptance drill: suspend a busy executor's heartbeats and
        watch the built-in rule walk pending -> firing -> resolved."""
        hold = threading.Event()
        done = threading.Event()
        config = EngineConfig(
            backend="threads", num_executors=1, executor_cores=1,
            default_parallelism=1, heartbeat_interval=0.05,
            metrics_interval=0.02,
        )
        with Context(config, alerts=True) as ctx:
            recorder = _Recorder()
            ctx.listener_bus.add_listener(recorder)

            def run():
                try:
                    ctx.parallelize([0], 1).map(
                        lambda x: (hold.wait(15.0), x)[1]
                    ).collect()
                finally:
                    done.set()

            worker = threading.Thread(target=run)
            worker.start()
            try:
                deadline = time.monotonic() + 10.0
                # wait until the task is in flight (opens the busy gate) and
                # at least one heartbeat landed in the TSDB -- suspending
                # before the first beat leaves nothing for the rule to watch
                while not (
                    ctx.heartbeats.busy_executors()
                    and ctx.timeseries.all_series("engine_executor_heartbeats_total")
                ):
                    assert time.monotonic() < deadline, "task never launched"
                    time.sleep(0.01)
                ctx.executors[0].suspend_heartbeats()

                def state_of():
                    return {
                        s["labels"].get("executor"): s["state"]
                        for s in ctx.alerts.states()
                        if s["rule"] == "heartbeat_loss"
                    }.get("exec-0")

                while state_of() != "firing":
                    assert time.monotonic() < deadline, (
                        f"never fired; states={ctx.alerts.states()}"
                    )
                    time.sleep(0.02)
                ctx.executors[0].resume_heartbeats()
                while state_of() != "resolved":
                    assert time.monotonic() < deadline, (
                        f"never resolved; states={ctx.alerts.states()}"
                    )
                    time.sleep(0.02)
            finally:
                hold.set()
                worker.join(timeout=15.0)
            assert done.is_set()
            transitions = [
                (h["rule"], h["transition"]) for h in ctx.alerts.history
            ]
            assert ("heartbeat_loss", "firing") in transitions
            assert ("heartbeat_loss", "resolved") in transitions
        kinds = [type(e).__name__ for e in recorder.events]
        assert "AlertFired" in kinds and "AlertResolved" in kinds

    def test_idle_executors_never_alarm(self):
        """Without in-flight work the gate closes: a stopped heartbeat on an
        idle executor is normal, not an incident."""
        config = EngineConfig(
            backend="serial", num_executors=2, executor_cores=1,
            default_parallelism=2, heartbeat_interval=0.05,
            metrics_interval=0.02,
        )
        with Context(config, alerts=True) as ctx:
            ctx.parallelize(range(4), 2).sum()
            time.sleep(0.8)  # well past the absence window, all idle
            assert [
                s for s in ctx.alerts.states() if s["rule"] == "heartbeat_loss"
            ] == []
