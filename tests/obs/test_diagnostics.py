"""Skew, straggler, and cache-pressure diagnostics."""

from __future__ import annotations

import pytest

from repro.engine.listener import (
    CollectingListener,
    ListenerBus,
    StageCompleted,
    StageSkewDetected,
    StragglerDetected,
)
from repro.engine.metrics import StageMetrics, TaskMetrics, TaskRecord
from repro.obs.diagnostics import (
    CachePressureReport,
    DiagnosticsListener,
    analyze_cache_pressure,
    detect_skew,
    detect_stragglers,
    gini,
    median,
    stage_distribution,
)
from repro.obs.registry import Registry


def make_stage(durations, records=None, stage_id=0, name="map"):
    """Synthetic completed stage: one successful task per duration."""
    records = records if records is not None else [10] * len(durations)
    tasks = [
        TaskRecord(
            stage_id=stage_id,
            partition=i,
            attempt=0,
            executor_id=f"exec-{i % 2}",
            duration_seconds=d,
            metrics=TaskMetrics(records_read=r),
            succeeded=True,
        )
        for i, (d, r) in enumerate(zip(durations, records))
    ]
    return StageMetrics(
        stage_id=stage_id, name=name, num_tasks=len(tasks), tasks=tasks
    )


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == 0.0

    def test_concentrated_approaches_one(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_degenerate_inputs(self):
        assert gini([]) == 0.0
        assert gini([3]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_ordering_is_irrelevant(self):
        assert gini([1, 9, 3, 7]) == gini([9, 1, 7, 3])


class TestMedian:
    def test_odd_even_empty(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5
        assert median([]) == 0.0


class TestDetectSkew:
    def test_balanced_stage_is_clean(self):
        stage = make_stage([0.1] * 8)
        assert detect_skew(stage) == []

    def test_skewed_duration_and_records_flagged(self):
        stage = make_stage(
            durations=[0.1] * 7 + [1.0],
            records=[10] * 7 + [500],
        )
        reports = detect_skew(stage, max_over_median=4.0)
        by_metric = {r.metric: r for r in reports}
        assert "duration" in by_metric and "records" in by_metric
        dur = by_metric["duration"]
        assert dur.max_partition == 7
        assert dur.max_over_median == pytest.approx(10.0)
        assert 0 < dur.gini < 1

    def test_min_tasks_guard(self):
        stage = make_stage([0.1, 1.0])
        assert detect_skew(stage, min_tasks=4) == []

    def test_zero_median_reports_finite_sentinel(self):
        stage = make_stage([0.1] * 8, records=[0] * 7 + [100])
        (report,) = [
            r for r in detect_skew(stage) if r.metric == "records"
        ]
        assert report.max_over_median == 100  # peak stands in for inf

    def test_failed_tasks_excluded(self):
        stage = make_stage([0.1] * 8)
        stage.tasks.append(
            TaskRecord(
                stage_id=0, partition=0, attempt=1, executor_id="exec-0",
                duration_seconds=50.0, metrics=TaskMetrics(), succeeded=False,
            )
        )
        assert detect_skew(stage) == []

    def test_distribution_keeps_successful_attempt(self):
        stage = make_stage([0.1] * 4)
        dist = stage_distribution(stage, "duration")
        assert dist == {0: 0.1, 1: 0.1, 2: 0.1, 3: 0.1}


class TestDetectStragglers:
    def test_flags_the_slow_task(self):
        stage = make_stage([0.2] * 7 + [1.0])
        (report,) = detect_stragglers(stage, multiplier=3.0, min_seconds=0.1)
        assert report.partition == 7
        assert report.ratio == pytest.approx(5.0)
        assert report.median_seconds == pytest.approx(0.2)

    def test_absolute_floor_silences_fast_stages(self):
        stage = make_stage([0.001] * 7 + [0.01])
        assert detect_stragglers(stage, min_seconds=0.1) == []

    def test_min_tasks_guard(self):
        stage = make_stage([0.1, 0.1, 1.0])
        assert detect_stragglers(stage, min_tasks=4) == []


class TestCachePressure:
    def test_from_registry_counters(self):
        reg = Registry()
        reg.counter("engine_blocks_cached_total").inc(10)
        reg.counter("engine_blocks_evicted_total").inc(8)
        reg.counter("engine_blocks_spilled_total").inc(2)
        reg.counter("engine_cache_hits_total").inc(3)
        reg.counter("engine_cache_misses_total").inc(7)
        report = analyze_cache_pressure(reg)
        assert report.blocks_cached == 10
        assert report.eviction_ratio == pytest.approx(0.8)
        assert report.hit_rate == pytest.approx(0.3)

    def test_empty_registry_is_all_zero(self):
        report = analyze_cache_pressure(Registry())
        assert report.eviction_ratio == 0.0
        assert report.hit_rate == 0.0

    def test_to_dict_is_json_ready(self):
        d = CachePressureReport(blocks_cached=4, blocks_evicted=2).to_dict()
        assert d["eviction_ratio"] == 0.5


class TestDiagnosticsListener:
    def _completed(self, stage):
        return StageCompleted(stage=stage, job_id=0)

    def test_posts_events_and_accumulates(self):
        bus = ListenerBus()
        collected = bus.add_listener(
            CollectingListener(StageSkewDetected, StragglerDetected)
        )
        diag = DiagnosticsListener(
            bus, skew_max_over_median=4.0, straggler_min_seconds=0.05
        )
        bus.add_listener(diag)
        bus.post(self._completed(make_stage([0.1] * 7 + [1.0])))
        skew_events = collected.of(StageSkewDetected)
        straggler_events = collected.of(StragglerDetected)
        assert len(skew_events) == 1
        assert skew_events[0].metric == "duration"
        assert len(straggler_events) == 1
        assert straggler_events[0].partition == 7
        assert len(diag.skew_reports) == 1
        assert len(diag.straggler_reports) == 1

    def test_stage_retry_does_not_duplicate(self):
        bus = ListenerBus()
        diag = bus.add_listener(
            DiagnosticsListener(bus, straggler_min_seconds=0.05)
        )
        stage = make_stage([0.1] * 7 + [1.0])
        bus.post(self._completed(stage))
        bus.post(self._completed(stage))
        assert len(diag.skew_reports) == 1
        assert len(diag.straggler_reports) == 1

    def test_snapshot_shape(self):
        bus = ListenerBus()
        diag = DiagnosticsListener(bus)
        snap = diag.snapshot()
        assert set(snap) == {"skew", "stragglers", "cache_pressure"}
        assert snap["skew"] == []
