"""The embedded live UI server: endpoints, payloads, mid-flight progress."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


def _get_json(url):
    status, _, body = _get(url)
    assert status == 200
    return json.loads(body)


@pytest.fixture
def ui_ctx():
    config = EngineConfig(
        backend="threads", num_executors=2, executor_cores=2,
        default_parallelism=4, heartbeat_interval=0.05,
    )
    with Context(config, ui_port=0) as ctx:
        yield ctx


class TestEndpoints:
    def test_os_assigned_port_and_url(self, ui_ctx):
        assert ui_ctx.ui_url is not None
        assert ui_ctx.ui_url.startswith("http://127.0.0.1:")
        assert int(ui_ctx.ui_url.rsplit(":", 1)[1]) > 0

    def test_metrics_openmetrics_text(self, ui_ctx):
        ui_ctx.parallelize(range(20), 4).sum()
        status, content_type, body = _get(ui_ctx.ui_url + "/metrics")
        assert status == 200
        assert content_type.startswith("application/openmetrics-text")
        assert "# HELP engine_jobs_total" in body
        assert "# TYPE engine_jobs_total counter" in body
        # the registry is process-wide, so assert a sample exists rather
        # than an exact cumulative value
        assert any(
            line.startswith("engine_jobs_total ") for line in body.splitlines()
        )
        assert "repro_worker_task_seconds" in body
        assert body.rstrip().endswith("# EOF")

    def test_api_jobs(self, ui_ctx):
        ui_ctx.parallelize(range(20), 4).map(lambda x: x + 1).sum()
        jobs = _get_json(ui_ctx.ui_url + "/api/jobs")
        assert len(jobs) == 1
        assert jobs[0]["status"] == "SUCCEEDED"
        assert jobs[0]["num_tasks"] == 4
        assert jobs[0]["wall_seconds"] > 0

    def test_api_stages_includes_telemetry_totals(self, ui_ctx):
        import operator

        ui_ctx.parallelize([(i % 3, 1) for i in range(30)], 4).reduce_by_key(
            operator.add
        ).collect()
        stages = _get_json(ui_ctx.ui_url + "/api/stages")
        assert len(stages) == 2
        for stage in stages:
            for key in ("gc_pause_seconds", "deserialize_seconds",
                        "result_serialize_seconds", "peak_rss_bytes"):
                assert key in stage
        assert any(s["shuffle_bytes_written"] > 0 for s in stages)

    def test_api_executors_merges_heartbeat_liveness(self, ui_ctx):
        ui_ctx.parallelize(range(40), 4).map(
            lambda x: (time.sleep(0.02), x)[1]
        ).sum()
        executors = _get_json(ui_ctx.ui_url + "/api/executors")
        assert {e["executor_id"] for e in executors} == {"exec-0", "exec-1"}
        assert all(e["alive"] for e in executors)
        assert sum(e["tasks_run"] for e in executors) == 4
        # heartbeat info is folded in for executors that reported
        assert any(e.get("heartbeats", 0) > 0 for e in executors)

    def test_api_logs_serves_the_ring_tail(self, ui_ctx):
        from repro.obs.logging import LOG_BUS

        LOG_BUS.clear()
        ui_ctx.parallelize(range(20), 4).sum()
        records = _get_json(ui_ctx.ui_url + "/api/logs")
        assert any(r["message"] == "job finished" for r in records)
        # level filter and limit are query params
        errors_only = _get_json(ui_ctx.ui_url + "/api/logs?level=error&limit=5")
        assert all(r["level"] == "error" for r in errors_only)
        assert len(_get_json(ui_ctx.ui_url + "/api/logs?limit=1")) <= 1

    def test_api_diagnostics_shape(self, ui_ctx):
        ui_ctx.parallelize(range(20), 4).sum()
        diag = _get_json(ui_ctx.ui_url + "/api/diagnostics")
        assert set(diag) == {"skew", "stragglers", "cache_pressure"}
        assert "hit_rate" in diag["cache_pressure"]

    def test_dashboard_html(self, ui_ctx):
        status, content_type, body = _get(ui_ctx.ui_url + "/")
        assert status == 200
        assert content_type.startswith("text/html")
        assert "sparkscore engine UI" in body
        assert "/api/progress" in body
        assert "/api/diagnostics" in body and "/api/logs" in body

    def test_unknown_path_404(self, ui_ctx):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(ui_ctx.ui_url + "/api/nope")
        assert err.value.code == 404

    def test_server_stops_with_context(self):
        config = EngineConfig(backend="serial", num_executors=1,
                              executor_cores=1, default_parallelism=2)
        ctx = Context(config, ui_port=0)
        url = ctx.ui_url
        assert _get(url + "/api/progress")[0] == 200
        ctx.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(url + "/api/progress", timeout=0.5)


class TestLiveProgress:
    def test_progress_advances_mid_flight(self, ui_ctx):
        """Poll /api/progress while a slow job runs: completion counts must
        move before the job finishes -- the live-surface guarantee."""
        release = threading.Event()

        def slow(x):
            if x % 10 == 5:
                time.sleep(0.15)
            return x

        def run():
            ui_ctx.parallelize(range(80), 8).map(slow).sum()
            release.set()

        worker = threading.Thread(target=run)
        worker.start()
        observed = []
        try:
            deadline = time.time() + 10.0
            while not release.is_set() and time.time() < deadline:
                snap = _get_json(ui_ctx.ui_url + "/api/progress")
                for stage in snap["stages"]:
                    observed.append(
                        (stage["completed_tasks"], stage["state"],
                         [j["state"] for j in snap["jobs"]])
                    )
                time.sleep(0.02)
        finally:
            worker.join(timeout=10.0)

        mid_flight = [
            done for done, state, job_states in observed
            if state == "running" and "running" in job_states
        ]
        assert mid_flight, "never caught the stage mid-flight"
        assert any(0 < done < 8 for done in mid_flight), (
            f"progress never advanced mid-flight: {mid_flight}"
        )
        final = _get_json(ui_ctx.ui_url + "/api/progress")
        assert final["jobs"][-1]["state"] == "succeeded"
        assert all(s["state"] == "complete" for s in final["stages"])


class TestMonitoringEndpoints:
    @pytest.fixture
    def monitored_ctx(self):
        config = EngineConfig(
            backend="threads", num_executors=2, executor_cores=2,
            default_parallelism=4, heartbeat_interval=0.05,
            metrics_interval=0.02,
        )
        with Context(config, ui_port=0, alerts=True) as ctx:
            yield ctx

    def test_timeseries_disabled_without_sampler(self, ui_ctx):
        payload = _get_json(ui_ctx.ui_url + "/api/timeseries")
        assert payload == {"enabled": False, "series": []}

    def test_alerts_disabled_without_manager(self, ui_ctx):
        payload = _get_json(ui_ctx.ui_url + "/api/alerts")
        assert payload == {"enabled": False, "rules": [], "states": [],
                           "history": []}

    def _wait_for_series(self, ctx, name="engine_jobs_total", timeout=5.0):
        deadline = time.monotonic() + timeout
        while not ctx.timeseries.all_series(name):
            assert time.monotonic() < deadline, f"{name} never sampled"
            time.sleep(0.02)

    def test_timeseries_payload(self, monitored_ctx):
        monitored_ctx.parallelize(range(20), 4).sum()
        self._wait_for_series(monitored_ctx)
        payload = _get_json(monitored_ctx.ui_url + "/api/timeseries")
        assert payload["enabled"] is True
        assert "engine_jobs_total" in payload["names"]
        by_name = {s["name"]: s for s in payload["series"]}
        series = by_name["engine_jobs_total"]
        assert series["samples"], "sampled series must carry points"
        assert all(len(p) == 2 for p in series["samples"])

    def test_timeseries_name_and_window_params(self, monitored_ctx):
        monitored_ctx.parallelize(range(20), 4).sum()
        self._wait_for_series(monitored_ctx)
        one = _get_json(
            monitored_ctx.ui_url + "/api/timeseries?name=engine_jobs_total"
        )
        assert {s["name"] for s in one["series"]} == {"engine_jobs_total"}
        # let several more ticks land so the windows can actually differ
        (series,) = monitored_ctx.timeseries.all_series("engine_jobs_total")
        deadline = time.monotonic() + 5.0
        while series.samples_recorded < 4:
            assert time.monotonic() < deadline, "sampler stopped ticking"
            time.sleep(0.02)
        tiny = _get_json(monitored_ctx.ui_url + "/api/timeseries?window=0.0001")
        wide = _get_json(monitored_ctx.ui_url + "/api/timeseries?window=3600")
        n_tiny = sum(len(s["samples"]) for s in tiny["series"])
        n_wide = sum(len(s["samples"]) for s in wide["series"])
        assert n_tiny < n_wide

    def test_alerts_payload(self, monitored_ctx):
        monitored_ctx.parallelize(range(20), 4).sum()
        payload = _get_json(monitored_ctx.ui_url + "/api/alerts")
        assert payload["enabled"] is True
        assert {r["name"] for r in payload["rules"]} >= {
            "heartbeat_loss", "cache_thrash",
        }
        assert isinstance(payload["states"], list)
        assert isinstance(payload["history"], list)

    def test_dashboard_links_monitoring_endpoints(self, monitored_ctx):
        _, _, body = _get(monitored_ctx.ui_url + "/")
        assert "/api/timeseries" in body and "/api/alerts" in body
        assert "sparklines" in body and "alertbanner" in body
