"""The embedded live UI server: endpoints, payloads, mid-flight progress."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


def _get_json(url):
    status, _, body = _get(url)
    assert status == 200
    return json.loads(body)


@pytest.fixture
def ui_ctx():
    config = EngineConfig(
        backend="threads", num_executors=2, executor_cores=2,
        default_parallelism=4, heartbeat_interval=0.05,
    )
    with Context(config, ui_port=0) as ctx:
        yield ctx


class TestEndpoints:
    def test_os_assigned_port_and_url(self, ui_ctx):
        assert ui_ctx.ui_url is not None
        assert ui_ctx.ui_url.startswith("http://127.0.0.1:")
        assert int(ui_ctx.ui_url.rsplit(":", 1)[1]) > 0

    def test_metrics_prometheus_text(self, ui_ctx):
        ui_ctx.parallelize(range(20), 4).sum()
        status, content_type, body = _get(ui_ctx.ui_url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# HELP engine_jobs_total" in body
        assert "# TYPE engine_jobs_total counter" in body
        # the registry is process-wide, so assert a sample exists rather
        # than an exact cumulative value
        assert any(
            line.startswith("engine_jobs_total ") for line in body.splitlines()
        )
        assert "repro_worker_task_seconds" in body

    def test_api_jobs(self, ui_ctx):
        ui_ctx.parallelize(range(20), 4).map(lambda x: x + 1).sum()
        jobs = _get_json(ui_ctx.ui_url + "/api/jobs")
        assert len(jobs) == 1
        assert jobs[0]["status"] == "SUCCEEDED"
        assert jobs[0]["num_tasks"] == 4
        assert jobs[0]["wall_seconds"] > 0

    def test_api_stages_includes_telemetry_totals(self, ui_ctx):
        import operator

        ui_ctx.parallelize([(i % 3, 1) for i in range(30)], 4).reduce_by_key(
            operator.add
        ).collect()
        stages = _get_json(ui_ctx.ui_url + "/api/stages")
        assert len(stages) == 2
        for stage in stages:
            for key in ("gc_pause_seconds", "deserialize_seconds",
                        "result_serialize_seconds", "peak_rss_bytes"):
                assert key in stage
        assert any(s["shuffle_bytes_written"] > 0 for s in stages)

    def test_api_executors_merges_heartbeat_liveness(self, ui_ctx):
        ui_ctx.parallelize(range(40), 4).map(
            lambda x: (time.sleep(0.02), x)[1]
        ).sum()
        executors = _get_json(ui_ctx.ui_url + "/api/executors")
        assert {e["executor_id"] for e in executors} == {"exec-0", "exec-1"}
        assert all(e["alive"] for e in executors)
        assert sum(e["tasks_run"] for e in executors) == 4
        # heartbeat info is folded in for executors that reported
        assert any(e.get("heartbeats", 0) > 0 for e in executors)

    def test_api_logs_serves_the_ring_tail(self, ui_ctx):
        from repro.obs.logging import LOG_BUS

        LOG_BUS.clear()
        ui_ctx.parallelize(range(20), 4).sum()
        records = _get_json(ui_ctx.ui_url + "/api/logs")
        assert any(r["message"] == "job finished" for r in records)
        # level filter and limit are query params
        errors_only = _get_json(ui_ctx.ui_url + "/api/logs?level=error&limit=5")
        assert all(r["level"] == "error" for r in errors_only)
        assert len(_get_json(ui_ctx.ui_url + "/api/logs?limit=1")) <= 1

    def test_api_diagnostics_shape(self, ui_ctx):
        ui_ctx.parallelize(range(20), 4).sum()
        diag = _get_json(ui_ctx.ui_url + "/api/diagnostics")
        assert set(diag) == {"skew", "stragglers", "cache_pressure"}
        assert "hit_rate" in diag["cache_pressure"]

    def test_dashboard_html(self, ui_ctx):
        status, content_type, body = _get(ui_ctx.ui_url + "/")
        assert status == 200
        assert content_type.startswith("text/html")
        assert "sparkscore engine UI" in body
        assert "/api/progress" in body
        assert "/api/diagnostics" in body and "/api/logs" in body

    def test_unknown_path_404(self, ui_ctx):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(ui_ctx.ui_url + "/api/nope")
        assert err.value.code == 404

    def test_server_stops_with_context(self):
        config = EngineConfig(backend="serial", num_executors=1,
                              executor_cores=1, default_parallelism=2)
        ctx = Context(config, ui_port=0)
        url = ctx.ui_url
        assert _get(url + "/api/progress")[0] == 200
        ctx.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(url + "/api/progress", timeout=0.5)


class TestLiveProgress:
    def test_progress_advances_mid_flight(self, ui_ctx):
        """Poll /api/progress while a slow job runs: completion counts must
        move before the job finishes -- the live-surface guarantee."""
        release = threading.Event()

        def slow(x):
            if x % 10 == 5:
                time.sleep(0.15)
            return x

        def run():
            ui_ctx.parallelize(range(80), 8).map(slow).sum()
            release.set()

        worker = threading.Thread(target=run)
        worker.start()
        observed = []
        try:
            deadline = time.time() + 10.0
            while not release.is_set() and time.time() < deadline:
                snap = _get_json(ui_ctx.ui_url + "/api/progress")
                for stage in snap["stages"]:
                    observed.append(
                        (stage["completed_tasks"], stage["state"],
                         [j["state"] for j in snap["jobs"]])
                    )
                time.sleep(0.02)
        finally:
            worker.join(timeout=10.0)

        mid_flight = [
            done for done, state, job_states in observed
            if state == "running" and "running" in job_states
        ]
        assert mid_flight, "never caught the stage mid-flight"
        assert any(0 < done < 8 for done in mid_flight), (
            f"progress never advanced mid-flight: {mid_flight}"
        )
        final = _get_json(ui_ctx.ui_url + "/api/progress")
        assert final["jobs"][-1]["state"] == "succeeded"
        assert all(s["state"] == "complete" for s in final["stages"])
