"""The failure flight recorder: post-mortem bundles on every backend."""

import glob
import json
import os

import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.engine.faults import FaultInjector, FaultPlan
from repro.engine.listener import JobStart
from repro.engine.scheduler import JobFailedError
from repro.obs.flightrecorder import (
    BUNDLE_KIND,
    FlightRecorder,
    _event_to_dict,
    load_bundle,
)

BACKENDS = ("serial", "threads", "processes")


def _failing_ctx(backend, out_dir, **overrides):
    """A context whose partition 2 always fails (no retries left)."""
    config = EngineConfig(
        backend=backend, num_executors=2, executor_cores=2,
        default_parallelism=4, max_task_retries=0, **overrides,
    )
    plan = FaultPlan(fail_partition_attempts={2: 99})
    return Context(
        config,
        fault_injector=FaultInjector(plan),
        flight_recorder=str(out_dir),
    )


class TestBundleOnFailure:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failed_job_dumps_a_loadable_bundle(self, backend, tmp_path):
        with _failing_ctx(backend, tmp_path) as ctx:
            with pytest.raises(JobFailedError):
                ctx.parallelize(range(16), 4).map(lambda x: x + 1).sum()
            assert len(ctx.flight_recorder.bundles) == 1
            (path,) = ctx.flight_recorder.bundles
        bundle = load_bundle(path)
        assert bundle["kind"] == BUNDLE_KIND
        assert bundle["reason"] == "job_failure"
        failing = bundle["failing_task"]
        assert failing["stage_id"] == 0
        assert failing["partition"] == 2
        assert "InjectedTaskFailure" in failing["error"]
        assert bundle["error"] == failing["error"]
        # the failed job's stage tree rides along with its task records
        tasks = bundle["job"]["stages"][0]["tasks"]
        assert any(not t["succeeded"] for t in tasks)
        # context state: config + executors
        assert bundle["config"]["backend"] == backend
        assert {e["executor_id"] for e in bundle["executors"]} == {"exec-0", "exec-1"}

    def test_bundle_carries_recent_events_and_logs(self, tmp_path):
        with _failing_ctx("serial", tmp_path) as ctx:
            from repro.obs.logging import LOG_BUS

            LOG_BUS.clear()
            with pytest.raises(JobFailedError):
                ctx.parallelize(range(16), 4).sum()
            (path,) = ctx.flight_recorder.bundles
        bundle = load_bundle(path)
        kinds = {e["event"] for e in bundle["events"]}
        assert {"JobStart", "TaskStart", "TaskEnd"} <= kinds
        failed_ends = [
            e for e in bundle["events"]
            if e["event"] == "TaskEnd" and not e["succeeded"]
        ]
        assert failed_ends and failed_ends[0]["partition"] == 2
        # log records join back to the failing task via correlation fields
        assert any(
            r.get("stage_id") == 0 and r.get("partition") == 2
            for r in bundle["logs"]
        )

    def test_bundle_carries_series_and_alerts_when_monitoring_on(self, tmp_path):
        with _failing_ctx(
            "serial", tmp_path, metrics_interval=0.02, alerts_enabled=True,
        ) as ctx:
            import time

            with pytest.raises(JobFailedError):
                ctx.parallelize(range(16), 4).map(
                    lambda x: (time.sleep(0.02), x)[1]
                ).sum()
            # let the sampler land at least one post-failure tick, then
            # trigger a second failure so its bundle sees the series
            while not ctx.timeseries.dump():
                time.sleep(0.02)
            with pytest.raises(JobFailedError):
                ctx.parallelize(range(16), 4).sum()
            path = ctx.flight_recorder.bundles[-1]
        bundle = load_bundle(path)
        assert bundle["series"], "TSDB window missing from the bundle"
        assert {"history", "firing"} <= set(bundle["alerts"])

    def test_one_bundle_per_failed_job(self, tmp_path):
        with _failing_ctx("serial", tmp_path) as ctx:
            for _ in range(3):
                with pytest.raises(JobFailedError):
                    ctx.parallelize(range(16), 4).sum()
            assert len(ctx.flight_recorder.bundles) == 3
        names = sorted(os.path.basename(p) for p in glob.glob(str(tmp_path / "*.json")))
        assert names == [
            "postmortem-job0-001.json",
            "postmortem-job1-002.json",
            "postmortem-job2-003.json",
        ]

    def test_successful_jobs_write_nothing(self, tmp_path):
        config = EngineConfig(backend="serial", num_executors=2,
                              executor_cores=2, default_parallelism=4)
        with Context(config, flight_recorder=str(tmp_path)) as ctx:
            assert ctx.parallelize(range(8), 4).sum() == 28
            assert ctx.flight_recorder.bundles == []
        assert glob.glob(str(tmp_path / "*.json")) == []


class TestRecorderMechanics:
    def test_event_ring_bounded(self):
        recorder = FlightRecorder("/nonexistent", max_events=5)
        for i in range(20):
            recorder.on_event(JobStart(job_id=i, description="d"))
        assert len(recorder._events) == 5
        assert recorder._events[0]["job_id"] == 15

    def test_events_tail_respects_window(self):
        recorder = FlightRecorder("/nonexistent", window=10.0)
        for t in (0.0, 5.0, 95.0, 99.0):
            event = JobStart(job_id=0, description="d")
            event.time = t
            recorder.on_event(event)
        assert [e["time"] for e in recorder.events_tail(now=100.0)] == [95.0, 99.0]

    def test_event_to_dict_sanitizes_generic_events(self):
        event = JobStart(job_id=3, description="sum")
        event.time = 1.5
        d = _event_to_dict(event)
        assert d == {"event": "JobStart", "time": 1.5, "job_id": 3,
                     "description": "sum"}
        json.dumps(d)  # must be JSON-safe

    def test_dump_failure_never_raises(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")  # makedirs will fail on a file
        recorder = FlightRecorder(str(target))
        assert recorder.dump(reason="test") is None
        assert recorder.bundles == []

    def test_dump_on_stop_is_the_safety_net(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "bundles"))
        assert recorder.dump_on_stop() is None  # no failures: no bundle
        recorder.failures_seen = 1
        path = recorder.dump_on_stop()
        assert path is not None
        assert load_bundle(path)["reason"] == "stop_after_error"
        # once a bundle exists the net does not double-write
        assert recorder.dump_on_stop() is None

    def test_load_bundle_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match=BUNDLE_KIND):
            load_bundle(str(path))
