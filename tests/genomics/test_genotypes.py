"""GenotypeMatrix container."""

import numpy as np
import pytest

from repro.genomics.genotypes import GenotypeMatrix


@pytest.fixture
def gm(rng):
    return GenotypeMatrix(np.arange(10), rng.binomial(2, 0.3, size=(10, 6)).astype(np.int8))


class TestValidation:
    def test_dims(self, gm):
        assert gm.n_snps == 10
        assert gm.n_patients == 6

    def test_dtype_coerced(self):
        gm = GenotypeMatrix(np.arange(2), np.array([[0, 1], [2, 0]]))
        assert gm.matrix.dtype == np.int8

    def test_out_of_range_dosage(self):
        with pytest.raises(ValueError):
            GenotypeMatrix(np.arange(1), np.array([[3]]))
        with pytest.raises(ValueError):
            GenotypeMatrix(np.arange(1), np.array([[-1]]))

    def test_duplicate_ids(self):
        with pytest.raises(ValueError):
            GenotypeMatrix(np.array([1, 1]), np.zeros((2, 3), dtype=np.int8))

    def test_id_alignment(self):
        with pytest.raises(ValueError):
            GenotypeMatrix(np.arange(3), np.zeros((2, 3), dtype=np.int8))

    def test_non_integer_ids(self):
        with pytest.raises(TypeError):
            GenotypeMatrix(np.array(["a", "b"]), np.zeros((2, 3), dtype=np.int8))


class TestAccess:
    def test_rows_iterates_snp_major(self, gm):
        rows = list(gm.rows())
        assert len(rows) == 10
        snp_id, vec = rows[3]
        assert snp_id == 3
        assert np.array_equal(vec, gm.matrix[3])

    def test_blocks_cover_all(self, gm):
        blocks = list(gm.blocks(4))
        assert [len(ids) for ids, _ in blocks] == [4, 4, 2]
        stacked = np.vstack([b for _, b in blocks])
        assert np.array_equal(stacked, gm.matrix)

    def test_blocks_invalid_size(self, gm):
        with pytest.raises(ValueError):
            list(gm.blocks(0))

    def test_subset(self, gm):
        sub = gm.subset(np.array([0, 5]))
        assert sub.n_snps == 2
        assert sub.snp_ids.tolist() == [0, 5]

    def test_maf_folded(self):
        gm = GenotypeMatrix(np.arange(1), np.full((1, 10), 2, dtype=np.int8))
        assert gm.minor_allele_frequencies()[0] == 0.0
        assert gm.allele_frequencies()[0] == 1.0

    def test_nbytes(self, gm):
        assert gm.nbytes == gm.matrix.nbytes + gm.snp_ids.nbytes

    def test_repr(self, gm):
        assert "10 SNPs x 6 patients" in repr(gm)
