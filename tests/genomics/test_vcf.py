"""Minimal VCF reader/writer."""

import numpy as np
import pytest

from repro.genomics.io.vcf import VcfError, parse_vcf, read_vcf, write_vcf
from repro.genomics.variants import Snp

HEADER = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\tS3"


def vcf_lines(*rows):
    return ["##fileformat=VCFv4.2", HEADER, *rows]


class TestParse:
    def test_basic_dosages(self):
        data = parse_vcf(vcf_lines(
            "chr1\t100\trs1\tA\tG\t.\tPASS\t.\tGT\t0/0\t0/1\t1/1",
            "chr1\t200\trs2\tC\tT\t.\tPASS\t.\tGT\t0|1\t0|0\t1|1",
        ))
        assert data.samples == ["S1", "S2", "S3"]
        assert data.genotypes.matrix.tolist() == [[0, 1, 2], [1, 0, 2]]
        assert data.snps[0] == Snp("chr1", 100, "rs1")
        assert data.n_imputed == 0

    def test_missing_imputed_to_mean(self):
        data = parse_vcf(vcf_lines("chr1\t1\t.\tA\tG\t.\t.\t.\tGT\t2/2\t./.\t0/0"))
        # known dosages 2 and 0 -> mean 1
        assert data.genotypes.matrix.tolist() == [[2, 1, 0]]
        assert data.n_imputed == 1
        assert data.snps[0].snp_id == ""

    def test_all_missing_site_zero(self):
        data = parse_vcf(vcf_lines("chr1\t1\t.\tA\tG\t.\t.\t.\tGT\t./.\t./.\t./."))
        assert data.genotypes.matrix.tolist() == [[0, 0, 0]]
        assert data.n_imputed == 3

    def test_gt_not_first_in_format(self):
        data = parse_vcf(vcf_lines(
            "chr1\t1\t.\tA\tG\t.\t.\t.\tDP:GT\t10:0/1\t12:1/1\t9:0/0"
        ))
        assert data.genotypes.matrix.tolist() == [[1, 2, 0]]

    def test_extra_format_fields_ignored(self):
        data = parse_vcf(vcf_lines(
            "chr1\t1\t.\tA\tG\t.\t.\t.\tGT:DP\t0/1:10\t1/1:3\t0/0:5"
        ))
        assert data.genotypes.matrix.tolist() == [[1, 2, 0]]

    def test_multiallelic_counts_any_alt(self):
        data = parse_vcf(vcf_lines("chr1\t1\t.\tA\tG,T\t.\t.\t.\tGT\t1/2\t0/2\t0/0"))
        assert data.genotypes.matrix.tolist() == [[2, 1, 0]]

    @pytest.mark.parametrize(
        "rows,message",
        [
            ((), "no variant rows"),
            (("chr1\t1\t.\tA\tG\t.\t.\t.\tDP\t1\t2\t3",), "lacks GT"),
            (("chr1\tXX\t.\tA\tG\t.\t.\t.\tGT\t0/0\t0/0\t0/0",), "bad POS"),
            (("chr1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/0\t0/0",), "columns"),
        ],
    )
    def test_malformed(self, rows, message):
        with pytest.raises(VcfError, match=message):
            parse_vcf(vcf_lines(*rows))

    def test_data_before_header(self):
        with pytest.raises(VcfError, match="before #CHROM"):
            parse_vcf(["chr1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/0"])

    def test_no_header(self):
        with pytest.raises(VcfError, match="no #CHROM"):
            parse_vcf(["##fileformat=VCFv4.2"])

    def test_no_samples(self):
        with pytest.raises(VcfError, match="no sample"):
            parse_vcf(["\t".join(HEADER.split("\t")[:9])])


class TestRoundTrip:
    def test_local_file(self, tmp_path, rng):
        from repro.genomics.genotypes import GenotypeMatrix

        G = GenotypeMatrix(np.arange(5), rng.binomial(2, 0.3, size=(5, 4)).astype(np.int8))
        snps = [Snp("chr2", 10 * (i + 1), f"rs{i}") for i in range(5)]
        samples = [f"P{i}" for i in range(4)]
        path = str(tmp_path / "x.vcf")
        write_vcf(G, snps, samples, path)
        back = read_vcf(path)
        assert np.array_equal(back.genotypes.matrix, G.matrix)
        assert back.samples == samples
        assert back.snps == snps

    def test_hdfs_roundtrip(self, rng):
        from repro.genomics.genotypes import GenotypeMatrix
        from repro.hdfs.filesystem import MiniHDFS

        fs = MiniHDFS(num_datanodes=2)
        G = GenotypeMatrix(np.arange(3), rng.binomial(2, 0.4, size=(3, 2)).astype(np.int8))
        snps = [Snp("chr1", i + 1) for i in range(3)]
        write_vcf(G, snps, ["A", "B"], "/g.vcf", hdfs=fs)
        back = read_vcf("/g.vcf", hdfs=fs)
        assert np.array_equal(back.genotypes.matrix, G.matrix)

    def test_write_validation(self, rng):
        from repro.genomics.genotypes import GenotypeMatrix

        G = GenotypeMatrix(np.arange(2), np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            write_vcf(G, [Snp("chr1", 1)], ["a", "b", "c"], "/tmp/x")
        with pytest.raises(ValueError):
            write_vcf(G, [Snp("chr1", 1), Snp("chr1", 2)], ["a"], "/tmp/x")


class TestEndToEndAnalysis:
    def test_vcf_to_skat(self, tmp_path, rng):
        """VCF in, SKAT p-values out -- the full genomics IO path."""
        from repro.core.local import LocalSparkScore
        from repro.genomics.genotypes import GenotypeMatrix
        from repro.genomics.snpsets import SnpSetCollection
        from repro.genomics.synthetic import Dataset
        from repro.stats.score.base import SurvivalPhenotype

        n, m = 50, 30
        G = GenotypeMatrix(np.arange(m), rng.binomial(2, 0.3, size=(m, n)).astype(np.int8))
        snps = [Snp("chr1", i + 1) for i in range(m)]
        samples = [f"P{i}" for i in range(n)]
        path = str(tmp_path / "study.vcf")
        write_vcf(G, snps, samples, path)

        loaded = read_vcf(path)
        pheno = SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n))
        sets = SnpSetCollection(np.repeat(np.arange(3), m // 3))
        data = Dataset(loaded.genotypes, pheno, np.ones(m), sets)
        result = LocalSparkScore(data).monte_carlo(100, seed=1)
        assert result.pvalues().shape == (3,)
