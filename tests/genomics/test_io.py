"""Text formats and whole-dataset round trips (local + HDFS)."""

import numpy as np
import pytest

from repro.genomics.io.dataset_io import read_dataset, write_dataset
from repro.genomics.io.formats import (
    FormatError,
    format_genotype_line,
    format_phenotype_line,
    format_snpset_line,
    format_weight_line,
    parse_genotype_line,
    parse_phenotype_line,
    parse_snpset_line,
    parse_weight_line,
)
from repro.hdfs.filesystem import MiniHDFS


class TestGenotypeLines:
    def test_roundtrip(self):
        line = format_genotype_line(7, np.array([0, 1, 2, 1], dtype=np.int8))
        assert line == "7\t0,1,2,1"
        snp_id, values = parse_genotype_line(line)
        assert snp_id == 7
        assert values.tolist() == [0, 1, 2, 1]
        assert values.dtype == np.int8

    @pytest.mark.parametrize("bad", ["", "7", "x\t0,1", "7\t0,a,1"])
    def test_malformed(self, bad):
        with pytest.raises(FormatError):
            parse_genotype_line(bad)


class TestPhenotypeLines:
    def test_roundtrip(self):
        line = format_phenotype_line(3, 12.5, 1)
        assert parse_phenotype_line(line) == (3, 12.5, 1)

    def test_precision_preserved(self):
        t = 0.1 + 0.2  # not exactly representable
        assert parse_phenotype_line(format_phenotype_line(0, t, 0))[1] == t

    @pytest.mark.parametrize("bad", ["", "1\t2.0", "1\t2.0\t3", "1\t-2.0\t1", "a\t2.0\t1"])
    def test_malformed(self, bad):
        with pytest.raises(FormatError):
            parse_phenotype_line(bad)


class TestWeightLines:
    def test_roundtrip(self):
        assert parse_weight_line(format_weight_line(5, 0.25)) == (5, 0.25)

    @pytest.mark.parametrize("bad", ["", "5", "5\t-1.0", "x\t1.0"])
    def test_malformed(self, bad):
        with pytest.raises(FormatError):
            parse_weight_line(bad)


class TestSnpSetLines:
    def test_roundtrip(self):
        line = format_snpset_line("geneA", [1, 2, 3])
        assert parse_snpset_line(line) == ("geneA", [1, 2, 3])

    def test_empty_set(self):
        assert parse_snpset_line(format_snpset_line("g", [])) == ("g", [])

    def test_tab_in_name_rejected(self):
        with pytest.raises(FormatError):
            format_snpset_line("a\tb", [1])

    def test_malformed(self):
        with pytest.raises(FormatError):
            parse_snpset_line("name\t1,x")


class TestDatasetRoundTrip:
    def assert_equal(self, a, b):
        assert np.array_equal(a.genotypes.snp_ids, b.genotypes.snp_ids)
        assert np.array_equal(a.genotypes.matrix, b.genotypes.matrix)
        assert np.allclose(a.phenotype.time, b.phenotype.time)
        assert np.array_equal(a.phenotype.event, b.phenotype.event)
        assert np.allclose(a.weights, b.weights)
        assert np.array_equal(a.snpsets.set_ids, b.snpsets.set_ids)

    def test_local_dir(self, tiny_dataset, tmp_path):
        paths = write_dataset(tiny_dataset, str(tmp_path / "ds"))
        assert set(paths) == {"genotypes", "phenotype", "weights", "snpsets"}
        back = read_dataset(str(tmp_path / "ds"))
        self.assert_equal(tiny_dataset, back)

    def test_hdfs(self, tiny_dataset):
        fs = MiniHDFS(num_datanodes=3, block_size=2048)
        paths = write_dataset(tiny_dataset, "/data/run1", hdfs=fs)
        assert paths["genotypes"].startswith("hdfs://")
        back = read_dataset("/data/run1", hdfs=fs)
        self.assert_equal(tiny_dataset, back)

    def test_missing_weight_detected(self, tiny_dataset, tmp_path):
        base = str(tmp_path / "ds")
        write_dataset(tiny_dataset, base)
        # truncate the weights file
        import os

        weights_path = os.path.join(base, "weights.txt")
        lines = open(weights_path).read().splitlines()
        with open(weights_path, "w") as fh:
            fh.write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="missing SNP"):
            read_dataset(base)

    def test_empty_genotypes_rejected(self, tmp_path):
        base = tmp_path / "ds"
        base.mkdir()
        for name in ("genotypes.txt", "phenotype.txt", "weights.txt", "snpsets.txt"):
            (base / name).write_text("")
        with pytest.raises(ValueError, match="empty genotype"):
            read_dataset(str(base))
