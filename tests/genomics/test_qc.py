"""Genotype quality-control filters."""

import numpy as np
import pytest

from repro.genomics.qc import (
    apply_qc,
    call_rate_filter,
    hwe_filter,
    hwe_pvalues,
    maf_filter,
    run_qc,
)


class TestMafFilter:
    def test_rare_dropped(self, rng):
        common = rng.binomial(2, 0.3, size=(5, 500))
        rare = rng.binomial(2, 0.001, size=(5, 500))
        G = np.vstack([common, rare])
        keep = maf_filter(G, min_maf=0.05)
        assert keep[:5].all()
        assert not keep[5:].any()

    def test_folded(self):
        # frequency 0.97 => maf 0.03
        G = np.full((1, 100), 2)
        G[0, :6] = 1
        assert not maf_filter(G, min_maf=0.05)[0]

    def test_bounds(self):
        with pytest.raises(ValueError):
            maf_filter(np.zeros((1, 2)), min_maf=0.6)


class TestCallRate:
    def test_missing_fraction(self):
        G = np.zeros((2, 10), dtype=int)
        G[1, :2] = -1  # 80% call rate
        keep = call_rate_filter(G, missing_code=-1, min_call_rate=0.9)
        assert keep.tolist() == [True, False]

    def test_bounds(self):
        with pytest.raises(ValueError):
            call_rate_filter(np.zeros((1, 2)), min_call_rate=1.5)


class TestHwe:
    def test_equilibrium_passes(self, rng):
        p = 0.3
        G = rng.binomial(2, p, size=(20, 2000))
        pvals = hwe_pvalues(G)
        assert (pvals > 1e-4).all()
        # under H0 the p-values should not cluster at 0
        assert pvals.mean() > 0.2

    def test_excess_heterozygosity_rejected(self):
        # all hets: wildly out of HWE for p = 0.5
        G = np.ones((1, 1000), dtype=int)
        assert hwe_pvalues(G)[0] < 1e-10
        assert not hwe_filter(G)[0]

    def test_missing_heterozygotes_rejected(self):
        G = np.concatenate([np.zeros(500), np.full(500, 2)]).astype(int)[None, :]
        assert hwe_pvalues(G)[0] < 1e-10

    def test_monomorphic_is_p_one(self):
        G = np.zeros((1, 100), dtype=int)
        assert hwe_pvalues(G)[0] == 1.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            hwe_filter(np.zeros((1, 2)), min_pvalue=2.0)


class TestRunQc:
    def test_marginal_counts(self, rng):
        clean = rng.binomial(2, 0.3, size=(10, 1000))
        rare = rng.binomial(2, 0.001, size=(3, 1000))
        bad_hwe = np.ones((2, 1000), dtype=int)
        G = np.vstack([clean, rare, bad_hwe])
        report = run_qc(G, min_maf=0.05)
        assert report.failed_maf >= 3
        assert report.failed_hwe >= 2
        assert report.n_kept == 10
        assert report.n_kept + report.n_dropped == 15

    def test_apply_qc_densifies_sets(self, rng):
        from repro.genomics.genotypes import GenotypeMatrix
        from repro.genomics.snpsets import SnpSetCollection
        from repro.genomics.synthetic import Dataset
        from repro.stats.score.base import SurvivalPhenotype

        n = 400
        clean = rng.binomial(2, 0.3, size=(6, n)).astype(np.int8)
        rare = rng.binomial(2, 0.001, size=(3, n)).astype(np.int8)
        matrix = np.vstack([clean, rare])
        dataset = Dataset(
            GenotypeMatrix(np.arange(9), matrix),
            SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n)),
            np.ones(9),
            SnpSetCollection(np.array([0, 0, 0, 1, 1, 1, 2, 2, 2]), ["a", "b", "junk"]),
        )
        report = run_qc(matrix, min_maf=0.05)
        filtered = apply_qc(dataset, report)
        assert filtered.n_snps == 6
        assert filtered.snpsets.names == ["a", "b"]
        assert filtered.n_sets == 2
        # the filtered dataset analyzes cleanly
        from repro.core.local import LocalSparkScore

        result = LocalSparkScore(filtered).monte_carlo(50, seed=1)
        assert result.pvalues().shape == (2,)

    def test_apply_qc_everything_removed(self, tiny_dataset):
        report = run_qc(tiny_dataset.genotypes.matrix, min_maf=0.5)
        if report.n_kept == 0:
            with pytest.raises(ValueError):
                apply_qc(tiny_dataset, report)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            run_qc(np.zeros(5))
