"""SNP/gene types and SNP-set collections."""

import numpy as np
import pytest

from repro.genomics.snpsets import SnpSetCollection
from repro.genomics.variants import Gene, Snp


class TestSnp:
    def test_label(self):
        assert Snp("chr1", 100).label == "chr1:100"
        assert Snp("chr1", 100, "rs42").label == "rs42"

    def test_ordering(self):
        assert Snp("chr1", 5) < Snp("chr1", 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            Snp("chr1", -1)
        with pytest.raises(ValueError):
            Snp("", 5)


class TestGene:
    def test_contains(self):
        gene = Gene("chr2", 100, 200, "BRCA")
        assert gene.contains(Snp("chr2", 100))
        assert gene.contains(Snp("chr2", 200))
        assert not gene.contains(Snp("chr2", 201))
        assert not gene.contains(Snp("chr3", 150))

    def test_length_and_label(self):
        gene = Gene("chr2", 100, 200)
        assert gene.length == 101
        assert gene.label == "chr2:100-200"

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Gene("chr1", 200, 100)


class TestSnpSetCollection:
    def test_basic_partition(self):
        coll = SnpSetCollection(np.array([0, 0, 1, 2, 1]))
        assert coll.n_sets == 3
        assert coll.members(1).tolist() == [2, 4]
        assert coll.sizes().tolist() == [2, 2, 1]

    def test_default_names(self):
        coll = SnpSetCollection(np.array([0, 1]))
        assert coll.names == ["set00000", "set00001"]

    def test_explicit_names(self):
        coll = SnpSetCollection(np.array([0, 1]), ["geneA", "geneB"])
        assert coll.names == ["geneA", "geneB"]

    def test_too_few_names(self):
        with pytest.raises(ValueError):
            SnpSetCollection(np.array([0, 1, 2]), ["only", "two"])

    def test_members_out_of_range(self):
        coll = SnpSetCollection(np.array([0]))
        with pytest.raises(IndexError):
            coll.members(5)

    def test_lists_roundtrip(self):
        snp_ids = np.array([10, 20, 30, 40])
        coll = SnpSetCollection(np.array([0, 1, 0, 1]), ["a", "b"])
        lists = coll.as_lists(snp_ids)
        assert lists == {"a": [10, 30], "b": [20, 40]}
        back = SnpSetCollection.from_lists(snp_ids, lists)
        assert back.set_ids.tolist() == coll.set_ids.tolist()
        assert back.names == coll.names

    def test_from_lists_unknown_snp(self):
        with pytest.raises(ValueError, match="unknown SNP"):
            SnpSetCollection.from_lists(np.array([1, 2]), {"a": [1, 3], "b": [2]})

    def test_from_lists_duplicate_snp(self):
        with pytest.raises(ValueError, match="more than one"):
            SnpSetCollection.from_lists(np.array([1, 2]), {"a": [1, 2], "b": [2]})

    def test_from_lists_uncovered_snp(self):
        with pytest.raises(ValueError, match="not covered"):
            SnpSetCollection.from_lists(np.array([1, 2]), {"a": [1]})

    def test_from_genes_assignment(self):
        snps = [Snp("chr1", 50), Snp("chr1", 150), Snp("chr1", 999)]
        genes = [Gene("chr1", 0, 100, "g1"), Gene("chr1", 100, 200, "g2")]
        coll = SnpSetCollection.from_genes(snps, genes)
        assert coll.names == ["g1", "g2", "intergenic"]
        assert coll.set_ids.tolist() == [0, 1, 2]

    def test_from_genes_first_match_wins(self):
        snps = [Snp("chr1", 100)]
        genes = [Gene("chr1", 0, 150, "g1"), Gene("chr1", 50, 200, "g2")]
        assert SnpSetCollection.from_genes(snps, genes).set_ids.tolist() == [0]

    def test_from_genes_all_covered_no_intergenic(self):
        snps = [Snp("chr1", 10)]
        genes = [Gene("chr1", 0, 100, "g1")]
        coll = SnpSetCollection.from_genes(snps, genes)
        assert coll.names == ["g1"]
