"""Section III synthetic generator: distributions and set construction."""

import numpy as np
import pytest

from repro.genomics.synthetic import (
    SyntheticConfig,
    generate_dataset,
    snpset_size_partition,
)


class TestConfigValidation:
    def test_defaults_are_paper_values(self):
        cfg = SyntheticConfig()
        assert cfg.n_patients == 1000
        assert cfg.n_snps == 100_000
        assert cfg.n_snpsets == 1000
        assert cfg.mean_survival_months == 12.0
        assert cfg.event_rate == 0.85

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_patients": 1},
            {"n_snps": 0},
            {"n_snpsets": 0},
            {"n_snpsets": 100, "n_snps": 50},
            {"event_rate": 1.5},
            {"mean_survival_months": 0},
            {"maf_range": (0.0, 0.5)},
            {"maf_range": (0.6, 0.5)},
            {"n_causal_snps": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticConfig(**kwargs)


class TestDistributions:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_dataset(
            SyntheticConfig(n_patients=4000, n_snps=500, n_snpsets=20, seed=5)
        )

    def test_mean_survival(self, data):
        assert data.phenotype.time.mean() == pytest.approx(12.0, rel=0.1)

    def test_event_rate(self, data):
        assert data.phenotype.event.mean() == pytest.approx(0.85, abs=0.03)

    def test_genotypes_binomial(self, data):
        G = data.genotypes.matrix
        assert set(np.unique(G)) <= {0, 1, 2}
        rho = data.genotypes.allele_frequencies()
        assert np.all(rho > 0.0) and np.all(rho < 0.7)
        # per-SNP variance consistent with Binomial(2, rho)
        var = G.var(axis=1)
        expected = 2 * rho * (1 - rho)
        assert np.corrcoef(var, expected)[0, 1] > 0.9

    def test_rho_varies_across_snps(self, data):
        assert data.genotypes.allele_frequencies().std() > 0.05

    def test_weights_flat(self, data):
        assert np.all(data.weights == 1.0)

    def test_reproducible(self):
        cfg = SyntheticConfig(n_patients=50, n_snps=100, n_snpsets=5, seed=9)
        a, b = generate_dataset(cfg), generate_dataset(cfg)
        assert np.array_equal(a.genotypes.matrix, b.genotypes.matrix)
        assert np.array_equal(a.phenotype.time, b.phenotype.time)
        assert np.array_equal(a.snpsets.set_ids, b.snpsets.set_ids)

    def test_seed_changes_data(self):
        a = generate_dataset(SyntheticConfig(n_patients=50, n_snps=100, n_snpsets=5, seed=1))
        b = generate_dataset(SyntheticConfig(n_patients=50, n_snps=100, n_snpsets=5, seed=2))
        assert not np.array_equal(a.genotypes.matrix, b.genotypes.matrix)


class TestSetPartition:
    def test_every_snp_assigned(self, rng):
        ids = snpset_size_partition(1000, 37, rng)
        assert ids.shape == (1000,)
        assert set(np.unique(ids)) <= set(range(37))

    def test_last_set_augmented(self, rng):
        ids = snpset_size_partition(500, 10, rng)
        assert ids[-1] == 9  # remainder lands in the final set

    def test_mean_size_close_to_m_over_k(self):
        rng = np.random.default_rng(0)
        ids = snpset_size_partition(100_000, 1000, rng)
        sizes = np.bincount(ids, minlength=1000)
        assert sizes.sum() == 100_000
        # exponential with mean ~100, floored
        assert 50 < sizes[:-1].mean() < 150

    def test_no_empty_sets_when_feasible(self, rng):
        ids = snpset_size_partition(100, 10, rng)
        sizes = np.bincount(ids, minlength=10)
        assert np.all(sizes >= 1)

    def test_one_set(self, rng):
        ids = snpset_size_partition(50, 1, rng)
        assert np.all(ids == 0)

    def test_sets_equal_snps(self, rng):
        ids = snpset_size_partition(10, 10, rng)
        assert np.bincount(ids, minlength=10).tolist() == [1] * 10


class TestPlantedSignal:
    def test_causal_rows_recorded(self):
        data = generate_dataset(
            SyntheticConfig(
                n_patients=500, n_snps=200, n_snpsets=10, seed=3,
                n_causal_snps=5, effect_size=0.8,
            )
        )
        assert len(data.causal_rows) == 5
        assert np.all(np.diff(data.causal_rows) > 0)

    def test_causal_set_detected(self):
        """The set containing causal SNPs should get the smallest p-value."""
        from repro.core.local import LocalSparkScore

        data = generate_dataset(
            SyntheticConfig(
                n_patients=600, n_snps=100, n_snpsets=5, seed=13,
                n_causal_snps=4, effect_size=1.0,
            )
        )
        result = LocalSparkScore(data).monte_carlo(500, seed=1)
        causal_sets = set(data.snpsets.set_ids[data.causal_rows])
        top = result.top(len(causal_sets))
        assert {r.set_index for r in top} & causal_sets

    def test_null_dataset_has_no_causal_rows(self, tiny_dataset):
        assert tiny_dataset.causal_rows.size == 0


class TestDatasetValidation:
    def test_weight_shape_enforced(self, tiny_dataset):
        from repro.genomics.synthetic import Dataset

        with pytest.raises(ValueError):
            Dataset(
                tiny_dataset.genotypes,
                tiny_dataset.phenotype,
                np.ones(3),
                tiny_dataset.snpsets,
            )

    def test_properties(self, tiny_dataset):
        assert tiny_dataset.n_snps == 40
        assert tiny_dataset.n_patients == 30
        assert tiny_dataset.n_sets == 4
