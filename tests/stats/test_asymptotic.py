"""Asymptotic SKAT p-values: eigenvalue mixtures and tail approximations."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.asymptotic import (
    pvalue_imhof,
    pvalue_liu,
    pvalue_satterthwaite,
    skat_asymptotic_pvalues,
    skat_mixture_eigenvalues,
)
from repro.stats.resampling.montecarlo import monte_carlo_skat
from repro.stats.score.base import SurvivalPhenotype
from repro.stats.score.cox import CoxScoreModel
from repro.stats.skat import skat_statistics


class TestEigenvalues:
    def test_gram_spectra_agree(self, rng):
        U = rng.normal(size=(6, 40))  # m < n
        w = rng.uniform(0.5, 2.0, 6)
        lam_small = skat_mixture_eigenvalues(U, w)
        # compute via the big (n x n) Gram directly
        Uw = U * w[:, None]
        lam_big = np.linalg.eigvalsh(Uw.T @ Uw)
        lam_big = np.sort(lam_big[lam_big > 1e-8])[::-1]
        assert np.allclose(lam_small, lam_big, rtol=1e-8)

    def test_rank_bounded(self, rng):
        U = rng.normal(size=(20, 5))
        lam = skat_mixture_eigenvalues(U, np.ones(20))
        assert len(lam) <= 5

    def test_sum_is_trace(self, rng):
        U = rng.normal(size=(4, 30))
        w = rng.uniform(0.5, 2.0, 4)
        lam = skat_mixture_eigenvalues(U, w)
        assert lam.sum() == pytest.approx(np.sum((U * w[:, None]) ** 2), rel=1e-8)


class TestTailApproximations:
    def test_single_eigenvalue_is_chi2(self):
        """With one eigenvalue lambda, S/lambda ~ chi^2_1 exactly."""
        lam = np.array([2.5])
        for s in (0.1, 1.0, 5.0, 12.0):
            exact = sps.chi2.sf(s / 2.5, 1)
            assert pvalue_satterthwaite(s, lam) == pytest.approx(exact, rel=1e-10)
            assert pvalue_imhof(s, lam) == pytest.approx(exact, abs=5e-4)
            assert pvalue_liu(s, lam) == pytest.approx(exact, rel=0.05)

    def test_equal_eigenvalues_chi2_k(self):
        lam = np.ones(5) * 3.0
        for s in (5.0, 15.0, 40.0):
            exact = sps.chi2.sf(s / 3.0, 5)
            assert pvalue_satterthwaite(s, lam) == pytest.approx(exact, rel=1e-8)
            assert pvalue_imhof(s, lam) == pytest.approx(exact, abs=5e-4)

    def test_methods_agree_on_mixtures(self, rng):
        lam = rng.uniform(0.5, 3.0, 8)
        for s in (2.0, 10.0, 30.0):
            p_i = pvalue_imhof(s, lam)
            assert pvalue_liu(s, lam) == pytest.approx(p_i, abs=0.02)
            assert pvalue_satterthwaite(s, lam) == pytest.approx(p_i, abs=0.05)

    def test_monotone_decreasing_in_statistic(self, rng):
        lam = rng.uniform(0.5, 2.0, 6)
        grid = [pvalue_imhof(s, lam) for s in np.linspace(0.1, 50, 20)]
        assert all(a >= b - 1e-9 for a, b in zip(grid, grid[1:]))

    def test_empty_spectrum(self):
        assert pvalue_liu(1.0, np.array([])) == 1.0
        assert pvalue_imhof(1.0, np.array([])) == 1.0
        assert pvalue_satterthwaite(1.0, np.array([])) == 1.0

    def test_imhof_matches_simulation(self, rng):
        lam = np.array([3.0, 1.0, 0.5])
        z = rng.standard_normal((200_000, 3))
        samples = (z**2 * lam[None, :]).sum(axis=1)
        for s in (2.0, 6.0, 12.0):
            empirical = (samples >= s).mean()
            assert pvalue_imhof(s, lam) == pytest.approx(empirical, abs=0.005)


class TestEndToEnd:
    def test_asymptotic_matches_large_b_monte_carlo(self, rng):
        n, J, K = 60, 50, 4
        pheno = SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n))
        model = CoxScoreModel(pheno)
        G = rng.binomial(2, 0.3, size=(J, n)).astype(float)
        w = np.ones(J)
        ids = rng.integers(0, K, J)
        U = model.contributions(G)
        mc = monte_carlo_skat(U, w, ids, K, n_resamples=4000, seed=11)
        asym = skat_asymptotic_pvalues(U, w, ids, K, method="imhof")
        assert np.all(np.abs(mc.pvalues() - asym) < 0.05)

    def test_default_observed_computed(self, rng):
        U = rng.normal(size=(10, 20))
        w = np.ones(10)
        ids = np.zeros(10, dtype=int)
        p1 = skat_asymptotic_pvalues(U, w, ids, 1)
        obs = skat_statistics(U.sum(axis=1), w, ids, 1)
        p2 = skat_asymptotic_pvalues(U, w, ids, 1, observed=obs)
        assert np.allclose(p1, p2)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError):
            skat_asymptotic_pvalues(np.zeros((2, 3)), np.ones(2), np.zeros(2, dtype=int), 1, method="magic")

    def test_empty_set_pvalue_one(self, rng):
        U = rng.normal(size=(3, 10))
        p = skat_asymptotic_pvalues(U, np.ones(3), np.zeros(3, dtype=int), 2)
        assert p[1] == 1.0
