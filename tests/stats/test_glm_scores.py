"""Binomial and Gaussian score models, IRLS null fits, covariate projection."""

import numpy as np
import pytest

from repro.stats.score.base import BinaryPhenotype, QuantitativePhenotype
from repro.stats.score.binomial import BinomialScoreModel
from repro.stats.score.gaussian import GaussianScoreModel
from repro.stats.score.glm import (
    NullModelError,
    design_matrix,
    fit_binomial_null,
    fit_gaussian_null,
    project_out_covariates,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestGaussianNull:
    def test_intercept_only_mean(self, rng):
        y = rng.normal(3.0, 1.0, 200)
        fit = fit_gaussian_null(y, None)
        assert fit.mu == pytest.approx(np.full(200, y.mean()))
        assert fit.dispersion == pytest.approx(y.var(ddof=1), rel=0.02)

    def test_covariates_residual_orthogonality(self, rng):
        X = rng.normal(size=(100, 2))
        y = 1.0 + X @ [2.0, -1.0] + rng.normal(size=100)
        fit = fit_gaussian_null(y, X)
        resid = y - fit.mu
        assert np.allclose(fit.X.T @ resid, 0.0, atol=1e-8)

    def test_constant_outcome_degenerate(self):
        fit = fit_gaussian_null(np.ones(10), None)
        assert fit.dispersion == 1.0  # guarded fallback


class TestBinomialNull:
    def test_intercept_only_rate(self, rng):
        y = rng.binomial(1, 0.3, 500).astype(float)
        fit = fit_binomial_null(y, None)
        assert fit.mu == pytest.approx(np.full(500, y.mean()), abs=1e-6)

    def test_score_equation_satisfied(self, rng):
        X = rng.normal(size=(300, 2))
        eta = 0.5 + X @ [1.0, -0.5]
        y = rng.binomial(1, 1 / (1 + np.exp(-eta))).astype(float)
        fit = fit_binomial_null(y, X)
        assert np.allclose(fit.X.T @ (y - fit.mu), 0.0, atol=1e-6)

    def test_separation_raises(self):
        # covariate perfectly separates outcomes
        X = np.concatenate([np.full(20, -1.0), np.full(20, 1.0)])[:, None]
        y = np.concatenate([np.zeros(20), np.ones(20)])
        with pytest.raises(NullModelError):
            fit_binomial_null(y, X, max_iter=100)

    def test_design_matrix_shapes(self):
        assert design_matrix(5, None).shape == (5, 1)
        assert design_matrix(5, np.zeros((5, 3))).shape == (5, 4)
        with pytest.raises(ValueError):
            design_matrix(5, np.zeros((4, 2)))


class TestProjection:
    def test_projected_block_orthogonal_to_design(self, rng):
        X = rng.normal(size=(80, 2))
        y = rng.normal(size=80)
        fit = fit_gaussian_null(y, X)
        G = rng.binomial(2, 0.3, size=(10, 80)).astype(float)
        G_adj = project_out_covariates(G, fit)
        # weighted cross-products with every design column vanish
        assert np.allclose(G_adj @ (fit.X * fit.weights[:, None]), 0.0, atol=1e-8)

    def test_intercept_only_projection_is_centering(self, rng):
        y = rng.normal(size=50)
        fit = fit_gaussian_null(y, None)
        G = rng.binomial(2, 0.4, size=(5, 50)).astype(float)
        G_adj = project_out_covariates(G, fit)
        assert np.allclose(G_adj, G - G.mean(axis=1, keepdims=True))


class TestBinomialScoreModel:
    def test_no_covariates_closed_form(self, rng):
        y = rng.binomial(1, 0.4, 100).astype(float)
        model = BinomialScoreModel(BinaryPhenotype(y), adjust_genotypes=False)
        G = rng.binomial(2, 0.3, size=(7, 100)).astype(float)
        expected = G * (y - y.mean())[None, :]
        assert np.allclose(model.contributions(G), expected, atol=1e-8)

    def test_scores_sum_zero_with_adjustment(self, rng):
        y = rng.binomial(1, 0.4, 100).astype(float)
        model = BinomialScoreModel(BinaryPhenotype(y))
        G = rng.binomial(2, 0.3, size=(7, 100)).astype(float)
        # centered genotype x residual: per-SNP scores are invariant to
        # adding a constant to G
        s1 = model.scores(G)
        s2 = model.scores(G + 5.0)
        assert np.allclose(s1, s2, atol=1e-8)

    def test_covariates_reduce_confounded_score(self, rng):
        # genotype correlated with a covariate that drives the outcome:
        # adjusting must shrink the score
        n = 400
        confounder = rng.normal(size=n)
        g = (confounder > 0).astype(float) + rng.binomial(1, 0.1, n)
        eta = 2.0 * confounder
        y = rng.binomial(1, 1 / (1 + np.exp(-eta))).astype(float)
        raw = BinomialScoreModel(BinaryPhenotype(y), adjust_genotypes=False)
        adj = BinomialScoreModel(BinaryPhenotype(y, confounder[:, None]))
        assert abs(adj.scores(g[None, :])[0]) < abs(raw.scores(g[None, :])[0])

    def test_permuted_model(self, rng):
        y = rng.binomial(1, 0.5, 60).astype(float)
        model = BinomialScoreModel(BinaryPhenotype(y))
        perm = rng.permutation(60)
        G = rng.binomial(2, 0.3, size=(3, 60)).astype(float)
        direct = BinomialScoreModel(BinaryPhenotype(y[perm])).contributions(G)
        assert np.allclose(model.permuted(perm).contributions(G), direct)

    def test_binary_validation(self):
        with pytest.raises(ValueError):
            BinaryPhenotype(np.array([0.0, 0.5, 1.0]))


class TestGaussianScoreModel:
    def test_no_covariates_closed_form(self, rng):
        y = rng.normal(size=100)
        model = GaussianScoreModel(QuantitativePhenotype(y), adjust_genotypes=False)
        G = rng.binomial(2, 0.3, size=(4, 100)).astype(float)
        fit_var = ((y - y.mean()) ** 2).sum() / 99
        expected = G * ((y - y.mean()) / fit_var)[None, :]
        assert np.allclose(model.contributions(G), expected)

    def test_sigma2_property(self, rng):
        y = rng.normal(0, 2.0, 500)
        model = GaussianScoreModel(QuantitativePhenotype(y))
        assert model.sigma2 == pytest.approx(4.0, rel=0.2)

    def test_planted_effect_gives_large_score(self, rng):
        n = 300
        g = rng.binomial(2, 0.3, n).astype(float)
        y = 0.8 * g + rng.normal(size=n)
        null_g = rng.binomial(2, 0.3, size=(20, n)).astype(float)
        model = GaussianScoreModel(QuantitativePhenotype(y))
        causal_score = abs(model.scores(g[None, :])[0])
        null_scores = np.abs(model.scores(null_g))
        assert causal_score > null_scores.max()

    def test_permuted_model(self, rng):
        y = rng.normal(size=40)
        cov = rng.normal(size=(40, 1))
        model = GaussianScoreModel(QuantitativePhenotype(y, cov))
        perm = rng.permutation(40)
        G = rng.binomial(2, 0.3, size=(3, 40)).astype(float)
        direct = GaussianScoreModel(QuantitativePhenotype(y[perm], cov[perm])).contributions(G)
        assert np.allclose(model.permuted(perm).contributions(G), direct)
