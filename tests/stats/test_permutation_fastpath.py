"""Vectorized (GEMM) permutation path for covariate-free GLM models."""

import time

import numpy as np
import pytest

from repro.stats.resampling.permutation import PermutationResampler
from repro.stats.score.base import (
    BinaryPhenotype,
    QuantitativePhenotype,
    SurvivalPhenotype,
)
from repro.stats.score.binomial import BinomialScoreModel
from repro.stats.score.cox import CoxScoreModel
from repro.stats.score.gaussian import GaussianScoreModel


@pytest.fixture(scope="module")
def gaussian_setup():
    rng = np.random.default_rng(14)
    n, J, K = 120, 80, 8
    model = GaussianScoreModel(QuantitativePhenotype(rng.normal(size=n)))
    G = rng.binomial(2, 0.3, size=(J, n)).astype(float)
    return model, G, np.ones(J), rng.integers(0, K, J), K


class TestFastPathCorrectness:
    def test_gaussian_counts_match_slow_path(self, gaussian_setup):
        model, G, w, ids, K = gaussian_setup
        sampler = PermutationResampler(model, G, w, ids, K)
        fast = sampler.run(150, seed=3, vectorized=True)
        slow = sampler.run(150, seed=3, vectorized=False)
        assert np.array_equal(fast.exceed_counts, slow.exceed_counts)

    def test_binomial_counts_match_slow_path(self):
        rng = np.random.default_rng(15)
        n, J, K = 100, 40, 4
        model = BinomialScoreModel(BinaryPhenotype(rng.binomial(1, 0.4, n).astype(float)))
        G = rng.binomial(2, 0.3, size=(J, n)).astype(float)
        sampler = PermutationResampler(model, G, np.ones(J), rng.integers(0, K, J), K)
        fast = sampler.run(100, seed=4, vectorized=True)
        slow = sampler.run(100, seed=4, vectorized=False)
        assert np.array_equal(fast.exceed_counts, slow.exceed_counts)

    def test_batch_size_invariant(self, gaussian_setup):
        model, G, w, ids, K = gaussian_setup
        sampler = PermutationResampler(model, G, w, ids, K)
        a = sampler.run(90, seed=5, vectorized=True, batch_size=7)
        b = sampler.run(90, seed=5, vectorized=True, batch_size=90)
        assert np.array_equal(a.exceed_counts, b.exceed_counts)

    def test_auto_picks_fast_when_available(self, gaussian_setup):
        model, G, w, ids, K = gaussian_setup
        sampler = PermutationResampler(model, G, w, ids, K)
        auto = sampler.run(60, seed=6, vectorized="auto")
        explicit = sampler.run(60, seed=6, vectorized=True)
        assert np.array_equal(auto.exceed_counts, explicit.exceed_counts)


class TestFastPathAvailability:
    def test_cox_has_no_fast_path(self, rng):
        n = 50
        model = CoxScoreModel(
            SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n))
        )
        G = rng.binomial(2, 0.3, size=(10, n)).astype(float)
        sampler = PermutationResampler(model, G, np.ones(10), np.zeros(10, dtype=int), 1)
        with pytest.raises(ValueError, match="vectorized permutation"):
            sampler.run(5, seed=0, vectorized=True)
        # auto silently falls back
        out = sampler.run(5, seed=0, vectorized="auto")
        assert out.n_resamples == 5

    def test_covariates_disable_fast_path(self, rng):
        n = 60
        covariates = rng.normal(size=(n, 1))
        model = GaussianScoreModel(QuantitativePhenotype(rng.normal(size=n), covariates))
        assert model.permutation_invariant_parts(rng.normal(size=(3, n))) is None

    def test_invalid_flag(self, gaussian_setup):
        model, G, w, ids, K = gaussian_setup
        sampler = PermutationResampler(model, G, w, ids, K)
        with pytest.raises(ValueError):
            sampler.run(5, seed=0, vectorized="always")


class TestFastPathSpeed:
    def test_fast_path_is_faster(self, rng):
        n, J = 300, 400
        model = GaussianScoreModel(QuantitativePhenotype(rng.normal(size=n)))
        G = rng.binomial(2, 0.3, size=(J, n)).astype(float)
        sampler = PermutationResampler(model, G, np.ones(J), np.zeros(J, dtype=int), 1)
        start = time.perf_counter()
        sampler.run(150, seed=1, vectorized=True)
        fast = time.perf_counter() - start
        start = time.perf_counter()
        sampler.run(150, seed=1, vectorized=False)
        slow = time.perf_counter() - start
        assert fast < slow
