"""Property-based tests (hypothesis) on core statistical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine.partitioner import HashPartitioner, _portable_hash
from repro.engine.rdd import _slice_collection
from repro.stats.resampling.pvalues import empirical_pvalues
from repro.stats.score.base import SurvivalPhenotype
from repro.stats.score.cox import CoxScoreModel
from repro.stats.skat import skat_statistics

# -- strategies ---------------------------------------------------------------

n_patients = st.integers(min_value=2, max_value=40)


@st.composite
def survival_data(draw):
    n = draw(n_patients)
    times = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        )
    )
    events = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 1)))
    return SurvivalPhenotype(times, events)


@st.composite
def genotype_block(draw, n):
    m = draw(st.integers(min_value=1, max_value=10))
    return draw(
        hnp.arrays(np.int8, (m, n), elements=st.integers(0, 2))
    ).astype(np.float64)


# -- Cox score invariants ----------------------------------------------------------


@given(survival_data(), st.data())
@settings(max_examples=60, deadline=None)
def test_cox_matches_naive_oracle(pheno, data):
    from repro.stats.score.cox import cox_contributions_naive

    G = data.draw(genotype_block(pheno.n))
    model = CoxScoreModel(pheno)
    assert np.allclose(model.contributions(G), cox_contributions_naive(pheno, G), atol=1e-9)


@given(survival_data(), st.integers(0, 2))
@settings(max_examples=40, deadline=None)
def test_cox_constant_genotype_scores_zero(pheno, dosage):
    model = CoxScoreModel(pheno)
    G = np.full((2, pheno.n), float(dosage))
    assert np.allclose(model.contributions(G), 0.0, atol=1e-12)


@given(survival_data(), st.data())
@settings(max_examples=40, deadline=None)
def test_cox_contributions_linear_in_genotype(pheno, data):
    """U is linear in G for fixed phenotype: U(aG1 + bG2) = aU(G1) + bU(G2)."""
    model = CoxScoreModel(pheno)
    G1 = data.draw(genotype_block(pheno.n))
    G2 = data.draw(
        hnp.arrays(np.int8, G1.shape, elements=st.integers(0, 2))
    ).astype(np.float64)
    lhs = model.contributions(2.0 * G1 + 3.0 * G2)
    rhs = 2.0 * model.contributions(G1) + 3.0 * model.contributions(G2)
    assert np.allclose(lhs, rhs, atol=1e-9)


@given(survival_data(), st.randoms(use_true_random=False), st.data())
@settings(max_examples=40, deadline=None)
def test_cox_permutation_is_consistent(pheno, pyrandom, data):
    G = data.draw(genotype_block(pheno.n))
    perm = np.array(pyrandom.sample(range(pheno.n), pheno.n))
    a = CoxScoreModel(pheno).permuted(perm).contributions(G)
    b = CoxScoreModel(pheno.permuted(perm)).contributions(G)
    assert np.allclose(a, b)


# -- SKAT invariants -----------------------------------------------------------------


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_skat_non_negative_and_additive(data):
    J = data.draw(st.integers(1, 30))
    K = data.draw(st.integers(1, 6))
    scores = data.draw(
        hnp.arrays(np.float64, J, elements=st.floats(-50, 50, allow_nan=False))
    )
    weights = data.draw(
        hnp.arrays(np.float64, J, elements=st.floats(0, 5, allow_nan=False))
    )
    set_ids = data.draw(hnp.arrays(np.int64, J, elements=st.integers(0, K - 1)))
    stats = skat_statistics(scores, weights, set_ids, K)
    assert np.all(stats >= 0)
    # the per-set statistics partition the total weighted sum of squares
    assert stats.sum() == np.float64((weights**2 * scores**2).sum()) or np.isclose(
        stats.sum(), (weights**2 * scores**2).sum(), rtol=1e-9
    )


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_skat_batch_consistent_with_rows(data):
    J = data.draw(st.integers(1, 20))
    K = data.draw(st.integers(1, 4))
    B = data.draw(st.integers(2, 6))
    scores = data.draw(
        hnp.arrays(np.float64, (B, J), elements=st.floats(-10, 10, allow_nan=False))
    )
    weights = np.ones(J)
    set_ids = data.draw(hnp.arrays(np.int64, J, elements=st.integers(0, K - 1)))
    batch = skat_statistics(scores, weights, set_ids, K)
    for b in range(B):
        assert np.allclose(batch[b], skat_statistics(scores[b], weights, set_ids, K))


# -- p-value invariants ---------------------------------------------------------------


@given(st.integers(1, 1000), st.data())
@settings(max_examples=60, deadline=None)
def test_empirical_pvalues_bounded(n_resamples, data):
    counts = data.draw(
        hnp.arrays(np.int64, 5, elements=st.integers(0, n_resamples))
    )
    plugin = empirical_pvalues(counts, n_resamples, "plugin")
    add_one = empirical_pvalues(counts, n_resamples, "add_one")
    assert np.all((plugin >= 0) & (plugin <= 1))
    assert np.all((add_one > 0) & (add_one <= 1))
    assert np.all(add_one >= plugin * n_resamples / (n_resamples + 1) - 1e-12)


# -- engine invariants -----------------------------------------------------------------


@given(st.lists(st.integers(-1000, 1000), max_size=200), st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_slice_collection_partitions_exactly(items, n_parts):
    slices = _slice_collection(items, n_parts)
    assert len(slices) == n_parts
    assert [x for part in slices for x in part] == items


@given(
    st.one_of(st.integers(), st.text(), st.binary(), st.tuples(st.integers(), st.text())),
    st.integers(1, 64),
)
@settings(max_examples=100, deadline=None)
def test_hash_partitioner_in_range_and_stable(key, n):
    p = HashPartitioner(n)
    first = p.partition(key)
    assert 0 <= first < n
    assert p.partition(key) == first


@given(st.text())
@settings(max_examples=100, deadline=None)
def test_portable_hash_matches_bytes_form(s):
    assert _portable_hash(s) == _portable_hash(s.encode("utf-8"))
