"""SKAT aggregation."""

import numpy as np
import pytest

from repro.stats.skat import (
    membership_matrix,
    set_sizes,
    skat_statistic,
    skat_statistics,
    validate_set_ids,
)


class TestSingleSet:
    def test_known_value(self):
        scores = np.array([1.0, 2.0, 3.0])
        weights = np.array([1.0, 0.5, 2.0])
        assert skat_statistic(scores, weights) == pytest.approx(1 + 0.25 * 4 + 4 * 9)

    def test_zero_scores(self):
        assert skat_statistic(np.zeros(5), np.ones(5)) == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            skat_statistic(np.zeros(3), np.ones(4))


class TestVectorized:
    def test_matches_per_set_loop(self, rng):
        J, K = 50, 6
        scores = rng.normal(size=J)
        weights = rng.uniform(0.5, 2.0, J)
        set_ids = rng.integers(0, K, J)
        stats = skat_statistics(scores, weights, set_ids, K)
        for k in range(K):
            members = set_ids == k
            assert stats[k] == pytest.approx(
                skat_statistic(scores[members], weights[members])
            )

    def test_batch_matches_rows(self, rng):
        J, K, B = 30, 4, 8
        scores = rng.normal(size=(B, J))
        weights = rng.uniform(0.5, 2.0, J)
        set_ids = rng.integers(0, K, J)
        batch = skat_statistics(scores, weights, set_ids, K)
        assert batch.shape == (B, K)
        for b in range(B):
            assert np.allclose(batch[b], skat_statistics(scores[b], weights, set_ids, K))

    def test_empty_set_zero(self, rng):
        scores = rng.normal(size=5)
        stats = skat_statistics(scores, np.ones(5), np.zeros(5, dtype=int), 3)
        assert stats[1] == 0.0 and stats[2] == 0.0

    def test_order_invariance(self, rng):
        J, K = 40, 5
        scores = rng.normal(size=J)
        weights = rng.uniform(0.5, 2.0, J)
        set_ids = rng.integers(0, K, J)
        perm = rng.permutation(J)
        a = skat_statistics(scores, weights, set_ids, K)
        b = skat_statistics(scores[perm], weights[perm], set_ids[perm], K)
        assert np.allclose(a, b)

    def test_weight_scaling_quadratic(self, rng):
        J, K = 20, 2
        scores = rng.normal(size=J)
        weights = np.ones(J)
        set_ids = rng.integers(0, K, J)
        a = skat_statistics(scores, weights, set_ids, K)
        b = skat_statistics(scores, 3.0 * weights, set_ids, K)
        assert np.allclose(b, 9.0 * a)

    def test_non_negative(self, rng):
        stats = skat_statistics(
            rng.normal(size=100), rng.uniform(0, 2, 100), rng.integers(0, 10, 100), 10
        )
        assert np.all(stats >= 0)


class TestValidation:
    def test_set_ids_shape(self):
        with pytest.raises(ValueError):
            validate_set_ids(np.zeros(3, dtype=int), 2, 4)

    def test_set_ids_dtype(self):
        with pytest.raises(TypeError):
            validate_set_ids(np.zeros(3), 2, 3)

    def test_set_ids_range(self):
        with pytest.raises(ValueError):
            validate_set_ids(np.array([0, 5, 1]), 3, 3)

    def test_membership_matrix(self):
        M = membership_matrix(np.array([0, 1, 0]), 2)
        assert M.shape == (2, 3)
        assert M.toarray().tolist() == [[1, 0, 1], [0, 1, 0]]

    def test_set_sizes(self):
        assert set_sizes(np.array([0, 0, 2]), 3).tolist() == [2, 0, 1]
