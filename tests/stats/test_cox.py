"""Cox efficient score: vectorized vs per-definition oracle."""

import numpy as np
import pytest

from repro.stats.score.base import SurvivalPhenotype
from repro.stats.score.cox import CoxScoreModel, cox_contributions_naive


def random_phenotype(rng, n, event_rate=0.85, ties=False):
    times = rng.exponential(12.0, size=n)
    if ties:
        times = np.round(times)  # force many tied survival times
    events = rng.binomial(1, event_rate, size=n)
    return SurvivalPhenotype(times, events)


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        pheno = random_phenotype(rng, 40)
        G = rng.binomial(2, 0.3, size=(15, 40)).astype(float)
        model = CoxScoreModel(pheno)
        assert np.allclose(model.contributions(G), cox_contributions_naive(pheno, G))

    def test_matches_oracle_with_ties(self):
        rng = np.random.default_rng(9)
        pheno = random_phenotype(rng, 50, ties=True)
        G = rng.binomial(2, 0.4, size=(10, 50)).astype(float)
        model = CoxScoreModel(pheno)
        assert np.allclose(model.contributions(G), cox_contributions_naive(pheno, G))

    def test_matches_oracle_all_events(self):
        rng = np.random.default_rng(4)
        pheno = random_phenotype(rng, 30, event_rate=1.0)
        G = rng.binomial(2, 0.2, size=(5, 30)).astype(float)
        model = CoxScoreModel(pheno)
        assert np.allclose(model.contributions(G), cox_contributions_naive(pheno, G))

    def test_single_snp_vector_input(self):
        rng = np.random.default_rng(5)
        pheno = random_phenotype(rng, 25)
        g = rng.binomial(2, 0.3, size=25).astype(float)
        model = CoxScoreModel(pheno)
        assert model.contributions(g).shape == (1, 25)


class TestStructuralProperties:
    def test_constant_genotype_zero_score(self):
        rng = np.random.default_rng(6)
        pheno = random_phenotype(rng, 30)
        model = CoxScoreModel(pheno)
        G = np.full((3, 30), 2.0)
        assert np.allclose(model.contributions(G), 0.0)

    def test_censored_patients_contribute_zero(self):
        rng = np.random.default_rng(7)
        pheno = random_phenotype(rng, 30, event_rate=0.5)
        model = CoxScoreModel(pheno)
        U = model.contributions(rng.binomial(2, 0.3, size=(4, 30)).astype(float))
        censored = pheno.event == 0
        assert np.all(U[:, censored] == 0.0)

    def test_risk_set_sizes(self):
        pheno = SurvivalPhenotype([3.0, 1.0, 2.0], [1, 1, 1])
        model = CoxScoreModel(pheno)
        # patient with smallest time has everyone at risk
        assert model.risk_set_sizes.tolist() == [1, 3, 2]

    def test_risk_set_sizes_with_ties(self):
        pheno = SurvivalPhenotype([2.0, 2.0, 1.0], [1, 1, 1])
        assert CoxScoreModel(pheno).risk_set_sizes.tolist() == [2, 2, 3]

    def test_scores_are_row_sums(self):
        rng = np.random.default_rng(8)
        pheno = random_phenotype(rng, 20)
        model = CoxScoreModel(pheno)
        G = rng.binomial(2, 0.4, size=(6, 20)).astype(float)
        assert np.allclose(model.scores(G), model.contributions(G).sum(axis=1))

    def test_shape_validation(self):
        pheno = SurvivalPhenotype([1.0, 2.0], [1, 0])
        model = CoxScoreModel(pheno)
        with pytest.raises(ValueError):
            model.contributions(np.zeros((3, 5)))

    def test_time_scale_invariance(self):
        """The Cox score depends only on the *order* of survival times."""
        rng = np.random.default_rng(10)
        times = rng.exponential(12.0, 25)
        events = rng.binomial(1, 0.8, 25)
        G = rng.binomial(2, 0.3, size=(5, 25)).astype(float)
        a = CoxScoreModel(SurvivalPhenotype(times, events)).contributions(G)
        b = CoxScoreModel(SurvivalPhenotype(times * 7.3, events)).contributions(G)
        assert np.allclose(a, b)


class TestPermutedModel:
    def test_permuted_equals_model_on_shuffled_phenotype(self):
        rng = np.random.default_rng(11)
        pheno = random_phenotype(rng, 30)
        G = rng.binomial(2, 0.3, size=(8, 30)).astype(float)
        perm = rng.permutation(30)
        direct = CoxScoreModel(pheno.permuted(perm)).contributions(G)
        via_model = CoxScoreModel(pheno).permuted(perm).contributions(G)
        assert np.allclose(direct, via_model)

    def test_identity_permutation_is_noop(self):
        rng = np.random.default_rng(12)
        pheno = random_phenotype(rng, 20)
        G = rng.binomial(2, 0.3, size=(4, 20)).astype(float)
        model = CoxScoreModel(pheno)
        assert np.allclose(
            model.contributions(G), model.permuted(np.arange(20)).contributions(G)
        )


class TestPhenotypeValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SurvivalPhenotype([-1.0, 2.0], [1, 1])

    def test_bad_event_rejected(self):
        with pytest.raises(ValueError):
            SurvivalPhenotype([1.0, 2.0], [1, 2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SurvivalPhenotype([1.0, 2.0], [1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            SurvivalPhenotype([np.nan, 2.0], [1, 1])

    def test_pairs_roundtrip(self):
        pheno = SurvivalPhenotype([1.5, 2.0], [1, 0])
        assert pheno.pairs() == [(1.5, 1), (2.0, 0)]
