"""SNP weighting schemes."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.weights import (
    beta_maf_weights,
    estimate_maf,
    flat_weights,
    madsen_browning_weights,
)


class TestFlat:
    def test_ones(self):
        assert flat_weights(5).tolist() == [1.0] * 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            flat_weights(0)


class TestBetaMaf:
    def test_matches_scipy(self):
        maf = np.array([0.01, 0.05, 0.2, 0.5])
        assert np.allclose(beta_maf_weights(maf), sps.beta.pdf(maf, 1, 25))

    def test_upweights_rare(self):
        w = beta_maf_weights(np.array([0.001, 0.1, 0.4]))
        assert w[0] > w[1] > w[2]

    def test_boundary_safe(self):
        w = beta_maf_weights(np.array([0.0, 1.0]))
        assert np.all(np.isfinite(w))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            beta_maf_weights(np.array([1.2]))

    def test_custom_shape(self):
        maf = np.array([0.1, 0.3])
        assert np.allclose(beta_maf_weights(maf, 0.5, 0.5), sps.beta.pdf(maf, 0.5, 0.5))


class TestMadsenBrowning:
    def test_formula(self):
        maf = np.array([0.1, 0.25])
        assert np.allclose(madsen_browning_weights(maf), 1 / np.sqrt(maf * (1 - maf)))

    def test_symmetric(self):
        assert madsen_browning_weights(np.array([0.2]))[0] == pytest.approx(
            madsen_browning_weights(np.array([0.8]))[0]
        )

    def test_finite_at_zero(self):
        assert np.isfinite(madsen_browning_weights(np.array([0.0]))[0])


class TestEstimateMaf:
    def test_folded(self, rng):
        G = rng.binomial(2, 0.9, size=(5, 500))
        maf = estimate_maf(G)
        assert np.all(maf <= 0.5)
        assert maf == pytest.approx(np.full(5, 0.1), abs=0.05)

    def test_vector_input(self):
        assert estimate_maf(np.array([0, 1, 2, 1])).shape == (1,)
