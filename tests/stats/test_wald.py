"""Wald/LRT comparator: per-SNP Newton-Raphson Cox MLE."""

import numpy as np
import pytest

from repro.stats.score.base import SurvivalPhenotype
from repro.stats.wald import CoxPartialLikelihood, cox_mle, score_test_statistics


@pytest.fixture
def null_data(rng):
    n = 120
    pheno = SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n))
    G = rng.binomial(2, 0.3, size=(15, n)).astype(float)
    return pheno, G


@pytest.fixture
def causal_data(rng):
    n = 400
    g = rng.binomial(2, 0.3, n).astype(float)
    rates = np.exp(0.7 * g) / 12.0
    times = rng.exponential(1.0 / rates)
    events = rng.binomial(1, 0.9, n)
    return SurvivalPhenotype(times, events), g


class TestPartialLikelihood:
    def test_score_at_zero_matches_score_model(self, null_data):
        from repro.stats.score.cox import CoxScoreModel

        pheno, G = null_data
        pl = CoxPartialLikelihood(pheno)
        model = CoxScoreModel(pheno)
        expected = model.scores(G)
        for j in range(G.shape[0]):
            _, score, _ = pl.evaluate(G[j], 0.0)
            assert score == pytest.approx(expected[j], rel=1e-10, abs=1e-10)

    def test_information_positive(self, null_data):
        pheno, G = null_data
        pl = CoxPartialLikelihood(pheno)
        for beta in (-0.5, 0.0, 0.5):
            _, _, info = pl.evaluate(G[0], beta)
            assert info > 0

    def test_loglik_concave_near_mle(self, causal_data):
        pheno, g = causal_data
        pl = CoxPartialLikelihood(pheno)
        result = cox_mle(pheno, g)
        b = result.beta[0]
        center, _, _ = pl.evaluate(g, b)
        left, _, _ = pl.evaluate(g, b - 0.05)
        right, _, _ = pl.evaluate(g, b + 0.05)
        assert center >= left and center >= right


class TestMle:
    def test_recovers_planted_effect(self, causal_data):
        pheno, g = causal_data
        result = cox_mle(pheno, g)
        assert result.converged[0]
        assert result.beta[0] == pytest.approx(0.7, abs=0.2)
        assert result.wald_pvalues()[0] < 1e-6
        assert result.lrt_pvalues()[0] < 1e-6

    def test_score_at_mle_is_zero(self, causal_data):
        pheno, g = causal_data
        pl = CoxPartialLikelihood(pheno)
        result = cox_mle(pheno, g)
        _, score, _ = pl.evaluate(g, result.beta[0])
        assert abs(score) < 1e-4

    def test_null_snps_small_beta(self, null_data):
        pheno, G = null_data
        result = cox_mle(pheno, G)
        assert np.all(result.converged)
        assert np.all(np.abs(result.beta) < 1.0)

    def test_monomorphic_snp(self, null_data):
        pheno, _ = null_data
        g = np.zeros(pheno.n)
        result = cox_mle(pheno, g)
        assert result.beta[0] == 0.0
        assert result.converged[0]
        assert result.wald[0] == 0.0

    def test_wald_lrt_score_agree_to_first_order(self, null_data):
        """Under the null the three classical tests are asymptotically
        equivalent; for moderate n they should agree closely."""
        pheno, G = null_data
        mle = cox_mle(pheno, G)
        score = score_test_statistics(pheno, G)
        assert np.corrcoef(mle.wald, score)[0, 1] > 0.99
        assert np.corrcoef(mle.lrt, score)[0, 1] > 0.99
        assert np.all(np.abs(mle.lrt - score) < 0.5 + 0.2 * score)

    def test_iterations_recorded(self, causal_data):
        pheno, g = causal_data
        result = cox_mle(pheno, g)
        assert result.iterations[0] >= 2  # optimization actually ran

    def test_score_needs_no_iterations(self, null_data):
        """The paper's core claim: the score statistic needs one evaluation
        per SNP while Wald/LRT need an optimization loop."""
        pheno, G = null_data
        mle = cox_mle(pheno, G)
        assert mle.iterations.sum() > G.shape[0]  # > 1 eval per SNP


class TestVectorInput:
    def test_1d_genotype_promoted(self, null_data):
        pheno, G = null_data
        result = cox_mle(pheno, G[0])
        assert result.beta.shape == (1,)
