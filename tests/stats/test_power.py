"""Power/sample-size calculations, checked against simulation."""

import numpy as np
import pytest

from repro.stats.power import (
    power_curve,
    required_sample_size,
    score_test_power,
    unit_information,
)


class TestClosedForms:
    def test_information_peaks_at_half(self):
        assert unit_information(0.5, 1.0) > unit_information(0.1, 1.0)
        assert unit_information(0.5, 1.0) == pytest.approx(0.5)

    def test_power_monotone_in_n(self):
        powers = [score_test_power(n, 0.3, 0.3) for n in (50, 200, 800)]
        assert powers[0] < powers[1] < powers[2]

    def test_power_monotone_in_effect(self):
        assert score_test_power(200, 0.2, 0.3) < score_test_power(200, 0.6, 0.3)

    def test_null_power_is_alpha(self):
        assert score_test_power(500, 0.0, 0.3, alpha=0.05) == pytest.approx(0.05)

    def test_symmetric_in_effect_sign(self):
        assert score_test_power(200, 0.4, 0.3) == pytest.approx(
            score_test_power(200, -0.4, 0.3)
        )

    def test_sample_size_inverts_power(self):
        n = required_sample_size(0.4, 0.3, power=0.8)
        assert score_test_power(n, 0.4, 0.3) >= 0.8
        assert score_test_power(max(2, n - 30), 0.4, 0.3) < 0.82

    def test_genomewide_alpha_needs_more_patients(self):
        assert required_sample_size(0.3, 0.3, alpha=5e-8) > required_sample_size(
            0.3, 0.3, alpha=0.05
        )

    def test_power_curve(self):
        curve = power_curve([100, 400], 0.4, 0.25)
        assert set(curve) == {100, 400}
        assert curve[100] < curve[400]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"allele_frequency": 0.0},
            {"allele_frequency": 1.0},
            {"event_rate": 0.0},
            {"alpha": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        params = dict(n_patients=100, effect_size=0.3, allele_frequency=0.3)
        params.update({k: v for k, v in kwargs.items() if k in ("allele_frequency", "event_rate", "alpha")})
        with pytest.raises(ValueError):
            score_test_power(**params)

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(0.0, 0.3)
        with pytest.raises(ValueError):
            required_sample_size(0.3, 0.3, power=1.0)


class TestAgainstSimulation:
    def test_power_matches_monte_carlo(self):
        """The closed form should predict the empirical rejection rate of
        the actual score test within simulation error."""
        from repro.stats.score.base import SurvivalPhenotype
        from repro.stats.wald import score_test_statistics
        from scipy import stats as sps

        rng = np.random.default_rng(3)
        n, beta, p_allele, alpha = 250, 0.35, 0.3, 0.05
        predicted = score_test_power(n, beta, p_allele, event_rate=1.0, alpha=alpha)
        rejections = 0
        n_sims = 300
        crit = sps.chi2.isf(alpha, df=1)
        for _ in range(n_sims):
            g = rng.binomial(2, p_allele, n).astype(float)
            times = rng.exponential(np.exp(-beta * g) * 12.0)
            pheno = SurvivalPhenotype(times, np.ones(n))
            stat = score_test_statistics(pheno, g)[0]
            rejections += stat >= crit
        empirical = rejections / n_sims
        assert empirical == pytest.approx(predicted, abs=0.12)
