"""Westfall-Young maxT and classical p-value adjustments."""

import numpy as np
import pytest

from repro.stats.resampling.multipletesting import (
    adjust_pvalues,
    standardized_statistics,
    westfall_young_maxt,
)
from repro.stats.score.base import SurvivalPhenotype
from repro.stats.score.cox import CoxScoreModel


@pytest.fixture(scope="module")
def null_contributions():
    rng = np.random.default_rng(5)
    pheno = SurvivalPhenotype(rng.exponential(12, 80), rng.binomial(1, 0.85, 80))
    G = rng.binomial(2, 0.3, size=(60, 80)).astype(float)
    return CoxScoreModel(pheno).contributions(G)


@pytest.fixture(scope="module")
def signal_contributions():
    rng = np.random.default_rng(6)
    n = 300
    g_causal = rng.binomial(2, 0.3, n).astype(float)
    rates = np.exp(0.9 * g_causal) / 12.0
    pheno = SurvivalPhenotype(rng.exponential(1.0 / rates), rng.binomial(1, 0.9, n))
    G = rng.binomial(2, 0.3, size=(40, n)).astype(float)
    G[0] = g_causal
    return CoxScoreModel(pheno).contributions(G)


class TestStandardized:
    def test_monomorphic_zero(self, null_contributions):
        U = null_contributions.copy()
        U[3] = 0.0
        t = standardized_statistics(U)
        assert t[3] == 0.0
        assert np.all(np.isfinite(t))

    def test_scale_invariance(self, null_contributions):
        a = standardized_statistics(null_contributions)
        b = standardized_statistics(3.5 * null_contributions)
        assert np.allclose(a, b)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            standardized_statistics(np.zeros(5))


class TestMaxT:
    def test_adjusted_geq_raw(self, null_contributions):
        result = westfall_young_maxt(null_contributions, 300, seed=1)
        assert np.all(result.adjusted_pvalues >= result.raw_pvalues - 1e-12)

    def test_single_step_geq_step_down(self, null_contributions):
        down = westfall_young_maxt(null_contributions, 300, seed=1, step_down=True)
        single = westfall_young_maxt(null_contributions, 300, seed=1, step_down=False)
        assert np.all(single.adjusted_pvalues >= down.adjusted_pvalues - 1e-12)

    def test_adjusted_leq_bonferroni(self, null_contributions):
        result = westfall_young_maxt(null_contributions, 500, seed=2)
        bonf = adjust_pvalues(result.raw_pvalues, "bonferroni")
        # WY exploits correlation: adjusted p never exceeds Bonferroni by
        # more than Monte Carlo noise
        assert np.all(result.adjusted_pvalues <= bonf + 0.1)

    def test_monotone_in_statistics(self, null_contributions):
        result = westfall_young_maxt(null_contributions, 200, seed=3)
        order = np.argsort(-result.statistics)
        adj = result.adjusted_pvalues[order]
        assert np.all(np.diff(adj) >= -1e-12)

    def test_causal_snp_survives_adjustment(self, signal_contributions):
        result = westfall_young_maxt(signal_contributions, 1000, seed=4)
        assert result.adjusted_pvalues[0] <= 0.05
        assert 0 in result.significant(0.05)

    def test_null_fwer_controlled(self, null_contributions):
        result = westfall_young_maxt(null_contributions, 500, seed=5)
        # under the global null, few (usually zero) discoveries at 5%
        assert len(result.significant(0.05)) <= 2

    def test_batch_size_invariance(self, null_contributions):
        a = westfall_young_maxt(null_contributions, 100, seed=6, batch_size=7)
        b = westfall_young_maxt(null_contributions, 100, seed=6, batch_size=100)
        assert np.array_equal(a.adjusted_pvalues, b.adjusted_pvalues)

    def test_validation(self, null_contributions):
        with pytest.raises(ValueError):
            westfall_young_maxt(null_contributions, 0)
        with pytest.raises(ValueError):
            westfall_young_maxt(np.zeros(4), 10)

    def test_pvalues_in_range(self, null_contributions):
        result = westfall_young_maxt(null_contributions, 50, seed=7)
        for p in (result.raw_pvalues, result.adjusted_pvalues):
            assert np.all((p > 0) & (p <= 1))


class TestClassicalAdjustments:
    def test_bonferroni(self):
        p = np.array([0.01, 0.04, 0.5])
        assert adjust_pvalues(p, "bonferroni").tolist() == [0.03, 0.12, 1.0]

    def test_holm_ordering(self):
        p = np.array([0.01, 0.04, 0.03])
        holm = adjust_pvalues(p, "holm")
        assert holm[0] == pytest.approx(0.03)
        assert np.all(holm <= adjust_pvalues(p, "bonferroni") + 1e-12)

    def test_holm_monotone(self, rng):
        p = rng.uniform(size=30)
        holm = adjust_pvalues(p, "holm")
        order = np.argsort(p)
        assert np.all(np.diff(holm[order]) >= -1e-12)

    def test_bh_monotone_and_bounded(self, rng):
        p = rng.uniform(size=30)
        bh = adjust_pvalues(p, "bh")
        order = np.argsort(p)
        assert np.all(np.diff(bh[order]) >= -1e-12)
        assert np.all(bh >= p - 1e-12)
        assert np.all(bh <= 1.0)

    def test_bh_less_conservative_than_holm(self, rng):
        p = rng.uniform(0, 0.2, size=20)
        assert np.all(adjust_pvalues(p, "bh") <= adjust_pvalues(p, "holm") + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            adjust_pvalues(np.array([1.5]))
        with pytest.raises(ValueError):
            adjust_pvalues(np.array([[0.1]]))
        with pytest.raises(ValueError):
            adjust_pvalues(np.array([0.1]), "magic")

    def test_empty(self):
        assert adjust_pvalues(np.array([]), "bonferroni").size == 0
