"""Resampling inference: Monte Carlo, permutation, p-values."""

import numpy as np
import pytest

from repro.stats.resampling.montecarlo import MonteCarloResampler, monte_carlo_skat
from repro.stats.resampling.permutation import PermutationResampler, permutation_skat
from repro.stats.resampling.pvalues import empirical_pvalues, required_resamples
from repro.stats.resampling.streams import mc_multiplier_batches, permutation_stream
from repro.stats.score.base import SurvivalPhenotype
from repro.stats.score.cox import CoxScoreModel
from repro.stats.skat import skat_statistics


@pytest.fixture
def setup(rng):
    n, J, K = 50, 60, 5
    pheno = SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n))
    model = CoxScoreModel(pheno)
    G = rng.binomial(2, 0.3, size=(J, n)).astype(float)
    weights = np.ones(J)
    set_ids = rng.integers(0, K, J)
    return model, G, weights, set_ids, K


class TestMonteCarlo:
    def test_unit_multipliers_recover_observed(self, setup):
        model, G, w, ids, K = setup
        sampler = MonteCarloResampler(model.contributions(G), w, ids, K)
        stats = sampler.replicate_batch(np.ones((1, G.shape[1])))
        assert np.allclose(stats[0], sampler.observed)

    def test_counts_reproducible(self, setup):
        model, G, w, ids, K = setup
        U = model.contributions(G)
        a = monte_carlo_skat(U, w, ids, K, n_resamples=100, seed=3)
        b = monte_carlo_skat(U, w, ids, K, n_resamples=100, seed=3)
        assert np.array_equal(a.exceed_counts, b.exceed_counts)

    def test_batch_size_does_not_change_counts(self, setup):
        model, G, w, ids, K = setup
        U = model.contributions(G)
        a = monte_carlo_skat(U, w, ids, K, 100, seed=3, batch_size=7)
        b = monte_carlo_skat(U, w, ids, K, 100, seed=3, batch_size=64)
        # same seed, same stream order regardless of batching
        assert np.array_equal(a.exceed_counts, b.exceed_counts)

    def test_zero_resamples(self, setup):
        model, G, w, ids, K = setup
        out = monte_carlo_skat(model.contributions(G), w, ids, K, 0, seed=0)
        assert out.exceed_counts.sum() == 0

    def test_counts_bounded(self, setup):
        model, G, w, ids, K = setup
        out = monte_carlo_skat(model.contributions(G), w, ids, K, 50, seed=1)
        assert np.all(out.exceed_counts >= 0)
        assert np.all(out.exceed_counts <= 50)

    def test_input_validation(self, setup):
        model, G, w, ids, K = setup
        with pytest.raises(ValueError):
            MonteCarloResampler(model.contributions(G), w[:-1], ids, K)
        with pytest.raises(ValueError):
            MonteCarloResampler(np.zeros(5), w, ids, K)
        sampler = MonteCarloResampler(model.contributions(G), w, ids, K)
        with pytest.raises(ValueError):
            sampler.replicate_batch(np.ones((2, 3)))


class TestPermutation:
    def test_identity_perm_recovers_observed(self, setup):
        model, G, w, ids, K = setup
        sampler = PermutationResampler(model, G, w, ids, K)
        stats = sampler.replicate(np.arange(G.shape[1]))
        assert np.allclose(stats, sampler.observed)

    def test_reproducible(self, setup):
        model, G, w, ids, K = setup
        a = permutation_skat(model, G, w, ids, K, 30, seed=5)
        b = permutation_skat(model, G, w, ids, K, 30, seed=5)
        assert np.array_equal(a.exceed_counts, b.exceed_counts)

    def test_invalid_perm_rejected(self, setup):
        model, G, w, ids, K = setup
        sampler = PermutationResampler(model, G, w, ids, K)
        with pytest.raises(ValueError):
            sampler.replicate(np.zeros(G.shape[1], dtype=int))

    def test_observed_matches_direct(self, setup):
        model, G, w, ids, K = setup
        sampler = PermutationResampler(model, G, w, ids, K)
        assert np.allclose(sampler.observed, skat_statistics(model.scores(G), w, ids, K))


class TestAgreementMcVsPermutation:
    def test_pvalues_correlate_under_null(self, setup):
        """Both resampling schemes estimate the same null distribution."""
        model, G, w, ids, K = setup
        mc = monte_carlo_skat(model.contributions(G), w, ids, K, 400, seed=7)
        perm = permutation_skat(model, G, w, ids, K, 400, seed=7)
        p_mc = mc.pvalues()
        p_perm = perm.pvalues()
        assert np.all(np.abs(p_mc - p_perm) < 0.25)


class TestPvalues:
    def test_plugin(self):
        p = empirical_pvalues(np.array([0, 5, 10]), 10, "plugin")
        assert p.tolist() == [0.0, 0.5, 1.0]

    def test_add_one_never_zero(self):
        p = empirical_pvalues(np.array([0]), 1000, "add_one")
        assert p[0] == pytest.approx(1 / 1001)

    def test_bad_method(self):
        with pytest.raises(ValueError):
            empirical_pvalues(np.array([1]), 10, "bootstrap")

    def test_counts_out_of_range(self):
        with pytest.raises(ValueError):
            empirical_pvalues(np.array([11]), 10)
        with pytest.raises(ValueError):
            empirical_pvalues(np.array([-1]), 10)

    def test_required_resamples_planning(self):
        # estimating p=0.01 to 10% CV needs ~9900 resamples
        assert required_resamples(0.01, 0.1) == pytest.approx(9900, rel=0.01)
        with pytest.raises(ValueError):
            required_resamples(0.0)
        with pytest.raises(ValueError):
            required_resamples(0.5, 0.0)


class TestStreams:
    def test_mc_batches_total(self):
        batches = list(mc_multiplier_batches(10, 25, seed=0, batch_size=8))
        assert [b.shape for b in batches] == [(8, 10), (8, 10), (8, 10), (1, 10)]

    def test_mc_stream_batch_invariance(self):
        """Concatenated draws are identical regardless of batch size."""
        a = np.vstack(list(mc_multiplier_batches(5, 20, seed=9, batch_size=3)))
        b = np.vstack(list(mc_multiplier_batches(5, 20, seed=9, batch_size=20)))
        assert np.array_equal(a, b)

    def test_perm_stream_valid_permutations(self):
        for perm in permutation_stream(12, 5, seed=2):
            assert sorted(perm.tolist()) == list(range(12))

    def test_perm_stream_deterministic(self):
        a = [p.tolist() for p in permutation_stream(6, 4, seed=1)]
        b = [p.tolist() for p in permutation_stream(6, 4, seed=1)]
        assert a == b
