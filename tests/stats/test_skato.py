"""Burden and SKAT-O statistics."""

import numpy as np
import pytest

from repro.stats.skat import skat_statistics
from repro.stats.skato import (
    DEFAULT_RHO_GRID,
    burden_statistics,
    skato_grid_statistics,
    skato_resampling,
)
from repro.stats.score.base import SurvivalPhenotype
from repro.stats.score.cox import CoxScoreModel


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(8)
    n, J, K = 100, 60, 5
    pheno = SurvivalPhenotype(rng.exponential(12, n), rng.binomial(1, 0.85, n))
    model = CoxScoreModel(pheno)
    G = rng.binomial(2, 0.3, size=(J, n)).astype(float)
    U = model.contributions(G)
    weights = np.ones(J)
    set_ids = np.repeat(np.arange(K), J // K)
    return U, weights, set_ids, K


class TestBurden:
    def test_known_value(self):
        scores = np.array([1.0, 2.0, -3.0])
        w = np.array([1.0, 0.5, 1.0])
        out = burden_statistics(scores, w, np.zeros(3, dtype=int), 1)
        assert out[0] == pytest.approx((1.0 + 1.0 - 3.0) ** 2)

    def test_batch_matches_rows(self, setup, rng):
        U, w, ids, K = setup
        scores = rng.normal(size=(4, U.shape[0]))
        batch = burden_statistics(scores, w, ids, K)
        for b in range(4):
            assert np.allclose(batch[b], burden_statistics(scores[b], w, ids, K))

    def test_cancellation_vs_skat(self):
        """Opposite-direction effects cancel in burden but not in SKAT."""
        scores = np.array([5.0, -5.0])
        w = np.ones(2)
        ids = np.zeros(2, dtype=int)
        assert burden_statistics(scores, w, ids, 1)[0] == pytest.approx(0.0)
        assert skat_statistics(scores, w, ids, 1)[0] == pytest.approx(50.0)


class TestGrid:
    def test_endpoints(self, setup, rng):
        U, w, ids, K = setup
        scores = rng.normal(size=U.shape[0])
        grid = skato_grid_statistics(scores, w, ids, K, (0.0, 1.0))
        assert np.allclose(grid[:, 0], skat_statistics(scores, w, ids, K))
        assert np.allclose(grid[:, 1], burden_statistics(scores, w, ids, K))

    def test_linear_interpolation(self, setup, rng):
        U, w, ids, K = setup
        scores = rng.normal(size=U.shape[0])
        grid = skato_grid_statistics(scores, w, ids, K, (0.0, 0.5, 1.0))
        assert np.allclose(grid[:, 1], 0.5 * grid[:, 0] + 0.5 * grid[:, 2])

    def test_batch_shape(self, setup, rng):
        U, w, ids, K = setup
        scores = rng.normal(size=(7, U.shape[0]))
        grid = skato_grid_statistics(scores, w, ids, K)
        assert grid.shape == (7, K, len(DEFAULT_RHO_GRID))

    def test_invalid_rho(self, setup, rng):
        U, w, ids, K = setup
        with pytest.raises(ValueError):
            skato_grid_statistics(rng.normal(size=U.shape[0]), w, ids, K, (1.5,))


class TestSkatOResampling:
    def test_pvalues_in_range(self, setup):
        U, w, ids, K = setup
        result = skato_resampling(U, w, ids, K, n_resamples=300, seed=1)
        assert result.pvalues.shape == (K,)
        assert np.all((result.pvalues > 0) & (result.pvalues <= 1))
        assert np.all(np.isin(result.best_rho, DEFAULT_RHO_GRID))

    def test_reproducible(self, setup):
        U, w, ids, K = setup
        a = skato_resampling(U, w, ids, K, 200, seed=2)
        b = skato_resampling(U, w, ids, K, 200, seed=2)
        assert np.array_equal(a.pvalues, b.pvalues)

    def test_min_p_calibration_not_anticonservative(self, setup):
        """The combined p-value must not undercut the best per-rho p by
        more than the multiplicity effect allows (it is calibrated)."""
        U, w, ids, K = setup
        result = skato_resampling(U, w, ids, K, 500, seed=3)
        assert np.all(result.pvalues >= result.per_rho_pvalues.min(axis=1) - 1e-12)

    def test_single_rho_reduces_to_plain_resampling(self, setup):
        U, w, ids, K = setup
        result = skato_resampling(U, w, ids, K, 400, seed=4, rho_grid=(0.0,))
        from repro.stats.resampling.montecarlo import monte_carlo_skat

        mc = monte_carlo_skat(U, w, ids, K, 400, seed=4, batch_size=128)
        expected = (mc.exceed_counts + 1.0) / (mc.n_resamples + 1.0)
        assert np.allclose(result.per_rho_pvalues[:, 0], expected)
        # min-p over a single rho is calibrated against itself
        assert np.all(np.abs(result.pvalues - expected) < 0.05)

    def test_burden_signal_detected_by_skato(self):
        """Same-direction effects: burden-leaning rho wins; SKAT-O catches
        the signal at least as decisively as the worse of its endpoints."""
        rng = np.random.default_rng(9)
        n, J = 300, 20
        g = rng.binomial(2, 0.3, size=(J, n)).astype(float)
        # all SNPs in the set mildly harmful -> aligned scores
        risk = 0.25 * g[:10].sum(axis=0)
        pheno = SurvivalPhenotype(rng.exponential(np.exp(-risk) * 12.0), rng.binomial(1, 0.9, n))
        U = CoxScoreModel(pheno).contributions(g)
        ids = np.repeat([0, 1], 10)
        result = skato_resampling(U, np.ones(J), ids, 2, 800, seed=5)
        assert result.pvalues[0] < 0.05
        assert result.pvalues[0] < result.pvalues[1]
        # (best_rho is not asserted: with a strong signal every rho's
        # empirical p saturates at the resampling floor and ties)

    def test_validation(self, setup):
        U, w, ids, K = setup
        with pytest.raises(ValueError):
            skato_resampling(U, w, ids, K, 0)
        with pytest.raises(ValueError):
            skato_resampling(np.zeros(3), w, ids, K, 10)
