"""EngineConfig and size parsing."""

import pytest

from repro.config import EngineConfig, format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1k", 1024),
            ("10K", 10 * 1024),
            ("512m", 512 * 1024**2),
            ("10g", 10 * 1024**3),
            ("1.5g", int(1.5 * 1024**3)),
            ("2t", 2 * 1024**4),
            ("10GiB", 10 * 1024**3),
            ("  8 mb ", 8 * 1024**2),
            (4096, 4096),
            (1.0, 1),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "10x", "-5m"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_negative_number(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_format_size(self):
        assert format_size(512) == "512 B"
        assert format_size(1536) == "1.5 KiB"
        assert format_size(3 * 1024**3) == "3.0 GiB"


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.total_cores == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "cuda"},
            {"num_executors": 0},
            {"executor_cores": 0},
            {"executor_memory": -1},
            {"default_parallelism": 0},
            {"storage_fraction": 1.5},
            {"max_task_retries": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_spark_style_set_get(self):
        config = EngineConfig()
        config.set("spark.executor.instances", 8).set("spark.executor.memory", "2g")
        assert config.num_executors == 8
        assert config.executor_memory == 2 * 1024**3
        assert config.get("spark.executor.instances") == 8

    def test_unknown_keys_go_to_extra(self):
        config = EngineConfig()
        config.set("spark.custom.flag", "on")
        assert config.get("spark.custom.flag") == "on"
        assert config.get("spark.missing", "default") == "default"

    def test_set_validates(self):
        with pytest.raises(ValueError):
            EngineConfig().set("spark.executor.cores", 0)

    def test_storage_memory_budget(self):
        config = EngineConfig(executor_memory=1000, storage_fraction=0.6)
        assert config.storage_memory_per_executor == 600

    def test_copy_overrides(self):
        base = EngineConfig(num_executors=2)
        derived = base.copy(num_executors=5)
        assert derived.num_executors == 5
        assert base.num_executors == 2
        derived.extra["x"] = 1
        assert "x" not in base.extra


class TestMonitoringKnobs:
    def test_defaults_off(self):
        config = EngineConfig()
        assert config.metrics_interval == 0.0
        assert config.alerts_enabled is False
        assert config.flight_recorder_dir == ""
        assert config.metrics_retention == 512
        assert config.metrics_downsample == 8
        assert config.flight_recorder_window == 30.0

    def test_spark_style_aliases(self):
        config = EngineConfig()
        config.set("spark.metrics.interval", "0.5")
        config.set("spark.metrics.retention", "128")
        config.set("spark.metrics.downsample", "4")
        config.set("spark.alerts.enabled", "true")
        config.set("spark.flightRecorder.dir", "/tmp/bundles")
        config.set("spark.flightRecorder.window", "10")
        assert config.metrics_interval == 0.5
        assert config.metrics_retention == 128
        assert config.metrics_downsample == 4
        assert config.alerts_enabled is True
        assert config.flight_recorder_dir == "/tmp/bundles"
        assert config.flight_recorder_window == 10.0

    @pytest.mark.parametrize(
        "text,expected",
        [("true", True), ("1", True), ("yes", True), ("on", True),
         ("false", False), ("0", False), ("no", False), ("off", False)],
    )
    def test_bool_fields_coerce_strings(self, text, expected):
        config = EngineConfig()
        config.set("spark.alerts.enabled", text)
        assert config.alerts_enabled is expected

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"metrics_interval": -1.0},
            {"metrics_retention": 1},
            {"metrics_downsample": 0},
            {"flight_recorder_window": 0.0},
        ],
    )
    def test_invalid_monitoring_values(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_copy_carries_monitoring_fields(self):
        config = EngineConfig().copy(
            metrics_interval=0.25, alerts_enabled=True,
            flight_recorder_dir="/tmp/fr",
        )
        assert config.metrics_interval == 0.25
        assert config.alerts_enabled is True
        assert config.flight_recorder_dir == "/tmp/fr"
