"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.engine.context import Context
from repro.genomics.synthetic import SyntheticConfig, generate_dataset

#: CI sets REPRO_BACKEND=threads to run the suite against the shared-state
#: thread pool, exercising engine-level races on every push.  Tests that
#: need determinism or backend-specific behavior use serial_config directly.
DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", "serial")

#: CI's serializer leg sets REPRO_SERIALIZER=numpy / compressed to run the
#: core suite through the non-default data planes.
DEFAULT_SERIALIZER = os.environ.get("REPRO_SERIALIZER", "pickle")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "shared_driver_state: test observes driver-side closure mutation "
        "(list.append inside a task); impossible across a process boundary, "
        "skipped when REPRO_BACKEND=processes",
    )


def pytest_collection_modifyitems(config, items):
    if DEFAULT_BACKEND not in ("processes", "cluster"):
        return
    skip = pytest.mark.skip(
        reason="closures ship to worker processes by value; driver-side "
        "mutations are not visible (documented engine limit)"
    )
    for item in items:
        if "shared_driver_state" in item.keywords:
            item.add_marker(skip)


#: threads that are *supposed* to outlive a context: the persistent
#: cluster's dispatch loop and transport servers survive across contexts
#: by design and are reaped once per session (see _reap_persistent_engine)
_PERSISTENT_THREAD_PREFIXES = ("repro-cluster",)


@pytest.fixture(autouse=True)
def no_leaked_engine_threads():
    """Every engine thread must be joined by the end of each test.

    ``Context.stop()`` joins the heartbeat hub, UI server, and metrics
    sampler with bounded timeouts; a test that leaks a ``repro-*`` thread
    either forgot to stop its context or found a shutdown bug.  A short
    grace poll absorbs threads mid-exit (pool workers finishing their
    last task).  Persistent-cluster threads are exempt: they outlive
    contexts on purpose.
    """
    yield
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        leaked = [
            t.name for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("repro-")
            and not t.name.startswith(_PERSISTENT_THREAD_PREFIXES)
        ]
        if not leaked:
            return
        time.sleep(0.05)
    pytest.fail(f"leaked engine threads after test: {sorted(leaked)}")


@pytest.fixture(autouse=True, scope="session")
def _reap_persistent_engine():
    """End-of-session teardown for intentionally persistent machinery:
    the cluster fleet(s) and the shared process pool."""
    yield
    from repro.engine.backends import shutdown_shared_pool
    from repro.engine.cluster_backend import stop_all_clusters

    stop_all_clusters()
    shutdown_shared_pool()


@pytest.fixture
def serial_config() -> EngineConfig:
    return EngineConfig(backend="serial", num_executors=2, executor_cores=2, default_parallelism=4)


@pytest.fixture
def ctx() -> Context:
    config = EngineConfig(
        backend=DEFAULT_BACKEND,
        num_executors=2,
        executor_cores=2,
        default_parallelism=4,
        serializer=DEFAULT_SERIALIZER,
    )
    with Context(config) as context:
        yield context


@pytest.fixture
def threads_ctx() -> Context:
    with Context(
        EngineConfig(backend="threads", num_executors=3, executor_cores=2, default_parallelism=6)
    ) as context:
        yield context


@pytest.fixture(scope="session")
def tiny_dataset():
    """40 SNPs x 30 patients x 4 sets: fast unit-test payload."""
    return generate_dataset(SyntheticConfig(n_patients=30, n_snps=40, n_snpsets=4, seed=11))


@pytest.fixture(scope="session")
def small_dataset():
    """300 SNPs x 60 patients x 10 sets: integration-scale payload."""
    return generate_dataset(SyntheticConfig(n_patients=60, n_snps=300, n_snpsets=10, seed=7))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
