"""End-to-end integration: the whole stack in one flow.

generate -> write to MiniHDFS -> distributed analysis with engine-side
parsing -> resampling under injected faults -> results identical to the
pure-NumPy reference; plus the perf-model round trip on the same shape.
"""

import numpy as np
import pytest

from repro import EngineConfig, SparkScoreAnalysis, SyntheticConfig, generate_dataset
from repro.core.local import LocalSparkScore
from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec
from repro.cluster.nodes import emr_cluster
from repro.engine.context import Context
from repro.engine.faults import FaultInjector, FaultPlan
from repro.genomics.io.dataset_io import write_dataset
from repro.hdfs.filesystem import MiniHDFS


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        SyntheticConfig(
            n_patients=80, n_snps=400, n_snpsets=16, seed=31,
            n_causal_snps=4, effect_size=1.2,
        )
    )


@pytest.fixture(scope="module")
def reference(dataset):
    local = LocalSparkScore(dataset)
    return local.monte_carlo(120, seed=9)


class TestFullPipeline:
    def test_hdfs_distributed_faulty_pipeline(self, dataset, reference):
        fs = MiniHDFS(num_datanodes=3, block_size=16 * 1024, replication=2)
        write_dataset(dataset, "/study", hdfs=fs)
        # one datanode dies after the write; replication keeps data readable
        fs.kill_datanode("dn-2")
        assert fs.re_replicate() >= 0

        plan = FaultPlan(
            kill_executor_after_tasks={"exec-0": 2},
            fail_partition_attempts={1: 1},
        )
        config = EngineConfig(
            backend="threads", num_executors=3, executor_cores=2, default_parallelism=6
        )
        with Context(config, hdfs=fs, fault_injector=FaultInjector(plan)) as ctx:
            analysis = SparkScoreAnalysis.from_files(
                "/study", hdfs=fs, parse_with_engine=True,
                engine="distributed", ctx=ctx, flavor="vectorized", block_size=64,
            )
            result = analysis.monte_carlo(120, seed=9, batch_size=40)
            # identical inference despite datanode loss + executor kill +
            # transient task failure
            assert np.array_equal(result.exceed_counts, reference.exceed_counts)
            assert ctx.fault_injector.killed_executors == {"exec-0"}
            assert result.info["cache_hits"] > 0

    def test_signal_detected_by_all_three_methods(self, dataset):
        analysis = SparkScoreAnalysis.from_dataset(dataset)
        causal_sets = set(dataset.snpsets.set_ids[dataset.causal_rows].tolist())
        mc = analysis.monte_carlo(400, seed=3)
        perm = analysis.permutation(200, seed=3)
        asym = analysis.asymptotic()
        for result in (mc, perm, asym):
            top = {r.set_index for r in result.top(len(causal_sets) + 1)}
            assert top & causal_sets, f"{result.method} missed the causal sets"

    def test_wald_agrees_with_marginal_scores(self, dataset):
        analysis = SparkScoreAnalysis.from_dataset(dataset)
        mle = analysis.wald()
        scores = analysis.marginal_scores()
        # the most extreme score should be among the smallest Wald p-values
        top_score = int(np.argmax(np.abs(scores)))
        assert mle.wald_pvalues()[top_score] < np.median(mle.wald_pvalues())

    def test_perfmodel_covers_same_shape(self, dataset):
        model = SparkScorePerfModel()
        run = model.predict(
            WorkloadSpec(dataset.n_patients, dataset.n_snps, dataset.n_sets, "monte_carlo"),
            emr_cluster(2),
        )
        assert run.total_at(100) > run.total_at(0) > 0


class TestCrossEngineMatrix:
    """Every (engine, flavor, backend) combination produces identical counts."""

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    @pytest.mark.parametrize("flavor", ["paper", "vectorized"])
    def test_matrix(self, dataset, reference, backend, flavor):
        config = EngineConfig(
            backend=backend, num_executors=2, executor_cores=2, default_parallelism=4
        )
        with SparkScoreAnalysis.from_dataset(
            dataset, engine="distributed", config=config, flavor=flavor, block_size=50
        ) as analysis:
            result = analysis.monte_carlo(120, seed=9, batch_size=40)
            assert np.array_equal(result.exceed_counts, reference.exceed_counts)
