"""The sparkscore command-line interface."""

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data"
    rc = main([
        "generate", str(path),
        "--patients", "60", "--snps", "200", "--snpsets", "8",
        "--causal-snps", "3", "--effect-size", "1.0", "--seed", "5",
    ])
    assert rc == 0
    return str(path)


class TestGenerate:
    def test_writes_four_files(self, dataset_dir, capsys):
        import os

        files = sorted(os.listdir(dataset_dir))
        assert files == ["genotypes.txt", "phenotype.txt", "snpsets.txt", "weights.txt"]

    def test_output_mentions_shape(self, tmp_path, capsys):
        main(["generate", str(tmp_path / "d"), "--patients", "10", "--snps", "20",
              "--snpsets", "2"])
        out = capsys.readouterr().out
        assert "20 SNPs x 10 patients" in out

    def test_invalid_params_raise(self, tmp_path):
        with pytest.raises(ValueError):
            main(["generate", str(tmp_path / "x"), "--patients", "1"])


class TestAnalyze:
    def test_monte_carlo_local(self, dataset_dir, capsys):
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "200", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "method=monte_carlo" in out
        assert "wall time" in out

    def test_observed(self, dataset_dir, capsys):
        main(["analyze", dataset_dir, "--method", "observed"])
        assert "method=observed" in capsys.readouterr().out

    def test_asymptotic(self, dataset_dir, capsys):
        main(["analyze", dataset_dir, "--method", "asymptotic"])
        assert "method=asymptotic" in capsys.readouterr().out

    def test_permutation(self, dataset_dir, capsys):
        main(["analyze", dataset_dir, "--method", "permutation", "--iterations", "20"])
        assert "method=permutation" in capsys.readouterr().out

    def test_distributed_matches_local(self, dataset_dir, tmp_path, capsys):
        out_local = tmp_path / "local.tsv"
        out_dist = tmp_path / "dist.tsv"
        main(["analyze", dataset_dir, "--iterations", "100", "--seed", "2",
              "--output", str(out_local)])
        main(["analyze", dataset_dir, "--iterations", "100", "--seed", "2",
              "--engine", "distributed", "--backend", "serial",
              "--output", str(out_dist)])
        assert out_local.read_text() == out_dist.read_text()

    def test_tsv_output_columns(self, dataset_dir, tmp_path):
        out = tmp_path / "r.tsv"
        main(["analyze", dataset_dir, "--iterations", "50", "--output", str(out)])
        lines = out.read_text().splitlines()
        assert lines[0].split("\t") == ["set", "n_snps", "statistic", "exceed_count", "pvalue"]
        assert len(lines) == 9  # header + 8 sets


class TestMaxt:
    def test_runs_and_reports(self, dataset_dir, capsys):
        rc = main(["maxt", dataset_dir, "--iterations", "300", "--seed", "3", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "maxT step-down" in out
        assert "significant at FWER" in out

    def test_single_step_flag(self, dataset_dir, capsys):
        main(["maxt", dataset_dir, "--iterations", "100", "--single-step"])
        assert "single-step" in capsys.readouterr().out


class TestPlanAndTune:
    def test_plan_table(self, capsys):
        rc = main(["plan", "--snps", "100000", "--nodes", "6", "18",
                   "--iterations", "0", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "6 nodes" in out and "18 nodes" in out
        assert "per-iteration" in out

    def test_plan_no_cache(self, capsys):
        main(["plan", "--snps", "10000", "--nodes", "6", "--no-cache",
              "--iterations", "0", "10"])
        assert "nodes" in capsys.readouterr().out

    def test_tune_recommends(self, capsys):
        rc = main(["tune", "--snps", "100000", "--nodes", "6", "--iterations", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "predicted total" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestHistory:
    @pytest.fixture(scope="class")
    def event_log(self, dataset_dir, tmp_path_factory):
        path = tmp_path_factory.mktemp("hist") / "events.jsonl"
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "64", "--engine", "distributed",
                   "--backend", "serial", "--event-log", str(path)])
        assert rc == 0
        return str(path)

    def test_renders_stage_tables_and_critical_path(self, event_log, capsys):
        rc = main(["history", event_log])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage" in out and "p95" in out
        assert "critical path" in out and "max speedup" in out
        assert "cache hit rate" in out

    def test_job_filter(self, event_log, capsys):
        main(["history", event_log, "--job", "0"])
        out = capsys.readouterr().out
        assert "== job 0:" in out
        assert "== job 1:" not in out

    def test_export_chrome_trace(self, event_log, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        rc = main(["history", event_log, "--export-trace", str(trace)])
        assert rc == 0
        with open(trace) as fh:
            events = json.load(fh)["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)

    def test_metrics_flag_renders_registry(self, event_log, capsys):
        main(["history", event_log, "--metrics"])
        out = capsys.readouterr().out
        assert "# TYPE engine_jobs_total counter" in out

    def test_event_log_requires_distributed_engine(self, dataset_dir, tmp_path):
        with pytest.raises(SystemExit):
            main(["analyze", dataset_dir, "--method", "monte-carlo",
                  "--iterations", "10",
                  "--event-log", str(tmp_path / "x.jsonl")])


class TestTelemetryFlags:
    def test_profile_fraction_flows_into_history(self, dataset_dir, tmp_path, capsys):
        log = tmp_path / "prof.jsonl"
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial", "--profile-fraction", "1.0",
                   "--event-log", str(log)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["history", str(log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiler hotspots" in out
        assert "tottime" in out

    def test_ui_port_requires_distributed(self, dataset_dir):
        with pytest.raises(SystemExit):
            main(["analyze", dataset_dir, "--method", "monte-carlo",
                  "--iterations", "10", "--ui-port", "0"])

    def test_ui_port_serves_during_analysis(self, dataset_dir, capsys):
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial", "--ui-port", "0", "--no-progress"])
        assert rc == 0
        assert "engine UI serving at http://127.0.0.1:" in capsys.readouterr().err

    def test_progress_flag_renders_bars(self, dataset_dir, capsys):
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial", "--progress"])
        assert rc == 0
        assert "[Stage" in capsys.readouterr().err

    def test_progress_defaults_off_without_tty(self, dataset_dir, capsys):
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial"])
        assert rc == 0
        assert "[Stage" not in capsys.readouterr().err

    def test_progress_flags_mutually_exclusive(self, dataset_dir):
        with pytest.raises(SystemExit):
            main(["analyze", dataset_dir, "--method", "monte-carlo",
                  "--iterations", "10", "--progress", "--no-progress"])

    def test_log_file_and_level_flow_through(self, dataset_dir, tmp_path, capsys):
        import json

        log = tmp_path / "run.log.jsonl"
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial", "--log-level", "debug",
                   "--log-file", str(log), "--no-progress"])
        assert rc == 0
        records = [json.loads(line) for line in log.read_text().splitlines()]
        messages = {r["message"] for r in records}
        assert "job started" in messages and "task finished" in messages
        finished = [r for r in records if r["message"] == "task finished"]
        assert all("stage_id" in r and "partition" in r for r in finished)

    def test_log_flags_require_distributed(self, dataset_dir, tmp_path):
        with pytest.raises(SystemExit):
            main(["analyze", dataset_dir, "--method", "monte-carlo",
                  "--iterations", "10", "--log-file", str(tmp_path / "x.jsonl")])

    def test_history_prints_heartbeat_summary(self, tmp_path, capsys):
        import time

        from repro.config import EngineConfig
        from repro.engine.context import Context

        log = tmp_path / "hb.jsonl"
        config = EngineConfig(backend="threads", num_executors=2,
                              executor_cores=2, default_parallelism=4,
                              heartbeat_interval=0.02)
        with Context(config, event_log_path=str(log)) as ctx:
            ctx.parallelize(range(8), 4).map(
                lambda x: (time.sleep(0.05), x)[1]
            ).sum()
        capsys.readouterr()
        rc = main(["history", str(log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "heartbeats:" in out
        assert "executor(s)" in out


class TestDoctor:
    FIXTURE = str(FIXTURES / "eventlog_skew.jsonl")

    def test_flags_skew_with_repartition_advice(self, capsys):
        rc = main(["doctor", self.FIXTURE])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repartition-skewed-stage" in out
        assert "rdd.repartition(" in out
        assert "rdd.explain()" in out

    def test_json_output_is_ranked_and_parseable(self, capsys):
        import json

        rc = main(["doctor", self.FIXTURE, "--json"])
        assert rc == 0
        recs = json.loads(capsys.readouterr().out)
        assert recs, "expected at least one recommendation"
        rules = [r["rule"] for r in recs]
        assert "repartition-skewed-stage" in rules
        assert {"rule", "severity", "title", "action", "evidence"} <= set(recs[0])
        # warnings rank above the always-on sizing info
        assert recs[-1]["rule"] == "container-sizing"

    def test_thresholds_are_flags(self, capsys):
        rc = main(["doctor", self.FIXTURE, "--json", "--skew-ratio", "100",
                   "--straggler-multiplier", "100"])
        assert rc == 0
        import json

        rules = {r["rule"] for r in json.loads(capsys.readouterr().out)}
        assert "repartition-skewed-stage" not in rules
        assert "stragglers" not in rules

    def test_directory_scan_skips_foreign_jsonl(self, tmp_path, capsys):
        import shutil

        shutil.copy(self.FIXTURE, tmp_path / "events.jsonl")
        (tmp_path / "other.jsonl").write_text('{"not": "an event log"}\n')
        rc = main(["doctor", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "examined 1 job(s)" in out

    def test_missing_path_errors(self, tmp_path, capsys):
        rc = main(["doctor", str(tmp_path / "nope.jsonl")])
        assert rc == 1
        assert "no such event log" in capsys.readouterr().err

    def test_healthy_log_reports_doctor_summary(self, dataset_dir, tmp_path, capsys):
        log = tmp_path / "ok.jsonl"
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial", "--event-log", str(log),
                   "--no-progress"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["doctor", str(log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "doctor: examined" in out


class TestDoctorStrict:
    FIXTURE = str(FIXTURES / "eventlog_skew.jsonl")

    def test_default_floor_is_critical(self, capsys):
        # the skew fixture produces warnings, not criticals: strict passes
        rc = main(["doctor", self.FIXTURE, "--strict"])
        assert rc == 0
        capsys.readouterr()

    def test_warning_floor_gates_the_skew_fixture(self, capsys):
        rc = main(["doctor", self.FIXTURE, "--strict",
                   "--strict-severity", "warning"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "strict mode" in err and "failing" in err

    def test_info_floor_gates_any_finding(self, capsys):
        rc = main(["doctor", self.FIXTURE, "--strict",
                   "--strict-severity", "info"])
        assert rc == 2
        capsys.readouterr()


class TestMonitoringFlags:
    def test_analyze_with_monitoring_writes_series(self, dataset_dir, tmp_path, capsys):
        log = tmp_path / "mon.jsonl"
        rc = main(["analyze", dataset_dir, "--method", "monte-carlo",
                   "--iterations", "32", "--engine", "distributed",
                   "--backend", "serial", "--event-log", str(log),
                   "--metrics-interval", "0.02", "--alerts",
                   "--no-progress"])
        assert rc == 0
        capsys.readouterr()
        from repro.engine.eventlog import read_series

        assert read_series(str(log)), "sampler produced no v5 series lines"
        rc = main(["history", str(log), "--series"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-- sampled series" in out
        assert "engine_jobs_total" in out
        assert "last" in out

    def test_history_series_on_unsampled_log(self, dataset_dir, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        main(["analyze", dataset_dir, "--method", "monte-carlo",
              "--iterations", "32", "--engine", "distributed",
              "--backend", "serial", "--event-log", str(log),
              "--no-progress"])
        capsys.readouterr()
        rc = main(["history", str(log), "--series"])
        assert rc == 0
        assert "no sampled series" in capsys.readouterr().out

    def test_monitoring_requires_distributed_engine(self, dataset_dir):
        with pytest.raises(SystemExit, match="--engine distributed"):
            main(["analyze", dataset_dir, "--method", "monte-carlo",
                  "--iterations", "32", "--metrics-interval", "0.1"])


class TestPostmortem:
    @pytest.fixture
    def bundle_dir(self, tmp_path_factory):
        from repro.config import EngineConfig
        from repro.engine.context import Context
        from repro.engine.faults import FaultInjector, FaultPlan
        from repro.engine.scheduler import JobFailedError

        out = tmp_path_factory.mktemp("bundles")
        config = EngineConfig(backend="serial", num_executors=2,
                              executor_cores=2, default_parallelism=4,
                              max_task_retries=0)
        plan = FaultPlan(fail_partition_attempts={2: 99})
        with Context(config, fault_injector=FaultInjector(plan),
                     flight_recorder=str(out)) as ctx:
            with pytest.raises(JobFailedError):
                ctx.parallelize(range(16), 4).sum()
        return str(out)

    def test_renders_failing_task_and_timeline(self, bundle_dir, capsys):
        rc = main(["postmortem", bundle_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "post-mortem bundle:" in out
        assert "failing task: 0.2#0 on exec-" in out
        assert "InjectedTaskFailure" in out
        assert "event timeline" in out
        assert "correlated logs" in out

    def test_json_mode_dumps_the_bundle(self, bundle_dir, capsys):
        import json

        rc = main(["postmortem", bundle_dir, "--json"])
        assert rc == 0
        bundle = json.loads(capsys.readouterr().out)
        assert bundle["kind"] == "sparkscore-postmortem"
        assert bundle["failing_task"]["partition"] == 2

    def test_missing_bundle_errors(self, tmp_path, capsys):
        rc = main(["postmortem", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "no such bundle" in capsys.readouterr().err

    def test_empty_directory_errors(self, tmp_path, capsys):
        rc = main(["postmortem", str(tmp_path)])
        assert rc == 1
        assert "no *.json bundles" in capsys.readouterr().err

    def test_foreign_json_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "not-a-bundle"}')
        rc = main(["postmortem", str(bad)])
        assert rc == 1
        assert "sparkscore-postmortem" in capsys.readouterr().err
