"""Engine configuration, modelled on ``SparkConf``.

A :class:`EngineConfig` carries every knob the engine, block manager and
schedulers consult.  It is an immutable-ish dataclass with a ``set``/``get``
string interface layered on top so that code ported from Spark idioms
(``conf.set("spark.executor.memory", "10g")``) reads naturally.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Any

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([kmgt]?)i?b?\s*$", re.IGNORECASE)

_SIZE_FACTORS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable byte size (``"10g"``, ``"512m"``, ``1024``).

    Returns the size in bytes.  Raises :class:`ValueError` for malformed
    strings so configuration errors surface at set-time rather than deep in
    the block manager.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"negative size: {text!r}")
        return int(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse size {text!r}")
    value, unit = match.groups()
    return int(float(value) * _SIZE_FACTORS[unit.lower()])


def format_size(num_bytes: int) -> str:
    """Render a byte count using the largest whole unit (``"1.5 GiB"``)."""
    size = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    raise AssertionError("unreachable")


@dataclass
class EngineConfig:
    """Configuration for a :class:`repro.engine.context.Context`.

    Attributes mirror the Spark knobs the paper's Experiment C tunes
    (executors/containers, memory per executor, cores per executor) plus
    engine-internal settings (default parallelism, scheduler retry policy,
    block-manager budget).
    """

    app_name: str = "sparkscore"
    #: execution backend: "serial", "threads", "processes", or "cluster"
    #: (persistent executor pool surviving across jobs and contexts)
    backend: str = "serial"
    #: number of executors (YARN containers); Experiment C varies this
    num_executors: int = 2
    #: cores (task slots) per executor
    executor_cores: int = 2
    #: memory per executor in bytes, used by the block manager for caching
    executor_memory: int = 512 * 1024**2
    #: default number of partitions for parallelize / shuffles
    default_parallelism: int = 4
    #: maximum automatic retries for a failed task before failing the job
    max_task_retries: int = 3
    #: maximum stage resubmissions on shuffle-fetch failure
    max_stage_retries: int = 4
    #: fraction of executor memory usable for cached blocks
    storage_fraction: float = 0.6
    #: deterministic seed for engine-internal tie-breaking
    seed: int = 0
    #: seconds between executor heartbeats (0 disables the telemetry plane:
    #: no hub thread, no heartbeat events, no timeout detection)
    heartbeat_interval: float = 0.5
    #: seconds without a heartbeat from a busy executor before the driver
    #: declares it lost (``ExecutorTimedOut``); 0 disables timeout detection
    #: while keeping heartbeat events flowing
    heartbeat_timeout: float = 30.0
    #: fraction of task attempts to run under ``cProfile`` (0 disables);
    #: sampling is deterministic in (stage_id, partition)
    profile_fraction: float = 0.0
    #: hotspot rows kept per profiled task attempt
    profile_top_n: int = 20
    #: data-plane serializer: "pickle", "numpy" (raw ndarray frames), or
    #: "compressed" (numpy + zlib); governs shuffle blocks, shipped cache
    #: blocks, and serialized storage levels
    serializer: str = "pickle"
    #: blobs at least this large travel by shared-memory/temp-file
    #: transport ref instead of through the worker pipe (processes backend)
    transport_min_bytes: int = 64 * 1024
    #: out-of-band transport scheme: "auto" (probe shared memory, fall back
    #: to temp files), "shm", "file", or "tcp" (socket blob server with
    #: SHA-256 dedup offers -- required for executors on other hosts)
    transport_scheme: str = "auto"
    #: "host:port" of an externally started cluster head (``sparkscore
    #: cluster start``); empty means the cluster backend spawns and owns a
    #: process-local persistent worker pool
    cluster_address: str = ""
    #: shared secret for the HMAC handshake an external cluster head
    #: requires on every connection (``sparkscore cluster start`` prints
    #: one when not given ``--secret``); empty falls back to the
    #: ``REPRO_CLUSTER_SECRET`` environment variable at connect time
    cluster_secret: str = ""
    #: minimum level of structured log records the process log bus keeps
    #: ("debug", "info", "warning", "error"); shipped to worker processes
    #: so their capture filters at the same level
    log_level: str = "info"
    #: a task whose duration is at least this multiple of its stage's
    #: median is flagged as a straggler (``StragglerDetected``)
    straggler_multiplier: float = 3.0
    #: absolute duration floor for straggler flagging; sub-floor tasks are
    #: never stragglers no matter the ratio (keeps trivial stages quiet)
    straggler_min_seconds: float = 0.1
    #: a stage whose max-over-median partition ratio (records, bytes, or
    #: duration) reaches this flags ``StageSkewDetected``
    skew_max_over_median: float = 4.0
    #: stages with fewer tasks than this are exempt from skew/straggler
    #: analysis (tiny stages are trivially imbalanced)
    diagnostics_min_tasks: int = 4
    #: seconds between metrics-sampler snapshots of the process registry
    #: into the in-memory TSDB (0 disables the sampler thread)
    metrics_interval: float = 0.0
    #: full-resolution samples kept per series before folding into the
    #: downsampled tier
    metrics_retention: int = 512
    #: raw samples folded into one min/max/mean bin on eviction
    metrics_downsample: int = 8
    #: evaluate alerting rules each sampler tick (implies a sampler: when
    #: ``metrics_interval`` is 0 the context picks a default interval)
    alerts_enabled: bool = False
    #: directory for failure post-mortem bundles ("" disables the recorder)
    flight_recorder_dir: str = ""
    #: seconds of event/metric history captured in each post-mortem bundle
    flight_recorder_window: float = 30.0
    #: adaptive query execution: rewrite reduce stages between stage
    #: boundaries when the registered map-output statistics show skew
    adaptive_enabled: bool = False
    #: hard cap on how many pieces one oversized reduce bucket may be
    #: split into (splits happen along map-output boundaries)
    adaptive_max_splits: int = 8
    #: buckets below this fraction of the median are coalesced with
    #: adjacent small buckets
    adaptive_coalesce_ratio: float = 0.25
    #: probe the first map output of each shuffle and pick the cheapest
    #: serializer (pickle/numpy/compressed) per shuffle (requires
    #: ``adaptive_enabled``)
    adaptive_serializer: bool = True
    #: launch duplicate attempts of straggling tasks on warm executors;
    #: first result wins, the loser is cancelled and ignored
    speculation_enabled: bool = False
    #: a running task becomes a speculation candidate once its elapsed
    #: time reaches this multiple of the completed-task median
    speculation_multiplier: float = 2.0
    #: never speculate tasks that have run for less than this (seconds)
    speculation_min_runtime: float = 0.1
    #: fraction of a task set that must have completed before the median
    #: is trusted and twins may launch
    speculation_quantile: float = 0.75
    #: sequential early stopping: mask SNP-sets out of further resampling
    #: batches once their p-value confidence interval excludes
    #: ``inference_alpha`` (monitoring itself is always on; this enables
    #: the action half of the loop)
    inference_early_stop: bool = False
    #: significance threshold the convergence monitor classifies against
    inference_alpha: float = 0.05
    #: binomial interval for the running p-value estimates: "wilson"
    #: (score interval, fast) or "clopper-pearson" (exact, conservative)
    inference_ci: str = "wilson"
    #: replicates every set must see before any early-stop decision
    inference_min_replicates: int = 64
    #: free-form extra options (string keyed, Spark style)
    extra: dict[str, Any] = field(default_factory=dict)

    _ALIASES = {
        "spark.app.name": "app_name",
        "spark.executor.instances": "num_executors",
        "spark.executor.cores": "executor_cores",
        "spark.executor.memory": "executor_memory",
        "spark.default.parallelism": "default_parallelism",
        "spark.task.maxFailures": "max_task_retries",
        "spark.stage.maxConsecutiveAttempts": "max_stage_retries",
        "spark.memory.storageFraction": "storage_fraction",
        "spark.executor.heartbeatInterval": "heartbeat_interval",
        "spark.network.timeout": "heartbeat_timeout",
        "spark.python.profile.fraction": "profile_fraction",
        "spark.serializer": "serializer",
        "spark.transport.minBytes": "transport_min_bytes",
        "spark.transport.scheme": "transport_scheme",
        "spark.cluster.address": "cluster_address",
        "spark.cluster.secret": "cluster_secret",
        "spark.log.level": "log_level",
        "spark.speculation": "speculation_enabled",
        "spark.speculation.multiplier": "speculation_multiplier",
        "spark.speculation.minTaskRuntime": "speculation_min_runtime",
        "spark.speculation.quantile": "speculation_quantile",
        "spark.adaptive.enabled": "adaptive_enabled",
        "spark.sql.adaptive.enabled": "adaptive_enabled",
        "spark.adaptive.maxSplits": "adaptive_max_splits",
        "spark.adaptive.coalesceRatio": "adaptive_coalesce_ratio",
        "spark.adaptive.serializer": "adaptive_serializer",
        "spark.diagnostics.skewRatio": "skew_max_over_median",
        "spark.diagnostics.minTasks": "diagnostics_min_tasks",
        "spark.metrics.interval": "metrics_interval",
        "spark.metrics.retention": "metrics_retention",
        "spark.metrics.downsample": "metrics_downsample",
        "spark.alerts.enabled": "alerts_enabled",
        "spark.flightRecorder.dir": "flight_recorder_dir",
        "spark.flightRecorder.window": "flight_recorder_window",
        "spark.inference.earlyStop": "inference_early_stop",
        "spark.inference.alpha": "inference_alpha",
        "spark.inference.ci": "inference_ci",
        "spark.inference.minReplicates": "inference_min_replicates",
    }

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent settings."""
        if self.backend not in ("serial", "threads", "processes", "cluster"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.transport_scheme not in ("auto", "shm", "file", "tcp"):
            raise ValueError(
                f"unknown transport_scheme {self.transport_scheme!r}; "
                "choose from auto, shm, file, tcp"
            )
        if self.num_executors < 1:
            raise ValueError("num_executors must be >= 1")
        if self.executor_cores < 1:
            raise ValueError("executor_cores must be >= 1")
        if self.executor_memory < 0:
            raise ValueError("executor_memory must be >= 0")
        if self.default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        if not 0.0 <= self.storage_fraction <= 1.0:
            raise ValueError("storage_fraction must be in [0, 1]")
        if self.max_task_retries < 0 or self.max_stage_retries < 0:
            raise ValueError("retry counts must be >= 0")
        if self.heartbeat_interval < 0 or self.heartbeat_timeout < 0:
            raise ValueError("heartbeat settings must be >= 0")
        if not 0.0 <= self.profile_fraction <= 1.0:
            raise ValueError("profile_fraction must be in [0, 1]")
        if self.profile_top_n < 1:
            raise ValueError("profile_top_n must be >= 1")
        from repro.engine.serializer import SERIALIZER_NAMES

        if self.serializer not in SERIALIZER_NAMES:
            raise ValueError(
                f"unknown serializer {self.serializer!r}; "
                f"choose from {', '.join(SERIALIZER_NAMES)}"
            )
        if self.transport_min_bytes < 0:
            raise ValueError("transport_min_bytes must be >= 0")
        from repro.obs.logging import LEVELS

        if self.log_level not in LEVELS:
            raise ValueError(
                f"unknown log_level {self.log_level!r}; "
                f"choose from {', '.join(LEVELS)}"
            )
        if self.straggler_multiplier < 1.0:
            raise ValueError("straggler_multiplier must be >= 1")
        if self.straggler_min_seconds < 0:
            raise ValueError("straggler_min_seconds must be >= 0")
        if self.skew_max_over_median < 1.0:
            raise ValueError("skew_max_over_median must be >= 1")
        if self.diagnostics_min_tasks < 2:
            raise ValueError("diagnostics_min_tasks must be >= 2")
        if self.metrics_interval < 0:
            raise ValueError("metrics_interval must be >= 0")
        if self.metrics_retention < 2:
            raise ValueError("metrics_retention must be >= 2")
        if self.metrics_downsample < 1:
            raise ValueError("metrics_downsample must be >= 1")
        if self.flight_recorder_window <= 0:
            raise ValueError("flight_recorder_window must be > 0")
        if self.adaptive_max_splits < 1:
            raise ValueError("adaptive_max_splits must be >= 1")
        if not 0.0 < self.adaptive_coalesce_ratio < 1.0:
            raise ValueError("adaptive_coalesce_ratio must be in (0, 1)")
        if self.speculation_multiplier < 1.0:
            raise ValueError("speculation_multiplier must be >= 1")
        if self.speculation_min_runtime < 0:
            raise ValueError("speculation_min_runtime must be >= 0")
        if not 0.0 < self.speculation_quantile <= 1.0:
            raise ValueError("speculation_quantile must be in (0, 1]")
        if not 0.0 < self.inference_alpha < 1.0:
            raise ValueError("inference_alpha must be in (0, 1)")
        if self.inference_ci not in ("wilson", "clopper-pearson"):
            raise ValueError(
                f"unknown inference_ci {self.inference_ci!r}; "
                "choose from wilson, clopper-pearson"
            )
        if self.inference_min_replicates < 1:
            raise ValueError("inference_min_replicates must be >= 1")

    # -- Spark-style string interface ------------------------------------

    def set(self, key: str, value: Any) -> "EngineConfig":
        """Set an option by Spark-style dotted key; returns self (chainable)."""
        attr = self._ALIASES.get(key)
        if attr is None:
            self.extra[key] = value
            return self
        if attr in ("executor_memory", "transport_min_bytes"):
            value = parse_size(value)
        else:
            current = getattr(self, attr)
            if isinstance(current, bool):
                if isinstance(value, str):
                    value = value.strip().lower() in ("1", "true", "yes", "on")
                else:
                    value = bool(value)
            elif isinstance(current, int):
                value = int(value)
            elif isinstance(current, float):
                value = float(value)
        setattr(self, attr, value)
        self.validate()
        return self

    def get(self, key: str, default: Any = None) -> Any:
        """Read an option by Spark-style dotted key."""
        attr = self._ALIASES.get(key)
        if attr is not None:
            return getattr(self, attr)
        return self.extra.get(key, default)

    # -- derived quantities ----------------------------------------------

    @property
    def total_cores(self) -> int:
        """Total task slots across the application."""
        return self.num_executors * self.executor_cores

    @property
    def storage_memory_per_executor(self) -> int:
        """Bytes of cache budget per executor block manager."""
        return int(self.executor_memory * self.storage_fraction)

    def copy(self, **overrides: Any) -> "EngineConfig":
        """Return a copy with the given attribute overrides applied."""
        return dataclasses.replace(self, extra=dict(self.extra), **overrides)
