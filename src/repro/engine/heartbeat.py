"""Executor heartbeats: liveness reporting and lost-executor detection.

The analogue of Spark's driver<->executor heartbeat RPC.  While tasks are
in flight every executor periodically reports liveness and progress
(in-flight task ids, rows pulled through task iterators so far, RSS):

- **shared-state backends** (serial/threads): the executors live in the
  driver process, so the :class:`HeartbeatHub`'s own thread emits on their
  behalf from the live :class:`~repro.engine.task.TaskContext` objects --
  unless an executor's heartbeats are suspended
  (:meth:`~repro.engine.executor.Executor.suspend_heartbeats`), which is
  how tests and fault drills simulate a frozen executor;
- **process backend**: each worker process runs a small daemon thread that
  ships :class:`HeartbeatRecord`\\ s over a ``multiprocessing`` manager
  queue -- genuine cross-process liveness.

The hub posts every received record as a typed
:class:`~repro.engine.listener.ExecutorHeartbeat` on the listener bus (so
the metrics registry, event log, and UI all see them) and watches for
silence: a *busy* executor that has not heartbeated within
``EngineConfig.heartbeat_timeout`` seconds is declared lost -- the hub
posts :class:`~repro.engine.listener.ExecutorTimedOut` and the task
scheduler folds it into the existing executor-loss machinery (blocks and
shuffle outputs invalidated, in-flight attempts retried on healthy
executors) instead of hanging the job.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.listener import (
    ExecutorHeartbeat,
    ExecutorTimedOut,
    Listener,
    TaskEnd,
    TaskStart,
)
from repro.engine.task import TaskContext, current_rss_bytes
from repro.obs.logging import get_logger

log = get_logger("repro.heartbeat")

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context


@dataclass
class HeartbeatRecord:
    """One liveness report; plain data so it pickles across processes."""

    executor_id: str
    #: (stage_id, partition, attempt) triples running on the reporter
    inflight: tuple = ()
    records_read: int = 0
    rss_bytes: int = 0
    worker_pid: int = 0


class HeartbeatHub(Listener):
    """Driver-side heartbeat plane: emitter, receiver, and timeout monitor.

    Registered on the context's listener bus (it tracks in-flight tasks via
    ``TaskStart``/``TaskEnd``) and runs one daemon thread that, every
    ``interval`` seconds:

    1. emits heartbeats for busy driver-hosted executors (shared backends);
    2. drains worker-process heartbeats from the manager queue;
    3. flags busy executors silent for longer than ``timeout`` seconds.

    The scheduler consumes flagged executors via :meth:`take_timed_out`.
    """

    def __init__(self, ctx: "Context") -> None:
        self.ctx = ctx
        self.interval = ctx.config.heartbeat_interval
        self.timeout = ctx.config.heartbeat_timeout
        self._lock = threading.Lock()
        #: executor_id -> {(stage, partition, attempt): TaskContext | None}
        self._inflight: dict[str, dict[tuple, TaskContext | None]] = {}
        self._last_seen: dict[str, float] = {}
        #: flagged but not yet consumed by the scheduler
        self._pending_timeouts: set[str] = set()
        #: already announced (avoid re-posting ExecutorTimedOut every tick)
        self._announced: set[str] = set()
        self.records_received = 0
        self._worker_queue = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        backend = self.ctx.backend
        if not backend.supports_shared_state and hasattr(backend, "heartbeat_queue"):
            # the queue (and the Manager behind it, for the process backend)
            # belongs to the backend, not the hub: persistent pools outlive
            # this context, and a hub-owned queue dying with the context
            # would permanently silence every warm worker's heartbeats
            self._worker_queue = backend.heartbeat_queue(self.interval)
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat-hub", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._worker_queue = None

    def close(self) -> None:  # bus stop() hook
        self.stop()

    # -- bus-driven in-flight tracking ------------------------------------

    def on_task_start(self, event: TaskStart) -> None:
        key = (event.stage_id, event.partition, event.attempt)
        with self._lock:
            tasks = self._inflight.setdefault(event.executor_id, {})
            if not tasks:  # idle -> busy: liveness clock starts now
                self._last_seen[event.executor_id] = time.perf_counter()
                self._announced.discard(event.executor_id)
            tasks[key] = None

    def on_task_end(self, event: TaskEnd) -> None:
        rec = event.record
        key = (rec.stage_id, rec.partition, rec.attempt)
        with self._lock:
            tasks = self._inflight.get(rec.executor_id)
            if tasks is not None:
                tasks.pop(key, None)
                if not tasks:
                    del self._inflight[rec.executor_id]

    def attach_context(self, executor_id: str, key: tuple, tc: TaskContext) -> None:
        """Expose a live TaskContext for progress reporting (shared backends)."""
        with self._lock:
            tasks = self._inflight.get(executor_id)
            if tasks is not None and key in tasks:
                tasks[key] = tc

    # -- scheduler interface ----------------------------------------------

    def take_timed_out(self) -> set[str]:
        """Executors flagged lost since the last call (consumed once)."""
        with self._lock:
            out, self._pending_timeouts = self._pending_timeouts, set()
            return out

    def busy_executors(self) -> dict[str, list[tuple]]:
        """{executor_id: in-flight (stage, partition, attempt) triples}."""
        with self._lock:
            return {eid: list(tasks) for eid, tasks in self._inflight.items()}

    def idle_executors(self) -> set[str]:
        """Alive executors with no tracked in-flight tasks (warm twin hosts)."""
        with self._lock:
            busy = {eid for eid, tasks in self._inflight.items() if tasks}
        return {
            e.executor_id
            for e in self.ctx.executors
            if e.alive and e.executor_id not in busy
        }

    def last_heartbeat_age(self, executor_id: str) -> float | None:
        with self._lock:
            seen = self._last_seen.get(executor_id)
        return None if seen is None else time.perf_counter() - seen

    # -- hub thread --------------------------------------------------------

    def _run(self) -> None:
        period = self.interval
        if self.timeout > 0:
            period = min(period, max(self.timeout / 4.0, 0.01))
        while not self._stop.wait(period):
            try:
                self._tick()
            except Exception:  # never kill the hub on a transient error
                pass
        # final drain so late worker records still reach the bus
        try:
            self._drain_worker_queue()
        except Exception:
            pass

    def _tick(self) -> None:
        if self.ctx.backend.supports_shared_state:
            self._emit_driver_hosted()
        self._drain_worker_queue()
        if self.timeout > 0:
            self._check_timeouts()

    def _emit_driver_hosted(self) -> None:
        """Heartbeat on behalf of busy executors living in this process."""
        with self._lock:
            snapshot = {eid: dict(tasks) for eid, tasks in self._inflight.items()}
        by_id = {e.executor_id: e for e in self.ctx.executors}
        for executor_id, tasks in snapshot.items():
            executor = by_id.get(executor_id)
            if executor is None or not executor.alive or executor.heartbeats_suspended:
                continue
            rows = sum(tc.metrics.records_read for tc in tasks.values() if tc is not None)
            self._receive(HeartbeatRecord(
                executor_id=executor_id,
                inflight=tuple(tasks),
                records_read=rows,
                rss_bytes=current_rss_bytes(),
                worker_pid=os.getpid(),
            ))

    def _drain_worker_queue(self) -> None:
        if self._worker_queue is None:
            return
        while True:
            try:
                record = self._worker_queue.get_nowait()
            except queue.Empty:
                return
            except (EOFError, OSError, ConnectionError):  # manager shut down
                return
            self._receive(record)

    def _receive(self, record: HeartbeatRecord) -> None:
        with self._lock:
            self._last_seen[record.executor_id] = time.perf_counter()
            self.records_received += 1
        self.ctx.listener_bus.post(ExecutorHeartbeat(
            executor_id=record.executor_id,
            inflight=tuple(record.inflight),
            records_read=record.records_read,
            rss_bytes=record.rss_bytes,
            worker_pid=record.worker_pid,
        ))

    def _check_timeouts(self) -> None:
        now = time.perf_counter()
        stale: list[tuple[str, float]] = []
        with self._lock:
            for executor_id, tasks in self._inflight.items():
                if not tasks or executor_id in self._announced:
                    continue
                seen = self._last_seen.get(executor_id)
                if seen is not None and now - seen > self.timeout:
                    self._announced.add(executor_id)
                    self._pending_timeouts.add(executor_id)
                    stale.append((executor_id, now - seen))
        for executor_id, age in stale:
            log.warning(
                "busy executor stopped heartbeating; declaring it lost",
                executor_id=executor_id,
                seconds_since_heartbeat=round(age, 3),
            )
            self.ctx.listener_bus.post(ExecutorTimedOut(executor_id, age))


__all__ = ["HeartbeatRecord", "HeartbeatHub"]
