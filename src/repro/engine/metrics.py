"""Task / stage / job metrics, plus task-graph capture for simulator replay.

Every job records enough structure (stages, per-task wall times, shuffle
volumes) that :mod:`repro.cluster.simulation` can replay the same task graph
on a *simulated* cluster of arbitrary size -- this is how the benchmarks
extrapolate laptop runs to the paper's 6/12/18/36-node EMR clusters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Counters recorded by a single task attempt."""

    records_read: int = 0
    records_written: int = 0
    shuffle_bytes_read: int = 0
    shuffle_bytes_written: int = 0
    shuffle_records_read: int = 0
    shuffle_records_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    remote_cache_hits: int = 0
    disk_blocks_read: int = 0
    compute_seconds: float = 0.0
    size_estimation_seconds: float = 0.0
    #: estimated bytes of this task's result materialized on the driver
    driver_bytes_collected: int = 0
    #: serialized stage task-binary bytes shipped with this attempt
    #: (process backend only; 0 under shared-state backends)
    task_binary_bytes: int = 0


@dataclass
class TaskRecord:
    """One completed task attempt, as seen by the driver."""

    stage_id: int
    partition: int
    attempt: int
    executor_id: str
    duration_seconds: float
    metrics: TaskMetrics
    succeeded: bool
    error: str | None = None
    #: monotonic (perf_counter) launch timestamp; 0.0 in v1 event logs
    start_time: float = 0.0


@dataclass
class StageMetrics:
    """Aggregated metrics for one stage execution."""

    stage_id: int
    name: str
    num_tasks: int
    attempt: int = 0
    parent_stage_ids: tuple[int, ...] = ()
    is_shuffle_map: bool = False
    tasks: list[TaskRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: monotonic submission timestamp; 0.0 in v1 event logs
    submit_time: float = 0.0

    @property
    def total_task_seconds(self) -> float:
        return sum(t.duration_seconds for t in self.tasks if t.succeeded)

    def totals(self) -> TaskMetrics:
        """Element-wise sum of task metrics over successful attempts."""
        out = TaskMetrics()
        for rec in self.tasks:
            if not rec.succeeded:
                continue
            m = rec.metrics
            out.records_read += m.records_read
            out.records_written += m.records_written
            out.shuffle_bytes_read += m.shuffle_bytes_read
            out.shuffle_bytes_written += m.shuffle_bytes_written
            out.shuffle_records_read += m.shuffle_records_read
            out.shuffle_records_written += m.shuffle_records_written
            out.cache_hits += m.cache_hits
            out.cache_misses += m.cache_misses
            out.remote_cache_hits += m.remote_cache_hits
            out.disk_blocks_read += m.disk_blocks_read
            out.compute_seconds += m.compute_seconds
            out.size_estimation_seconds += m.size_estimation_seconds
            out.driver_bytes_collected += m.driver_bytes_collected
            out.task_binary_bytes += m.task_binary_bytes
        return out


@dataclass
class JobMetrics:
    """Metrics for one action (job) execution."""

    job_id: int
    description: str = ""
    wall_seconds: float = 0.0
    stages: list[StageMetrics] = field(default_factory=list)
    num_task_failures: int = 0
    num_stage_resubmissions: int = 0
    num_executor_failures_observed: int = 0
    #: monotonic submission timestamp; 0.0 in v1 event logs
    submit_time: float = 0.0

    def totals(self) -> TaskMetrics:
        out = TaskMetrics()
        for stage in self.stages:
            s = stage.totals()
            out.records_read += s.records_read
            out.records_written += s.records_written
            out.shuffle_bytes_read += s.shuffle_bytes_read
            out.shuffle_bytes_written += s.shuffle_bytes_written
            out.shuffle_records_read += s.shuffle_records_read
            out.shuffle_records_written += s.shuffle_records_written
            out.cache_hits += s.cache_hits
            out.cache_misses += s.cache_misses
            out.remote_cache_hits += s.remote_cache_hits
            out.disk_blocks_read += s.disk_blocks_read
            out.compute_seconds += s.compute_seconds
            out.size_estimation_seconds += s.size_estimation_seconds
            out.driver_bytes_collected += s.driver_bytes_collected
            out.task_binary_bytes += s.task_binary_bytes
        return out

    @property
    def total_task_seconds(self) -> float:
        return sum(s.total_task_seconds for s in self.stages)


class MetricsRegistry:
    """Thread-safe collection of job metrics held by the context."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs: list[JobMetrics] = []

    def add_job(self, job: JobMetrics) -> None:
        with self._lock:
            self.jobs.append(job)

    @property
    def last_job(self) -> JobMetrics | None:
        with self._lock:
            return self.jobs[-1] if self.jobs else None

    def clear(self) -> None:
        with self._lock:
            self.jobs.clear()

    def total_cache_hits(self) -> int:
        with self._lock:
            return sum(j.totals().cache_hits for j in self.jobs)

    def total_cache_misses(self) -> int:
        with self._lock:
            return sum(j.totals().cache_misses for j in self.jobs)
