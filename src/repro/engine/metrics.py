"""Task / stage / job metrics, plus task-graph capture for simulator replay.

Every job records enough structure (stages, per-task wall times, shuffle
volumes) that :mod:`repro.cluster.simulation` can replay the same task graph
on a *simulated* cluster of arbitrary size -- this is how the benchmarks
extrapolate laptop runs to the paper's 6/12/18/36-node EMR clusters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields


@dataclass
class TaskMetrics:
    """Counters recorded by a single task attempt.

    Most fields aggregate by summation; the ``peak_*`` resource-telemetry
    fields aggregate by maximum (a stage's peak RSS is the largest any of
    its tasks saw, not their sum) -- see :data:`_MAX_FIELDS`.
    """

    records_read: int = 0
    records_written: int = 0
    shuffle_bytes_read: int = 0
    shuffle_bytes_written: int = 0
    shuffle_records_read: int = 0
    shuffle_records_written: int = 0
    #: framed (post-compression) shuffle bytes actually stored/moved; equals
    #: ``shuffle_bytes_written`` under an uncompressed serializer
    shuffle_compressed_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    remote_cache_hits: int = 0
    disk_blocks_read: int = 0
    compute_seconds: float = 0.0
    size_estimation_seconds: float = 0.0
    #: wall seconds spent in the data-plane serializer (shuffle frame
    #: encode/decode), distinct from result/task-payload pickling
    serializer_seconds: float = 0.0
    #: estimated bytes of this task's result materialized on the driver
    driver_bytes_collected: int = 0
    #: serialized stage task-binary bytes shipped with this attempt
    #: (process backend only; 0 under shared-state backends)
    task_binary_bytes: int = 0
    # -- resource telemetry (executor telemetry plane) --------------------
    #: wall seconds spent deserializing the task payload + stage binary
    #: (process backend only; shared-state backends ship nothing)
    deserialize_seconds: float = 0.0
    #: wall seconds spent pickling the task result for the driver
    result_serialize_seconds: float = 0.0
    #: cumulative GC pause observed during the attempt (approximate under
    #: the thread backend: the collector is process-wide)
    gc_pause_seconds: float = 0.0
    #: peak resident set size of the executing process, bytes
    peak_rss_bytes: int = 0
    #: tracemalloc peak during the attempt (0 unless tracing is enabled)
    tracemalloc_peak_bytes: int = 0

    def merge_from(self, other: "TaskMetrics") -> None:
        """Fold ``other`` into this instance (sum, or max for peaks)."""
        for f in fields(TaskMetrics):
            if f.name in _MAX_FIELDS:
                setattr(self, f.name, max(getattr(self, f.name), getattr(other, f.name)))
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


#: fields whose aggregate is a maximum, not a sum
_MAX_FIELDS = frozenset({"peak_rss_bytes", "tracemalloc_peak_bytes"})


@dataclass
class TaskRecord:
    """One completed task attempt, as seen by the driver."""

    stage_id: int
    partition: int
    attempt: int
    executor_id: str
    duration_seconds: float
    metrics: TaskMetrics
    succeeded: bool
    error: str | None = None
    #: monotonic (perf_counter) launch timestamp; 0.0 in v1 event logs
    start_time: float = 0.0
    #: sampled-profiler hotspot rows ({func, ncalls, tottime, cumtime}),
    #: present only when this attempt was profiled
    profile: list[dict] | None = None
    #: worker-side sub-phase spans ({name, start, end}, seconds relative to
    #: task start); shipped by the process backend, empty elsewhere
    span_fragments: list[dict] = field(default_factory=list)
    #: True when this attempt was a speculative twin launched against a
    #: straggling original (the record only exists if the twin won)
    speculative: bool = False


@dataclass
class StageMetrics:
    """Aggregated metrics for one stage execution."""

    stage_id: int
    name: str
    num_tasks: int
    attempt: int = 0
    parent_stage_ids: tuple[int, ...] = ()
    is_shuffle_map: bool = False
    tasks: list[TaskRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: monotonic submission timestamp; 0.0 in v1 event logs
    submit_time: float = 0.0

    @property
    def total_task_seconds(self) -> float:
        return sum(t.duration_seconds for t in self.tasks if t.succeeded)

    def totals(self) -> TaskMetrics:
        """Element-wise aggregate of task metrics over successful attempts."""
        out = TaskMetrics()
        for rec in self.tasks:
            if rec.succeeded:
                out.merge_from(rec.metrics)
        return out


@dataclass
class JobMetrics:
    """Metrics for one action (job) execution."""

    job_id: int
    description: str = ""
    wall_seconds: float = 0.0
    stages: list[StageMetrics] = field(default_factory=list)
    num_task_failures: int = 0
    num_stage_resubmissions: int = 0
    num_executor_failures_observed: int = 0
    #: monotonic submission timestamp; 0.0 in v1 event logs
    submit_time: float = 0.0

    def totals(self) -> TaskMetrics:
        out = TaskMetrics()
        for stage in self.stages:
            out.merge_from(stage.totals())
        return out

    @property
    def total_task_seconds(self) -> float:
        return sum(s.total_task_seconds for s in self.stages)


class MetricsRegistry:
    """Thread-safe collection of job metrics held by the context."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs: list[JobMetrics] = []

    def add_job(self, job: JobMetrics) -> None:
        with self._lock:
            self.jobs.append(job)

    @property
    def last_job(self) -> JobMetrics | None:
        with self._lock:
            return self.jobs[-1] if self.jobs else None

    def jobs_snapshot(self) -> list[JobMetrics]:
        """Point-in-time copy of the completed-job list (UI / API use)."""
        with self._lock:
            return list(self.jobs)

    def clear(self) -> None:
        with self._lock:
            self.jobs.clear()

    def total_cache_hits(self) -> int:
        with self._lock:
            return sum(j.totals().cache_hits for j in self.jobs)

    def total_cache_misses(self) -> int:
        with self._lock:
            return sum(j.totals().cache_misses for j in self.jobs)
