"""RDD dependency descriptors.

Spark distinguishes *narrow* dependencies, where each child partition reads
a bounded set of parent partitions (map, filter, union), from *shuffle*
(wide) dependencies, where every child partition may read from every parent
partition (reduceByKey, join).  The DAG scheduler splits the lineage graph
into stages at shuffle dependencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.partitioner import Partitioner
    from repro.engine.rdd import RDD


class Dependency:
    """Base class: a link from a child RDD to one parent RDD."""

    def __init__(self, rdd: "RDD") -> None:
        self.rdd = rdd


class NarrowDependency(Dependency):
    """Each child partition depends on a small, known set of parent partitions."""

    def parents(self, child_partition: int) -> list[int]:
        """Parent partition indices feeding ``child_partition``."""
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    """Child partition ``i`` reads exactly parent partition ``i``."""

    def parents(self, child_partition: int) -> list[int]:
        return [child_partition]


class RangeDependency(NarrowDependency):
    """A contiguous range of child partitions maps onto parent partitions.

    Used by union: child partitions ``[out_start, out_start + length)`` read
    parent partitions ``[in_start, in_start + length)``.
    """

    def __init__(self, rdd: "RDD", in_start: int, out_start: int, length: int) -> None:
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parents(self, child_partition: int) -> list[int]:
        if self.out_start <= child_partition < self.out_start + self.length:
            return [child_partition - self.out_start + self.in_start]
        return []


class ManyToOneDependency(NarrowDependency):
    """Child partition reads an explicit list of parent partitions (coalesce)."""

    def __init__(self, rdd: "RDD", mapping: list[list[int]]) -> None:
        super().__init__(rdd)
        self.mapping = mapping

    def parents(self, child_partition: int) -> list[int]:
        return self.mapping[child_partition]


class ShuffleDependency(Dependency):
    """A wide dependency: parent's key-value output is hash-partitioned.

    ``shuffle_id`` is assigned by the context and identifies the map-output
    registry in the shuffle manager.  ``aggregator`` optionally holds
    (create_combiner, merge_value, merge_combiners) callables for map-side
    combining, as used by ``reduce_by_key``.
    """

    def __init__(
        self,
        rdd: "RDD",
        partitioner: "Partitioner",
        shuffle_id: int,
        aggregator: Optional["Aggregator"] = None,
    ) -> None:
        super().__init__(rdd)
        self.partitioner = partitioner
        self.shuffle_id = shuffle_id
        self.aggregator = aggregator


class Aggregator:
    """Combiner callables for shuffle-time aggregation (Spark's ``Aggregator``)."""

    def __init__(
        self,
        create_combiner: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        map_side_combine: bool = True,
    ) -> None:
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners
        self.map_side_combine = map_side_combine
