"""Closure serialization for task binaries (a minimal cloudpickle).

Plain :mod:`pickle` serializes functions *by reference* (module +
qualname), which refuses lambdas, nested functions, and locally-defined
callables -- exactly the closures users write against the RDD API.  Spark
solves this with cloudpickle; this module implements the small core of
that idea with the stdlib only:

- functions that are importable by name still pickle by reference
  (cheap, and the worker picks up the *live* module object);
- anything else is serialized **by value**: the code object via
  :mod:`marshal`, plus defaults, closure-cell contents, and the referenced
  globals (captured recursively through the same pickler, so a lambda
  that calls another lambda works);
- modules pickle as an import-by-name stub.

Limits (documented, same shape as Spark's): marshal'd code objects only
load on the same interpreter version, and by-value capture copies
closed-over state -- mutating a captured list inside a worker does not
mutate the driver's list.  Identity-sensitive singletons must implement
``__reduce__`` (see ``repro.engine.ops._Empty``).
"""

from __future__ import annotations

import builtins
import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any

_CELL_EMPTY = "__repro_empty_cell__"


def _is_importable(obj: types.FunctionType) -> bool:
    """True when default by-reference pickling would find ``obj`` again."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        return False
    try:
        mod = sys.modules.get(module) or importlib.import_module(module)
        target: Any = mod
        for part in qualname.split("."):
            target = getattr(target, part)
    except Exception:
        return False
    return target is obj


def _referenced_global_names(code: types.CodeType) -> set[str]:
    """Global names a code object (and its nested code objects) can load."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_global_names(const)
    return names


def _import_module(name: str) -> types.ModuleType:
    return importlib.import_module(name)


def _make_cell(value: Any) -> types.CellType:
    if value == _CELL_EMPTY:
        return types.CellType()
    return types.CellType(value)


def _make_function(
    code_bytes: bytes,
    globals_map: dict,
    module: str,
    qualname: str,
    defaults: tuple | None,
    kwdefaults: dict | None,
    closure_values: tuple | None,
    fn_dict: dict,
) -> types.FunctionType:
    code = marshal.loads(code_bytes)
    g = {"__builtins__": builtins, "__name__": module}
    g.update(globals_map)
    closure = None
    if closure_values is not None:
        closure = tuple(_make_cell(v) for v in closure_values)
    fn = types.FunctionType(code, g, code.co_name, defaults, closure)
    fn.__qualname__ = qualname
    fn.__module__ = module
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    if fn_dict:
        fn.__dict__.update(fn_dict)
    return fn


class _ClosurePickler(pickle.Pickler):
    def reducer_override(self, obj):  # noqa: C901 - dispatch table
        if isinstance(obj, types.ModuleType):
            return (_import_module, (obj.__name__,))
        if isinstance(obj, types.FunctionType) and not _is_importable(obj):
            return self._reduce_function(obj)
        return NotImplemented

    def _reduce_function(self, fn: types.FunctionType):
        code = fn.__code__
        wanted = _referenced_global_names(code)
        globals_map = {
            name: value
            for name, value in fn.__globals__.items()
            if name in wanted
        }
        closure_values: tuple | None = None
        if fn.__closure__ is not None:
            vals = []
            for cell in fn.__closure__:
                try:
                    vals.append(cell.cell_contents)
                except ValueError:  # genuinely empty cell
                    vals.append(_CELL_EMPTY)
            closure_values = tuple(vals)
        return (
            _make_function,
            (
                marshal.dumps(code),
                globals_map,
                fn.__module__ or "",
                fn.__qualname__,
                fn.__defaults__,
                fn.__kwdefaults__,
                closure_values,
                dict(fn.__dict__),
            ),
        )


def dumps(obj: Any, protocol: int = pickle.HIGHEST_PROTOCOL) -> bytes:
    """Like ``pickle.dumps`` but with by-value closure support."""
    buf = io.BytesIO()
    _ClosurePickler(buf, protocol=protocol).dump(obj)
    return buf.getvalue()


loads = pickle.loads  # rebuilders above are plain importable callables


__all__ = ["dumps", "loads"]
