"""Executor model: a named worker with task slots and a block manager."""

from __future__ import annotations

import threading

from repro.engine.blockmanager import BlockManager


class ExecutorLostError(RuntimeError):
    """Raised when a task attempts to run on (or fetch from) a dead executor."""

    def __init__(self, executor_id: str) -> None:
        super().__init__(f"executor {executor_id} lost")
        self.executor_id = executor_id


class Executor:
    """A simulated executor (YARN container): identity, slots, cache."""

    def __init__(
        self,
        executor_id: str,
        host: str,
        cores: int,
        memory_budget: int,
        spill_dir: str | None = None,
    ) -> None:
        self.executor_id = executor_id
        self.host = host
        self.cores = cores
        self.block_manager = BlockManager(executor_id, memory_budget, spill_dir)
        self._lock = threading.Lock()
        self._alive = True
        self._heartbeats_suspended = False
        self.tasks_run = 0
        self.tasks_failed = 0
        #: driver trace id -> completed task count; on persistent fleets an
        #: executor serves many drivers, and this is what tells them apart
        self.tasks_by_trace: dict[str, int] = {}

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._alive

    @property
    def heartbeats_suspended(self) -> bool:
        with self._lock:
            return self._heartbeats_suspended

    def suspend_heartbeats(self) -> None:
        """Stop reporting liveness while still (appearing to) run tasks.

        Simulates a frozen/partitioned executor: the heartbeat hub stops
        emitting on this executor's behalf, so the timeout monitor will
        eventually declare it lost.  Used by fault drills and tests.
        """
        with self._lock:
            self._heartbeats_suspended = True

    def resume_heartbeats(self) -> None:
        with self._lock:
            self._heartbeats_suspended = False

    def kill(self) -> None:
        """Mark dead and drop all cached blocks (simulated node loss)."""
        with self._lock:
            self._alive = False
        self.block_manager.clear()

    def revive(self) -> None:
        """Bring the executor back (fresh, empty cache) -- YARN relaunch."""
        with self._lock:
            self._alive = True
            self._heartbeats_suspended = False

    def note_task(self, succeeded: bool, trace_id: str | None = None) -> None:
        with self._lock:
            self.tasks_run += 1
            if not succeeded:
                self.tasks_failed += 1
            if trace_id:
                self.tasks_by_trace[trace_id] = (
                    self.tasks_by_trace.get(trace_id, 0) + 1
                )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"Executor({self.executor_id}@{self.host}, cores={self.cores}, {state})"


def build_executors(
    num_executors: int,
    cores: int,
    memory_budget: int,
    hosts_per_executor: int = 1,
) -> list[Executor]:
    """Construct the executor fleet, distributing executors over hosts.

    ``hosts_per_executor`` > 1 packs multiple executors per host (the
    paper's Experiment C runs 42/84/126 containers on 36 nodes).
    """
    executors = []
    for i in range(num_executors):
        host = f"host-{i // max(1, hosts_per_executor)}"
        executors.append(Executor(f"exec-{i}", host, cores, memory_budget))
    return executors
