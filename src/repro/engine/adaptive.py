"""Adaptive query execution: plan rewrites at stage boundaries.

The engine already collects everything Spark's AQE consults -- per-bucket
map-output statistics (:meth:`ShuffleManager.bucket_stats`), task-duration
telemetry, and heartbeat liveness -- but until this module those numbers
only fed dashboards and ``sparkscore doctor``.  The
:class:`AdaptivePlanner` closes the loop inside the live scheduler:

- **runtime skew repartitioning** -- before a reduce stage launches, the
  registered bucket distribution of the shuffle it reads is compared
  against the diagnostics skew threshold; oversized buckets are split
  along map-output boundaries and runs of tiny neighbours are coalesced
  into a :class:`~repro.engine.partitioner.ShuffleRemap`, producing a
  rebalanced reduce stage with bit-identical results (segments preserve
  the old bucket/map iteration order exactly).
- **runtime serializer selection** -- the first map task of a shuffle runs
  as a probe; its registered frames are sampled for compressibility and
  record shape, and the cheapest serializer is pinned per-shuffle
  (re-encoding the probe's frames) before the remaining maps launch.
- **speculative execution policy** -- :class:`SpeculationPolicy` decides
  when a running task has straggled long enough past the completed-task
  median to justify a duplicate attempt; the task scheduler owns the
  launch/commit mechanics (first result wins).

Remaps are *job-scoped*: shuffle storage keeps the original layout, and
the scheduler reverts the partitioner mutation when the job finishes so a
later job over the same lineage plans against the committed layout.
Serializer overrides are *storage-scoped* and persist with the frames
they describe.
"""

from __future__ import annotations

import math
import threading
import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.dependencies import OneToOneDependency
from repro.engine.listener import AdaptivePlanApplied
from repro.engine.partitioner import RemappedPartitioner, ShuffleRemap
from repro.engine.rdd import MappedPartitionsRDD, ShuffledRDD

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context
    from repro.engine.dag import Stage, StageGraph

__all__ = [
    "AdaptivePlanner",
    "AppliedRemap",
    "SpeculationPolicy",
    "build_remap",
]


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_remap(
    shuffle_id: int,
    bucket_map_counts: list[list[int]],
    *,
    max_over_median: float,
    max_splits: int,
    coalesce_ratio: float,
    splittable: bool,
) -> ShuffleRemap | None:
    """Cut a skewed bucket layout into a balanced one, or return ``None``.

    ``bucket_map_counts[r][m]`` is the record (or byte) count map ``m``
    wrote for old reduce bucket ``r``.  Buckets at least ``max_over_median``
    times the median are split along map boundaries into at most
    ``max_splits`` contiguous slices (only when ``splittable`` -- an
    aggregated shuffle must keep each key's bucket whole); runs of adjacent
    buckets under ``coalesce_ratio`` of the median are merged whole.  The
    identity layout returns ``None``.
    """
    num_buckets = len(bucket_map_counts)
    if num_buckets < 2:
        return None
    num_maps = len(bucket_map_counts[0])
    totals = [sum(per_map) for per_map in bucket_map_counts]
    if sum(totals) <= 0:
        return None
    median = _median([float(t) for t in totals])
    if median <= 0:
        # more than half the buckets are empty; balance against the mean
        median = sum(totals) / num_buckets
    if max(totals) < max_over_median * median:
        return None

    segments: list[tuple[tuple[int, int, int], ...]] = []
    tiny_cutoff = coalesce_ratio * median
    idx = 0
    while idx < num_buckets:
        total = totals[idx]
        if splittable and total >= max_over_median * median:
            pieces = min(max_splits, max(2, math.ceil(total / median)))
            segments.extend(
                _split_bucket(idx, bucket_map_counts[idx], num_maps, pieces)
            )
            idx += 1
        elif total <= tiny_cutoff:
            group = [(idx, 0, num_maps)]
            acc = total
            idx += 1
            while (
                idx < num_buckets
                and totals[idx] <= tiny_cutoff
                and acc + totals[idx] <= median
            ):
                group.append((idx, 0, num_maps))
                acc += totals[idx]
                idx += 1
            segments.append(tuple(group))
        else:
            segments.append(((idx, 0, num_maps),))
            idx += 1

    if len(segments) == num_buckets and all(len(seg) == 1 for seg in segments):
        return None
    return ShuffleRemap(shuffle_id, num_buckets, tuple(segments))


def _split_bucket(
    bucket: int, per_map: list[int], num_maps: int, pieces: int
) -> list[tuple[tuple[int, int, int], ...]]:
    """Greedy contiguous map-range split of one oversized bucket."""
    total = sum(per_map)
    target = total / pieces
    out: list[tuple[tuple[int, int, int], ...]] = []
    lo = 0
    acc = 0
    for map_idx in range(num_maps):
        acc += per_map[map_idx]
        if acc >= target and len(out) < pieces - 1 and map_idx + 1 < num_maps:
            out.append(((bucket, lo, map_idx + 1),))
            lo = map_idx + 1
            acc = 0
    out.append(((bucket, lo, num_maps),))
    if len(out) < 2:
        return [((bucket, 0, num_maps),)]
    return out


class AppliedRemap:
    """A live plan mutation, undone when the owning job finishes."""

    def __init__(self, rdd: ShuffledRDD, original_partitioner, remap: ShuffleRemap,
                 manager) -> None:
        self.rdd = rdd
        self.original_partitioner = original_partitioner
        self.remap = remap
        self._manager = manager
        #: set by the scheduler when the remapped chain feeds a shuffle-map
        #: stage: that downstream shuffle was written with the remapped map
        #: count, so its storage must not outlive the remap
        self.downstream_shuffle_id: int | None = None

    def revert(self) -> None:
        self.rdd.partitioner = self.original_partitioner
        self._manager.clear_remap(self.remap.shuffle_id)
        if self.downstream_shuffle_id is not None:
            # a later job would re-register this shuffle with the reverted
            # (static) map count and mis-read the remapped-layout outputs
            self._manager.unregister_shuffle(self.downstream_shuffle_id)


class SpeculationPolicy:
    """When is a running task straggling badly enough to duplicate?

    Mirrors Spark's ``spark.speculation.{quantile,multiplier}`` contract:
    once ``quantile`` of the task set has completed, any still-running task
    whose elapsed time exceeds ``multiplier`` x the completed median (and
    the absolute ``min_runtime`` floor) earns a twin attempt.
    """

    def __init__(self, multiplier: float, min_runtime: float, quantile: float) -> None:
        self.multiplier = multiplier
        self.min_runtime = min_runtime
        self.quantile = quantile

    @classmethod
    def from_config(cls, config) -> "SpeculationPolicy":
        return cls(
            config.speculation_multiplier,
            config.speculation_min_runtime,
            config.speculation_quantile,
        )

    def ready(self, completed: int, total: int) -> bool:
        return total > 0 and completed >= max(1, math.ceil(self.quantile * total))

    def threshold(self, completed_durations: list[float]) -> float:
        return max(
            self.multiplier * _median(completed_durations), self.min_runtime
        )


class AdaptivePlanner:
    """Per-context adaptive execution state and decision log."""

    def __init__(self, ctx: "Context") -> None:
        self.ctx = ctx
        config = ctx.config
        self.enabled = config.adaptive_enabled
        self.serializer_enabled = config.adaptive_enabled and config.adaptive_serializer
        self.speculation: SpeculationPolicy | None = (
            SpeculationPolicy.from_config(config) if config.speculation_enabled else None
        )
        self.max_splits = config.adaptive_max_splits
        self.coalesce_ratio = config.adaptive_coalesce_ratio
        self.skew_max_over_median = config.skew_max_over_median
        self.min_buckets = config.diagnostics_min_tasks
        self._lock = threading.Lock()
        self.decisions: list[dict] = []
        self.stages_rewritten = 0
        self.serializer_picks = 0
        self.speculative_launched = 0
        self.speculative_won = 0
        self._probed_shuffles: set[int] = set()

    # -- skew repartitioning ----------------------------------------------

    def maybe_rebalance(
        self, stage: "Stage", graph: "StageGraph", job_id: int
    ) -> AppliedRemap | None:
        """Rewrite ``stage`` to read a rebalanced reduce layout, if skewed.

        Only stages whose RDD reaches exactly one :class:`ShuffledRDD`
        through a private chain of one-to-one narrow dependencies are
        eligible -- partition ``i`` of such a stage reads reduce bucket
        ``i`` and the new partition count propagates automatically.  The
        returned :class:`AppliedRemap` must be reverted when the job ends.
        """
        if not self.enabled:
            return None
        chain = _narrow_chain_to_shuffle(stage.rdd)
        if chain is None:
            return None
        shuffled, chain_ids = chain
        dep = shuffled.shuffle_dep
        manager = self.ctx.shuffle_manager
        if shuffled.partitioner is not dep.partitioner:
            return None  # custom partitioner or already remapped
        if manager.remap_for(dep.shuffle_id) is not None:
            return None
        if not _chain_is_private(stage, graph, chain_ids):
            return None
        try:
            if manager.missing_maps(dep.shuffle_id):
                return None
            stats = manager.bucket_stats(dep.shuffle_id)
        except KeyError:
            return None
        if len(stats) != shuffled.partitioner.num_partitions:
            return None
        if len(stats) < self.min_buckets:
            return None
        record_counts = [[records for records, _bytes in row] for row in stats]
        if sum(sum(row) for row in record_counts) == 0:
            record_counts = [[size for _records, size in row] for row in stats]
        remap = build_remap(
            dep.shuffle_id,
            record_counts,
            max_over_median=self.skew_max_over_median,
            max_splits=self.max_splits,
            coalesce_ratio=self.coalesce_ratio,
            splittable=dep.aggregator is None,
        )
        if remap is None:
            return None
        original = shuffled.partitioner
        manager.set_remap(remap)
        shuffled.partitioner = RemappedPartitioner(original, remap)
        kind = remap.kind()
        detail = (
            f"{remap.base_partitions} buckets -> {remap.new_partitions} "
            f"partitions ({kind})"
        )
        self._record(
            kind=kind,
            shuffle_id=dep.shuffle_id,
            stage_id=stage.id,
            job_id=job_id,
            old_partitions=remap.base_partitions,
            new_partitions=remap.new_partitions,
            detail=detail,
        )
        with self._lock:
            self.stages_rewritten += 1
        return AppliedRemap(shuffled, original, remap, manager)

    # -- serializer selection ---------------------------------------------

    def wants_serializer_probe(self, stage: "Stage") -> bool:
        """Should this shuffle-map stage gate on a one-task probe wave?"""
        if not self.serializer_enabled or not stage.is_shuffle_map:
            return False
        shuffle_id = stage.shuffle_dep.shuffle_id
        if shuffle_id in self._probed_shuffles or stage.num_tasks < 2:
            return False
        return not self.ctx.shuffle_manager.available_maps(shuffle_id)

    def choose_serializer(self, stage: "Stage", job_id: int) -> str | None:
        """Pick a per-shuffle serializer from the probe map's frames.

        Called after the stage's first map output registered and before
        any other map launches; re-encodes the probe frames when the
        choice differs from the context serializer.
        """
        dep = stage.shuffle_dep
        shuffle_id = dep.shuffle_id
        self._probed_shuffles.add(shuffle_id)
        manager = self.ctx.shuffle_manager
        maps = sorted(manager.available_maps(shuffle_id))
        if not maps:
            return None
        blocks = manager.peek_map_output(shuffle_id, maps[0])
        current = manager.serializer_for(shuffle_id)
        choice = _pick_serializer(blocks, current)
        if choice is None or choice == current.name:
            return None
        manager.set_serializer_override(shuffle_id, choice)
        self._record(
            kind="serializer",
            shuffle_id=shuffle_id,
            stage_id=stage.id,
            job_id=job_id,
            old_partitions=stage.num_tasks,
            new_partitions=stage.num_tasks,
            detail=f"{current.name} -> {choice}",
        )
        with self._lock:
            self.serializer_picks += 1
        return choice

    # -- speculation accounting -------------------------------------------

    def note_speculation_launched(self) -> None:
        with self._lock:
            self.speculative_launched += 1

    def note_speculation_won(self) -> None:
        with self._lock:
            self.speculative_won += 1

    # -- reporting ----------------------------------------------------------

    def _record(self, **decision: Any) -> None:
        with self._lock:
            self.decisions.append(decision)
        bus = getattr(self.ctx, "listener_bus", None)
        if bus is not None:
            bus.post(AdaptivePlanApplied(
                decision["shuffle_id"], decision["stage_id"], decision["job_id"],
                decision["kind"], decision["old_partitions"],
                decision["new_partitions"], decision["detail"],
            ))

    def snapshot(self) -> dict:
        """Plain-dict view for the flight recorder / dashboard / history."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "serializer_enabled": self.serializer_enabled,
                "speculation_enabled": self.speculation is not None,
                "stages_rewritten": self.stages_rewritten,
                "serializer_picks": self.serializer_picks,
                "speculative_launched": self.speculative_launched,
                "speculative_won": self.speculative_won,
                "decisions": list(self.decisions[-100:]),
            }


# -- helpers ------------------------------------------------------------------


def _narrow_chain_to_shuffle(rdd) -> tuple[ShuffledRDD, set[int]] | None:
    """Walk one-to-one deps from ``rdd`` to a single ``ShuffledRDD``.

    The chain must be linear (each node exactly one ``OneToOneDependency``)
    and every intermediate node must delegate ``num_partitions`` to its
    parent (``MappedPartitionsRDD`` does), so remapping the shuffle's
    partitioner re-sizes the whole stage coherently.
    """
    chain_ids = {rdd.id}
    node = rdd
    while not isinstance(node, ShuffledRDD):
        if not isinstance(node, MappedPartitionsRDD):
            return None
        deps = node.dependencies
        if len(deps) != 1 or not isinstance(deps[0], OneToOneDependency):
            return None
        node = deps[0].rdd
        chain_ids.add(node.id)
    return node, chain_ids


def _narrow_closure_ids(rdd) -> set[int]:
    """Ids of all RDDs in ``rdd``'s stage (narrow-dependency closure)."""
    seen: set[int] = set()
    frontier = [rdd]
    while frontier:
        node = frontier.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        for dep in node.dependencies:
            if not hasattr(dep, "shuffle_id"):
                frontier.append(dep.rdd)
    return seen


def _chain_is_private(stage: "Stage", graph: "StageGraph", chain_ids: set[int]) -> bool:
    """No other stage in this job may compute or read the chain's RDDs.

    A remap changes the chain's partition count mid-job; if another stage's
    narrow closure touches a chain node (a shared cached sub-plan, a
    cogroup sibling), its construction-time partitioning assumptions would
    silently break, so the planner refuses.
    """
    for other in graph.all_stages():
        if other is stage:
            continue
        if _narrow_closure_ids(other.rdd) & chain_ids:
            return False
    return True


def _pick_serializer(blocks: dict, current) -> str | None:
    """Heuristic codec choice from one map's registered buckets."""
    non_empty = [b for b in blocks.values() if b.num_records > 0]
    if not non_empty:
        return None
    largest = max(non_empty, key=lambda b: len(b.payload))
    sample = largest.payload[:65536]
    if len(sample) < 64:
        return None
    ratio = len(zlib.compress(sample, 1)) / len(sample)
    total_bytes = sum(b.serialized_bytes for b in non_empty)
    total_records = sum(b.num_records for b in non_empty)
    avg_record_bytes = total_bytes / max(1, total_records)
    try:
        records = current.loads(largest.payload)
        ndarray_heavy = any(
            isinstance(value, np.ndarray)
            for _key, value in list(records)[:8]
        )
    except Exception:
        ndarray_heavy = False
    if ndarray_heavy:
        return "compressed" if ratio < 0.6 else "numpy"
    if ratio < 0.6 and avg_record_bytes >= 64:
        return "compressed"
    return "pickle"
