"""Sampled task profiling: ``cProfile`` on a deterministic task subset.

With ``EngineConfig.profile_fraction > 0`` the schedulers run a fraction of
task attempts under :mod:`cProfile` and attach the top-N hotspot rows to
the :class:`~repro.engine.metrics.TaskRecord` (so they ship back from
worker processes with the result, persist into v3 event logs, and surface
as an aggregated table in ``sparkscore history``).

Sampling is deterministic in ``(stage_id, partition)`` -- the same run
profiles the same tasks regardless of backend, executor placement, or
retry timing -- and is independent of the engine's RNG seed so enabling
profiling never perturbs statistical results.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, Iterable

#: Knuth multiplicative hash constant; spreads (stage, partition) lattices
_HASH_MULT = 2654435761


def should_profile(fraction: float, stage_id: int, partition: int) -> bool:
    """Deterministically pick ~``fraction`` of tasks for profiling."""
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    h = ((stage_id * 1_000_003 + partition + 1) * _HASH_MULT) & 0xFFFFFFFF
    return (h % 10_000) < fraction * 10_000


def profile_call(fn: Callable[[], Any], top_n: int = 20) -> tuple[Any, list[dict]]:
    """Run ``fn`` under cProfile; return ``(result, hotspot_rows)``.

    Rows are ``{"func", "ncalls", "tottime", "cumtime"}`` sorted by
    cumulative time, truncated to ``top_n``.  Profiler failures never fail
    the task: on any profiling error the task result is returned with an
    empty row list.
    """
    prof = cProfile.Profile()
    try:
        result = prof.runcall(fn)
    except SystemError:  # another profiler active (e.g. coverage); run plain
        return fn(), []
    rows = extract_hotspots(prof, top_n)
    return result, rows


def extract_hotspots(prof: cProfile.Profile, top_n: int) -> list[dict]:
    """Top-N rows of a finished profile, by cumulative time."""
    stats = pstats.Stats(prof)
    rows = []
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "func": _format_func(filename, lineno, funcname),
            "ncalls": nc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    rows.sort(key=lambda r: (-r["cumtime"], r["func"]))
    return rows[:top_n]


def _format_func(filename: str, lineno: int, funcname: str) -> str:
    if filename == "~":  # built-in
        return funcname
    short = "/".join(filename.split("/")[-2:])
    return f"{short}:{lineno}({funcname})"


def aggregate_hotspots(rows_per_task: Iterable[list[dict]]) -> list[dict]:
    """Merge per-task hotspot rows across attempts, keyed by function.

    Returns rows ``{"func", "ncalls", "tottime", "cumtime", "tasks"}``
    sorted by total ``tottime`` (own time aggregates cleanly across tasks;
    cumulative time double-counts call chains and is reported per-task
    max instead).
    """
    merged: dict[str, dict] = {}
    for rows in rows_per_task:
        for row in rows or ():
            agg = merged.setdefault(
                row["func"],
                {"func": row["func"], "ncalls": 0, "tottime": 0.0, "cumtime": 0.0, "tasks": 0},
            )
            agg["ncalls"] += row["ncalls"]
            agg["tottime"] += row["tottime"]
            agg["cumtime"] = max(agg["cumtime"], row["cumtime"])
            agg["tasks"] += 1
    return sorted(merged.values(), key=lambda r: (-r["tottime"], r["func"]))


__all__ = [
    "should_profile",
    "profile_call",
    "extract_hotspots",
    "aggregate_hotspots",
]
