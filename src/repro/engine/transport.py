"""Out-of-band payload transport for the process backend.

The pool pipe is the wrong place for megabyte payloads: every task that
ships a stage's task binary (or a large broadcast / result body) through
``ProcessPoolExecutor`` pays a full pickle copy through a pipe per task.
This module moves those payloads through POSIX shared memory
(:mod:`multiprocessing.shared_memory`) -- or a temp-file handoff when
shared memory is unavailable -- and ships only a tiny
:class:`TransportRef` through the pipe.  A third variant,
:class:`SocketTransport`, serves the same refs over TCP with SHA-256
dedup offers ahead of every payload push, so executors on *other hosts*
(the persistent cluster's remote workers) speak the identical protocol.
Socket connections authenticate with an HMAC challenge before any frame
is processed; the shared secret rides inside the transport spec, which
itself only travels over authenticated cluster channels.

Key properties:

- **Content-hash dedup**: ``put(blob, dedup=True)`` keys the segment by
  the blob's SHA-256, so a stage's task binary (or an identical broadcast)
  is materialized once no matter how many tasks reference it.
- **Bidirectional**: workers can ``put`` large result bodies and return a
  ref; the driver reads and deletes the segment after merging.
- **Lifecycle**: the driver-side owner tracks every segment it created and
  unlinks them all on ``close()`` (context stop); worker-created segments
  are deleted by the driver as soon as the result is merged.

A :class:`Transport` is addressed by a picklable :meth:`spec`; worker
processes rebuild a handle lazily from the spec riding in the task payload
(:func:`from_spec` memoizes per process).  On Python < 3.13 attaching a
shared-memory segment registers it with the resource tracker just like
creating one (bpo-39959), which corrupts the tracker's set-based accounting
when several processes attach the same segment -- attach paths therefore
suppress tracker registration entirely (see :func:`_attach_shm`), leaving
exactly one tracker entry per created segment for ``unlink`` to retire.
"""

from __future__ import annotations

import hashlib
import os
import secrets
import socket
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = [
    "TransportRef",
    "Transport",
    "SocketTransport",
    "advertised_host",
    "create_transport",
    "from_spec",
    "worker_transport",
]


@dataclass(frozen=True)
class TransportRef:
    """Picklable handle to one out-of-band payload."""

    scheme: str  # "shm" | "file"
    key: str  # segment name or absolute file path
    size: int
    content_hash: str | None = None


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


#: default byte budget for a socket transport's dedup'd blob store; a
#: persistent head otherwise keeps every task binary ever offered for the
#: life of the fleet
_STORE_BUDGET = int(
    os.environ.get("REPRO_TRANSPORT_STORE_BUDGET", 256 * 1024 * 1024)
)


def advertised_host(bind_host: str) -> str:
    """A host other machines can dial when we bound a wildcard address.

    Binding ``0.0.0.0`` is fine, *advertising* it in a transport spec is
    not -- a remote driver would dial its own loopback.  Resolve the
    machine's outbound address instead; concrete hosts pass through.
    """
    if bind_host not in ("", "0.0.0.0", "::"):
        return bind_host
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        # no packet is sent; connect() just selects the outbound interface
        probe.connect(("10.255.255.255", 1))
        return probe.getsockname()[0]
    except OSError:
        try:
            return socket.gethostbyname(socket.gethostname())
        except OSError:
            return "127.0.0.1"
    finally:
        probe.close()


def _shm_usable() -> bool:
    """Probe whether POSIX shared memory actually works here (it is absent
    or broken in some containers; /dev/shm may be unmounted)."""
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        try:
            seg.buf[:4] = b"ping"
        finally:
            seg.close()
            seg.unlink()
        return True
    except (ImportError, OSError, ValueError):
        return False


_ATTACH_LOCK = threading.Lock()


def _attach_shm(name: str):
    """Attach to an existing segment without registering it with the
    resource tracker.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment on
    *attach* as well as on create (bpo-39959), and the tracker's cache is a
    set -- so two attaches collapse to one entry and the second unregister
    (or the eventual unlink) raises a KeyError inside the tracker process.
    Suppressing registration during attach keeps the tracker's view exactly
    "one entry per created segment", which the final ``unlink`` removes.
    """
    from multiprocessing import shared_memory

    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        with _ATTACH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


class Transport:
    """Driver- or worker-side handle to the payload store."""

    def __init__(self, scheme: str, root: str, namespace: str | None = None) -> None:
        if scheme not in ("shm", "file"):
            raise ValueError(f"unknown transport scheme {scheme!r}")
        self.scheme = scheme
        self.root = root
        #: per-handle token mixed into every dedup'd segment name: content
        #: addressing must be deterministic *within* one transport (refs
        #: ride in task closures, so a warm job has to regenerate the same
        #: bytes) but never collide *across* driver processes -- a shared
        #: system-wide name would let one driver's close() unlink a segment
        #: another driver still references
        self.namespace = namespace if namespace is not None else secrets.token_hex(6)
        self._lock = threading.Lock()
        #: serializes dedup'd creates so a second put of the same content
        #: waits for the first to finish copying instead of handing out a
        #: ref to a half-written segment
        self._create_lock = threading.Lock()
        #: content hash -> ref, for dedup'd puts
        self._by_hash: dict[str, TransportRef] = {}
        #: every ref this handle created (unlinked on close)
        self._created: list[TransportRef] = []
        self.bytes_published = 0
        self.dedup_hits = 0
        #: bytes a dedup hit kept off the wire/segment store -- the fleet
        #: observability plane's "warm bytes saved" figure
        self.dedup_bytes_saved = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, prefer_shm: bool = True) -> "Transport":
        """Make a driver-side transport, probing shared-memory support."""
        if prefer_shm and _shm_usable():
            return cls("shm", "")
        return cls("file", tempfile.mkdtemp(prefix="repro-transport-"))

    def spec(self) -> tuple[str, str]:
        """Picklable description a worker can rebuild a handle from."""
        return (self.scheme, self.root)

    # -- put / get / delete ------------------------------------------------

    def put(self, blob: bytes, dedup: bool = False) -> TransportRef:
        """Store ``blob``; returns a ref.  ``dedup=True`` keys by content."""
        content_hash = _sha256(blob) if dedup else None
        if content_hash is None:
            ref = self._write(blob, None)
            with self._lock:
                self._created.append(ref)
                self.bytes_published += len(blob)
            return ref
        # dedup'd creates run one at a time: a concurrent put of the same
        # content must either see the finished ref in _by_hash or wait here
        # until the first writer has copied every byte -- never observe a
        # freshly created but still-zeroed segment
        with self._create_lock:
            with self._lock:
                existing = self._by_hash.get(content_hash)
                if existing is not None:
                    self.dedup_hits += 1
                    self.dedup_bytes_saved += len(blob)
                    return existing
            ref = self._write(blob, content_hash)
            with self._lock:
                self._created.append(ref)
                self.bytes_published += len(blob)
                self._by_hash[content_hash] = ref
            return ref

    def _write(self, blob: bytes, content_hash: str | None) -> TransportRef:
        # dedup'd payloads get *content-addressed* names: a republication of
        # identical content (same broadcast in a fresh Context, after an
        # unpersist, ...) must yield a byte-identical ref, because refs ride
        # inside task closures and a random name there would change the
        # closure's own content hash -- defeating the persistent cluster's
        # task-binary dedup for every stage that carries a broadcast
        if self.scheme == "shm":
            from multiprocessing import shared_memory

            name = (
                f"repro-{self.namespace}-{content_hash[:16]}"
                if content_hash else None
            )
            try:
                # size 0 segments are invalid; clamp to 1.  _ATTACH_LOCK keeps
                # a concurrent _attach_shm from suppressing this create's
                # resource-tracker registration
                with _ATTACH_LOCK:
                    seg = shared_memory.SharedMemory(
                        create=True, size=max(len(blob), 1), name=name
                    )
            except FileExistsError:
                # only reachable when an earlier delete() of this handle's
                # own segment failed to unlink (names are namespaced per
                # handle, so no other process can own it); the content is
                # identical by hash, but re-copy anyway so a half-dead
                # leftover can never be served with stale bytes
                seg = _attach_shm(name)
                try:
                    if seg.size < len(blob):
                        raise RuntimeError(
                            f"shm segment {name} too small for its content"
                        )
                    seg.buf[: len(blob)] = blob
                finally:
                    seg.close()
                return TransportRef("shm", name, len(blob), content_hash)
            try:
                seg.buf[: len(blob)] = blob
                name = seg.name.lstrip("/")
            finally:
                seg.close()
            return TransportRef("shm", name, len(blob), content_hash)
        stem = f"blob-{content_hash[:24]}" if content_hash else f"blob-{secrets.token_hex(8)}"
        path = os.path.join(self.root, stem)
        tmp = path + f".tmp-{secrets.token_hex(4)}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)  # atomic: readers never see a partial blob
        return TransportRef("file", path, len(blob), content_hash)

    def get(self, ref: TransportRef) -> bytes:
        if ref.scheme == "shm":
            seg = _attach_shm(ref.key)
            try:
                data = bytes(seg.buf[: ref.size])
            finally:
                seg.close()
            return data
        with open(ref.key, "rb") as fh:
            return fh.read()

    def delete(self, ref: TransportRef) -> None:
        """Remove one payload (idempotent)."""
        try:
            if ref.scheme == "shm":
                # attach (untracked) + unlink; unlink() unregisters the one
                # tracker entry the original create added
                seg = _attach_shm(ref.key)
                seg.close()
                seg.unlink()
            else:
                os.unlink(ref.key)
        except (FileNotFoundError, OSError):
            pass
        with self._lock:
            if ref.content_hash is not None:
                self._by_hash.pop(ref.content_hash, None)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unlink every payload this handle created."""
        with self._lock:
            created, self._created = self._created, []
            self._by_hash.clear()
        for ref in created:
            self.delete(ref)
        if self.scheme == "file":
            try:
                os.rmdir(self.root)
            except OSError:
                pass  # worker blobs may still be in flight; leave the dir


# -- socket transport ---------------------------------------------------------
#
# The cross-host variant: blobs live in a driver-side (or cluster-head-side)
# in-memory store fronted by a tiny TCP server speaking the frame protocol
# of :mod:`repro.engine.frames`.  Remote writers never push a payload blind:
# a ``put(dedup=True)`` first sends a SHA-256 *offer* (hash + size) and only
# ships the bytes when the server answers WANT -- the second executor to
# publish an identical task binary or result body pays ~100 bytes, not
# megabytes.  This is the stepping stone from one box to the paper's real
# multi-node EMR topology: a ``TransportRef`` with scheme ``tcp`` is valid
# on any host that can reach the server.


class SocketTransport:
    """TCP blob store: length-prefixed frames, SHA-256 dedup offers.

    Two personalities behind one interface:

    - **serving** (driver / cluster head): :meth:`serve` binds a listener
      and handles GET/OFFER/PUSH/DELETE from remote handles; local ``put``
      and ``get`` touch the in-memory store directly (no loopback hop).
    - **client** (worker, or an external driver): built by
      :func:`from_spec` from ``("tcp", "host:port")``; one persistent
      connection per process, a lock serializing request/response pairs.
    """

    scheme = "tcp"

    def __init__(
        self,
        addr: str,
        serving: bool = False,
        secret: bytes | None = None,
        store_budget: int | None = None,
    ) -> None:
        self.addr = addr
        self._serving = serving
        #: shared HMAC secret: the server challenges every connection and
        #: drops it before the first deserialize unless the reply checks out
        self.secret = secret if secret is not None else secrets.token_bytes(32)
        #: byte budget for dedup'd (``sha256-``) blobs; oldest-touched are
        #: evicted past it.  ``tok-`` blobs (one-shot result bodies) are
        #: exempt: they are deleted explicitly as soon as the driver merges
        #: them, while evicted content blobs just cost a re-offer/re-push.
        self.store_budget = (
            store_budget if store_budget is not None else _STORE_BUDGET
        )
        self._lock = threading.Lock()
        #: key -> blob (server side only), LRU order: oldest-touched first
        self._store: "OrderedDict[str, bytes]" = OrderedDict()
        self._store_bytes = 0
        #: content hash -> ref (server side dedup index; client side memo)
        self._by_hash: dict[str, TransportRef] = {}
        self.bytes_published = 0
        self.dedup_hits = 0
        #: bytes dedup offers kept off the wire (fleet "warm bytes saved")
        self.dedup_bytes_saved = 0
        self.evictions = 0
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conn: socket.socket | None = None  # client-mode connection
        self._server_conns: list[socket.socket] = []  # accepted connections
        self._closed = threading.Event()

    # -- construction -----------------------------------------------------

    @classmethod
    def serve(
        cls, host: str = "127.0.0.1", port: int = 0,
        thread_prefix: str = "repro-transport",
        secret: bytes | None = None,
    ) -> "SocketTransport":
        """Start a serving transport; returns once the listener is bound."""
        listener = socket.create_server((host, port))
        bound_port = listener.getsockname()[1]
        transport = cls(
            f"{advertised_host(host)}:{bound_port}", serving=True, secret=secret
        )
        transport._listener = listener
        accept = threading.Thread(
            target=transport._accept_loop,
            name=f"{thread_prefix}-accept",
            args=(thread_prefix,),
            daemon=True,
        )
        transport._threads.append(accept)
        accept.start()
        return transport

    def spec(self) -> tuple[str, str, str]:
        # the secret rides in the spec: specs only travel over already
        # authenticated channels (task payloads on cluster sockets, the
        # head's ATTACH_REPLY), so holding a spec is holding the key
        return ("tcp", self.addr, self.secret.hex())

    # -- server side -------------------------------------------------------

    def _accept_loop(self, thread_prefix: str) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed
                return
            with self._lock:
                self._server_conns.append(conn)
            handler = threading.Thread(
                target=self._serve_conn,
                name=f"{thread_prefix}-conn",
                args=(conn,),
                daemon=True,
            )
            self._threads.append(handler)
            handler.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        import pickle

        from repro.engine import frames

        try:
            # close() may reap this conn before the handler thread gets here
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # challenge first: nothing below -- in particular the pickled
            # BLOB_OFFER body -- is reachable by an unauthenticated peer
            frames.expect_auth(conn, self.secret)
            while True:
                received = frames.recv_frame(conn)
                if received is None:
                    return
                ftype, payload = received
                if ftype == frames.BLOB_GET:
                    key = payload.decode("utf-8")
                    with self._lock:
                        blob = self._store.get(key)
                        if blob is not None:
                            self._store.move_to_end(key)
                    if blob is None:
                        frames.send_frame(conn, frames.BLOB_MISSING, payload)
                    else:
                        frames.send_frame(conn, frames.BLOB_DATA, blob)
                elif ftype == frames.BLOB_OFFER:
                    content_hash, size = pickle.loads(payload)
                    with self._lock:
                        existing = self._by_hash.get(content_hash)
                        if existing is not None:
                            self.dedup_hits += 1
                            self.dedup_bytes_saved += int(size)
                    if existing is not None:
                        frames.send_frame(
                            conn, frames.BLOB_HAVE,
                            pickle.dumps(existing, protocol=pickle.HIGHEST_PROTOCOL),
                        )
                    else:
                        frames.send_frame(conn, frames.BLOB_WANT, payload)
                elif ftype == frames.BLOB_PUSH:
                    key_len = int.from_bytes(payload[:2], "big")
                    key = bytes(payload[2:2 + key_len]).decode("utf-8")
                    blob = bytes(payload[2 + key_len:])
                    self._store_blob(key, blob)
                    frames.send_frame(conn, frames.BLOB_OK, key.encode("utf-8"))
                elif ftype == frames.BLOB_DELETE:
                    self._delete_key(payload.decode("utf-8"))
                    frames.send_frame(conn, frames.BLOB_OK, payload)
                else:
                    return  # unknown frame: drop the connection
        except (ConnectionError, OSError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _store_blob(self, key: str, blob: bytes, content_hash: str | None = None) -> None:
        if content_hash is None and key.startswith("sha256-"):
            content_hash = key[len("sha256-"):]
        ref = TransportRef("tcp", key, len(blob), content_hash)
        with self._lock:
            old = self._store.pop(key, None)
            if old is None:
                self.bytes_published += len(blob)
            else:
                self._store_bytes -= len(old)
            self._store[key] = blob
            self._store_bytes += len(blob)
            if content_hash is not None:
                self._by_hash[content_hash] = ref
            self._evict_locked(keep=key)

    def _evict_locked(self, keep: str) -> None:
        """Drop oldest-touched dedup'd blobs past the byte budget.

        Only ``sha256-`` keys are candidates: their eviction is recoverable
        (the next offer gets WANT and re-pushes), while ``tok-`` result
        bodies must survive until the driver's explicit delete.  ``keep``
        (the blob just stored) is never evicted, even when it alone
        overflows the budget.
        """
        if self._store_bytes <= self.store_budget:
            return
        for key in [k for k in self._store if k != keep and k.startswith("sha256-")]:
            if self._store_bytes <= self.store_budget:
                return
            blob = self._store.pop(key)
            self._store_bytes -= len(blob)
            self._by_hash.pop(key[len("sha256-"):], None)
            self.evictions += 1

    def _delete_key(self, key: str) -> None:
        with self._lock:
            blob = self._store.pop(key, None)
            if blob is not None:
                self._store_bytes -= len(blob)
            if blob is not None and key.startswith("sha256-"):
                self._by_hash.pop(key[len("sha256-"):], None)

    # -- put / get / delete ------------------------------------------------

    def put(self, blob: bytes, dedup: bool = False) -> TransportRef:
        content_hash = _sha256(blob) if dedup else None
        if self._serving:
            if content_hash is not None:
                with self._lock:
                    existing = self._by_hash.get(content_hash)
                if existing is not None:
                    with self._lock:
                        self.dedup_hits += 1
                        self.dedup_bytes_saved += len(blob)
                    return existing
                key = f"sha256-{content_hash}"
            else:
                key = f"tok-{secrets.token_hex(8)}"
            self._store_blob(key, blob, content_hash)
            return TransportRef("tcp", key, len(blob), content_hash)
        return self._remote_put(blob, content_hash)

    def _remote_put(self, blob: bytes, content_hash: str | None) -> TransportRef:
        import pickle

        from repro.engine import frames

        if content_hash is not None:
            with self._lock:
                memo = self._by_hash.get(content_hash)
            if memo is not None:
                with self._lock:
                    self.dedup_hits += 1
                    self.dedup_bytes_saved += len(blob)
                return memo
            key = f"sha256-{content_hash}"
        else:
            key = f"tok-{secrets.token_hex(8)}"
        with self._lock:
            conn = self._connect_locked()
            if content_hash is not None:
                # dedup offer: hash + size first; the payload only moves if
                # the server does not already hold this content
                frames.send_frame(conn, frames.BLOB_OFFER, pickle.dumps(
                    (content_hash, len(blob)), protocol=pickle.HIGHEST_PROTOCOL
                ))
                reply = frames.recv_frame(conn)
                if reply is None:
                    raise ConnectionError("transport server closed during offer")
                ftype, payload = reply
                if ftype == frames.BLOB_HAVE:
                    ref = pickle.loads(payload)
                    self.dedup_hits += 1
                    self.dedup_bytes_saved += len(blob)
                    self._by_hash[content_hash] = ref
                    return ref
            key_bytes = key.encode("utf-8")
            frames.send_frame(
                conn, frames.BLOB_PUSH,
                len(key_bytes).to_bytes(2, "big") + key_bytes + blob,
            )
            reply = frames.recv_frame(conn)
            if reply is None or reply[0] != frames.BLOB_OK:
                raise ConnectionError("transport server rejected push")
            self.bytes_published += len(blob)
            ref = TransportRef("tcp", key, len(blob), content_hash)
            if content_hash is not None:
                self._by_hash[content_hash] = ref
            return ref

    def get(self, ref: TransportRef) -> bytes:
        if self._serving:
            with self._lock:
                blob = self._store.get(ref.key)
                if blob is not None:
                    self._store.move_to_end(ref.key)
            if blob is None:
                raise KeyError(f"transport blob {ref.key!r} not found")
            return blob
        from repro.engine import frames

        with self._lock:
            conn = self._connect_locked()
            frames.send_frame(conn, frames.BLOB_GET, ref.key.encode("utf-8"))
            reply = frames.recv_frame(conn)
        if reply is None:
            raise ConnectionError("transport server closed during get")
        ftype, payload = reply
        if ftype != frames.BLOB_DATA:
            raise KeyError(f"transport blob {ref.key!r} not found on server")
        return payload

    def delete(self, ref: TransportRef) -> None:
        if self._serving:
            self._delete_key(ref.key)
            return
        from repro.engine import frames

        try:
            with self._lock:
                conn = self._connect_locked()
                frames.send_frame(conn, frames.BLOB_DELETE, ref.key.encode("utf-8"))
                frames.recv_frame(conn)
                if ref.content_hash is not None:
                    self._by_hash.pop(ref.content_hash, None)
        except (ConnectionError, OSError):
            pass

    # -- client connection --------------------------------------------------

    def _connect_locked(self) -> socket.socket:
        if self._conn is None:
            from repro.engine import frames

            host, _, port = self.addr.rpartition(":")
            conn = socket.create_connection((host, int(port)), timeout=30.0)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                frames.answer_challenge(conn, self.secret)
            except (ConnectionError, OSError):
                conn.close()
                raise
            self._conn = conn
        return self._conn

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._closed.set()
        if self._listener is not None:
            # a blocked accept() is not reliably woken by close(); dial in
            # once so the accept loop observes _closed and exits
            try:
                host, _, port = self.addr.rpartition(":")
                socket.create_connection((host, int(port)), timeout=1.0).close()
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
                self._conn = None
            # unblock handler threads waiting in recv_frame on live clients
            conns, self._server_conns = self._server_conns, []
            self._store.clear()
            self._store_bytes = 0
            self._by_hash.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)
        self._threads.clear()


def create_transport(
    scheme: str = "auto",
    thread_prefix: str = "repro-transport",
    host: str = "127.0.0.1",
) -> "Transport | SocketTransport":
    """Factory over the transport variants.

    ``auto`` probes shared memory and falls back to temp files; ``shm`` /
    ``file`` force one local scheme; ``tcp`` starts a serving socket
    transport bound to ``host`` (executors on other hosts reach it by the
    advertised address in its spec).
    """
    if scheme == "auto":
        return Transport.create()
    if scheme == "shm":
        if not _shm_usable():
            raise RuntimeError("shared memory transport requested but unusable here")
        return Transport("shm", "")
    if scheme == "file":
        return Transport("file", tempfile.mkdtemp(prefix="repro-transport-"))
    if scheme == "tcp":
        return SocketTransport.serve(host=host, thread_prefix=thread_prefix)
    raise ValueError(f"unknown transport scheme {scheme!r}")


# -- worker-side handle cache -------------------------------------------------

_WORKER: dict[str, Any] = {"spec": None, "transport": None}
_WORKER_LOCK = threading.Lock()


def from_spec(spec: tuple) -> "Transport | SocketTransport":
    """Worker-side: rebuild (and memoize) a transport handle from its spec.

    Specs are ``(scheme, root)`` for the local variants and
    ``("tcp", addr, secret_hex)`` for the socket transport.
    """
    spec = tuple(spec)
    with _WORKER_LOCK:
        if _WORKER["spec"] != spec:
            _WORKER["spec"] = spec
            if spec[0] == "tcp":
                _WORKER["transport"] = SocketTransport(
                    spec[1], secret=bytes.fromhex(spec[2])
                )
            else:
                _WORKER["transport"] = Transport(spec[0], spec[1])
        return _WORKER["transport"]


def worker_transport() -> Transport | None:
    """The transport handle of the task currently running in this process."""
    with _WORKER_LOCK:
        return _WORKER["transport"]
