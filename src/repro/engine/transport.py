"""Out-of-band payload transport for the process backend.

The pool pipe is the wrong place for megabyte payloads: every task that
ships a stage's task binary (or a large broadcast / result body) through
``ProcessPoolExecutor`` pays a full pickle copy through a pipe per task.
This module moves those payloads through POSIX shared memory
(:mod:`multiprocessing.shared_memory`) -- or a temp-file handoff when
shared memory is unavailable -- and ships only a tiny
:class:`TransportRef` through the pipe.

Key properties:

- **Content-hash dedup**: ``put(blob, dedup=True)`` keys the segment by
  the blob's SHA-256, so a stage's task binary (or an identical broadcast)
  is materialized once no matter how many tasks reference it.
- **Bidirectional**: workers can ``put`` large result bodies and return a
  ref; the driver reads and deletes the segment after merging.
- **Lifecycle**: the driver-side owner tracks every segment it created and
  unlinks them all on ``close()`` (context stop); worker-created segments
  are deleted by the driver as soon as the result is merged.

A :class:`Transport` is addressed by a picklable :meth:`spec`; worker
processes rebuild a handle lazily from the spec riding in the task payload
(:func:`from_spec` memoizes per process).  On Python < 3.13 attaching a
shared-memory segment registers it with the resource tracker just like
creating one (bpo-39959), which corrupts the tracker's set-based accounting
when several processes attach the same segment -- attach paths therefore
suppress tracker registration entirely (see :func:`_attach_shm`), leaving
exactly one tracker entry per created segment for ``unlink`` to retire.
"""

from __future__ import annotations

import hashlib
import os
import secrets
import tempfile
import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["TransportRef", "Transport", "from_spec", "worker_transport"]


@dataclass(frozen=True)
class TransportRef:
    """Picklable handle to one out-of-band payload."""

    scheme: str  # "shm" | "file"
    key: str  # segment name or absolute file path
    size: int
    content_hash: str | None = None


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _shm_usable() -> bool:
    """Probe whether POSIX shared memory actually works here (it is absent
    or broken in some containers; /dev/shm may be unmounted)."""
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        try:
            seg.buf[:4] = b"ping"
        finally:
            seg.close()
            seg.unlink()
        return True
    except (ImportError, OSError, ValueError):
        return False


_ATTACH_LOCK = threading.Lock()


def _attach_shm(name: str):
    """Attach to an existing segment without registering it with the
    resource tracker.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment on
    *attach* as well as on create (bpo-39959), and the tracker's cache is a
    set -- so two attaches collapse to one entry and the second unregister
    (or the eventual unlink) raises a KeyError inside the tracker process.
    Suppressing registration during attach keeps the tracker's view exactly
    "one entry per created segment", which the final ``unlink`` removes.
    """
    from multiprocessing import shared_memory

    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        with _ATTACH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


class Transport:
    """Driver- or worker-side handle to the payload store."""

    def __init__(self, scheme: str, root: str) -> None:
        if scheme not in ("shm", "file"):
            raise ValueError(f"unknown transport scheme {scheme!r}")
        self.scheme = scheme
        self.root = root
        self._lock = threading.Lock()
        #: content hash -> ref, for dedup'd puts
        self._by_hash: dict[str, TransportRef] = {}
        #: every ref this handle created (unlinked on close)
        self._created: list[TransportRef] = []
        self.bytes_published = 0
        self.dedup_hits = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, prefer_shm: bool = True) -> "Transport":
        """Make a driver-side transport, probing shared-memory support."""
        if prefer_shm and _shm_usable():
            return cls("shm", "")
        return cls("file", tempfile.mkdtemp(prefix="repro-transport-"))

    def spec(self) -> tuple[str, str]:
        """Picklable description a worker can rebuild a handle from."""
        return (self.scheme, self.root)

    # -- put / get / delete ------------------------------------------------

    def put(self, blob: bytes, dedup: bool = False) -> TransportRef:
        """Store ``blob``; returns a ref.  ``dedup=True`` keys by content."""
        content_hash = _sha256(blob) if dedup else None
        if content_hash is not None:
            with self._lock:
                existing = self._by_hash.get(content_hash)
            if existing is not None:
                with self._lock:
                    self.dedup_hits += 1
                return existing
        ref = self._write(blob, content_hash)
        with self._lock:
            self._created.append(ref)
            self.bytes_published += len(blob)
            if content_hash is not None:
                self._by_hash[content_hash] = ref
        return ref

    def _write(self, blob: bytes, content_hash: str | None) -> TransportRef:
        if self.scheme == "shm":
            from multiprocessing import shared_memory

            # size 0 segments are invalid; clamp to 1
            seg = shared_memory.SharedMemory(create=True, size=max(len(blob), 1))
            try:
                seg.buf[: len(blob)] = blob
                name = seg.name.lstrip("/")
            finally:
                seg.close()
            return TransportRef("shm", name, len(blob), content_hash)
        path = os.path.join(self.root, f"blob-{secrets.token_hex(8)}")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)  # atomic: readers never see a partial blob
        return TransportRef("file", path, len(blob), content_hash)

    def get(self, ref: TransportRef) -> bytes:
        if ref.scheme == "shm":
            seg = _attach_shm(ref.key)
            try:
                data = bytes(seg.buf[: ref.size])
            finally:
                seg.close()
            return data
        with open(ref.key, "rb") as fh:
            return fh.read()

    def delete(self, ref: TransportRef) -> None:
        """Remove one payload (idempotent)."""
        try:
            if ref.scheme == "shm":
                # attach (untracked) + unlink; unlink() unregisters the one
                # tracker entry the original create added
                seg = _attach_shm(ref.key)
                seg.close()
                seg.unlink()
            else:
                os.unlink(ref.key)
        except (FileNotFoundError, OSError):
            pass
        with self._lock:
            if ref.content_hash is not None:
                self._by_hash.pop(ref.content_hash, None)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unlink every payload this handle created."""
        with self._lock:
            created, self._created = self._created, []
            self._by_hash.clear()
        for ref in created:
            self.delete(ref)
        if self.scheme == "file":
            try:
                os.rmdir(self.root)
            except OSError:
                pass  # worker blobs may still be in flight; leave the dir


# -- worker-side handle cache -------------------------------------------------

_WORKER: dict[str, Any] = {"spec": None, "transport": None}
_WORKER_LOCK = threading.Lock()


def from_spec(spec: tuple[str, str]) -> Transport:
    """Worker-side: rebuild (and memoize) a transport handle from its spec."""
    with _WORKER_LOCK:
        if _WORKER["spec"] != spec:
            _WORKER["spec"] = spec
            _WORKER["transport"] = Transport(spec[0], spec[1])
        return _WORKER["transport"]


def worker_transport() -> Transport | None:
    """The transport handle of the task currently running in this process."""
    with _WORKER_LOCK:
        return _WORKER["transport"]
