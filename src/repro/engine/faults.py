"""Deterministic fault injection for testing lineage recovery.

A :class:`FaultPlan` declares failures up front; the :class:`FaultInjector`
fires them from the task-launch hook.  Supported fault kinds:

- ``fail_task``: a specific (stage attempt is ignored) task's first N
  attempts raise a transient error -- exercises task retry.
- ``kill_executor_after_tasks``: a named executor dies after launching its
  K-th task -- drops its cached blocks and shuffle outputs, exercising
  lineage recomputation and stage resubmission.

All bookkeeping is thread-safe; the injector is shared across concurrently
running tasks under the thread backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.engine.executor import ExecutorLostError
from repro.engine.task import TaskContext


class InjectedTaskFailure(RuntimeError):
    """A transient, injected task error (retriable)."""


@dataclass
class FaultPlan:
    """Declarative failure schedule.

    ``task_failures`` maps ``(rdd_id_or_stage_marker, partition)`` to the
    number of attempts that should fail.  Keys use the *partition* id of the
    running task plus its stage; since stage ids are assigned dynamically,
    tests usually key on partition alone via ``fail_partition``.
    """

    #: partition index -> number of initial attempts to fail (any stage)
    fail_partition_attempts: dict[int, int] = field(default_factory=dict)
    #: executor_id -> kill after this many task launches on it
    kill_executor_after_tasks: dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Runtime driver for a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._partition_failures: dict[tuple[int, int], int] = {}
        self._executor_launches: dict[str, int] = {}
        self.killed_executors: set[str] = set()
        self.injected_failures = 0

    def on_task_launch(self, tc: TaskContext) -> None:
        """Hook called at task start; raises to simulate the failure."""
        with self._lock:
            executor_id = tc.executor_id
            if executor_id in self.killed_executors:
                raise ExecutorLostError(executor_id)

            kill_after = self.plan.kill_executor_after_tasks.get(executor_id)
            if kill_after is not None:
                launches = self._executor_launches.get(executor_id, 0) + 1
                self._executor_launches[executor_id] = launches
                if launches > kill_after:
                    self.killed_executors.add(executor_id)
                    self.injected_failures += 1
                    raise ExecutorLostError(executor_id)

            budget = self.plan.fail_partition_attempts.get(tc.partition)
            if budget is not None:
                key = (tc.stage_id, tc.partition)
                so_far = self._partition_failures.get(key, 0)
                if so_far < budget:
                    self._partition_failures[key] = so_far + 1
                    self.injected_failures += 1
                    raise InjectedTaskFailure(
                        f"injected failure for stage {tc.stage_id} partition {tc.partition} "
                        f"attempt {tc.attempt}"
                    )

    def executor_is_killed(self, executor_id: str) -> bool:
        with self._lock:
            return executor_id in self.killed_executors
