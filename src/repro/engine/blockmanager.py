"""Per-executor block managers with LRU eviction and optional disk spill.

A cached RDD partition is a *block*, keyed ``(rdd_id, partition)``.  Each
executor owns a :class:`BlockManager` with a memory budget; the driver-side
:class:`BlockManagerMaster` tracks which executors hold which blocks so
tasks scheduled elsewhere can fetch remotely (counted in metrics, and
charged as network transfer by the cost model).

Sizes are estimated with :func:`estimate_size`, which understands NumPy
arrays exactly and falls back to pickled length for other objects.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.engine.storage import StorageLevel

BlockId = tuple[int, int]  # (rdd_id, partition)


def estimate_size(obj: Any) -> int:
    """Approximate in-memory footprint of a block payload in bytes."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 128
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 48
    if isinstance(obj, str):
        return len(obj) + 56
    if isinstance(obj, (int, float)):
        return 32
    if isinstance(obj, (list, tuple)):
        return 64 + sum(estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 64 + sum(estimate_size(k) + estimate_size(v) for k, v in obj.items())
    if hasattr(obj, "nbytes"):
        try:
            return int(obj.nbytes) + 128
        except TypeError:
            pass
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)) + 64
    except Exception:
        return 256


@dataclass
class _Block:
    data: list
    size: int
    level: StorageLevel
    serialized: bytes | None = None


class BlockManager:
    """One executor's cache: memory LRU with optional spill-to-disk."""

    def __init__(self, executor_id: str, memory_budget: int, spill_dir: str | None = None) -> None:
        self.executor_id = executor_id
        self.memory_budget = memory_budget
        self._lock = threading.RLock()
        self._blocks: "OrderedDict[BlockId, _Block]" = OrderedDict()
        self._memory_used = 0
        self._spill_dir = spill_dir
        self._spilled: dict[BlockId, str] = {}
        self.evictions = 0
        self.spills = 0

    # -- properties --------------------------------------------------------

    @property
    def memory_used(self) -> int:
        with self._lock:
            return self._memory_used

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._blocks or block_id in self._spilled

    def block_ids(self) -> list[BlockId]:
        with self._lock:
            return list(self._blocks) + list(self._spilled)

    # -- put / get ----------------------------------------------------------

    def put(self, block_id: BlockId, data: Iterable, level: StorageLevel) -> list:
        """Materialize ``data``, cache it under ``level``, return the list.

        If the block does not fit even after evicting everything else, it is
        *not* cached (Spark drops oversized blocks the same way) but the
        materialized list is still returned so the task can proceed.
        """
        materialized = data if isinstance(data, list) else list(data)
        if level is StorageLevel.NONE:
            return materialized
        serialized = None
        if level.serialized:
            serialized = pickle.dumps(materialized, protocol=pickle.HIGHEST_PROTOCOL)
            size = len(serialized) + 64
        else:
            size = 64 + sum(estimate_size(item) for item in materialized)
        with self._lock:
            if block_id in self._blocks:
                return materialized
            if size > self.memory_budget:
                # cannot ever fit in memory: spill directly if allowed
                if level.spills_to_disk:
                    self._spill(block_id, materialized)
                return materialized
            self._evict_until_fits(size, protect=block_id)
            self._blocks[block_id] = _Block(
                data=materialized, size=size, level=level, serialized=serialized
            )
            self._memory_used += size
            self._blocks.move_to_end(block_id)
        return materialized

    def get(self, block_id: BlockId) -> list | None:
        """Return the cached partition, or None.  Touches LRU recency."""
        with self._lock:
            block = self._blocks.get(block_id)
            if block is not None:
                self._blocks.move_to_end(block_id)
                if block.level.serialized and block.serialized is not None:
                    return pickle.loads(block.serialized)
                return block.data
            path = self._spilled.get(block_id)
        if path is not None:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        return None

    def was_spilled(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._spilled

    def remove(self, block_id: BlockId) -> None:
        with self._lock:
            block = self._blocks.pop(block_id, None)
            if block is not None:
                self._memory_used -= block.size
            path = self._spilled.pop(block_id, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    def clear(self) -> None:
        for block_id in self.block_ids():
            self.remove(block_id)

    # -- internals ----------------------------------------------------------

    def _evict_until_fits(self, size: int, protect: BlockId) -> None:
        """LRU-evict blocks until ``size`` fits in the budget (lock held)."""
        while self._memory_used + size > self.memory_budget and self._blocks:
            victim_id = next(iter(self._blocks))
            if victim_id == protect:
                break
            victim = self._blocks.pop(victim_id)
            self._memory_used -= victim.size
            self.evictions += 1
            if victim.level.spills_to_disk:
                self._spill(victim_id, victim.data)

    def _spill(self, block_id: BlockId, data: list) -> None:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix=f"repro-spill-{self.executor_id}-")
        os.makedirs(self._spill_dir, exist_ok=True)
        path = os.path.join(self._spill_dir, f"block_{block_id[0]}_{block_id[1]}.pkl")
        with open(path, "wb") as fh:
            pickle.dump(data, fh, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._spilled[block_id] = path
        self.spills += 1


class BlockManagerMaster:
    """Driver-side registry: block id -> executor ids holding it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._locations: dict[BlockId, set[str]] = {}
        self._managers: dict[str, BlockManager] = {}

    def register_manager(self, manager: BlockManager) -> None:
        with self._lock:
            self._managers[manager.executor_id] = manager

    def register_block(self, block_id: BlockId, executor_id: str) -> None:
        with self._lock:
            self._locations.setdefault(block_id, set()).add(executor_id)

    def locations(self, block_id: BlockId) -> list[str]:
        with self._lock:
            return sorted(self._locations.get(block_id, ()))

    def get_remote(self, block_id: BlockId, excluding: str) -> tuple[list, str] | None:
        """Fetch a block from any executor other than ``excluding``."""
        with self._lock:
            holders = [e for e in sorted(self._locations.get(block_id, ())) if e != excluding]
            managers = {e: self._managers[e] for e in holders if e in self._managers}
        for executor_id in holders:
            manager = managers.get(executor_id)
            if manager is None:
                continue
            data = manager.get(block_id)
            if data is not None:
                return data, executor_id
            # registry was stale (block evicted): repair it
            self.unregister_block(block_id, executor_id)
        return None

    def unregister_block(self, block_id: BlockId, executor_id: str) -> None:
        with self._lock:
            holders = self._locations.get(block_id)
            if holders is not None:
                holders.discard(executor_id)
                if not holders:
                    del self._locations[block_id]

    def remove_executor(self, executor_id: str) -> list[BlockId]:
        """Drop all block registrations for a dead executor; return lost ids."""
        lost: list[BlockId] = []
        with self._lock:
            manager = self._managers.pop(executor_id, None)
            for block_id in list(self._locations):
                holders = self._locations[block_id]
                if executor_id in holders:
                    holders.discard(executor_id)
                    if not holders:
                        lost.append(block_id)
                        del self._locations[block_id]
        if manager is not None:
            manager.clear()
        return lost

    def executors_holding_rdd(self, rdd_id: int) -> set[str]:
        with self._lock:
            out: set[str] = set()
            for (rid, _), holders in self._locations.items():
                if rid == rdd_id:
                    out.update(holders)
            return out

    def cached_partitions(self, rdd_id: int) -> set[int]:
        with self._lock:
            return {part for (rid, part) in self._locations if rid == rdd_id}
