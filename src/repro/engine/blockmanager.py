"""Per-executor block managers with LRU eviction and optional disk spill.

A cached RDD partition is a *block*, keyed ``(rdd_id, partition)``.  Each
executor owns a :class:`BlockManager` with a memory budget; the driver-side
:class:`BlockManagerMaster` tracks which executors hold which blocks so
tasks scheduled elsewhere can fetch remotely (counted in metrics, and
charged as network transfer by the cost model).

Sizes are estimated with :func:`estimate_size`, which understands NumPy
arrays exactly, walks plain-attribute objects (so block payloads like
``SnpBlock`` are sized from their arrays without serialization), and
memoizes the pickled size per type for truly opaque objects so a large
payload is never re-pickled on every cache insert.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.engine.storage import StorageLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.listener import ListenerBus
    from repro.engine.metrics import TaskMetrics

BlockId = tuple[int, int]  # (rdd_id, partition)

#: pickled-size memo for opaque types:
#: type -> [total, samples, min, max, hits_since_measure].
#: Re-pickling an unknown object on *every* cache insert is the dominant
#: cost for large payloads; a running per-type average is O(1) after the
#: first few instances of a type.  Two guards keep the memo honest for
#: heterogeneous payloads (one class, instances spanning orders of
#: magnitude), which previously collapsed onto one stale average and
#: corrupted LRU accounting:
#:
#: - the average is only trusted while the observed spread stays small
#:   (``max <= _OPAQUE_MEMO_MAX_SPREAD * min``);
#: - every ``_OPAQUE_MEMO_REFRESH``-th lookup re-measures regardless, so a
#:   size drift is detected within a bounded window and -- having blown the
#:   spread -- permanently disables the memo for that type.
_OPAQUE_SIZE_MEMO: dict[type, list] = {}
_OPAQUE_MEMO_SAMPLES = 8
_OPAQUE_MEMO_MAX_SPREAD = 4
_OPAQUE_MEMO_REFRESH = 8
_OPAQUE_MEMO_LOCK = threading.Lock()


def _estimate_opaque(obj: Any) -> int:
    """Pickled-length estimate with a drift-guarded per-type memo."""
    cls = type(obj)
    with _OPAQUE_MEMO_LOCK:
        entry = _OPAQUE_SIZE_MEMO.get(cls)
        if entry is not None:
            total, samples, smallest, largest, hits = entry
            if (
                samples >= _OPAQUE_MEMO_SAMPLES
                and largest <= _OPAQUE_MEMO_MAX_SPREAD * smallest
                and hits < _OPAQUE_MEMO_REFRESH
            ):
                entry[4] = hits + 1
                return total // samples
    try:
        size = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)) + 64
    except Exception:
        return 256
    with _OPAQUE_MEMO_LOCK:
        entry = _OPAQUE_SIZE_MEMO.get(cls)
        if entry is None:
            _OPAQUE_SIZE_MEMO[cls] = [size, 1, size, size, 0]
        else:
            entry[0] += size
            entry[1] += 1
            entry[2] = min(entry[2], size)
            entry[3] = max(entry[3], size)
            entry[4] = 0
    return size


def _slot_values(obj: Any) -> "list | None":
    """Attribute values of a ``__slots__``-only instance, or None."""
    cls = type(obj)
    names: list[str] = []
    for base in cls.__mro__:
        slots = base.__dict__.get("__slots__")
        if slots is None:
            continue
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(s for s in slots if s not in ("__dict__", "__weakref__"))
    if not names:
        return None
    values = []
    for name in names:
        try:
            values.append(getattr(obj, name))
        except AttributeError:
            continue
    return values


def estimate_size(obj: Any, _depth: int = 0) -> int:
    """Approximate in-memory footprint of a block payload in bytes."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 128
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 48
    if isinstance(obj, str):
        return len(obj) + 56
    if isinstance(obj, (int, float)):
        return 32
    if isinstance(obj, (list, tuple)):
        return 64 + sum(estimate_size(item, _depth + 1) for item in obj)
    if isinstance(obj, dict):
        return 64 + sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1)
            for k, v in obj.items()
        )
    if hasattr(obj, "nbytes"):
        try:
            return int(obj.nbytes) + 128
        except TypeError:
            pass
    # plain-attribute objects (dataclasses, simple records): size the
    # attribute values directly instead of pickling the whole object
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None and _depth < 8:
        return 64 + sum(estimate_size(v, _depth + 1) for v in attrs.values())
    if _depth < 8:
        slot_values = _slot_values(obj)
        if slot_values is not None:
            return 64 + sum(estimate_size(v, _depth + 1) for v in slot_values)
    return _estimate_opaque(obj)


@dataclass
class _Block:
    data: list
    size: int
    level: StorageLevel
    serialized: bytes | None = None


class BlockManager:
    """One executor's cache: memory LRU with optional spill-to-disk."""

    def __init__(self, executor_id: str, memory_budget: int, spill_dir: str | None = None) -> None:
        self.executor_id = executor_id
        self.memory_budget = memory_budget
        self._lock = threading.RLock()
        self._blocks: "OrderedDict[BlockId, _Block]" = OrderedDict()
        self._memory_used = 0
        self._spill_dir = spill_dir
        self._spilled: dict[BlockId, str] = {}
        self.evictions = 0
        self.spills = 0
        #: optional listener bus (set by the context); cache events go here
        self.bus: "ListenerBus | None" = None
        #: data-plane serializer for serialized storage levels and spill
        #: files (set by the context / worker entry point); pickle when unset
        self.serializer: Any = None

    def _dumps(self, data: list) -> bytes:
        if self.serializer is not None:
            return self.serializer.dumps(data)
        return pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)

    def _loads(self, frame: bytes) -> list:
        if self.serializer is not None:
            return self.serializer.loads(frame)
        return pickle.loads(frame)

    # -- properties --------------------------------------------------------

    @property
    def memory_used(self) -> int:
        with self._lock:
            return self._memory_used

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._blocks or block_id in self._spilled

    def block_ids(self) -> list[BlockId]:
        with self._lock:
            return list(self._blocks) + list(self._spilled)

    # -- put / get ----------------------------------------------------------

    def put(
        self,
        block_id: BlockId,
        data: Iterable,
        level: StorageLevel,
        metrics: "TaskMetrics | None" = None,
    ) -> list:
        """Materialize ``data``, cache it under ``level``, return the list.

        If the block does not fit even after evicting everything else, it is
        *not* cached (Spark drops oversized blocks the same way) but the
        materialized list is still returned so the task can proceed.  When
        ``metrics`` is given, size-estimation time is charged to the task.
        """
        materialized = data if isinstance(data, list) else list(data)
        if level is StorageLevel.NONE:
            return materialized
        serialized = None
        est_start = time.perf_counter()
        if level.serialized:
            serialized = self._dumps(materialized)
            size = len(serialized) + 64
        else:
            size = 64 + sum(estimate_size(item) for item in materialized)
        if metrics is not None:
            metrics.size_estimation_seconds += time.perf_counter() - est_start
        events: list = []
        with self._lock:
            if block_id in self._blocks:
                return materialized
            if size > self.memory_budget:
                # cannot ever fit in memory: spill directly if allowed
                if level.spills_to_disk:
                    self._spill(block_id, materialized)
                return materialized
            self._evict_until_fits(size, protect=block_id, events=events)
            self._blocks[block_id] = _Block(
                data=materialized, size=size, level=level, serialized=serialized
            )
            self._memory_used += size
            self._blocks.move_to_end(block_id)
        self._post_cached(block_id, size, level, events)
        return materialized

    def _post_cached(
        self, block_id: BlockId, size: int, level: StorageLevel, evictions: list
    ) -> None:
        """Publish cache events gathered while the lock was held."""
        if self.bus is None:
            return
        from repro.engine.listener import BlockCached, BlockEvicted

        for victim_id, victim_size, spilled in evictions:
            self.bus.post(BlockEvicted(victim_id, self.executor_id, victim_size, spilled))
        self.bus.post(BlockCached(block_id, self.executor_id, size, level.name))

    def get(self, block_id: BlockId) -> list | None:
        """Return the cached partition, or None.  Touches LRU recency."""
        with self._lock:
            block = self._blocks.get(block_id)
            if block is not None:
                self._blocks.move_to_end(block_id)
                if block.level.serialized and block.serialized is not None:
                    return self._loads(block.serialized)
                return block.data
            path = self._spilled.get(block_id)
        if path is not None:
            with open(path, "rb") as fh:
                return self._loads(fh.read())
        return None

    def was_spilled(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._spilled

    def remove(self, block_id: BlockId) -> None:
        with self._lock:
            block = self._blocks.pop(block_id, None)
            if block is not None:
                self._memory_used -= block.size
            path = self._spilled.pop(block_id, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    def clear(self) -> None:
        for block_id in self.block_ids():
            self.remove(block_id)

    # -- internals ----------------------------------------------------------

    def _evict_until_fits(
        self, size: int, protect: BlockId, events: list | None = None
    ) -> None:
        """LRU-evict blocks until ``size`` fits in the budget (lock held).

        Eviction facts are appended to ``events`` so the caller can publish
        them on the bus *after* releasing the lock.
        """
        while self._memory_used + size > self.memory_budget and self._blocks:
            victim_id = next(iter(self._blocks))
            if victim_id == protect:
                break
            victim = self._blocks.pop(victim_id)
            self._memory_used -= victim.size
            self.evictions += 1
            if victim.level.spills_to_disk:
                self._spill(victim_id, victim.data)
            if events is not None:
                events.append((victim_id, victim.size, victim.level.spills_to_disk))

    def _spill(self, block_id: BlockId, data: list) -> None:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix=f"repro-spill-{self.executor_id}-")
        os.makedirs(self._spill_dir, exist_ok=True)
        path = os.path.join(self._spill_dir, f"block_{block_id[0]}_{block_id[1]}.pkl")
        with open(path, "wb") as fh:
            fh.write(self._dumps(data))
        with self._lock:
            self._spilled[block_id] = path
        self.spills += 1


class BlockManagerMaster:
    """Driver-side registry: block id -> executor ids holding it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._locations: dict[BlockId, set[str]] = {}
        self._managers: dict[str, BlockManager] = {}
        #: optional listener bus (set by the context)
        self.bus: "ListenerBus | None" = None

    def register_manager(self, manager: BlockManager) -> None:
        with self._lock:
            self._managers[manager.executor_id] = manager

    def register_block(self, block_id: BlockId, executor_id: str) -> None:
        with self._lock:
            self._locations.setdefault(block_id, set()).add(executor_id)

    def locations(self, block_id: BlockId) -> list[str]:
        with self._lock:
            return sorted(self._locations.get(block_id, ()))

    def get_remote(self, block_id: BlockId, excluding: str) -> tuple[list, str] | None:
        """Fetch a block from any executor other than ``excluding``."""
        with self._lock:
            holders = [e for e in sorted(self._locations.get(block_id, ())) if e != excluding]
            managers = {e: self._managers[e] for e in holders if e in self._managers}
        for executor_id in holders:
            manager = managers.get(executor_id)
            if manager is None:
                continue
            data = manager.get(block_id)
            if data is not None:
                if self.bus is not None:
                    from repro.engine.listener import BlockFetchedRemote

                    self.bus.post(BlockFetchedRemote(block_id, executor_id, excluding))
                return data, executor_id
            # registry was stale (block evicted): repair it
            self.unregister_block(block_id, executor_id)
        return None

    def unregister_block(self, block_id: BlockId, executor_id: str) -> None:
        with self._lock:
            holders = self._locations.get(block_id)
            if holders is not None:
                holders.discard(executor_id)
                if not holders:
                    del self._locations[block_id]

    def remove_executor(self, executor_id: str) -> list[BlockId]:
        """Drop all block registrations for a dead executor; return lost ids."""
        lost: list[BlockId] = []
        with self._lock:
            manager = self._managers.pop(executor_id, None)
            for block_id in list(self._locations):
                holders = self._locations[block_id]
                if executor_id in holders:
                    holders.discard(executor_id)
                    if not holders:
                        lost.append(block_id)
                        del self._locations[block_id]
        if manager is not None:
            manager.clear()
        return lost

    def executors_holding_rdd(self, rdd_id: int) -> set[str]:
        with self._lock:
            out: set[str] = set()
            for (rid, _), holders in self._locations.items():
                if rid == rdd_id:
                    out.update(holders)
            return out

    def cached_partitions(self, rdd_id: int) -> set[int]:
        with self._lock:
            return {part for (rid, part) in self._locations if rid == rdd_id}
