"""Extended RDD operations: tree aggregation, checkpointing, statistics.

Attached to :class:`~repro.engine.rdd.RDD` by :func:`install` (called from
``rdd.py``), mirroring Spark's utility surface:

- ``tree_aggregate`` / ``tree_reduce`` -- multi-level combining so the
  driver merges O(sqrt(P)) partials instead of O(P);
- ``checkpoint`` -- materialize and truncate lineage (Spark's local
  checkpoint), which keeps iterative pipelines like Algorithm 2 from
  accumulating unbounded lineage;
- ``stats_summary`` -- single-pass count/mean/variance/min/max (Spark's
  ``StatCounter``);
- ``top`` and ``histogram``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD


@dataclass
class StatCounter:
    """Mergeable running statistics (Welford/Chan parallel variance)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations from the mean
    min_value: float = math.inf
    max_value: float = -math.inf

    def add(self, value: float) -> "StatCounter":
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        return self

    def merge(self, other: "StatCounter") -> "StatCounter":
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    @property
    def sum(self) -> float:
        return self.mean * self.count

    @property
    def variance(self) -> float:
        """Population variance (Spark semantics)."""
        return self.m2 / self.count if self.count > 0 else math.nan

    @property
    def sample_variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance) if self.count > 0 else math.nan


def _stat_seq(acc: StatCounter, value: Any) -> StatCounter:
    return acc.add(value)


def _stat_comb(a: StatCounter, b: StatCounter) -> StatCounter:
    return a.merge(b)


class _PartialFoldFn:
    """Per-partition fold emitting a single-element iterator (tree stage 0)."""

    def __init__(self, zero_factory: Callable[[], Any], seq_op: Callable) -> None:
        self.zero_factory = zero_factory
        self.seq_op = seq_op

    def __call__(self, it: Iterator) -> Iterator:
        acc = self.zero_factory()
        for item in it:
            acc = self.seq_op(acc, item)
        return iter([acc])


class _KeyByGroupFn:
    """Keys each partial by (partition index mod groups) for tree combining."""

    def __init__(self, groups: int) -> None:
        self.groups = groups

    def __call__(self, split: int, it: Iterator) -> Iterator:
        return ((split % self.groups, value) for value in it)


def tree_aggregate(
    self: "RDD",
    zero_factory: Callable[[], Any],
    seq_op: Callable,
    comb_op: Callable,
    depth: int = 2,
) -> Any:
    """Aggregate with ``depth`` levels of distributed combining.

    ``zero_factory`` is called per partition so mutable accumulators (like
    :class:`StatCounter`) are never shared.  With P partitions and depth d,
    each level reduces the partial count by P^(1/d); the driver merges only
    the final handful.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    partials = self.map_partitions(_PartialFoldFn(zero_factory, seq_op), name="tree_partials")
    num = partials.num_partitions()
    scale = max(2, int(math.ceil(num ** (1.0 / depth))))
    level = 0
    while num > scale and level < depth - 1:
        groups = max(1, int(math.ceil(num / scale)))
        partials = (
            partials.map_partitions_with_index(_KeyByGroupFn(groups), name="tree_keyed")
            .reduce_by_key(comb_op, groups)
            .values()
        )
        num = partials.num_partitions()
        level += 1
    result = None
    for partial in partials.collect():
        result = partial if result is None else comb_op(result, partial)
    if result is None:
        return zero_factory()
    return result


def tree_reduce(self: "RDD", op: Callable, depth: int = 2) -> Any:
    """Like ``reduce`` but with tree-structured combining.

    Implemented as tree_aggregate over an option type where the sentinel
    ``_EMPTY`` marks partitions that contributed nothing.
    """
    out = tree_aggregate(self, _empty_factory, _OptionSeq(op), _OptionComb(op), depth)
    if out is _EMPTY:
        raise ValueError("tree_reduce() of empty RDD")
    return out


class _OptionSeq:
    def __init__(self, op: Callable) -> None:
        self.op = op

    def __call__(self, acc: Any, value: Any) -> Any:
        return value if acc is _EMPTY else self.op(acc, value)


class _OptionComb:
    def __init__(self, op: Callable) -> None:
        self.op = op

    def __call__(self, a: Any, b: Any) -> Any:
        if a is _EMPTY:
            return b
        if b is _EMPTY:
            return a
        return self.op(a, b)


class _Empty:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<empty>"

    def __reduce__(self):
        # identity checks (``acc is _EMPTY``) must survive a round trip
        # through worker processes
        return (_empty_factory, ())


_EMPTY = _Empty()


def _empty_factory() -> Any:
    return _EMPTY


def checkpoint(self: "RDD") -> "RDD":
    """Materialize this RDD and return a lineage-free replacement.

    The partitions are computed once (through the cache if persisted) and
    re-hosted in a fresh source RDD with identical partitioning.  Spark's
    ``localCheckpoint`` analogue: iterative drivers call this to stop the
    lineage graph -- and hence recomputation cost after failures -- from
    growing with iteration count.
    """
    from repro.engine.rdd import ParallelCollectionRDD

    parts = self.context.run_job(self, list, description=f"checkpoint({self.name})")

    out = ParallelCollectionRDD(self.context, [], 1, name=f"checkpoint:{self.name}")
    out._slices = parts
    out.partitioner = self.partitioner
    return out


def stats_summary(self: "RDD") -> StatCounter:
    """Single-pass count/mean/variance/min/max over a numeric RDD."""
    return tree_aggregate(self, StatCounter, _stat_seq, _stat_comb, depth=2)


def top(self: "RDD", n: int, key: Callable | None = None) -> list:
    """Largest ``n`` elements in descending order."""
    if n <= 0:
        return []
    parts = self.context.run_job(self, _TopFn(n, key))
    merged = heapq.nlargest(n, (x for part in parts for x in part), key=key)
    return merged


class _TopFn:
    def __init__(self, n: int, key: Callable | None) -> None:
        self.n = n
        self.key = key

    def __call__(self, it: Iterator) -> list:
        return heapq.nlargest(self.n, it, key=self.key)


def histogram(self: "RDD", buckets: int | list) -> tuple[list, list]:
    """Histogram of a numeric RDD.

    ``buckets`` may be a count (evenly spaced over [min, max]) or explicit
    ascending edges.  Returns (edges, counts); the last bucket is closed on
    the right, as in Spark.
    """
    if isinstance(buckets, int):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        stats = stats_summary(self)
        if stats.count == 0:
            raise ValueError("histogram() of empty RDD")
        lo, hi = stats.min_value, stats.max_value
        if lo == hi:
            hi = lo + 1.0
        step = (hi - lo) / buckets
        edges = [lo + i * step for i in range(buckets)] + [hi]
    else:
        edges = list(buckets)
        if len(edges) < 2 or any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be ascending with >= 2 entries")
    counts_per_part = self.context.run_job(self, _HistFn(edges))
    totals = [0] * (len(edges) - 1)
    for part in counts_per_part:
        for i, c in enumerate(part):
            totals[i] += c
    return edges, totals


class _HistFn:
    def __init__(self, edges: list) -> None:
        self.edges = edges

    def __call__(self, it: Iterator) -> list:
        import bisect

        counts = [0] * (len(self.edges) - 1)
        lo, hi = self.edges[0], self.edges[-1]
        for value in it:
            if value < lo or value > hi:
                continue
            idx = bisect.bisect_right(self.edges, value) - 1
            if idx == len(counts):  # value == hi: closed right edge
                idx -= 1
            counts[idx] += 1
        return counts


def install(rdd_cls: type) -> None:
    for func in (tree_aggregate, tree_reduce, checkpoint, stats_summary, top, histogram):
        setattr(rdd_cls, func.__name__, func)
