"""Storage levels for persisted RDDs, mirroring Spark's ``StorageLevel``."""

from __future__ import annotations

import enum


class StorageLevel(enum.Enum):
    """Where and how a persisted RDD partition is stored.

    - ``NONE``: not persisted; recomputed from lineage on every access.
    - ``MEMORY``: stored deserialized in the executor block manager.
    - ``MEMORY_SER``: stored as pickled bytes (smaller footprint, CPU cost
      on access).
    - ``MEMORY_AND_DISK``: stored in memory; blocks evicted under memory
      pressure are spilled to a temporary directory instead of dropped.
    """

    NONE = "none"
    MEMORY = "memory"
    MEMORY_SER = "memory_ser"
    MEMORY_AND_DISK = "memory_and_disk"

    @property
    def uses_memory(self) -> bool:
        return self is not StorageLevel.NONE

    @property
    def serialized(self) -> bool:
        return self is StorageLevel.MEMORY_SER

    @property
    def spills_to_disk(self) -> bool:
        return self is StorageLevel.MEMORY_AND_DISK
