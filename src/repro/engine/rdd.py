"""Resilient Distributed Datasets: lazy, partitioned, lineage-tracked.

This module defines the :class:`RDD` base class, the narrow
transformations, and the actions.  Key-value (shuffle) operations live in
:mod:`repro.engine.pair_rdd` and are attached to :class:`RDD` at import
time so ``rdd.reduce_by_key(...)`` works as in Spark.

Naming follows Python convention (``flat_map``); camelCase aliases
(``flatMap``) are provided for people porting Spark code.

RDDs hold a reference to their driver :class:`~repro.engine.context.Context`
for action execution; the reference is dropped on pickling (process
backend) because workers never run actions.
"""

from __future__ import annotations

import heapq
import itertools
import operator
import os
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, TypeVar

from repro.engine.dependencies import (
    Dependency,
    ManyToOneDependency,
    NarrowDependency,
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.storage import StorageLevel
from repro.engine.task import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context

T = TypeVar("T")
U = TypeVar("U")


class RDD:
    """A lazy, immutable, partitioned collection with lineage."""

    def __init__(self, ctx: "Context", dependencies: list[Dependency], name: str | None = None) -> None:
        self.context = ctx
        self.id = ctx._new_rdd_id()
        self.dependencies = dependencies
        self.storage_level = StorageLevel.NONE
        self.name = name or type(self).__name__
        #: set when the RDD's output is co-partitioned by a known partitioner
        self.partitioner = None

    # -- core interface -----------------------------------------------------

    def num_partitions(self) -> int:
        raise NotImplementedError

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        """Compute partition ``split`` from parents (no cache involvement)."""
        raise NotImplementedError

    def preferred_locations(self, split: int) -> list[str]:
        """Host/executor hints for this partition (locality scheduling)."""
        for dep in self.dependencies:
            if isinstance(dep, NarrowDependency):
                for parent_split in dep.parents(split):
                    locs = dep.rdd.preferred_locations(parent_split)
                    if locs:
                        return locs
        return []

    def iterator(self, split: int, tc: TaskContext) -> Iterator:
        """Cache-aware access: local cache, remote cache, else compute."""
        if self.storage_level is StorageLevel.NONE:
            return self.compute(split, tc)
        block_id = (self.id, split)
        manager = tc.block_manager
        if manager is not None:
            spilled = manager.was_spilled(block_id)
            data = manager.get(block_id)
            if data is not None:
                tc.metrics.cache_hits += 1
                if spilled:
                    tc.metrics.disk_blocks_read += 1
                return iter(data)
        if tc.block_master is not None:
            remote = tc.block_master.get_remote(block_id, excluding=tc.executor_id)
            if remote is not None:
                data, _holder = remote
                tc.metrics.cache_hits += 1
                tc.metrics.remote_cache_hits += 1
                return iter(data)
        tc.metrics.cache_misses += 1
        computed = self.compute(split, tc)
        if manager is not None:
            stored = manager.put(block_id, computed, self.storage_level, metrics=tc.metrics)
            if manager.contains(block_id) and tc.block_master is not None:
                tc.block_master.register_block(block_id, tc.executor_id)
            return iter(stored)
        return iter(list(computed))

    # -- persistence ----------------------------------------------------------

    def persist(self, level: StorageLevel = StorageLevel.MEMORY) -> "RDD":
        """Mark for caching at the given storage level.  Returns self."""
        if not isinstance(level, StorageLevel):
            raise TypeError(f"expected StorageLevel, got {type(level).__name__}")
        self.storage_level = level
        return self

    def cache(self) -> "RDD":
        """Shorthand for ``persist(StorageLevel.MEMORY)``."""
        return self.persist(StorageLevel.MEMORY)

    def unpersist(self) -> "RDD":
        """Drop the persistence flag and evict any cached blocks."""
        self.storage_level = StorageLevel.NONE
        if self.context is not None:
            self.context._drop_cached_rdd(self.id)
        return self

    @property
    def is_cached(self) -> bool:
        return self.storage_level is not StorageLevel.NONE

    # -- pickling (process backend) ---------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["context"] = None
        return state

    # -- narrow transformations ---------------------------------------------

    def map_partitions_with_index(
        self,
        func: Callable[[int, Iterator], Iterator],
        name: str | None = None,
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """The fundamental narrow transform: ``func(split, iter) -> iter``."""
        return MappedPartitionsRDD(
            self.context, self, func, name or "map_partitions_with_index", preserves_partitioning
        )

    def map_partitions(
        self,
        func: Callable[[Iterator], Iterator],
        name: str | None = None,
        preserves_partitioning: bool = False,
    ) -> "RDD":
        return MappedPartitionsRDD(
            self.context, self, _IndexlessFn(func), name or "map_partitions",
            preserves_partitioning,
        )

    def map(self, func: Callable[[T], U]) -> "RDD":
        return MappedPartitionsRDD(self.context, self, _MapFn(func), "map")

    def filter(self, predicate: Callable[[T], bool]) -> "RDD":
        # filtering never changes keys, so partitioning survives
        return MappedPartitionsRDD(
            self.context, self, _FilterFn(predicate), "filter",
            preserves_partitioning=True,
        )

    def flat_map(self, func: Callable[[T], Iterable[U]]) -> "RDD":
        return MappedPartitionsRDD(self.context, self, _FlatMapFn(func), "flat_map")

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        return MappedPartitionsRDD(self.context, self, _glom_fn, "glom")

    def key_by(self, func: Callable[[T], Any]) -> "RDD":
        return self.map(lambda item: (func(item), item))

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.context, [self, other])

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle."""
        return CoalescedRDD(self.context, self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute elements evenly across ``num_partitions`` via a shuffle.

        Unlike :meth:`coalesce` this can increase the partition count, and
        it always breaks up skewed partitions: elements are dealt
        round-robin onto reducers regardless of where they currently sit.
        """
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        from repro.engine.partitioner import HashPartitioner

        keyed = MappedPartitionsRDD(
            self.context, self, _RoundRobinKeyFn(num_partitions), "repartition"
        )
        shuffled = ShuffledRDD(
            self.context, keyed, HashPartitioner(num_partitions), None, "repartition"
        )
        return MappedPartitionsRDD(
            self.context, shuffled, _drop_keys_fn, "repartition"
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli sample of elements, deterministic per (seed, partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sampler(split: int, it: Iterator) -> Iterator:
            import numpy as np

            rng = np.random.default_rng(np.random.SeedSequence([seed, split]))
            return (item for item in it if rng.random() < fraction)

        return MappedPartitionsRDD(self.context, self, sampler, "sample")

    def zip_with_index(self) -> "RDD":
        """Pair each element with its global index (triggers a size job)."""
        sizes = self.context.run_job(self, lambda it: sum(1 for _ in it))
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def indexer(split: int, it: Iterator) -> Iterator:
            return ((item, offsets[split] + i) for i, item in enumerate(it))

        return MappedPartitionsRDD(self.context, self, indexer, "zip_with_index")

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        """Deduplicate via a shuffle (elements must be hashable)."""
        return (
            self.map(lambda item: (item, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    # -- actions ----------------------------------------------------------------

    def collect(self) -> list:
        return [item for part in self.context.run_job(self, list) for item in part]

    def collect_partitions(self) -> list[list]:
        return self.context.run_job(self, list)

    def count(self) -> int:
        return sum(self.context.run_job(self, _count_iter))

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise ValueError("RDD is empty")
        return taken[0]

    def take(self, n: int) -> list:
        """Collect the first ``n`` elements scanning partitions in order."""
        if n <= 0:
            return []
        out: list = []
        for split in range(self.num_partitions()):
            part = self.context.run_job(self, lambda it: list(itertools.islice(it, n - len(out))), [split])[0]
            out.extend(part)
            if len(out) >= n:
                break
        return out[:n]

    def take_ordered(self, n: int, key: Callable | None = None) -> list:
        """Smallest ``n`` elements (by ``key``) across the RDD."""
        parts = self.context.run_job(self, lambda it: heapq.nsmallest(n, it, key=key))
        return heapq.nsmallest(n, itertools.chain.from_iterable(parts), key=key)

    def reduce(self, op: Callable[[T, T], T]) -> T:
        partials = [
            p for part in self.context.run_job(self, _ReduceFn(op)) for p in part
        ]
        if not partials:
            raise ValueError("reduce() of empty RDD")
        acc = partials[0]
        for item in partials[1:]:
            acc = op(acc, item)
        return acc

    def fold(self, zero: T, op: Callable[[T, T], T]) -> T:
        partials = self.context.run_job(self, _FoldFn(zero, op))
        acc = zero
        for item in partials:
            acc = op(acc, item)
        return acc

    def aggregate(self, zero: U, seq_op: Callable[[U, T], U], comb_op: Callable[[U, U], U]) -> U:
        partials = self.context.run_job(self, _FoldFn(zero, seq_op))
        acc = zero
        for item in partials:
            acc = comb_op(acc, item)
        return acc

    def sum(self) -> Any:
        return self.fold(0, operator.add)

    def min(self) -> Any:
        return self.reduce(_min2)

    def max(self) -> Any:
        return self.reduce(_max2)

    def mean(self) -> float:
        total, count = self.aggregate((0.0, 0), _mean_seq, _mean_comb)
        if count == 0:
            raise ValueError("mean() of empty RDD")
        return total / count

    def count_by_value(self) -> dict:
        out: dict = {}
        for partial in self.context.run_job(self, _count_values):
            for key, count in partial.items():
                out[key] = out.get(key, 0) + count
        return out

    def foreach(self, func: Callable[[T], None]) -> None:
        def apply_all(it: Iterator) -> None:
            for item in it:
                func(item)

        self.context.run_job(self, apply_all)

    def foreach_partition(self, func: Callable[[Iterator], None]) -> None:
        self.context.run_job(self, lambda it: func(it))

    def save_as_text_file(self, path: str) -> None:
        """Write one ``part-NNNNN`` file per partition (local or hdfs://)."""
        parts = self.context.run_job(self, lambda it: [str(x) for x in it])
        if path.startswith("hdfs://"):
            fs = self.context.hdfs
            if fs is None:
                raise RuntimeError("context has no HDFS attached")
            for i, lines in enumerate(parts):
                fs.write_text(f"{path.rstrip('/')}/part-{i:05d}", "\n".join(lines) + ("\n" if lines else ""))
        else:
            os.makedirs(path, exist_ok=True)
            for i, lines in enumerate(parts):
                with open(os.path.join(path, f"part-{i:05d}"), "w") as fh:
                    for line in lines:
                        fh.write(line + "\n")

    # -- introspection ---------------------------------------------------------

    def lineage(self) -> list["RDD"]:
        """All ancestor RDDs (self included), deduplicated, parents first."""
        seen: dict[int, RDD] = {}

        def visit(rdd: "RDD") -> None:
            if rdd.id in seen:
                return
            for dep in rdd.dependencies:
                visit(dep.rdd)
            seen[rdd.id] = rdd

        visit(self)
        return list(seen.values())

    def to_debug_string(self) -> str:
        """Spark-style indented lineage dump.

        Each node shows its partition count, a ``*`` marker plus the storage
        level when persisted, and -- for cached RDDs -- how many partitions
        are currently materialised in executor block managers.
        """
        lines: list[str] = []

        def visit(rdd: "RDD", depth: int) -> None:
            marker = "*" if rdd.is_cached else " "
            label = f"{'  ' * depth}({rdd.num_partitions()}){marker} {rdd.name} [{rdd.id}]"
            if rdd.is_cached:
                cached = rdd.context.cached_partition_count(rdd)
                label += f" <{rdd.storage_level.value}: {cached}/{rdd.num_partitions()} cached>"
            lines.append(label)
            for dep in rdd.dependencies:
                if isinstance(dep, ShuffleDependency):
                    lines.append(f"{'  ' * (depth + 1)}+-- shuffle {dep.shuffle_id} --")
                    visit(dep.rdd, depth + 2)
                else:
                    visit(dep.rdd, depth + 1)

        visit(self, 0)
        return "\n".join(lines)

    def explain(self) -> str:
        """Human-oriented plan dump: lineage tree plus a stage summary.

        The tree is :meth:`to_debug_string`; below it, one line per shuffle
        boundary explains where the scheduler will cut stages and how many
        partitions cross each shuffle.  ``sparkscore doctor`` points at this
        when it recommends repartitioning or persisting an RDD.
        """
        lines = [self.to_debug_string()]
        shuffles = [
            dep
            for rdd in self.lineage()
            for dep in rdd.dependencies
            if isinstance(dep, ShuffleDependency)
        ]
        planner = getattr(self.context, "adaptive", None)
        manager = self.context.shuffle_manager
        overrides = manager.serializer_overrides()
        decided: dict[int, list[dict]] = {}
        if planner is not None:
            for d in planner.snapshot()["decisions"]:
                sid = d.get("shuffle_id")
                if sid is not None:
                    decided.setdefault(sid, []).append(d)
        if shuffles:
            lines.append("")
            for dep in sorted(shuffles, key=lambda d: d.shuffle_id):
                line = (
                    f"shuffle {dep.shuffle_id}: {dep.rdd.num_partitions()} map partition(s)"
                    f" -> {dep.partitioner.num_partitions} reduce partition(s)"
                    f" [{type(dep.partitioner).__name__}]"
                )
                notes = []
                remap = manager.remap_for(dep.shuffle_id)
                if remap is not None:
                    notes.append(f"remapped to {remap.new_partitions} buckets")
                if dep.shuffle_id in overrides:
                    notes.append(f"serializer={overrides[dep.shuffle_id]}")
                for d in decided.get(dep.shuffle_id, ()):
                    notes.append(
                        f"{d.get('kind')}: {d.get('old_partitions')}"
                        f" -> {d.get('new_partitions')}"
                    )
                if notes:
                    line += "  <adaptive: " + "; ".join(notes) + ">"
                lines.append(line)
        else:
            lines.append("")
            lines.append("no shuffles: whole lineage runs as a single stage")
        if planner is not None and (planner.enabled or planner.speculation is not None):
            modes = []
            if planner.enabled:
                modes.append("skew repartitioning")
                if planner.serializer_enabled:
                    modes.append("serializer auto-tuning")
            if planner.speculation is not None:
                modes.append("speculative execution")
            lines.append(
                "adaptive execution: on (" + ", ".join(modes) + "); reduce "
                "bucket counts above may be rewritten at stage boundaries"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id}, name={self.name!r}, partitions={self.num_partitions()})"


class _MapFn:
    """Picklable per-partition wrapper for ``map`` (process backend)."""

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        return map(self.func, it)


class _FilterFn:
    def __init__(self, predicate: Callable) -> None:
        self.predicate = predicate

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        return filter(self.predicate, it)


class _FlatMapFn:
    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        return itertools.chain.from_iterable(map(self.func, it))


class _IndexlessFn:
    """Adapts ``func(iterator)`` to the ``func(split, iterator)`` interface."""

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, _split: int, it: Iterator) -> Iterator:
        return self.func(it)


def _glom_fn(_split: int, it: Iterator) -> Iterator:
    return iter([list(it)])


class _RoundRobinKeyFn:
    """Deal elements round-robin onto reducer keys (repartition map side)."""

    def __init__(self, num_partitions: int) -> None:
        self.num_partitions = num_partitions

    def __call__(self, split: int, it: Iterator) -> Iterator:
        # scatter each map partition's starting reducer so short partitions
        # don't all pile onto the same few low-numbered reducers
        n = self.num_partitions
        start = (split * 2654435761) % n
        return (((start + i) % n, item) for i, item in enumerate(it))


def _drop_keys_fn(_split: int, it: Iterator) -> Iterator:
    return (item for _key, item in it)


def _count_iter(it: Iterator) -> int:
    return sum(1 for _ in it)


def _count_values(it: Iterator) -> dict:
    counts: dict = {}
    for item in it:
        counts[item] = counts.get(item, 0) + 1
    return counts


def _min2(a: Any, b: Any) -> Any:
    return a if a <= b else b


def _max2(a: Any, b: Any) -> Any:
    return a if a >= b else b


def _mean_seq(acc: tuple, x: Any) -> tuple:
    return (acc[0] + x, acc[1] + 1)


def _mean_comb(a: tuple, b: tuple) -> tuple:
    return (a[0] + b[0], a[1] + b[1])


class _FoldFn:
    """Picklable per-partition fold (also serves aggregate's seq phase)."""

    def __init__(self, zero: Any, op: Callable) -> None:
        self.zero = zero
        self.op = op

    def __call__(self, it: Iterator) -> Any:
        acc = self.zero
        for item in it:
            acc = self.op(acc, item)
        return acc


class _ReduceFn:
    """Picklable per-partition reduce returning [] for empty partitions."""

    def __init__(self, op: Callable) -> None:
        self.op = op

    def __call__(self, it: Iterator) -> list:
        it = iter(it)
        try:
            acc = next(it)
        except StopIteration:
            return []
        for item in it:
            acc = self.op(acc, item)
        return [acc]


class ParallelCollectionRDD(RDD):
    """An in-memory collection sliced into partitions at the driver."""

    def __init__(self, ctx: "Context", data: Iterable, num_partitions: int, name: str = "parallelize") -> None:
        super().__init__(ctx, [], name)
        items = data if isinstance(data, list) else list(data)
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self._slices = _slice_collection(items, num_partitions)

    def num_partitions(self) -> int:
        return len(self._slices)

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        tc.metrics.records_read += len(self._slices[split])
        return iter(self._slices[split])


def _slice_collection(items: list, num_partitions: int) -> list[list]:
    """Evenly slice a list, matching Spark's contiguous-range slicing."""
    n = len(items)
    slices = []
    for i in range(num_partitions):
        start = (i * n) // num_partitions
        end = ((i + 1) * n) // num_partitions
        slices.append(items[start:end])
    return slices


class MappedPartitionsRDD(RDD):
    """Applies ``func(split, iterator)`` to the single parent partition.

    ``preserves_partitioning`` must only be set when ``func`` does not
    change element keys (mapValues, filter); a key-changing map that kept
    the parent's partitioner would let ``reduce_by_key`` skip a required
    shuffle and silently produce per-partition partial results.
    """

    def __init__(
        self,
        ctx: "Context",
        parent: RDD,
        func: Callable[[int, Iterator], Iterator],
        name: str,
        preserves_partitioning: bool = False,
    ) -> None:
        super().__init__(ctx, [OneToOneDependency(parent)], name)
        self._parent = parent
        self._func = func
        if preserves_partitioning:
            self.partitioner = parent.partitioner

    def num_partitions(self) -> int:
        return self._parent.num_partitions()

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        return iter(self._func(split, self._parent.iterator(split, tc)))


class UnionRDD(RDD):
    """Concatenation of parents' partitions (narrow; no shuffle)."""

    def __init__(self, ctx: "Context", parents: list[RDD]) -> None:
        deps: list[Dependency] = []
        offset = 0
        self._ranges: list[tuple[RDD, int]] = []
        for parent in parents:
            n = parent.num_partitions()
            deps.append(RangeDependency(parent, 0, offset, n))
            self._ranges.append((parent, offset))
            offset += n
        self._total = offset
        super().__init__(ctx, deps, "union")

    def num_partitions(self) -> int:
        return self._total

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        for dep in self.dependencies:
            assert isinstance(dep, RangeDependency)
            parents = dep.parents(split)
            if parents:
                return dep.rdd.iterator(parents[0], tc)
        raise IndexError(f"partition {split} out of range for union of {self._total}")


class CoalescedRDD(RDD):
    """Merges parent partitions into fewer partitions without shuffling."""

    def __init__(self, ctx: "Context", parent: RDD, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        parent_count = parent.num_partitions()
        target = min(num_partitions, parent_count)
        mapping: list[list[int]] = []
        for i in range(target):
            start = (i * parent_count) // target
            end = ((i + 1) * parent_count) // target
            mapping.append(list(range(start, end)))
        super().__init__(ctx, [ManyToOneDependency(parent, mapping)], "coalesce")
        self._parent = parent
        self._mapping = mapping

    def num_partitions(self) -> int:
        return len(self._mapping)

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        return itertools.chain.from_iterable(
            self._parent.iterator(p, tc) for p in self._mapping[split]
        )


class LocalTextFileRDD(RDD):
    """Reads a local text file (or directory of part files), one partition per chunk.

    The file is split into ``min_partitions`` byte ranges aligned to line
    boundaries at read time, mimicking HDFS block splits.
    """

    def __init__(self, ctx: "Context", path: str, min_partitions: int) -> None:
        super().__init__(ctx, [], f"text:{os.path.basename(path)}")
        if os.path.isdir(path):
            self._files = sorted(
                os.path.join(path, f) for f in os.listdir(path) if not f.startswith((".", "_"))
            )
        else:
            self._files = [path]
        if not self._files:
            raise FileNotFoundError(f"no input files under {path}")
        # one or more splits per file, proportional to size
        total = sum(os.path.getsize(f) for f in self._files)
        self._splits: list[tuple[str, int, int]] = []  # (file, start, end)
        for filename in self._files:
            size = os.path.getsize(filename)
            if total > 0:
                share = max(1, round(min_partitions * size / total))
            else:
                share = 1
            chunk = max(1, -(-size // share))
            start = 0
            while start < size or (start == 0 and size == 0):
                end = min(size, start + chunk)
                self._splits.append((filename, start, end))
                if end >= size:
                    break
                start = end
            if size == 0:
                continue

    def num_partitions(self) -> int:
        return len(self._splits)

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        # Hadoop line-split semantics: this split owns every line whose
        # starting byte offset s satisfies start <= s < end.  Seeking to
        # start-1 and discarding one readline() leaves the file positioned
        # at the first owned line regardless of whether `start` falls
        # mid-line or exactly on a line boundary.
        filename, start, end = self._splits[split]
        lines = []
        with open(filename, "rb") as fh:
            if start > 0:
                fh.seek(start - 1)
                fh.readline()
            pos = fh.tell()
            while pos < end:
                line = fh.readline()
                if not line:
                    break
                lines.append(line.decode("utf-8").rstrip("\n"))
                pos = fh.tell()
        tc.metrics.records_read += len(lines)
        return iter(lines)


class ShuffledRDD(RDD):
    """Reduce side of a shuffle: one partition per reducer.

    Reads merged map output for its partition from the shuffle manager (or
    from pre-fetched input shipped with the task under the process
    backend) and applies the dependency's aggregator.
    """

    def __init__(self, ctx, parent: RDD, partitioner, aggregator, name: str) -> None:
        shuffle_id = ctx._new_shuffle_id()
        dep = ShuffleDependency(parent, partitioner, shuffle_id, aggregator)
        super().__init__(ctx, [dep], name)
        self.shuffle_dep = dep
        self.partitioner = partitioner

    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    def preferred_locations(self, split: int) -> list[str]:
        return []

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        dep = self.shuffle_dep
        key = (dep.shuffle_id, split)
        if key in tc.prefetched_shuffle:
            records: Iterator = iter(tc.prefetched_shuffle[key])
        else:
            if tc.shuffle_manager is None:
                raise RuntimeError("no shuffle manager available to reduce task")
            records = tc.shuffle_manager.fetch(dep.shuffle_id, split, tc.metrics)
        agg = dep.aggregator
        if agg is None:
            return records
        merged: dict = {}
        if agg.map_side_combine:
            # map outputs are already combiners; merge them across maps
            for k, combiner in records:
                if k in merged:
                    merged[k] = agg.merge_combiners(merged[k], combiner)
                else:
                    merged[k] = combiner
        else:
            for k, value in records:
                if k in merged:
                    merged[k] = agg.merge_value(merged[k], value)
                else:
                    merged[k] = agg.create_combiner(value)
        return iter(merged.items())


class CoGroupedRDD(RDD):
    """Groups several pair-RDDs by key: ``(k, (values_0, values_1, ...))``.

    Parents already partitioned compatibly contribute through a narrow
    dependency; the rest are shuffled.
    """

    def __init__(self, ctx, parents: list[RDD], partitioner) -> None:
        deps: list[Dependency] = []
        self._dep_kinds: list[tuple[str, Any]] = []
        for parent in parents:
            if parent.partitioner is not None and parent.partitioner == partitioner:
                deps.append(OneToOneDependency(parent))
                self._dep_kinds.append(("narrow", parent))
            else:
                shuffle_id = ctx._new_shuffle_id()
                dep = ShuffleDependency(parent, partitioner, shuffle_id, None)
                deps.append(dep)
                self._dep_kinds.append(("shuffle", dep))
        super().__init__(ctx, deps, "cogroup")
        self.partitioner = partitioner
        self._num_parents = len(parents)

    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        grouped: dict[Any, tuple[list, ...]] = {}

        def bucket_for(key: Any) -> tuple[list, ...]:
            entry = grouped.get(key)
            if entry is None:
                entry = tuple([] for _ in range(self._num_parents))
                grouped[key] = entry
            return entry

        for idx, (kind, source) in enumerate(self._dep_kinds):
            if kind == "narrow":
                records: Iterator = source.iterator(split, tc)
            else:
                fetch_key = (source.shuffle_id, split)
                if fetch_key in tc.prefetched_shuffle:
                    records = iter(tc.prefetched_shuffle[fetch_key])
                else:
                    if tc.shuffle_manager is None:
                        raise RuntimeError("no shuffle manager available to cogroup task")
                    records = tc.shuffle_manager.fetch(source.shuffle_id, split, tc.metrics)
            for key, value in records:
                bucket_for(key)[idx].append(value)
        return iter(grouped.items())


# Attach pair-RDD operations (reduce_by_key, join, ...) and extended ops
# (tree_aggregate, checkpoint, stats_summary, ...) to RDD.
from repro.engine import ops as _ops  # noqa: E402  (intentional late import)
from repro.engine import pair_rdd as _pair_rdd  # noqa: E402

_pair_rdd.install(RDD)
_ops.install(RDD)

# Spark camelCase aliases for users porting code.
RDD.flatMap = RDD.flat_map  # type: ignore[attr-defined]
RDD.mapPartitions = RDD.map_partitions  # type: ignore[attr-defined]
RDD.mapPartitionsWithIndex = RDD.map_partitions_with_index  # type: ignore[attr-defined]
RDD.reduceByKey = RDD.reduce_by_key  # type: ignore[attr-defined]
RDD.groupByKey = RDD.group_by_key  # type: ignore[attr-defined]
RDD.combineByKey = RDD.combine_by_key  # type: ignore[attr-defined]
RDD.aggregateByKey = RDD.aggregate_by_key  # type: ignore[attr-defined]
RDD.countByKey = RDD.count_by_key  # type: ignore[attr-defined]
RDD.countByValue = RDD.count_by_value  # type: ignore[attr-defined]
RDD.mapValues = RDD.map_values  # type: ignore[attr-defined]
RDD.flatMapValues = RDD.flat_map_values  # type: ignore[attr-defined]
RDD.sortByKey = RDD.sort_by_key  # type: ignore[attr-defined]
RDD.partitionBy = RDD.partition_by  # type: ignore[attr-defined]
RDD.collectAsMap = RDD.collect_as_map  # type: ignore[attr-defined]
RDD.zipWithIndex = RDD.zip_with_index  # type: ignore[attr-defined]
RDD.keyBy = RDD.key_by  # type: ignore[attr-defined]
RDD.takeOrdered = RDD.take_ordered  # type: ignore[attr-defined]
RDD.saveAsTextFile = RDD.save_as_text_file  # type: ignore[attr-defined]
