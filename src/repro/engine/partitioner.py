"""Key partitioners for shuffle operations."""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Sequence


def _portable_hash(key: Hashable) -> int:
    """Deterministic, non-negative hash for shuffle partitioning.

    Python randomizes ``hash(str)`` per process; for reproducible partition
    assignment across runs (and across the process backend's workers, which
    may have different hash seeds) we avoid the built-in hash for strings
    and bytes.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key if key >= 0 else -key
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        h = 5381
        for byte in key:
            h = ((h * 33) ^ byte) & 0x7FFFFFFF
        return h
    if isinstance(key, float):
        return _portable_hash(key.hex())
    if isinstance(key, tuple):
        h = 1
        for item in key:
            h = (h * 31 + _portable_hash(item)) & 0x7FFFFFFF
        return h
    return hash(key) & 0x7FFFFFFF


class Partitioner:
    """Maps keys to partition indices in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``portable_hash(key) mod num_partitions``."""

    def partition(self, key: Any) -> int:
        return _portable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Assigns keys to contiguous sorted ranges given precomputed bounds.

    ``bounds`` are the (num_partitions - 1) split points; keys <= bounds[i]
    go to partition i.  Used by ``sort_by_key``.
    """

    def __init__(self, bounds: Sequence[Any]) -> None:
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)

    def partition(self, key: Any) -> int:
        return bisect.bisect_left(self.bounds, key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangePartitioner) and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds)))
