"""Key partitioners for shuffle operations."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Hashable, Sequence


def _portable_hash(key: Hashable) -> int:
    """Deterministic, non-negative hash for shuffle partitioning.

    Python randomizes ``hash(str)`` per process; for reproducible partition
    assignment across runs (and across the process backend's workers, which
    may have different hash seeds) we avoid the built-in hash for strings
    and bytes.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key if key >= 0 else -key
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        h = 5381
        for byte in key:
            h = ((h * 33) ^ byte) & 0x7FFFFFFF
        return h
    if isinstance(key, float):
        return _portable_hash(key.hex())
    if isinstance(key, tuple):
        h = 1
        for item in key:
            h = (h * 31 + _portable_hash(item)) & 0x7FFFFFFF
        return h
    return hash(key) & 0x7FFFFFFF


class Partitioner:
    """Maps keys to partition indices in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``portable_hash(key) mod num_partitions``."""

    def partition(self, key: Any) -> int:
        return _portable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Assigns keys to contiguous sorted ranges given precomputed bounds.

    ``bounds`` are the (num_partitions - 1) split points; keys <= bounds[i]
    go to partition i.  Used by ``sort_by_key``.
    """

    def __init__(self, bounds: Sequence[Any]) -> None:
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)

    def partition(self, key: Any) -> int:
        return bisect.bisect_left(self.bounds, key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangePartitioner) and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds)))


@dataclass(frozen=True)
class ShuffleRemap:
    """A rebalanced reduce layout for an already-written shuffle.

    The map side wrote ``base_partitions`` reduce buckets; the adaptive
    planner reads the registered per-bucket statistics and re-cuts them
    into ``len(segments)`` new reduce partitions without rewriting a
    byte.  Each new partition is an ordered list of slices of the old
    layout: ``(old_reduce_idx, map_lo, map_hi)`` means "the blocks that
    maps ``[map_lo, map_hi)`` wrote for old bucket ``old_reduce_idx``".

    Two invariants keep results bit-identical to the static plan:

    - segments walk old buckets in ascending order, and within one old
      bucket the map ranges are ascending and contiguous, so the
      concatenation of the new partitions replays the exact record
      order of the old partitions;
    - an old bucket is either kept whole (possibly merged with whole
      neighbours) or split purely along map boundaries, so a coalesce
      never interleaves and a split never reorders.
    """

    shuffle_id: int
    base_partitions: int
    segments: tuple[tuple[tuple[int, int, int], ...], ...]

    @property
    def new_partitions(self) -> int:
        return len(self.segments)

    def kind(self) -> str:
        owners: dict[int, int] = {}
        for segment in self.segments:
            for old_idx, _lo, _hi in segment:
                owners[old_idx] = owners.get(old_idx, 0) + 1
        split = any(count > 1 for count in owners.values())
        merged = any(
            len({old for old, _lo, _hi in segment}) > 1 for segment in self.segments
        )
        if split and merged:
            return "rebalance"
        if merged:
            return "coalesce"
        return "split"


class RemappedPartitioner(Partitioner):
    """Routes keys through a base partitioner, then a :class:`ShuffleRemap`.

    Installed on a ``ShuffledRDD`` after its map outputs are rebalanced:
    downstream code sees the new partition count, and any key lands in
    the first new partition that covers its old bucket.  Equality is
    identity-only on purpose -- a remap is private to one shuffle's
    runtime state, so co-partitioning optimizations (narrow cogroup,
    combine_by_key reuse) must never match it structurally.
    """

    def __init__(self, base: Partitioner, remap: ShuffleRemap) -> None:
        super().__init__(remap.new_partitions)
        self.base = base
        self.remap = remap
        self._old_to_new = {}
        for new_idx, segment in enumerate(remap.segments):
            for old_idx, _lo, _hi in segment:
                self._old_to_new.setdefault(old_idx, new_idx)

    def partition(self, key: Any) -> int:
        return self._old_to_new[self.base.partition(key)]

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)
