"""Length-prefixed socket frames: the cluster wire protocol.

Every byte that crosses a cluster socket -- task dispatch, results,
heartbeats, lifecycle control, and the socket transport's blob traffic --
is a *frame*:

    length u32 (big-endian, payload bytes) | type u8 | payload

The fixed header keeps parsing allocation-free and lets the driver's
single dispatch thread interleave frames from many executors without
ambiguity.  Payload encodings are per-type (documented next to each
constant); task payloads deliberately avoid a pickle wrapper so the
multi-hundred-KB spec bytes are sliced, never re-copied through pickle.

:class:`FrameParser` is the incremental decoder used by non-blocking
readers (the dispatch loop feeds it whatever ``recv`` returned);
:func:`send_frame` / :func:`recv_frame` are the blocking pair used by
worker main loops and the blob server, where one-frame-at-a-time is the
natural cadence.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import socket
import struct

_HEADER = struct.Struct("!IB")
#: refuse frames past this size -- a corrupt length prefix must not make
#: the receiver try to allocate gigabytes
MAX_FRAME = 1 << 31

# -- control plane ------------------------------------------------------------
#: worker -> driver: pickled dict {slot, executor_id, pid}; only accepted
#: after the CHALLENGE/AUTH handshake has proven the peer holds the
#: cluster secret -- no pickle ever touches unauthenticated bytes
REGISTER = 1
#: driver -> worker (or driver -> head): ``!QH`` token, executor-id length,
#: executor id utf-8, task spec bytes (the executor id routes head-side;
#: workers ignore it)
TASK = 2
#: worker -> driver: ``!Q`` token, framed result bytes (see
#: :func:`repro.engine.backends.unframe_result`)
RESULT = 3
#: worker -> driver: ``!Q`` token, pickled exception
TASK_ERROR = 4
#: worker -> driver: pickled :class:`~repro.engine.heartbeat.HeartbeatRecord`
HEARTBEAT = 5
#: driver -> worker: stop accepting tasks, finish in-flight, then exit
DRAIN = 6
#: driver -> worker / CLI -> head: terminate now
SHUTDOWN = 7
#: CLI -> head: request a pickled executor-info list
STATUS = 8
STATUS_REPLY = 9
#: external driver -> head: attach as a job submitter
ATTACH = 10
#: head -> driver: pickled dict {num_executors, executor_cores,
#: executor_ids, transport_spec}
ATTACH_REPLY = 11
#: external driver -> head, fire-and-forget: pickled (executor_id,
#: binary_id) so the head's shipped-binary index (``cluster status``
#: ``binaries_cached``) stays truthful across drivers
BINARY_SHIPPED = 12
#: server -> connecting peer, first frame on every cluster socket: a
#: random nonce the peer must answer before anything else is processed
CHALLENGE = 13
#: peer -> server: HMAC-SHA256(secret, nonce).  Connections whose first
#: frame is not a valid AUTH are dropped on the floor; everything that
#: pickles (REGISTER, HEARTBEAT, RESULT, BLOB_OFFER, ...) sits behind it
AUTH = 14
#: CLI/driver -> head: request a pickled fleet-stats snapshot (the
#: cluster-resident observability plane: per-executor series + totals)
FLEET = 15
#: head -> requester: pickled dict, see
#: :meth:`repro.obs.fleet.FleetStats.snapshot`
FLEET_REPLY = 16
#: driver -> head, fire-and-forget: pickled inference-convergence summary
#: (replicates done/planned, throughput, sets converged) for cluster top
INFERENCE = 17

# -- blob transport (socket variant of repro.engine.transport) ---------------
#: utf-8 key
BLOB_GET = 20
#: raw blob bytes
BLOB_DATA = 21
#: key not present on the server
BLOB_MISSING = 22
#: pickled (sha256 hex, size): dedup offer sent *before* any payload moves
BLOB_OFFER = 23
#: pickled :class:`~repro.engine.transport.TransportRef` -- server already
#: holds the content; the offerer never pushes the payload
BLOB_HAVE = 24
#: server wants the payload; follow with BLOB_PUSH
BLOB_WANT = 25
#: ``!H`` key length, key utf-8, blob bytes
BLOB_PUSH = 26
#: generic ack (push stored / delete done)
BLOB_OK = 27
#: utf-8 key
BLOB_DELETE = 28

_TASK_PREFIX = struct.Struct("!QH")
_TOKEN = struct.Struct("!Q")


def pack_task(token: int, executor_id: str, payload: bytes) -> bytes:
    eid = executor_id.encode("utf-8")
    return _TASK_PREFIX.pack(token, len(eid)) + eid + payload


def unpack_task(frame: bytes) -> tuple[int, str, bytes]:
    token, eid_len = _TASK_PREFIX.unpack_from(frame)
    start = _TASK_PREFIX.size
    eid = bytes(frame[start:start + eid_len]).decode("utf-8")
    return token, eid, bytes(frame[start + eid_len:])


def pack_token(token: int, payload: bytes) -> bytes:
    return _TOKEN.pack(token) + payload


def unpack_token(frame: bytes) -> tuple[int, bytes]:
    (token,) = _TOKEN.unpack_from(frame)
    return token, bytes(frame[_TOKEN.size:])


# -- authentication -----------------------------------------------------------

#: bytes of random nonce in a CHALLENGE frame
AUTH_NONCE_LEN = 32


def auth_digest(secret: bytes, nonce: bytes) -> bytes:
    """The expected AUTH payload for a given CHALLENGE nonce."""
    return hmac.new(secret, nonce, hashlib.sha256).digest()


def auth_ok(secret: bytes, nonce: bytes, digest: bytes) -> bool:
    """Constant-time check of an AUTH payload against the nonce we issued."""
    return hmac.compare_digest(auth_digest(secret, nonce), digest)


def answer_challenge(sock: socket.socket, secret: bytes) -> None:
    """Blocking client half of the handshake: read CHALLENGE, send AUTH."""
    received = recv_frame(sock)
    if received is None or received[0] != CHALLENGE:
        raise ConnectionError("peer did not issue an auth challenge")
    send_frame(sock, AUTH, auth_digest(secret, received[1]))


def expect_auth(sock: socket.socket, secret: bytes) -> None:
    """Blocking server half: send CHALLENGE, require a valid AUTH reply.

    Raises :class:`ConnectionError` on anything else; callers drop the
    connection without ever deserializing a byte from it.
    """
    nonce = secrets.token_bytes(AUTH_NONCE_LEN)
    send_frame(sock, CHALLENGE, nonce)
    received = recv_frame(sock)
    if (
        received is None
        or received[0] != AUTH
        or not auth_ok(secret, nonce, received[1])
    ):
        raise ConnectionError("peer failed cluster auth handshake")


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_FRAME:
        raise ValueError(f"frame too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload), ftype) + payload


def send_frame(sock: socket.socket, ftype: int, payload: bytes = b"") -> None:
    """Blocking send of one frame (worker loops, blob server)."""
    sock.sendall(encode_frame(ftype, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on a clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise ConnectionError("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[int, bytes] | None:
    """Blocking receive of one frame; None when the peer closed cleanly."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, ftype = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ConnectionError(f"oversized frame announced: {length} bytes")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ConnectionError("socket closed between header and payload")
    return ftype, payload


class FrameParser:
    """Incremental frame decoder for non-blocking readers.

    Feed it whatever ``recv`` produced; it yields every complete frame and
    buffers the tail until the next feed.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        self._buf.extend(data)
        frames: list[tuple[int, bytes]] = []
        offset = 0
        while True:
            if len(self._buf) - offset < _HEADER.size:
                break
            length, ftype = _HEADER.unpack_from(self._buf, offset)
            if length > MAX_FRAME:
                raise ConnectionError(f"oversized frame announced: {length} bytes")
            end = offset + _HEADER.size + length
            if len(self._buf) < end:
                break
            frames.append((ftype, bytes(self._buf[offset + _HEADER.size:end])))
            offset = end
        if offset:
            del self._buf[:offset]
        return frames


__all__ = [
    "REGISTER", "TASK", "RESULT", "TASK_ERROR", "HEARTBEAT", "DRAIN",
    "SHUTDOWN", "STATUS", "STATUS_REPLY", "ATTACH", "ATTACH_REPLY",
    "BINARY_SHIPPED", "CHALLENGE", "AUTH", "FLEET", "FLEET_REPLY",
    "INFERENCE", "AUTH_NONCE_LEN",
    "BLOB_GET", "BLOB_DATA", "BLOB_MISSING", "BLOB_OFFER", "BLOB_HAVE",
    "BLOB_WANT", "BLOB_PUSH", "BLOB_OK", "BLOB_DELETE",
    "pack_task", "unpack_task", "pack_token", "unpack_token",
    "auth_digest", "auth_ok", "answer_challenge", "expect_auth",
    "encode_frame", "send_frame", "recv_frame", "FrameParser", "MAX_FRAME",
]
