"""Persistent executor cluster: long-lived workers, event-driven dispatch.

The process backend pays its dominant cost over and over: every Context
forks a fresh pool, re-pickles every stage closure, re-publishes every
broadcast, and tears it all down at ``stop()``.  This module keeps the
fleet alive instead.  A :class:`ClusterManager` owns one single-threaded
worker *process per task slot* (``executor_cores`` slots form one logical
executor) connected back to the driver over loopback TCP, and survives any
number of Context attach/detach cycles.  The payoff is the warm second
job: workers' task-binary caches (content-hash keyed, see
:mod:`repro.engine.backends`), broadcast memos, and transport handles all
hit, so a rerun ships refs instead of megabytes.

Dispatch is a single event-driven thread multiplexing every worker socket
through :mod:`selectors`: non-blocking accepts, incremental
:class:`~repro.engine.frames.FrameParser` reads, per-worker output buffers
flushed under ``EVENT_WRITE`` (backpressure never blocks the loop), and a
wake socketpair so ``submit`` from the scheduler thread is a lock-free
buffer append plus one byte.  Task launches pipeline: the scheduler keeps
two attempts per slot in flight, so a worker finishing a task finds its
next one already sitting in its socket buffer.

Executor lifecycle is explicit -- *register* (worker connects and
announces itself), *heartbeat* (socket frames feeding the ordinary
:class:`~repro.engine.heartbeat.HeartbeatHub`), *drain* (finish in-flight,
take nothing new), *decommission* (worker exits, driver announces it) --
and surfaced as :class:`~repro.engine.listener.ExecutorRegistered` /
:class:`~repro.engine.listener.ExecutorDecommissioned` bus events.

Two deployment shapes share the protocol:

- **in-process** (default): ``Context(backend="cluster")`` lazily builds a
  process-wide :class:`ClusterManager` keyed by cluster shape; it persists
  until :func:`stop_all_clusters`.
- **external**: ``sparkscore cluster start`` runs a :class:`ClusterHead`
  in its own process; drivers attach over TCP via :class:`ClusterClient`
  (``cluster_address`` config), and blobs travel the socket transport.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pickle
import queue
import secrets
import selectors
import socket
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.engine import frames
from repro.engine.executor import ExecutorLostError
from repro.engine.listener import ExecutorDecommissioned, ExecutorRegistered
from repro.engine.transport import advertised_host, create_transport, from_spec
from repro.obs.fleet import FleetStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import EngineConfig
    from repro.engine.context import Context

#: how long to wait for the fleet to register before declaring a dud start
_REGISTER_TIMEOUT = 60.0


# -- worker process -----------------------------------------------------------


class _SocketHeartbeatSender:
    """Duck-typed stand-in for the manager queue in ``_WORKER_HB``: the
    worker heartbeat thread calls ``put(record)``, we frame it over the
    driver connection instead."""

    def __init__(self, sock: socket.socket, send_lock: threading.Lock) -> None:
        self._sock = sock
        self._send_lock = send_lock

    def put(self, record: Any) -> None:
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        with self._send_lock:
            frames.send_frame(self._sock, frames.HEARTBEAT, payload)


def _cluster_worker_main(
    host: str, port: int, slot: int, executor_id: str, hb_interval: float,
    secret_hex: str,
) -> None:
    """Worker process entry point: one task slot, one socket, one loop.

    Single-threaded on purpose: tasks run serially per slot (parallelism
    comes from the fleet), so the worker-side registry delta never
    interleaves two tasks' increments, and DRAIN can exit at any frame
    boundary knowing nothing is in flight.
    """
    from repro.engine.backends import _WORKER_HB, _run_pickled_task

    try:
        conn = socket.create_connection((host, port), timeout=30.0)
    except OSError:
        return
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        # prove we hold the cluster secret (shipped via the spawn args,
        # never over the wire) before the driver will read a frame from us
        frames.answer_challenge(conn, bytes.fromhex(secret_hex))
    except (ConnectionError, OSError):
        conn.close()
        return
    conn.settimeout(None)
    send_lock = threading.Lock()
    if hb_interval > 0:
        # the existing worker heartbeat machinery (backends._WORKER_HB)
        # drives a daemon thread that calls .put(record); substituting a
        # socket sender reuses it wholesale
        _WORKER_HB["queue"] = _SocketHeartbeatSender(conn, send_lock)
        _WORKER_HB["interval"] = max(hb_interval, 0.05)
    try:
        with send_lock:
            frames.send_frame(conn, frames.REGISTER, pickle.dumps(
                {"slot": slot, "executor_id": executor_id, "pid": os.getpid()},
                protocol=pickle.HIGHEST_PROTOCOL,
            ))
        while True:
            received = frames.recv_frame(conn)
            if received is None:
                return
            ftype, payload = received
            if ftype == frames.TASK:
                token, _eid, spec = frames.unpack_task(payload)
                try:
                    result = _run_pickled_task(spec)
                except BaseException as exc:  # noqa: BLE001 - shipped to driver
                    try:
                        body = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
                    except Exception:
                        body = pickle.dumps(
                            RuntimeError(f"{type(exc).__name__}: {exc}"),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    with send_lock:
                        frames.send_frame(
                            conn, frames.TASK_ERROR, frames.pack_token(token, body)
                        )
                else:
                    with send_lock:
                        frames.send_frame(
                            conn, frames.RESULT, frames.pack_token(token, result)
                        )
            elif ftype in (frames.DRAIN, frames.SHUTDOWN):
                # single-threaded slot: at a frame boundary nothing is in
                # flight, so drain and shutdown converge to a clean exit
                return
    except (ConnectionError, OSError):
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass


# -- driver-side manager ------------------------------------------------------


class _WorkerHandle:
    """Driver-side state for one worker slot."""

    __slots__ = (
        "slot", "executor_id", "process", "sock", "parser", "outbuf",
        "inflight", "pid", "registered", "alive", "draining", "tasks_done",
    )

    def __init__(self, slot: int, executor_id: str) -> None:
        self.slot = slot
        self.executor_id = executor_id
        self.process: Any = None
        self.sock: socket.socket | None = None
        self.parser = frames.FrameParser()
        self.outbuf = bytearray()
        #: token -> Future awaiting this slot's RESULT/TASK_ERROR
        self.inflight: dict[int, concurrent.futures.Future] = {}
        self.pid = 0
        self.registered = threading.Event()
        self.alive = False
        self.draining = False
        self.tasks_done = 0


class ClusterManager:
    """Owns a persistent worker fleet and its event-driven dispatch loop.

    Lives independently of any Context: drivers :meth:`attach` (which
    announces the executors, warm or cold, on their listener bus), submit
    jobs, and :meth:`detach`; the workers -- and everything warm inside
    them -- stay up for the next driver.  The manager also owns the blob
    transport, for the same reason: worker-side transport handles memoize
    by spec, so a transport that died with its context would strand them.
    """

    def __init__(
        self,
        num_executors: int,
        executor_cores: int,
        transport_scheme: str = "auto",
        hb_interval: float = 0.5,
        transport_host: str = "127.0.0.1",
    ) -> None:
        self.num_executors = num_executors
        self.executor_cores = executor_cores
        self.hb_interval = hb_interval
        #: per-cluster authkey (multiprocessing-style): workers receive it
        #: via their spawn args and must answer the listener's HMAC
        #: challenge before any frame of theirs is deserialized
        self.secret = secrets.token_bytes(32)
        self.transport = create_transport(
            transport_scheme, thread_prefix="repro-cluster-transport",
            host=transport_host,
        )
        self.hb_queue: "queue.Queue[Any]" = queue.Queue()
        self.stopped = False
        #: attach() calls so far; >0 means the fleet is warm for the next one
        self.jobs_attached = 0
        #: cluster-resident observability plane: lives (and keeps its
        #: series) as long as the manager, across every driver attach
        self.fleet = FleetStats()
        self._ctx: "Context | None" = None
        self._tokens = itertools.count(1)
        #: token -> submitting driver label, for per-driver throughput
        self._token_driver: dict[int, str] = {}
        self._last_fleet_sample = 0.0
        self._lock = threading.Lock()
        self._cmds: deque = deque()
        self._exec_state: dict[str, str] = {}
        #: (executor_id, binary content hash) pairs already charged in the
        #: task_binary_bytes accounting -- persists across contexts, which
        #: is exactly what makes warm jobs report ~0 binary bytes
        self._shipped: set[tuple[str, str]] = set()

        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.setblocking(False)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._stop_event = threading.Event()

        self.workers = [
            _WorkerHandle(slot, f"exec-{slot // executor_cores}")
            for slot in range(num_executors * executor_cores)
        ]
        for eid in {h.executor_id for h in self.workers}:
            self._exec_state[eid] = "starting"
            self.fleet.note_lifecycle(eid, "starting")
        self._spawn_workers()

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listen")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._dispatch = threading.Thread(
            target=self._dispatch_loop, name="repro-cluster-dispatch", daemon=True
        )
        self._dispatch.start()
        self._await_registration()

    # -- startup ----------------------------------------------------------

    def _spawn_workers(self) -> None:
        import multiprocessing

        host, _, port = self.address.rpartition(":")
        for handle in self.workers:
            proc = multiprocessing.Process(
                target=_cluster_worker_main,
                args=(host, int(port), handle.slot, handle.executor_id,
                      self.hb_interval, self.secret.hex()),
                name=f"repro-cluster-{handle.executor_id}-s{handle.slot}",
                daemon=True,
            )
            proc.start()
            handle.process = proc

    def _await_registration(self) -> None:
        deadline = time.monotonic() + _REGISTER_TIMEOUT
        for handle in self.workers:
            if not handle.registered.wait(max(0.0, deadline - time.monotonic())):
                self.stop()
                raise RuntimeError(
                    f"cluster worker slot {handle.slot} "
                    f"({handle.executor_id}) never registered"
                )
        for eid in self._exec_state:
            self._exec_state[eid] = "registered"
            self.fleet.note_lifecycle(eid, "registered")

    # -- backend interface -------------------------------------------------

    def submit(
        self, payload: bytes, executor_id: str, driver: str | None = None
    ) -> concurrent.futures.Future:
        """Queue one task on the named executor's least-loaded alive slot.

        ``driver`` labels this submission for the fleet's per-driver
        throughput series; the head passes its per-connection label, the
        in-process path defaults to the attached context's trace id.
        """
        future: concurrent.futures.Future = concurrent.futures.Future()
        if driver is None:
            driver = self.fleet.current_driver()
        with self._lock:
            if self.stopped:
                future.set_exception(RuntimeError("cluster is stopped"))
                return future
            candidates = [
                h for h in self.workers
                if h.executor_id == executor_id and h.alive and not h.draining
            ]
            if not candidates:  # executor gone: any alive slot keeps the job going
                candidates = [h for h in self.workers if h.alive and not h.draining]
            if not candidates:
                future.set_exception(ExecutorLostError(executor_id))
                return future
            handle = min(candidates, key=lambda h: len(h.inflight))
            token = next(self._tokens)
            handle.inflight[token] = future
            self._token_driver[token] = driver
            # the token rides along so the dispatch loop can drop the frame
            # if the future is cancelled (speculation loser) before sending
            self._cmds.append(("send", handle, frames.encode_frame(
                frames.TASK, frames.pack_task(token, executor_id, payload)
            ), token))
        self._wake()
        return future

    def heartbeat_queue(self, interval: float) -> "queue.Queue[Any]":
        return self.hb_queue

    def note_binary_shipped(self, executor_id: str, binary_id: str) -> bool:
        """True exactly once per (executor, binary content hash) -- ever."""
        with self._lock:
            key = (executor_id, binary_id)
            if key in self._shipped:
                return False
            self._shipped.add(key)
            return True

    def note_inference(self, info: dict) -> None:
        """Fold a driver's inference-convergence summary into fleet stats."""
        self.fleet.note_inference(self.fleet.current_driver() or None, info)

    def mark_attached(self) -> bool:
        """Count one more driver attach; True if the fleet was already warm."""
        with self._lock:
            warm = self.jobs_attached > 0
            self.jobs_attached += 1
            return warm

    def attach(self, ctx: "Context") -> None:
        """Announce the fleet on a (new) driver's listener bus."""
        warm = self.mark_attached()
        self.fleet.note_attach(getattr(ctx, "trace_id", None))
        with self._lock:
            self._ctx = ctx
        for info in self.executor_info():
            ctx.listener_bus.post(ExecutorRegistered(
                executor_id=info["executor_id"],
                host="127.0.0.1",
                pid=info["pid"],
                slots=info["slots"],
                warm=warm and info["state"] == "registered",
            ))

    def detach(self, ctx: "Context") -> None:
        with self._lock:
            if self._ctx is ctx:
                self._ctx = None
        self.fleet.note_detach()

    def fleet_snapshot(self, window: float | None = None) -> dict:
        """The cluster-resident observability snapshot (``/api/fleet``)."""
        return self.fleet.snapshot(self, window)

    def executor_info(self) -> list[dict]:
        """Per-executor lifecycle/warmth snapshot (CLI status, /api/executors)."""
        with self._lock:
            grouped: dict[str, dict] = {}
            for h in self.workers:
                info = grouped.setdefault(h.executor_id, {
                    "executor_id": h.executor_id,
                    "state": self._exec_state.get(h.executor_id, "unknown"),
                    "pid": 0,
                    "slots": 0,
                    "tasks_done": 0,
                    "inflight": 0,
                })
                info["slots"] += 1
                info["tasks_done"] += h.tasks_done
                info["inflight"] += len(h.inflight)
                if info["pid"] == 0:
                    info["pid"] = h.pid
            for info in grouped.values():
                eid = info["executor_id"]
                info["warm"] = info["tasks_done"] > 0
                info["binaries_cached"] = sum(
                    1 for (e, _) in self._shipped if e == eid
                )
            return [grouped[eid] for eid in sorted(grouped)]

    def decommission(self, executor_id: str, reason: str = "drain") -> None:
        """Drain one executor: finish in-flight work, then retire its slots."""
        with self._lock:
            targets = [
                h for h in self.workers
                if h.executor_id == executor_id and h.alive and not h.draining
            ]
            for handle in targets:
                handle.draining = True
                self._cmds.append(("send", handle, frames.encode_frame(frames.DRAIN)))
            if targets:
                self._exec_state[executor_id] = "draining"
        if targets:
            self.fleet.note_lifecycle(executor_id, "draining")
        self._wake()

    # -- dispatch loop -----------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x01")
        except (BlockingIOError, OSError):
            pass  # a wake byte is already pending (or we are stopping)

    def _dispatch_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                events = self._selector.select(timeout=0.5)
            except OSError:
                return
            for key, mask in events:
                tag = key.data
                try:
                    if tag == "wake":
                        while self._wake_r.recv(4096):
                            pass
                    elif tag == "listen":
                        self._accept_pending()
                    else:
                        self._service_conn(key.fileobj, tag, mask)
                except (BlockingIOError, OSError):
                    pass
                except Exception:
                    # a poisoned frame must not kill the dispatch plane; the
                    # offending connection is dropped, the loop lives on
                    if isinstance(tag, _WorkerHandle) or isinstance(tag, dict):
                        self._on_disconnect(key.fileobj, tag if isinstance(tag, _WorkerHandle) else None)
            self._process_commands()
            now = time.monotonic()
            if now - self._last_fleet_sample >= 1.0:
                self._last_fleet_sample = now
                try:
                    self.fleet.sample(self)
                except Exception:
                    pass  # observability must never stall dispatch

    def _accept_pending(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            conn.setblocking(False)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # challenge immediately; the 37-byte frame always fits a fresh
            # socket buffer, so a blocking-would-occur here means the peer
            # is already broken and we just drop it
            nonce = secrets.token_bytes(frames.AUTH_NONCE_LEN)
            try:
                conn.send(frames.encode_frame(frames.CHALLENGE, nonce))
            except OSError:
                conn.close()
                continue
            # anonymous (and untrusted) until AUTH + REGISTER arrive
            self._selector.register(
                conn, selectors.EVENT_READ,
                {"parser": frames.FrameParser(), "nonce": nonce, "authed": False},
            )

    def _process_commands(self) -> None:
        with self._lock:
            cmds, self._cmds = self._cmds, deque()
        for cmd in cmds:
            _op, handle, frame_bytes = cmd[0], cmd[1], cmd[2]
            if len(cmd) > 3:
                # task frame: skip it entirely if the scheduler already
                # cancelled the attempt (a queued speculation loser)
                token = cmd[3]
                with self._lock:
                    future = handle.inflight.get(token)
                    if future is None or future.cancelled():
                        handle.inflight.pop(token, None)
                        self._token_driver.pop(token, None)
                        continue
            if handle.sock is None or not handle.alive:
                continue
            handle.outbuf.extend(frame_bytes)
            self._want_write(handle)

    def _want_write(self, handle: _WorkerHandle) -> None:
        try:
            self._selector.modify(
                handle.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, handle
            )
        except (KeyError, ValueError, OSError):
            pass

    def _service_conn(self, sock: socket.socket, tag: Any, mask: int) -> None:
        handle = tag if isinstance(tag, _WorkerHandle) else None
        if mask & selectors.EVENT_WRITE and handle is not None and handle.outbuf:
            try:
                sent = sock.send(handle.outbuf)
                del handle.outbuf[:sent]
                self.fleet.note_frame_bytes(bytes_out=sent)
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._on_disconnect(sock, handle)
                return
            if not handle.outbuf:
                try:
                    self._selector.modify(sock, selectors.EVENT_READ, handle)
                except (KeyError, ValueError, OSError):
                    pass
        if not (mask & selectors.EVENT_READ):
            return
        try:
            data = sock.recv(1 << 20)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            self._on_disconnect(sock, handle)
            return
        self.fleet.note_frame_bytes(bytes_in=len(data))
        parser = handle.parser if handle is not None else tag["parser"]
        try:
            parsed = parser.feed(data)
        except ConnectionError:
            self._on_disconnect(sock, handle)
            return
        for ftype, payload in parsed:
            if handle is None:
                if not tag["authed"]:
                    # first frame must be a valid AUTH answer to our nonce;
                    # anything else is dropped before any deserialization
                    if ftype == frames.AUTH and frames.auth_ok(
                        self.secret, tag["nonce"], payload
                    ):
                        tag["authed"] = True
                        continue
                    self._drop_conn(sock)
                    return
                handle = self._on_register(sock, tag, ftype, payload)
                if handle is None:
                    return  # bogus post-auth frame: connection dropped
            else:
                self._on_frame(handle, ftype, payload)

    def _drop_conn(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _on_register(
        self, sock: socket.socket, tag: dict, ftype: int, payload: bytes
    ) -> _WorkerHandle | None:
        if ftype != frames.REGISTER:
            self._drop_conn(sock)
            return None
        info = pickle.loads(payload)
        handle = self.workers[info["slot"]]
        handle.sock = sock
        handle.parser = tag["parser"]
        handle.pid = info["pid"]
        handle.alive = True
        self._selector.modify(sock, selectors.EVENT_READ, handle)
        handle.registered.set()
        return handle

    def _on_frame(self, handle: _WorkerHandle, ftype: int, payload: bytes) -> None:
        if ftype in (frames.RESULT, frames.TASK_ERROR):
            token, body = frames.unpack_token(payload)
            with self._lock:
                future = handle.inflight.pop(token, None)
                handle.tasks_done += 1
                driver = self._token_driver.pop(token, None)
            self.fleet.note_task_done(
                handle.executor_id, driver, ok=ftype == frames.RESULT
            )
            if future is None or future.cancelled():
                return  # attempt abandoned after a heartbeat timeout
            try:
                if ftype == frames.RESULT:
                    future.set_result(body)
                else:
                    future.set_exception(pickle.loads(body))
            except concurrent.futures.InvalidStateError:
                pass
        elif ftype == frames.HEARTBEAT:
            record = pickle.loads(payload)
            self.fleet.note_heartbeat(record)
            self.hb_queue.put(record)

    def _on_disconnect(self, sock: socket.socket, handle: _WorkerHandle | None) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass
        if handle is None:
            return
        with self._lock:
            handle.alive = False
            handle.sock = None
            was_draining = handle.draining
            orphans = list(handle.inflight.values())
            handle.inflight.clear()
            peers_alive = any(
                h.alive for h in self.workers if h.executor_id == handle.executor_id
            )
            ctx = self._ctx
            tasks_run = sum(
                h.tasks_done for h in self.workers
                if h.executor_id == handle.executor_id
            )
            if not peers_alive:
                self._exec_state[handle.executor_id] = (
                    "decommissioned" if was_draining else "lost"
                )
        if not peers_alive:
            self.fleet.note_lifecycle(
                handle.executor_id,
                "decommissioned" if was_draining else "lost",
            )
        for future in orphans:
            if future.cancelled():
                continue
            try:
                future.set_exception(ExecutorLostError(handle.executor_id))
            except concurrent.futures.InvalidStateError:
                pass
        if not peers_alive and was_draining and ctx is not None:
            ctx.listener_bus.post(ExecutorDecommissioned(
                executor_id=handle.executor_id, reason="drained",
                tasks_run=tasks_run,
            ))

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Tear the fleet down for real (tests / CLI stop / interpreter exit)."""
        with self._lock:
            if self.stopped:
                return
            self.stopped = True
            for handle in self.workers:
                if handle.alive and handle.sock is not None:
                    self._cmds.append(
                        ("send", handle, frames.encode_frame(frames.SHUTDOWN))
                    )
        self._wake()
        time.sleep(0.05)  # give the loop one pass to flush SHUTDOWN frames
        self._stop_event.set()
        self._wake()
        if self._dispatch.is_alive():
            self._dispatch.join(timeout=5.0)
        for handle in self.workers:
            proc = handle.process
            if proc is not None and proc.is_alive():
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            handle.alive = False
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        self.transport.close()


# -- process-wide cluster registry --------------------------------------------

_CLUSTERS: dict[tuple, Any] = {}
_CLUSTERS_LOCK = threading.Lock()


def get_cluster(config: "EngineConfig") -> ClusterManager:
    """The process-wide persistent cluster for this shape (create on first use)."""
    key = (config.num_executors, config.executor_cores, config.transport_scheme)
    with _CLUSTERS_LOCK:
        manager = _CLUSTERS.get(key)
        if manager is None or manager.stopped:
            manager = ClusterManager(
                config.num_executors,
                config.executor_cores,
                config.transport_scheme,
                config.heartbeat_interval,
            )
            _CLUSTERS[key] = manager
        return manager


def get_cluster_client(config: "EngineConfig") -> "ClusterClient":
    """A persistent client to an externally started head (memoized by address)."""
    secret = getattr(config, "cluster_secret", "")
    key = ("external", config.cluster_address, secret)
    with _CLUSTERS_LOCK:
        client = _CLUSTERS.get(key)
        if client is None or client.stopped:
            client = ClusterClient(
                config.cluster_address, config.heartbeat_interval, secret=secret
            )
            _CLUSTERS[key] = client
        return client


def stop_all_clusters() -> None:
    """Stop every persistent cluster/client this process started."""
    with _CLUSTERS_LOCK:
        managers = list(_CLUSTERS.values())
        _CLUSTERS.clear()
    for manager in managers:
        manager.stop()


class ClusterBackend:
    """Backend facade over the persistent cluster (or an external head).

    ``shutdown`` only detaches -- the cluster outlives the context by
    design.  ``stable_placement`` pins partition -> executor across jobs so
    warm caches actually get re-hit; ``persistent_executors`` makes the
    scheduler publish every task binary by transport ref (size threshold
    0), which is what turns job 2's publication into a dedup hit.
    """

    name = "cluster"
    supports_shared_state = False
    stable_placement = True
    persistent_executors = True

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = max(1, config.total_cores)
        if config.cluster_address:
            self._manager: Any = get_cluster_client(config)
        else:
            self._manager = get_cluster(config)
        self._detached = False

    @property
    def transport(self) -> Any:
        return self._manager.transport

    def heartbeat_queue(self, interval: float) -> Any:
        return self._manager.heartbeat_queue(interval)

    def submit_pickled(
        self, payload: bytes, executor_id: str | None = None
    ) -> concurrent.futures.Future:
        if self._detached:
            raise RuntimeError("backend is shut down")
        return self._manager.submit(payload, executor_id or "exec-0")

    def note_binary_shipped(self, executor_id: str, binary_id: str) -> bool:
        return self._manager.note_binary_shipped(executor_id, binary_id)

    def note_inference(self, info: dict) -> None:
        """Best-effort inference-convergence telemetry for ``cluster top``."""
        note = getattr(self._manager, "note_inference", None)
        if note is not None:
            note(info)

    def attach(self, ctx: "Context") -> None:
        self._manager.attach(ctx)

    def detach(self, ctx: "Context") -> None:
        self._manager.detach(ctx)

    def executor_info(self) -> list[dict]:
        return self._manager.executor_info()

    def fleet_snapshot(self, window: float | None = None) -> dict:
        """Cluster-resident fleet stats (``/api/fleet``, flight recorder)."""
        return self._manager.fleet_snapshot(window)

    def decommission(self, executor_id: str, reason: str = "drain") -> None:
        self._manager.decommission(executor_id, reason)

    def shutdown(self) -> None:
        """Detach only; the fleet stays warm for the next context."""
        self._detached = True


# -- external mode: head + client ---------------------------------------------


def _resolve_secret(secret: str | None) -> bytes:
    """The shared secret an external head requires, as HMAC key bytes."""
    value = secret or os.environ.get("REPRO_CLUSTER_SECRET", "")
    if not value:
        raise ConnectionError(
            "no cluster secret configured: set cluster_secret "
            "(spark.cluster.secret), pass --secret, or export "
            "REPRO_CLUSTER_SECRET with the value the head printed at start"
        )
    return value.encode("utf-8")


class _ConnWriter:
    """Per-connection outbound queue + writer thread.

    Every frame to an external driver goes through here instead of a
    blocking ``sendall`` in whichever thread produced it -- in particular
    the manager's dispatch thread, which runs result-future callbacks.  A
    stalled driver (full socket buffer, not reading) therefore backs up
    only its own queue; dispatch, results, and heartbeats for everyone
    else keep flowing.
    """

    def __init__(self, conn: socket.socket, name: str) -> None:
        self.conn = conn
        self.queue: "queue.Queue[tuple[int, bytes] | None]" = queue.Queue()
        self.failed = False
        self.thread = threading.Thread(target=self._run, name=name, daemon=True)
        self.thread.start()

    def send(self, ftype: int, payload: bytes = b"") -> None:
        self.queue.put((ftype, payload))

    def pending(self) -> int:
        return self.queue.qsize()

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            try:
                frames.send_frame(self.conn, item[0], item[1])
            except (ConnectionError, OSError):
                self.failed = True
                return

    def stop(self, join_timeout: float = 2.0) -> None:
        """Ask the writer to flush and exit; callers close the socket after."""
        self.queue.put(None)
        if self.thread is not threading.current_thread():
            self.thread.join(timeout=join_timeout)


class ClusterHead:
    """Standalone cluster head: a :class:`ClusterManager` plus a public TCP
    front door (``sparkscore cluster start``).

    Every connection must pass the HMAC challenge for the head's shared
    secret (``--secret`` / ``REPRO_CLUSTER_SECRET``) before its first real
    frame is read.  Authenticated connections then self-identify: ATTACH
    is an external driver, STATUS/SHUTDOWN the CLI.  Driver TASK frames
    are re-tokenized onto the manager and results routed back with the
    driver's own token, so several drivers can share one fleet without
    coordinating token spaces.
    """

    def __init__(
        self,
        num_executors: int,
        executor_cores: int,
        host: str = "127.0.0.1",
        port: int = 7077,
        hb_interval: float = 0.5,
        secret: str | None = None,
    ) -> None:
        if secret is None:
            secret = os.environ.get("REPRO_CLUSTER_SECRET") or secrets.token_hex(16)
        #: shared secret external drivers and the CLI must present; shown
        #: once by ``sparkscore cluster start`` when auto-generated
        self.secret = secret
        self._secret_bytes = secret.encode("utf-8")
        # blobs must be reachable from other hosts, so the head always
        # speaks the socket transport -- bound to the same interface as
        # the front door, not loopback, or remote drivers would dial
        # their own 127.0.0.1 for every blob
        self.manager = ClusterManager(
            num_executors, executor_cores, "tcp", hb_interval,
            transport_host=host,
        )
        self._listener = socket.create_server((host, port))
        self.address = "%s:%d" % (
            advertised_host(host), self._listener.getsockname()[1]
        )
        self._stopped = threading.Event()
        self._drivers: list[_ConnWriter] = []
        #: fallback per-connection driver labels (ATTACH may override)
        self._conn_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._accept = threading.Thread(
            target=self._accept_loop, name="repro-cluster-head", daemon=True
        )
        self._accept.start()
        self._hb_pump = threading.Thread(
            target=self._pump_heartbeats, name="repro-cluster-head-hb", daemon=True
        )
        self._hb_pump.start()

    def serve_forever(self, duration: float | None = None) -> None:
        self._stopped.wait(timeout=duration)

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-cluster-head-conn", daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        writer: _ConnWriter | None = None
        attached = False
        # every connection gets its own driver label so a shared fleet's
        # per-driver throughput stays distinguishable; ATTACH may replace
        # it with the driver's self-declared identity (its pid label)
        driver_label = f"conn-{next(self._conn_ids)}"
        try:
            # challenge-response before the first frame is even read:
            # nothing below deserializes bytes from an unproven peer
            frames.expect_auth(conn, self._secret_bytes)
            writer = _ConnWriter(conn, "repro-cluster-head-writer")
            while True:
                received = frames.recv_frame(conn)
                if received is None:
                    return
                ftype, payload = received
                if ftype == frames.ATTACH:
                    if payload:  # authed peer; older clients send none
                        try:
                            declared = pickle.loads(payload).get("driver")
                            if declared:
                                driver_label = str(declared)
                        except Exception:
                            pass
                    warm = self.manager.mark_attached()
                    self.manager.fleet.note_attach(driver_label)
                    writer.send(frames.ATTACH_REPLY, pickle.dumps({
                        "num_executors": self.manager.num_executors,
                        "executor_cores": self.manager.executor_cores,
                        "executor_ids": sorted(
                            {h.executor_id for h in self.manager.workers}
                        ),
                        "transport_spec": self.manager.transport.spec(),
                        "warm": warm,
                    }, protocol=pickle.HIGHEST_PROTOCOL))
                    attached = True
                    with self._lock:
                        self._drivers.append(writer)
                elif ftype == frames.TASK:
                    token, eid, spec = frames.unpack_task(payload)
                    future = self.manager.submit(spec, eid, driver=driver_label)
                    future.add_done_callback(
                        self._result_forwarder(writer, token)
                    )
                elif ftype == frames.BINARY_SHIPPED:
                    eid, binary_id = pickle.loads(payload)
                    self.manager.note_binary_shipped(eid, binary_id)
                elif ftype == frames.INFERENCE:
                    # fire-and-forget convergence telemetry; no reply
                    try:
                        self.manager.fleet.note_inference(
                            driver_label, pickle.loads(payload)
                        )
                    except Exception:
                        pass
                elif ftype == frames.STATUS:
                    writer.send(frames.STATUS_REPLY, pickle.dumps(
                        self.manager.executor_info(),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ))
                    if not attached:
                        return
                elif ftype == frames.FLEET:
                    writer.send(frames.FLEET_REPLY, pickle.dumps(
                        self.manager.fleet_snapshot(),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ))
                    if not attached:
                        return
                elif ftype == frames.SHUTDOWN:
                    writer.send(frames.STATUS_REPLY, b"")
                    self.stop()
                    return
                else:
                    return
        except (ConnectionError, OSError):
            return
        finally:
            if writer is not None:
                with self._lock:
                    self._drivers = [d for d in self._drivers if d is not writer]
                writer.stop()
            try:
                conn.close()
            except OSError:
                pass

    def _result_forwarder(self, writer: _ConnWriter, token: int):
        # runs in the manager's dispatch thread (future callbacks fire
        # where set_result happens): must never block, so it only enqueues
        def _forward(done: concurrent.futures.Future) -> None:
            exc = done.exception()
            if exc is None:
                ftype, body = frames.RESULT, done.result()
            else:
                try:
                    body = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    body = pickle.dumps(
                        RuntimeError(f"{type(exc).__name__}: {exc}"),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                ftype = frames.TASK_ERROR
            writer.send(ftype, frames.pack_token(token, body))

        return _forward

    def _pump_heartbeats(self) -> None:
        """Forward worker heartbeats to every attached external driver."""
        while not self._stopped.is_set():
            try:
                record = self.manager.hb_queue.get(timeout=0.5)
            except queue.Empty:
                continue
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            with self._lock:
                drivers = list(self._drivers)
            for writer in drivers:
                # heartbeats are advisory: skip drivers whose queue is
                # already backed up rather than growing it without bound
                if not writer.failed and writer.pending() < 512:
                    writer.send(frames.HEARTBEAT, payload)

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.manager.stop()


class ClusterClient:
    """Driver-side handle to an external :class:`ClusterHead`.

    Presents the same surface as :class:`ClusterManager` (submit /
    heartbeat_queue / attach / note_binary_shipped / executor_info), so
    :class:`ClusterBackend` cannot tell local from remote.  One persistent
    connection; a reader thread resolves futures and feeds heartbeats.
    """

    def __init__(
        self, address: str, hb_interval: float = 0.5, secret: str = ""
    ) -> None:
        host, _, port = address.rpartition(":")
        self.address = address
        self.stopped = False
        self._secret = secret
        self._sock = socket.create_connection((host, int(port)), timeout=30.0)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        frames.answer_challenge(self._sock, _resolve_secret(secret))
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        #: this client's driver label in the head's fleet stats (pid-keyed:
        #: one label per driver process, distinct across a shared fleet)
        self.driver_label = f"driver-{os.getpid()}"
        with self._send_lock:
            frames.send_frame(self._sock, frames.ATTACH, pickle.dumps(
                {"driver": self.driver_label}, protocol=pickle.HIGHEST_PROTOCOL
            ))
        reply = frames.recv_frame(self._sock)
        if reply is None or reply[0] != frames.ATTACH_REPLY:
            raise ConnectionError(f"cluster head at {address} refused attach")
        info = pickle.loads(reply[1])
        self.num_executors = info["num_executors"]
        self.executor_cores = info["executor_cores"]
        self.executor_ids = list(info["executor_ids"])
        self.warm = bool(info.get("warm"))
        self.transport = from_spec(tuple(info["transport_spec"]))
        self.hb_queue: "queue.Queue[Any]" = queue.Queue()
        self.jobs_attached = 1 if self.warm else 0
        self._tokens = itertools.count(1)
        self._lock = threading.Lock()
        self._futures: dict[int, concurrent.futures.Future] = {}
        self._shipped: set[tuple[str, str]] = set()
        self._ctx: "Context | None" = None
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-cluster-client", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                received = frames.recv_frame(self._sock)
                if received is None:
                    break
                ftype, payload = received
                if ftype in (frames.RESULT, frames.TASK_ERROR):
                    token, body = frames.unpack_token(payload)
                    with self._lock:
                        future = self._futures.pop(token, None)
                    if future is None or future.cancelled():
                        continue
                    try:
                        if ftype == frames.RESULT:
                            future.set_result(body)
                        else:
                            future.set_exception(pickle.loads(body))
                    except concurrent.futures.InvalidStateError:
                        pass
                elif ftype == frames.HEARTBEAT:
                    self.hb_queue.put(pickle.loads(payload))
        except (ConnectionError, OSError):
            pass
        self.stopped = True
        with self._lock:
            orphans = list(self._futures.values())
            self._futures.clear()
        for future in orphans:
            if not future.cancelled():
                try:
                    future.set_exception(ConnectionError("cluster head connection lost"))
                except concurrent.futures.InvalidStateError:
                    pass

    # -- manager-compatible surface ---------------------------------------

    def submit(self, payload: bytes, executor_id: str) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        if self.stopped:
            future.set_exception(ConnectionError("cluster head connection lost"))
            return future
        with self._lock:
            token = next(self._tokens)
            self._futures[token] = future
        try:
            with self._send_lock:
                frames.send_frame(
                    self._sock, frames.TASK,
                    frames.pack_task(token, executor_id, payload),
                )
        except (ConnectionError, OSError) as exc:
            with self._lock:
                self._futures.pop(token, None)
            future.set_exception(exc)
        return future

    def heartbeat_queue(self, interval: float) -> "queue.Queue[Any]":
        return self.hb_queue

    def note_binary_shipped(self, executor_id: str, binary_id: str) -> bool:
        with self._lock:
            key = (executor_id, binary_id)
            if key in self._shipped:
                return False
            self._shipped.add(key)
        # fire-and-forget: keep the head's shipped-binary index (and the
        # binaries_cached column of ``cluster status``) truthful
        try:
            with self._send_lock:
                frames.send_frame(
                    self._sock, frames.BINARY_SHIPPED,
                    pickle.dumps((executor_id, binary_id),
                                 protocol=pickle.HIGHEST_PROTOCOL),
                )
        except (ConnectionError, OSError):
            pass
        return True

    def note_inference(self, info: dict) -> None:
        """Fire-and-forget convergence telemetry to the head (cluster top)."""
        try:
            with self._send_lock:
                frames.send_frame(
                    self._sock, frames.INFERENCE,
                    pickle.dumps(info, protocol=pickle.HIGHEST_PROTOCOL),
                )
        except (ConnectionError, OSError):
            pass

    def attach(self, ctx: "Context") -> None:
        with self._lock:
            warm = self.jobs_attached > 0
            self.jobs_attached += 1
            self._ctx = ctx
        for eid in self.executor_ids:
            ctx.listener_bus.post(ExecutorRegistered(
                executor_id=eid, host=self.address.rpartition(":")[0],
                slots=self.executor_cores, warm=warm,
            ))

    def detach(self, ctx: "Context") -> None:
        with self._lock:
            if self._ctx is ctx:
                self._ctx = None

    def executor_info(self) -> list[dict]:
        return cluster_status(self.address, self._secret or None)

    def fleet_snapshot(self, window: float | None = None) -> dict:
        """Fetch the head-resident fleet snapshot (window applies head-side
        retention only; the remote call always returns the full dump)."""
        return fleet_status(self.address, self._secret or None)

    def decommission(self, executor_id: str, reason: str = "drain") -> None:
        raise RuntimeError("decommission an external cluster from its head CLI")

    def stop(self) -> None:
        self.stopped = True
        try:
            self._sock.close()
        except OSError:
            pass
        if self._reader.is_alive():
            self._reader.join(timeout=2.0)


# -- CLI helpers ---------------------------------------------------------------


def _head_request(
    address: str, ftype: int, secret: str | None = None,
    expect: int = frames.STATUS_REPLY,
) -> bytes:
    host, _, port = address.rpartition(":")
    with socket.create_connection((host, int(port)), timeout=10.0) as conn:
        frames.answer_challenge(conn, _resolve_secret(secret))
        frames.send_frame(conn, ftype)
        reply = frames.recv_frame(conn)
        if reply is None or reply[0] != expect:
            raise ConnectionError(f"no reply from cluster head at {address}")
        return reply[1]


def cluster_status(address: str, secret: str | None = None) -> list[dict]:
    """Executor-info list from an external head (``sparkscore cluster status``)."""
    return pickle.loads(_head_request(address, frames.STATUS, secret))


def fleet_status(address: str, secret: str | None = None) -> dict:
    """Fleet-stats snapshot from an external head (``cluster top`` / ``status``)."""
    return pickle.loads(
        _head_request(address, frames.FLEET, secret, expect=frames.FLEET_REPLY)
    )


def cluster_shutdown(address: str, secret: str | None = None) -> None:
    """Stop an external head and its fleet (``sparkscore cluster stop``)."""
    _head_request(address, frames.SHUTDOWN, secret)


__all__ = [
    "ClusterManager",
    "ClusterBackend",
    "ClusterHead",
    "ClusterClient",
    "get_cluster",
    "stop_all_clusters",
    "cluster_status",
    "fleet_status",
    "cluster_shutdown",
]
