"""Key-value RDD operations: shuffles, joins, aggregation by key.

All functions here operate on RDDs of ``(key, value)`` pairs.  They are
attached to the :class:`~repro.engine.rdd.RDD` class by :func:`install`,
called from ``rdd.py`` at import time, so users write
``rdd.reduce_by_key(op)`` exactly as in PySpark.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.engine.dependencies import Aggregator, ShuffleDependency
from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.task import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context
    from repro.engine.rdd import RDD


def _default_partitions(rdd: "RDD", num_partitions: int | None) -> int:
    if num_partitions is not None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        return num_partitions
    if rdd.context is not None:
        return rdd.context.config.default_parallelism
    return rdd.num_partitions()


# ---------------------------------------------------------------------------
# operations (become RDD methods)
# ---------------------------------------------------------------------------


def _first_of(kv):
    return kv[0]


def _second_of(kv):
    return kv[1]


def _identity(value):
    return value


class _MapValuesFn:
    """Picklable value-mapper keeping keys (and hence partitioning)."""

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, it: Iterator) -> Iterator:
        return ((k, self.func(v)) for k, v in it)


class _FlatMapValuesFn:
    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, it: Iterator) -> Iterator:
        return ((k, u) for k, v in it for u in self.func(v))


class _LocalCombineFn:
    """Picklable in-partition combiner for co-partitioned inputs."""

    def __init__(self, create_combiner: Callable, merge_value: Callable) -> None:
        self.create_combiner = create_combiner
        self.merge_value = merge_value

    def __call__(self, it: Iterator) -> Iterator:
        merged: dict = {}
        for k, v in it:
            if k in merged:
                merged[k] = self.merge_value(merged[k], v)
            else:
                merged[k] = self.create_combiner(v)
        return iter(merged.items())


def keys(self: "RDD") -> "RDD":
    return self.map(_first_of)


def values(self: "RDD") -> "RDD":
    return self.map(_second_of)


def map_values(self: "RDD", func: Callable) -> "RDD":
    return self.map_partitions(
        _MapValuesFn(func), name="map_values", preserves_partitioning=True
    )


def flat_map_values(self: "RDD", func: Callable) -> "RDD":
    return self.map_partitions(
        _FlatMapValuesFn(func), name="flat_map_values", preserves_partitioning=True
    )


def combine_by_key(
    self: "RDD",
    create_combiner: Callable,
    merge_value: Callable,
    merge_combiners: Callable,
    num_partitions: int | None = None,
    map_side_combine: bool = True,
) -> "RDD":
    """The general shuffle aggregation underlying reduce/fold/aggregate-by-key."""
    agg = Aggregator(create_combiner, merge_value, merge_combiners, map_side_combine)
    partitioner = HashPartitioner(_default_partitions(self, num_partitions))
    if self.partitioner is not None and self.partitioner == partitioner:
        # already co-partitioned: aggregate within partitions, no shuffle
        return self.map_partitions(
            _LocalCombineFn(create_combiner, merge_value),
            name="combine_by_key(local)",
            preserves_partitioning=True,
        )
    from repro.engine.rdd import ShuffledRDD

    return ShuffledRDD(self.context, self, partitioner, agg, "combine_by_key")


def reduce_by_key(self: "RDD", op: Callable, num_partitions: int | None = None) -> "RDD":
    return combine_by_key(self, _identity, op, op, num_partitions)


def fold_by_key(self: "RDD", zero: Any, op: Callable, num_partitions: int | None = None) -> "RDD":
    return combine_by_key(self, lambda v: op(zero, v), op, op, num_partitions)


def aggregate_by_key(
    self: "RDD",
    zero: Any,
    seq_op: Callable,
    comb_op: Callable,
    num_partitions: int | None = None,
) -> "RDD":
    return combine_by_key(self, lambda v: seq_op(zero, v), seq_op, comb_op, num_partitions)


def group_by_key(self: "RDD", num_partitions: int | None = None) -> "RDD":
    return combine_by_key(
        self,
        lambda v: [v],
        lambda acc, v: acc + [v],
        lambda a, b: a + b,
        num_partitions,
        map_side_combine=False,
    )


def group_by(self: "RDD", func: Callable, num_partitions: int | None = None) -> "RDD":
    return group_by_key(self.map(lambda x: (func(x), x)), num_partitions)


def partition_by(self: "RDD", partitioner: Partitioner | int) -> "RDD":
    if isinstance(partitioner, int):
        partitioner = HashPartitioner(partitioner)
    if self.partitioner is not None and self.partitioner == partitioner:
        return self
    from repro.engine.rdd import ShuffledRDD

    return ShuffledRDD(self.context, self, partitioner, None, "partition_by")


def cogroup(self: "RDD", *others: "RDD", num_partitions: int | None = None) -> "RDD":
    partitioner = HashPartitioner(_default_partitions(self, num_partitions))
    for rdd in (self, *others):
        if rdd.partitioner is not None and isinstance(rdd.partitioner, HashPartitioner):
            partitioner = rdd.partitioner
            break
    from repro.engine.rdd import CoGroupedRDD

    return CoGroupedRDD(self.context, [self, *others], partitioner)


class _InnerJoinExpandFn:
    """Picklable inner-join expansion over cogrouped value lists."""

    def __call__(self, kv):
        key, (left, right) = kv
        return [(key, (v, w)) for v in left for w in right]


def join(self: "RDD", other: "RDD", num_partitions: int | None = None) -> "RDD":
    """Inner join: (k, (v, w)) for every pairing of values under k."""
    return cogroup(self, other, num_partitions=num_partitions).flat_map(
        _InnerJoinExpandFn()
    )


def left_outer_join(self: "RDD", other: "RDD", num_partitions: int | None = None) -> "RDD":
    return cogroup(self, other, num_partitions=num_partitions).flat_map(
        lambda kv: [
            (kv[0], (v, w))
            for v in kv[1][0]
            for w in (kv[1][1] if kv[1][1] else [None])
        ]
    )


def right_outer_join(self: "RDD", other: "RDD", num_partitions: int | None = None) -> "RDD":
    return cogroup(self, other, num_partitions=num_partitions).flat_map(
        lambda kv: [
            (kv[0], (v, w))
            for w in kv[1][1]
            for v in (kv[1][0] if kv[1][0] else [None])
        ]
    )


def full_outer_join(self: "RDD", other: "RDD", num_partitions: int | None = None) -> "RDD":
    def expand(kv):
        key, (left, right) = kv
        return [
            (key, (v, w))
            for v in (left if left else [None])
            for w in (right if right else [None])
        ]

    return cogroup(self, other, num_partitions=num_partitions).flat_map(expand)


def count_by_key(self: "RDD") -> dict:
    ones = self.map(lambda kv: (kv[0], 1))
    return dict(reduce_by_key(ones, lambda a, b: a + b).collect())


def collect_as_map(self: "RDD") -> dict:
    return dict(self.collect())


def lookup(self: "RDD", key: Any) -> list:
    """All values for ``key``; narrow scan unless partitioned, then 1 task."""
    if self.partitioner is not None:
        split = self.partitioner.partition(key)
        part = self.context.run_job(
            self, lambda it: [v for k, v in it if k == key], [split]
        )
        return part[0]
    return self.filter(lambda kv: kv[0] == key).values().collect()


class _ReversedRangePartitioner(RangePartitioner):
    """Range partitioner with reversed partition order, for descending sorts."""

    def partition(self, key: Any) -> int:
        return self.num_partitions - 1 - super().partition(key)


def sort_by_key(self: "RDD", ascending: bool = True, num_partitions: int | None = None) -> "RDD":
    """Range-partition by sampled key bounds, then sort within partitions.

    The output's partitions are globally ordered (ascending or descending),
    so ``collect()`` yields a fully sorted sequence.
    """
    target = _default_partitions(self, num_partitions)
    total = self.count()
    fraction = min(1.0, 20.0 * target / max(1, total))
    sample_keys = sorted(k for k, _ in self.sample(fraction, seed=17).collect())
    if not sample_keys:
        sample_keys = sorted(k for k, _ in self.collect())
    if target > 1 and sample_keys:
        step = max(1, len(sample_keys) // target)
        bounds = sample_keys[step::step][: target - 1]
        bounds = sorted(set(bounds))
    else:
        bounds = []
    partitioner: RangePartitioner = (
        RangePartitioner(bounds) if ascending else _ReversedRangePartitioner(bounds)
    )
    from repro.engine.rdd import ShuffledRDD

    shuffled = ShuffledRDD(self.context, self, partitioner, None, "sort_by_key")

    def sort_partition(it: Iterator) -> Iterator:
        return iter(sorted(it, key=lambda kv: kv[0], reverse=not ascending))

    out = shuffled.map_partitions(sort_partition, name="sorted")
    out.partitioner = partitioner
    return out


def sort_by(self: "RDD", key_func: Callable, ascending: bool = True, num_partitions: int | None = None) -> "RDD":
    return sort_by_key(
        self.map(lambda x: (key_func(x), x)), ascending, num_partitions
    ).values()


def install(rdd_cls: type) -> None:
    """Attach the pair operations as methods of ``RDD``."""
    for func in (
        keys,
        values,
        map_values,
        flat_map_values,
        combine_by_key,
        reduce_by_key,
        fold_by_key,
        aggregate_by_key,
        group_by_key,
        group_by,
        partition_by,
        cogroup,
        join,
        left_outer_join,
        right_outer_join,
        full_outer_join,
        count_by_key,
        collect_as_map,
        lookup,
        sort_by_key,
        sort_by,
    ):
        setattr(rdd_cls, func.__name__, func)
