"""Engine listener bus: typed events, the analogue of Spark's ``LiveListenerBus``.

Every interesting thing the engine does -- a job starting, a stage
completing, a task attempt finishing, a block entering or leaving a cache,
shuffle bytes moving, an executor dying -- is published as a typed event on
the context's :class:`ListenerBus`.  Consumers subscribe by registering a
:class:`Listener`; the event log (:mod:`repro.engine.eventlog`), the tracer
(:mod:`repro.obs.spans`), and the metrics registry bridge
(:mod:`repro.obs.registry`) are all just listeners.

Delivery is synchronous and in posting order per thread.  A listener that
raises is isolated: the exception is recorded on the bus
(:attr:`ListenerBus.listener_errors`) and the remaining listeners still
receive the event -- one misbehaving consumer can never fail a job.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.metrics import JobMetrics, StageMetrics, TaskRecord


# -- event taxonomy ----------------------------------------------------------


@dataclass
class EngineEvent:
    """Base class for all bus events.

    ``time`` is a monotonic (:func:`time.perf_counter`) timestamp stamped by
    the bus at post time, so listeners can order and measure events without
    trusting the producer.
    """

    time: float = field(default=0.0, init=False, repr=False)


@dataclass
class JobStart(EngineEvent):
    job_id: int
    description: str = ""


@dataclass
class JobEnd(EngineEvent):
    job_id: int
    job: "JobMetrics"
    succeeded: bool = True


@dataclass
class StageSubmitted(EngineEvent):
    stage_id: int
    attempt: int
    name: str
    num_tasks: int
    job_id: int


@dataclass
class StageCompleted(EngineEvent):
    stage: "StageMetrics"
    job_id: int
    failed: bool = False


@dataclass
class TaskStart(EngineEvent):
    stage_id: int
    partition: int
    attempt: int
    executor_id: str


@dataclass
class TaskEnd(EngineEvent):
    record: "TaskRecord"


@dataclass
class BlockCached(EngineEvent):
    block_id: tuple
    executor_id: str
    size: int
    level: str


@dataclass
class BlockEvicted(EngineEvent):
    block_id: tuple
    executor_id: str
    size: int
    spilled: bool


@dataclass
class BlockFetchedRemote(EngineEvent):
    block_id: tuple
    from_executor: str
    to_executor: str


@dataclass
class ShuffleWrite(EngineEvent):
    shuffle_id: int
    map_partition: int
    executor_id: str
    bytes_written: int
    records_written: int
    #: framed (post-compression) bytes stored; equals ``bytes_written``
    #: under an uncompressed serializer
    compressed_bytes: int = 0


@dataclass
class ShuffleFetch(EngineEvent):
    shuffle_id: int
    reduce_partition: int
    records_read: int


@dataclass
class ExecutorLost(EngineEvent):
    executor_id: str
    reason: str = ""


@dataclass
class ExecutorRegistered(EngineEvent):
    """An executor joined the cluster (or an already-running persistent
    executor re-announced itself to a newly attached driver).

    ``warm`` distinguishes a fresh cold worker from a long-lived one whose
    task-binary / broadcast caches survived earlier jobs."""

    executor_id: str
    host: str = ""
    pid: int = 0
    slots: int = 0
    warm: bool = False


@dataclass
class ExecutorDecommissioned(EngineEvent):
    """An executor left the cluster after a drain (or a cluster stop)."""

    executor_id: str
    reason: str = ""
    tasks_run: int = 0


@dataclass
class ExecutorHeartbeat(EngineEvent):
    """Periodic liveness/progress report from one executor.

    Emitted by the driver-side heartbeat hub for shared-state backends and
    by worker processes (over a queue) for the process backend.
    """

    executor_id: str
    #: (stage_id, partition, attempt) triples currently running
    inflight: tuple = ()
    #: rows pulled through in-flight task iterators so far
    records_read: int = 0
    #: resident set size of the reporting process, bytes
    rss_bytes: int = 0
    #: OS pid of the reporting process (driver pid for shared backends)
    worker_pid: int = 0


@dataclass
class ExecutorTimedOut(EngineEvent):
    """A busy executor stopped heartbeating; the scheduler will retry its
    in-flight tasks elsewhere."""

    executor_id: str
    seconds_since_heartbeat: float = 0.0


@dataclass
class StageSkewDetected(EngineEvent):
    """A completed stage's per-partition distribution is badly imbalanced.

    Posted by :class:`repro.obs.diagnostics.DiagnosticsListener` when the
    max-over-median ratio of a partition metric (records, bytes, or
    duration) crosses the configured threshold."""

    stage_id: int
    job_id: int
    metric: str
    max_over_median: float
    gini: float = 0.0
    max_partition: int = -1


@dataclass
class StragglerDetected(EngineEvent):
    """One task attempt ran far past its stage's median duration."""

    stage_id: int
    job_id: int
    partition: int
    attempt: int
    executor_id: str
    duration_seconds: float
    median_seconds: float


@dataclass
class AdaptivePlanApplied(EngineEvent):
    """The adaptive planner rewrote part of the physical plan at a stage
    boundary.

    ``kind`` is ``"split"``, ``"coalesce"``, ``"rebalance"`` (both at
    once) or ``"serializer"``; for partition remaps ``old_partitions`` /
    ``new_partitions`` describe the reduce layout change, for serializer
    selections they carry the shuffle's map count and ``detail`` names the
    chosen codec."""

    shuffle_id: int
    stage_id: int
    job_id: int
    kind: str
    old_partitions: int
    new_partitions: int
    detail: str = ""


@dataclass
class SpeculativeTaskLaunched(EngineEvent):
    """The scheduler launched a duplicate attempt of a straggling task.

    First result wins; the loser is cancelled (or its result discarded)."""

    stage_id: int
    job_id: int
    partition: int
    original_executor: str
    speculative_executor: str
    elapsed_seconds: float
    median_seconds: float


@dataclass
class InferenceBatchCompleted(EngineEvent):
    """One replicate batch folded into the convergence monitor.

    Posted by :class:`repro.obs.inference.ConvergenceMonitor` after each
    batch of resampling replicates is folded into the running p-value
    estimates.  ``batch_width`` is zero for the final accounting event a
    finished run posts (the only one with a nonzero ``replicates_saved``)."""

    method: str
    batch_width: int
    replicates_total: int
    planned_replicates: int
    sets_total: int
    sets_converged: int
    replicates_saved: int = 0
    #: smallest running p-value estimate across all sets (drives the
    #: required_resamples advisor rule)
    min_pvalue: float = 1.0
    early_stop: bool = False


@dataclass
class SnpSetConverged(EngineEvent):
    """A SNP-set's p-value confidence interval became decisive.

    ``status`` is ``"decided_significant"`` (CI entirely below alpha) or
    ``"decided_null"`` (CI entirely above alpha); the CI bounds are those
    at decision time, so readers can audit the call."""

    method: str
    set_index: int
    set_name: str
    status: str
    pvalue: float
    ci_low: float
    ci_high: float
    replicates: int
    alpha: float = 0.05


@dataclass
class AlertFired(EngineEvent):
    """An alerting rule crossed pending -> firing.

    Posted by :class:`repro.obs.alerts.AlertManager` after a rule's
    condition held for its dwell time; ``labels`` identifies which series
    of the metric family tripped it."""

    rule: str
    severity: str
    metric: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0
    description: str = ""


@dataclass
class AlertResolved(EngineEvent):
    """A previously firing alert's condition cleared."""

    rule: str
    severity: str
    metric: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0
    description: str = ""


# -- listener + bus ----------------------------------------------------------

_CAMEL = re.compile(r"(?<!^)(?=[A-Z])")


def _handler_name(event_type: type) -> str:
    """``StageSubmitted`` -> ``on_stage_submitted``."""
    return "on_" + _CAMEL.sub("_", event_type.__name__).lower()


class Listener:
    """Base listener: override ``on_event`` or any typed ``on_*`` hook.

    For each posted event the bus calls ``on_event(event)`` first, then the
    type-specific hook (``on_job_start``, ``on_task_end``, ...) when the
    subclass defines one.
    """

    def on_event(self, event: EngineEvent) -> None:  # noqa: B027 - optional hook
        pass

    def close(self) -> None:  # noqa: B027 - optional hook
        """Called when the owning context stops."""


class ListenerBus:
    """Synchronous, thread-safe event dispatcher with listener isolation."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._listeners: list[Listener] = []
        self.events_posted = 0
        #: (listener, event, exception) triples for raised handlers
        self.listener_errors: list[tuple[Listener, EngineEvent, Exception]] = []

    def add_listener(self, listener: Listener) -> Listener:
        with self._lock:
            self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: Listener) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    @property
    def listeners(self) -> list[Listener]:
        with self._lock:
            return list(self._listeners)

    def post(self, event: EngineEvent) -> None:
        event.time = time.perf_counter()
        with self._lock:
            listeners = list(self._listeners)
            self.events_posted += 1
        hook = _handler_name(type(event))
        for listener in listeners:
            try:
                listener.on_event(event)
                typed = getattr(listener, hook, None)
                if typed is not None:
                    typed(event)
            except Exception as exc:  # isolation: never fail the engine
                with self._lock:
                    self.listener_errors.append((listener, event, exc))
                # deferred import: repro.obs pulls this module in at package
                # init, so a top-level import would be circular
                from repro.obs.logging import get_logger

                get_logger("repro.listener").warning(
                    "listener raised; event delivery continued",
                    listener=type(listener).__name__,
                    event=type(event).__name__,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def stop(self) -> None:
        """Close every listener (errors isolated) and drop registrations."""
        for listener in self.listeners:
            try:
                listener.close()
            except Exception as exc:
                with self._lock:
                    self.listener_errors.append((listener, EngineEvent(), exc))
        with self._lock:
            self._listeners.clear()


class CollectingListener(Listener):
    """Test/debug helper: remembers every event it sees, optionally filtered."""

    def __init__(self, *event_types: type) -> None:
        self.event_types = event_types or None
        self.events: list[EngineEvent] = []
        self._lock = threading.Lock()

    def on_event(self, event: EngineEvent) -> None:
        if self.event_types is None or isinstance(event, tuple(self.event_types)):
            with self._lock:
                self.events.append(event)

    def of(self, event_type: type) -> list[EngineEvent]:
        with self._lock:
            return [e for e in self.events if isinstance(e, event_type)]

    def names(self) -> list[str]:
        with self._lock:
            return [type(e).__name__ for e in self.events]


__all__ = [
    "EngineEvent",
    "JobStart",
    "JobEnd",
    "StageSubmitted",
    "StageCompleted",
    "TaskStart",
    "TaskEnd",
    "BlockCached",
    "BlockEvicted",
    "BlockFetchedRemote",
    "ShuffleWrite",
    "ShuffleFetch",
    "ExecutorLost",
    "ExecutorRegistered",
    "ExecutorDecommissioned",
    "ExecutorHeartbeat",
    "ExecutorTimedOut",
    "StageSkewDetected",
    "StragglerDetected",
    "AdaptivePlanApplied",
    "SpeculativeTaskLaunched",
    "InferenceBatchCompleted",
    "SnpSetConverged",
    "AlertFired",
    "AlertResolved",
    "Listener",
    "ListenerBus",
    "CollectingListener",
]
