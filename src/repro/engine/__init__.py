"""A from-scratch Spark-like execution engine.

The engine reproduces the subset of Apache Spark that SparkScore's
Algorithms 1-3 are written against:

- lazy :class:`~repro.engine.rdd.RDD` transformations with narrow and
  shuffle (wide) dependencies;
- a DAG scheduler that splits the lineage graph into stages at shuffle
  boundaries and executes them topologically
  (:mod:`repro.engine.scheduler`);
- per-executor block managers with LRU eviction and optional disk spill,
  giving ``cache()``/``persist()`` semantics (:mod:`repro.engine.blockmanager`);
- broadcast variables and accumulators;
- task retry and lineage-based recomputation after injected executor
  failures (:mod:`repro.engine.faults`).

Entry point is :class:`repro.engine.context.Context`::

    from repro.engine import Context

    with Context() as ctx:
        rdd = ctx.parallelize(range(100), num_partitions=4)
        total = rdd.map(lambda x: x * x).reduce(lambda a, b: a + b)
"""

from repro.engine.accumulator import Accumulator
from repro.engine.broadcast import Broadcast
from repro.engine.context import Context
from repro.engine.faults import FaultInjector, FaultPlan
from repro.engine.rdd import RDD
from repro.engine.storage import StorageLevel

__all__ = [
    "Accumulator",
    "Broadcast",
    "Context",
    "FaultInjector",
    "FaultPlan",
    "RDD",
    "StorageLevel",
]
