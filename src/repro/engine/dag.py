"""Stage graph construction from RDD lineage.

A *stage* is a maximal set of RDDs connected by narrow dependencies; stage
boundaries are exactly the :class:`ShuffleDependency` edges.  Shuffle-map
stages write map output for one shuffle id; the final (result) stage
computes the action.  The stage DAG is kept in a :class:`networkx.DiGraph`
for topological scheduling and introspection.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import networkx as nx

from repro.engine.dependencies import NarrowDependency, ShuffleDependency

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD


class Stage:
    """One schedulable stage: tasks over the partitions of ``rdd``."""

    def __init__(self, stage_id: int, rdd: "RDD", shuffle_dep: ShuffleDependency | None, parents: list["Stage"]) -> None:
        self.id = stage_id
        self.rdd = rdd
        #: the shuffle this stage's tasks write (None => result stage)
        self.shuffle_dep = shuffle_dep
        self.parents = parents
        self.num_tasks = rdd.num_partitions()
        self.attempt = 0

    @property
    def is_shuffle_map(self) -> bool:
        return self.shuffle_dep is not None

    @property
    def name(self) -> str:
        kind = f"shuffle_map[{self.shuffle_dep.shuffle_id}]" if self.shuffle_dep else "result"
        return f"stage {self.id} ({kind}: {self.rdd.name})"

    def parent_shuffle_ids(self) -> list[int]:
        """Shuffle ids this stage's tasks *read* (its input boundaries)."""
        return [dep.shuffle_id for dep in upstream_shuffle_deps(self.rdd)]

    def refresh_num_tasks(self) -> int:
        """Re-derive the task count after an adaptive plan mutation.

        ``num_tasks`` is snapshotted at construction; when the adaptive
        planner remaps the partitioner of a shuffle this stage reads, the
        partition count propagates through the narrow chain and the stage
        must be re-sized before its tasks are built.
        """
        self.num_tasks = self.rdd.num_partitions()
        return self.num_tasks

    def __repr__(self) -> str:
        return f"Stage(id={self.id}, rdd={self.rdd.name}, shuffle_map={self.is_shuffle_map})"


def upstream_shuffle_deps(rdd: "RDD") -> list[ShuffleDependency]:
    """Shuffle dependencies reachable from ``rdd`` through narrow deps only.

    These are the input boundaries of the stage ending at ``rdd``.
    """
    out: list[ShuffleDependency] = []
    seen: set[int] = set()
    frontier = [rdd]
    while frontier:
        node = frontier.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                out.append(dep)
            elif isinstance(dep, NarrowDependency):
                frontier.append(dep.rdd)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown dependency type {type(dep).__name__}")
    return out


class StageGraph:
    """The stage DAG for one job, plus lookup tables."""

    def __init__(self, final_rdd: "RDD", id_counter: "itertools.count[int]") -> None:
        self._ids = id_counter
        #: shuffle_id -> shuffle-map Stage (memoized so shared shuffles are
        #: computed once even when the lineage DAG is not a tree)
        self.shuffle_stages: dict[int, Stage] = {}
        self.graph = nx.DiGraph()
        self.result_stage = self._build_result_stage(final_rdd)

    # -- construction -----------------------------------------------------

    def _build_result_stage(self, rdd: "RDD") -> Stage:
        parents = self._parent_stages(rdd)
        stage = Stage(next(self._ids), rdd, None, parents)
        self._add_node(stage)
        return stage

    def _shuffle_stage(self, dep: ShuffleDependency) -> Stage:
        existing = self.shuffle_stages.get(dep.shuffle_id)
        if existing is not None:
            return existing
        parents = self._parent_stages(dep.rdd)
        stage = Stage(next(self._ids), dep.rdd, dep, parents)
        self.shuffle_stages[dep.shuffle_id] = stage
        self._add_node(stage)
        return stage

    def _parent_stages(self, rdd: "RDD") -> list[Stage]:
        return [self._shuffle_stage(dep) for dep in upstream_shuffle_deps(rdd)]

    def _add_node(self, stage: Stage) -> None:
        self.graph.add_node(stage.id, stage=stage)
        for parent in stage.parents:
            self.graph.add_edge(parent.id, stage.id)

    # -- queries ------------------------------------------------------------

    def all_stages(self) -> list[Stage]:
        """Stages in a valid execution (topological) order."""
        order = nx.topological_sort(self.graph)
        return [self.graph.nodes[sid]["stage"] for sid in order]

    def stage(self, stage_id: int) -> Stage:
        return self.graph.nodes[stage_id]["stage"]

    def ancestors(self, stage: Stage) -> list[Stage]:
        return [self.graph.nodes[sid]["stage"] for sid in nx.ancestors(self.graph, stage.id)]

    def __len__(self) -> int:
        return self.graph.number_of_nodes()
