"""Shuffle manager: map-output registry and reduce-side fetch.

Map tasks bucket their key-value output by the shuffle dependency's
partitioner and register the buckets here, tagged with the executor that
produced them.  Reduce tasks fetch and merge the buckets for their
partition.  When a fault kills an executor, its map outputs are invalidated
and subsequent fetches raise :class:`FetchFailedError`, which the DAG
scheduler handles by resubmitting the parent stage's missing tasks --
exactly Spark's recovery path.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.dependencies import ShuffleDependency
    from repro.engine.listener import ListenerBus
    from repro.engine.metrics import TaskMetrics


class FetchFailedError(RuntimeError):
    """Raised by a reduce task when a map output is unavailable."""

    def __init__(self, shuffle_id: int, map_partition: int) -> None:
        super().__init__(f"shuffle {shuffle_id} map output {map_partition} unavailable")
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition


@dataclass
class MapStatus:
    """Completion record for one map task's shuffle output."""

    shuffle_id: int
    map_partition: int
    executor_id: str
    bytes_by_reducer: tuple[int, ...]


class ShuffleManager:
    """Holds shuffle buckets; thread-safe."""

    def __init__(self, track_bytes: bool = True) -> None:
        #: optional listener bus (set by the context); shuffle events go here
        self.bus: "ListenerBus | None" = None
        self._lock = threading.Lock()
        # (shuffle_id, map_partition) -> {reduce_partition: [(k, v), ...]}
        self._outputs: dict[tuple[int, int], dict[int, list]] = {}
        # (shuffle_id, map_partition) -> executor that wrote it
        self._writers: dict[tuple[int, int], str] = {}
        # shuffle_id -> number of map partitions expected
        self._num_maps: dict[int, int] = {}
        self._track_bytes = track_bytes

    # -- registration --------------------------------------------------------

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        with self._lock:
            self._num_maps[shuffle_id] = num_maps

    def write_map_output(
        self,
        dep: "ShuffleDependency",
        map_partition: int,
        records: Iterable,
        executor_id: str,
        metrics: "TaskMetrics | None" = None,
    ) -> MapStatus:
        """Bucket ``records`` by key and register the output."""
        partitioner = dep.partitioner
        buckets: dict[int, list] = {i: [] for i in range(partitioner.num_partitions)}
        agg = dep.aggregator
        if agg is not None and agg.map_side_combine:
            combined: dict[int, dict] = {i: {} for i in range(partitioner.num_partitions)}
            for key, value in records:
                bucket = combined[partitioner.partition(key)]
                if key in bucket:
                    bucket[key] = agg.merge_value(bucket[key], value)
                else:
                    bucket[key] = agg.create_combiner(value)
            for reduce_idx, bucket in combined.items():
                buckets[reduce_idx] = list(bucket.items())
        else:
            for key, value in records:
                buckets[partitioner.partition(key)].append((key, value))

        sizes = []
        for reduce_idx in range(partitioner.num_partitions):
            if self._track_bytes:
                sizes.append(len(pickle.dumps(buckets[reduce_idx], protocol=pickle.HIGHEST_PROTOCOL)))
            else:
                sizes.append(0)
        status = MapStatus(dep.shuffle_id, map_partition, executor_id, tuple(sizes))
        records_written = sum(len(b) for b in buckets.values())
        with self._lock:
            self._outputs[(dep.shuffle_id, map_partition)] = buckets
            self._writers[(dep.shuffle_id, map_partition)] = executor_id
        if metrics is not None:
            metrics.shuffle_bytes_written += sum(sizes)
            metrics.shuffle_records_written += records_written
        if self.bus is not None:
            from repro.engine.listener import ShuffleWrite

            self.bus.post(ShuffleWrite(
                dep.shuffle_id, map_partition, executor_id, sum(sizes), records_written
            ))
        return status

    def register_map_output(
        self,
        dep: "ShuffleDependency",
        map_partition: int,
        buckets: dict[int, list],
        executor_id: str,
        metrics: "TaskMetrics | None" = None,
    ) -> MapStatus:
        """Adopt pre-bucketed output computed by a worker process.

        The worker already partitioned the records and ran any map-side
        combine; pushing its output back through :meth:`write_map_output`
        would apply ``create_combiner`` a second time (wrong for
        non-identity combiners such as ``fold_by_key`` zeros).  Only byte
        accounting happens here — the worker counted
        ``shuffle_records_written`` into the task metrics but could not
        price the buckets (its local manager runs with
        ``track_bytes=False``).
        """
        partitioner = dep.partitioner
        full = {i: list(buckets.get(i, ())) for i in range(partitioner.num_partitions)}
        sizes = []
        for reduce_idx in range(partitioner.num_partitions):
            if self._track_bytes:
                sizes.append(len(pickle.dumps(full[reduce_idx], protocol=pickle.HIGHEST_PROTOCOL)))
            else:
                sizes.append(0)
        status = MapStatus(dep.shuffle_id, map_partition, executor_id, tuple(sizes))
        records_written = sum(len(b) for b in full.values())
        with self._lock:
            self._outputs[(dep.shuffle_id, map_partition)] = full
            self._writers[(dep.shuffle_id, map_partition)] = executor_id
        if metrics is not None:
            metrics.shuffle_bytes_written += sum(sizes)
        if self.bus is not None:
            from repro.engine.listener import ShuffleWrite

            self.bus.post(ShuffleWrite(
                dep.shuffle_id, map_partition, executor_id, sum(sizes), records_written
            ))
        return status

    # -- fetch ----------------------------------------------------------------

    def available_maps(self, shuffle_id: int) -> set[int]:
        with self._lock:
            return {mp for (sid, mp) in self._outputs if sid == shuffle_id}

    def missing_maps(self, shuffle_id: int) -> set[int]:
        with self._lock:
            num = self._num_maps.get(shuffle_id)
            if num is None:
                raise KeyError(f"shuffle {shuffle_id} was never registered")
            have = {mp for (sid, mp) in self._outputs if sid == shuffle_id}
            return set(range(num)) - have

    def fetch(
        self,
        shuffle_id: int,
        reduce_partition: int,
        metrics: "TaskMetrics | None" = None,
    ) -> Iterator[tuple]:
        """Yield all (k, v) pairs destined for ``reduce_partition``.

        Raises :class:`FetchFailedError` on the first missing map output.
        """
        with self._lock:
            num_maps = self._num_maps.get(shuffle_id)
            if num_maps is None:
                raise KeyError(f"shuffle {shuffle_id} was never registered")
            chunks: list[list] = []
            for map_partition in range(num_maps):
                output = self._outputs.get((shuffle_id, map_partition))
                if output is None:
                    raise FetchFailedError(shuffle_id, map_partition)
                chunks.append(output.get(reduce_partition, []))
        if self.bus is not None:
            from repro.engine.listener import ShuffleFetch

            self.bus.post(ShuffleFetch(
                shuffle_id, reduce_partition, sum(len(c) for c in chunks)
            ))
        for chunk in chunks:
            if metrics is not None:
                metrics.shuffle_records_read += len(chunk)
            yield from chunk

    # -- failure handling -------------------------------------------------------

    def remove_outputs_on_executor(self, executor_id: str) -> dict[int, set[int]]:
        """Invalidate all map outputs written by a dead executor.

        Returns ``{shuffle_id: {map_partitions lost}}``.
        """
        lost: dict[int, set[int]] = {}
        with self._lock:
            for key in list(self._writers):
                if self._writers[key] == executor_id:
                    shuffle_id, map_partition = key
                    lost.setdefault(shuffle_id, set()).add(map_partition)
                    del self._writers[key]
                    self._outputs.pop(key, None)
        return lost

    def unregister_shuffle(self, shuffle_id: int) -> None:
        with self._lock:
            self._num_maps.pop(shuffle_id, None)
            for key in [k for k in self._outputs if k[0] == shuffle_id]:
                del self._outputs[key]
                self._writers.pop(key, None)
