"""Shuffle manager: map-output registry and reduce-side fetch.

Map tasks bucket their key-value output by the shuffle dependency's
partitioner and register the buckets here, tagged with the executor that
produced them.  Reduce tasks fetch and merge the buckets for their
partition.  When a fault kills an executor, its map outputs are invalidated
and subsequent fetches raise :class:`FetchFailedError`, which the DAG
scheduler handles by resubmitting the parent stage's missing tasks --
exactly Spark's recovery path.

Since the data-plane overhaul, map outputs are stored as *serialized byte
frames* (:class:`ShuffleBlock`) produced by the manager's configured
:class:`~repro.engine.serializer.Serializer` -- optionally compressed --
instead of live Python lists.  Batched record encoding happens once on the
write side; the reduce side decodes lazily, one map-output frame at a time,
as the fetch iterator advances.  This is the analogue of Spark's
serialized, compressed shuffle files: a worker-process map task ships its
frames to the driver as opaque bytes (no per-record pickle overhead), and
:meth:`register_map_output` adopts them without a decode/re-encode cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.engine.serializer import Serializer, get_serializer

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.dependencies import ShuffleDependency
    from repro.engine.listener import ListenerBus
    from repro.engine.metrics import TaskMetrics
    from repro.engine.partitioner import ShuffleRemap


class FetchFailedError(RuntimeError):
    """Raised by a reduce task when a map output is unavailable."""

    def __init__(self, shuffle_id: int, map_partition: int) -> None:
        super().__init__(f"shuffle {shuffle_id} map output {map_partition} unavailable")
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition


@dataclass
class MapStatus:
    """Completion record for one map task's shuffle output."""

    shuffle_id: int
    map_partition: int
    executor_id: str
    bytes_by_reducer: tuple[int, ...]


@dataclass
class ShuffleBlock:
    """One reduce partition's worth of a map task's output, as bytes.

    ``payload`` is a serializer frame (possibly compressed);
    ``serialized_bytes`` is the pre-compression serialized size, which is
    what the legacy ``shuffle_bytes_written`` metric and
    ``MapStatus.bytes_by_reducer`` report, so byte accounting stays
    comparable across serializers.
    """

    payload: bytes
    serialized_bytes: int
    num_records: int


class ShuffleManager:
    """Holds serialized shuffle blocks; thread-safe.

    ``track_bytes=False`` (worker-local managers) suppresses metric byte
    accounting -- the driver prices adopted buckets when it merges them --
    but frames are always encoded: they *are* the storage format.
    """

    def __init__(
        self,
        track_bytes: bool = True,
        serializer: "Serializer | str | None" = None,
    ) -> None:
        #: optional listener bus (set by the context); shuffle events go here
        self.bus: "ListenerBus | None" = None
        self.serializer: Serializer = get_serializer(serializer)
        self._lock = threading.Lock()
        # (shuffle_id, map_partition) -> {reduce_partition: ShuffleBlock}
        self._outputs: dict[tuple[int, int], dict[int, ShuffleBlock]] = {}
        # (shuffle_id, map_partition) -> executor that wrote it
        self._writers: dict[tuple[int, int], str] = {}
        # shuffle_id -> number of map partitions expected
        self._num_maps: dict[int, int] = {}
        # shuffle_id -> adaptive reduce-side remap (storage stays in the
        # original layout; fetch translates new reduce indices to old ones)
        self._remaps: "dict[int, ShuffleRemap]" = {}
        # shuffle_id -> adaptively chosen serializer (overrides self.serializer)
        self._serializer_overrides: dict[int, Serializer] = {}
        self._track_bytes = track_bytes

    # -- per-shuffle serializer ----------------------------------------------

    def serializer_for(self, shuffle_id: int) -> Serializer:
        """The serializer this shuffle's frames are encoded with."""
        return self._serializer_overrides.get(shuffle_id, self.serializer)

    def set_serializer_override(self, shuffle_id: int, which: "str | Serializer") -> None:
        """Pin a serializer for one shuffle, re-encoding any frames already
        written with the old one (the adaptive probe's first map output).

        Must be called before reduce tasks read the shuffle; the scheduler
        only switches while the probe gate holds back the remaining maps.
        """
        new = get_serializer(which)
        old = self.serializer_for(shuffle_id)
        with self._lock:
            self._serializer_overrides[shuffle_id] = new
            if new.name == old.name:
                return
            for (sid, _mp), blocks in self._outputs.items():
                if sid != shuffle_id:
                    continue
                for reduce_idx, block in blocks.items():
                    records = old.loads(block.payload)
                    frame, serialized = new.encode_with_stats(records)
                    blocks[reduce_idx] = ShuffleBlock(frame, serialized, block.num_records)

    def serializer_overrides(self) -> dict[int, str]:
        """Name map shipped to worker processes inside the task payload."""
        return {sid: ser.name for sid, ser in self._serializer_overrides.items()}

    # -- registration --------------------------------------------------------

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        with self._lock:
            self._num_maps[shuffle_id] = num_maps

    def encode_bucket(self, records: list, serializer: Serializer | None = None) -> ShuffleBlock:
        """Serialize one reduce bucket into a frame."""
        ser = serializer if serializer is not None else self.serializer
        frame, serialized = ser.encode_with_stats(records)
        return ShuffleBlock(frame, serialized, len(records))

    def write_map_output(
        self,
        dep: "ShuffleDependency",
        map_partition: int,
        records: Iterable,
        executor_id: str,
        metrics: "TaskMetrics | None" = None,
    ) -> MapStatus:
        """Bucket ``records`` by key, serialize the buckets, register them."""
        partitioner = dep.partitioner
        buckets: dict[int, list] = {i: [] for i in range(partitioner.num_partitions)}
        agg = dep.aggregator
        if agg is not None and agg.map_side_combine:
            combined: dict[int, dict] = {i: {} for i in range(partitioner.num_partitions)}
            for key, value in records:
                bucket = combined[partitioner.partition(key)]
                if key in bucket:
                    bucket[key] = agg.merge_value(bucket[key], value)
                else:
                    bucket[key] = agg.create_combiner(value)
            for reduce_idx, bucket in combined.items():
                buckets[reduce_idx] = list(bucket.items())
        else:
            for key, value in records:
                buckets[partitioner.partition(key)].append((key, value))

        encode_start = time.perf_counter()
        ser = self.serializer_for(dep.shuffle_id)
        blocks = {
            reduce_idx: self.encode_bucket(bucket, ser)
            for reduce_idx, bucket in buckets.items()
        }
        encode_seconds = time.perf_counter() - encode_start
        return self._register(
            dep.shuffle_id,
            map_partition,
            blocks,
            partitioner.num_partitions,
            executor_id,
            metrics,
            encode_seconds,
        )

    def register_map_output(
        self,
        dep: "ShuffleDependency",
        map_partition: int,
        buckets: "dict[int, ShuffleBlock] | dict[int, list]",
        executor_id: str,
        metrics: "TaskMetrics | None" = None,
    ) -> MapStatus:
        """Adopt pre-bucketed output computed by a worker process.

        The worker already partitioned the records, ran any map-side
        combine, *and serialized the buckets into frames*; pushing its
        output back through :meth:`write_map_output` would apply
        ``create_combiner`` a second time (wrong for non-identity combiners
        such as ``fold_by_key`` zeros) and pay a decode/re-encode cycle.
        Frames are adopted as-is; live lists (legacy callers / tests) are
        encoded here.  Byte accounting happens on this side of the process
        boundary: the worker counted ``shuffle_records_written`` into the
        task metrics but runs with ``track_bytes=False``.
        """
        partitioner = dep.partitioner
        encode_start = time.perf_counter()
        ser = self.serializer_for(dep.shuffle_id)
        blocks: dict[int, ShuffleBlock] = {}
        for reduce_idx in range(partitioner.num_partitions):
            bucket = buckets.get(reduce_idx)
            if isinstance(bucket, ShuffleBlock):
                blocks[reduce_idx] = bucket
            else:
                blocks[reduce_idx] = self.encode_bucket(list(bucket or ()), ser)
        encode_seconds = time.perf_counter() - encode_start
        return self._register(
            dep.shuffle_id,
            map_partition,
            blocks,
            partitioner.num_partitions,
            executor_id,
            metrics,
            encode_seconds,
            count_records=False,
        )

    def _register(
        self,
        shuffle_id: int,
        map_partition: int,
        blocks: dict[int, ShuffleBlock],
        num_reducers: int,
        executor_id: str,
        metrics: "TaskMetrics | None",
        encode_seconds: float,
        count_records: bool = True,
    ) -> MapStatus:
        sizes = tuple(blocks[i].serialized_bytes for i in range(num_reducers))
        compressed = sum(len(blocks[i].payload) for i in range(num_reducers))
        records_written = sum(block.num_records for block in blocks.values())
        status = MapStatus(shuffle_id, map_partition, executor_id, sizes)
        with self._lock:
            self._outputs[(shuffle_id, map_partition)] = blocks
            self._writers[(shuffle_id, map_partition)] = executor_id
        if metrics is not None:
            # encode time is charged where the encode ran; byte totals are
            # only priced on the driver side (track_bytes) so worker-side
            # managers never double-count
            metrics.serializer_seconds += encode_seconds
            if count_records:
                metrics.shuffle_records_written += records_written
            if self._track_bytes:
                metrics.shuffle_bytes_written += sum(sizes)
                metrics.shuffle_compressed_bytes += compressed
        if self.bus is not None:
            from repro.engine.listener import ShuffleWrite

            self.bus.post(ShuffleWrite(
                shuffle_id, map_partition, executor_id, sum(sizes),
                records_written, compressed_bytes=compressed,
            ))
        return status

    # -- adaptive remaps -------------------------------------------------------

    def set_remap(self, remap: "ShuffleRemap") -> None:
        """Install an adaptive reduce-side remap for a fully-written shuffle.

        Storage keeps the original bucket layout (recomputed map tasks
        after an executor loss still write the old layout); every fetch of
        a remapped shuffle translates new reduce indices into ordered
        slices of the old buckets.
        """
        with self._lock:
            self._remaps[remap.shuffle_id] = remap

    def clear_remap(self, shuffle_id: int) -> None:
        """Drop a remap at job end: remaps are plan state, not storage state,
        and a later job over the same lineage must see the original layout."""
        with self._lock:
            self._remaps.pop(shuffle_id, None)

    def remap_for(self, shuffle_id: int) -> "ShuffleRemap | None":
        return self._remaps.get(shuffle_id)

    def peek_map_output(self, shuffle_id: int, map_partition: int) -> dict[int, ShuffleBlock]:
        """Copy of one map task's registered buckets (adaptive probing)."""
        with self._lock:
            return dict(self._outputs.get((shuffle_id, map_partition)) or {})

    def bucket_stats(self, shuffle_id: int) -> list[list[tuple[int, int]]]:
        """Per-old-reduce-bucket, per-map ``(num_records, serialized_bytes)``.

        Requires every map output to be registered (the planner runs at a
        stage boundary, after the map stage completed); raises
        :class:`FetchFailedError` on the first missing map.
        """
        with self._lock:
            num_maps = self._num_maps.get(shuffle_id)
            if num_maps is None:
                raise KeyError(f"shuffle {shuffle_id} was never registered")
            outputs = []
            num_reducers = 0
            for map_partition in range(num_maps):
                output = self._outputs.get((shuffle_id, map_partition))
                if output is None:
                    raise FetchFailedError(shuffle_id, map_partition)
                outputs.append(output)
                if output:
                    num_reducers = max(num_reducers, max(output) + 1)
            stats: list[list[tuple[int, int]]] = []
            for reduce_idx in range(num_reducers):
                row = []
                for output in outputs:
                    block = output.get(reduce_idx)
                    if block is None:
                        row.append((0, 0))
                    else:
                        row.append((block.num_records, block.serialized_bytes))
                stats.append(row)
            return stats

    # -- fetch ----------------------------------------------------------------

    def available_maps(self, shuffle_id: int) -> set[int]:
        with self._lock:
            return {mp for (sid, mp) in self._outputs if sid == shuffle_id}

    def missing_maps(self, shuffle_id: int) -> set[int]:
        with self._lock:
            num = self._num_maps.get(shuffle_id)
            if num is None:
                raise KeyError(f"shuffle {shuffle_id} was never registered")
            have = {mp for (sid, mp) in self._outputs if sid == shuffle_id}
            return set(range(num)) - have

    def fetch_blocks(self, shuffle_id: int, reduce_partition: int) -> list[ShuffleBlock]:
        """All map-output frames destined for ``reduce_partition``.

        Raises :class:`FetchFailedError` on the first missing map output.
        Frames are returned still-encoded so the caller (reduce task, or
        the scheduler pre-fetching for a worker process) can move them as
        opaque bytes and decode lazily.
        """
        with self._lock:
            num_maps = self._num_maps.get(shuffle_id)
            if num_maps is None:
                raise KeyError(f"shuffle {shuffle_id} was never registered")
            remap = self._remaps.get(shuffle_id)
            blocks: list[ShuffleBlock] = []
            if remap is not None:
                # translate the rebalanced reduce index into ordered slices
                # of the original layout
                for old_idx, map_lo, map_hi in remap.segments[reduce_partition]:
                    for map_partition in range(map_lo, map_hi):
                        output = self._outputs.get((shuffle_id, map_partition))
                        if output is None:
                            raise FetchFailedError(shuffle_id, map_partition)
                        block = output.get(old_idx)
                        if block is not None:
                            blocks.append(block)
            else:
                for map_partition in range(num_maps):
                    output = self._outputs.get((shuffle_id, map_partition))
                    if output is None:
                        raise FetchFailedError(shuffle_id, map_partition)
                    block = output.get(reduce_partition)
                    if block is not None:
                        blocks.append(block)
        if self.bus is not None:
            from repro.engine.listener import ShuffleFetch

            self.bus.post(ShuffleFetch(
                shuffle_id, reduce_partition,
                sum(b.num_records for b in blocks),
            ))
        return blocks

    def fetch(
        self,
        shuffle_id: int,
        reduce_partition: int,
        metrics: "TaskMetrics | None" = None,
    ) -> Iterator[tuple]:
        """Yield all (k, v) pairs destined for ``reduce_partition``.

        Decodes one map-output frame at a time as the iterator advances
        (lazy reduce-side decode).  Raises :class:`FetchFailedError` on the
        first missing map output.
        """
        blocks = self.fetch_blocks(shuffle_id, reduce_partition)
        serializer = self.serializer_for(shuffle_id)
        for block in blocks:
            if block.num_records == 0:
                continue
            decode_start = time.perf_counter()
            records = serializer.loads(block.payload)
            if metrics is not None:
                metrics.serializer_seconds += time.perf_counter() - decode_start
                metrics.shuffle_records_read += block.num_records
                metrics.shuffle_bytes_read += block.serialized_bytes
            yield from records

    # -- failure handling -------------------------------------------------------

    def remove_outputs_on_executor(self, executor_id: str) -> dict[int, set[int]]:
        """Invalidate all map outputs written by a dead executor.

        Returns ``{shuffle_id: {map_partitions lost}}``.
        """
        lost: dict[int, set[int]] = {}
        with self._lock:
            for key in list(self._writers):
                if self._writers[key] == executor_id:
                    shuffle_id, map_partition = key
                    lost.setdefault(shuffle_id, set()).add(map_partition)
                    del self._writers[key]
                    self._outputs.pop(key, None)
        return lost

    def unregister_shuffle(self, shuffle_id: int) -> None:
        with self._lock:
            self._num_maps.pop(shuffle_id, None)
            self._remaps.pop(shuffle_id, None)
            self._serializer_overrides.pop(shuffle_id, None)
            for key in [k for k in self._outputs if k[0] == shuffle_id]:
                del self._outputs[key]
                self._writers.pop(key, None)
