"""Pluggable data-plane serializers (Spark's ``spark.serializer`` analogue).

Everything the engine moves between tasks -- shuffle buckets, cached-block
spills, broadcast payloads, task results -- goes through a
:class:`Serializer`.  Three implementations:

- :class:`PickleSerializer` -- the default; ``pickle`` at the highest
  protocol, exactly what the engine did before this layer existed.
- :class:`NumpySerializer` -- encodes NumPy arrays (and
  :class:`~repro.core.blocks.SnpBlock` records built from them) as raw
  ``dtype + shape + buffer`` frames with no pickle round-trip for the
  array payload; containers and scalars get compact tagged frames and
  anything unrecognized falls back to an embedded pickle frame.  Decoded
  values are bit-identical to the originals -- the cross-backend
  equivalence matrix pins this down.
- :class:`CompressedSerializer` -- wraps any inner serializer and
  ``zlib``-compresses frames above a size threshold (small frames are
  framed raw: compressing a 40-byte bucket costs more than it saves).

Pick one with :func:`get_serializer` (``"pickle"``, ``"numpy"``,
``"compressed"``) or pass an instance to ``Context(serializer=...)``.

A frame is self-describing: ``loads`` needs no out-of-band schema, so a
worker process can decode a frame produced by the driver (and vice versa)
knowing only the serializer name, which ships in the task payload.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Iterator

import numpy as np

__all__ = [
    "Serializer",
    "PickleSerializer",
    "NumpySerializer",
    "CompressedSerializer",
    "FrameBatch",
    "get_serializer",
    "compress_blob",
    "decompress_blob",
]


class Serializer:
    """Interface: ``dumps``/``loads`` plus stats-aware encoding.

    ``encode_with_stats`` exists so byte accounting can distinguish the
    *serialized* (pre-compression) size from the *framed* (on-the-wire)
    size without serializing twice; for uncompressed serializers the two
    are equal.
    """

    name: str = "base"

    def dumps(self, obj: Any) -> bytes:
        raise NotImplementedError

    def loads(self, data: bytes) -> Any:
        raise NotImplementedError

    def encode_with_stats(self, obj: Any) -> tuple[bytes, int]:
        """Return ``(frame, serialized_bytes)``.

        ``serialized_bytes`` is the size before any compression, i.e. the
        number the legacy ``shuffle_bytes_written`` metric reports.
        """
        frame = self.dumps(obj)
        return frame, len(frame)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PickleSerializer(Serializer):
    """Default serializer: stdlib pickle at the highest protocol."""

    name = "pickle"

    def dumps(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def loads(self, data: bytes) -> Any:
        return pickle.loads(data)


# -- numpy frame format -------------------------------------------------------
#
# One-byte tag, then a tag-specific body.  Multi-byte integers are
# little-endian.  Arrays are encoded as dtype descriptor + shape + raw
# C-contiguous buffer; object-dtype and exotic arrays fall back to pickle.

_TAG_NONE = b"n"
_TAG_TRUE = b"t"
_TAG_FALSE = b"f"
_TAG_INT = b"i"  # fits in signed 64-bit
_TAG_FLOAT = b"d"
_TAG_STR = b"s"
_TAG_BYTES = b"y"
_TAG_LIST = b"L"
_TAG_TUPLE = b"T"
_TAG_DICT = b"D"
_TAG_ARRAY = b"N"
_TAG_SCALAR = b"c"  # numpy scalar: dtype + raw bytes
_TAG_SNPBLOCK = b"K"
_TAG_PICKLE = b"P"

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _encode_array(out: bytearray, arr: np.ndarray) -> None:
    descr = arr.dtype.str.encode("ascii")
    out += _TAG_ARRAY
    out += struct.pack("<H", len(descr))
    out += descr
    out += struct.pack("<B", arr.ndim)
    out += struct.pack(f"<{arr.ndim}q", *arr.shape)
    buf = np.ascontiguousarray(arr)
    raw = buf.tobytes()
    out += struct.pack("<Q", len(raw))
    out += raw


class NumpySerializer(Serializer):
    """Raw-buffer frames for ndarray/SnpBlock payloads; pickle fallback."""

    name = "numpy"

    def dumps(self, obj: Any) -> bytes:
        out = bytearray()
        self._encode(out, obj)
        return bytes(out)

    def loads(self, data: bytes) -> Any:
        value, offset = self._decode(memoryview(data), 0)
        if offset != len(data):
            raise ValueError(f"trailing bytes in numpy frame ({len(data) - offset})")
        return value

    # -- encode ----------------------------------------------------------

    def _encode(self, out: bytearray, obj: Any) -> None:
        if obj is None:
            out += _TAG_NONE
        elif obj is True:
            out += _TAG_TRUE
        elif obj is False:
            out += _TAG_FALSE
        elif type(obj) is int:
            if _I64_MIN <= obj <= _I64_MAX:
                out += _TAG_INT
                out += struct.pack("<q", obj)
            else:
                self._encode_pickle(out, obj)
        elif type(obj) is float:
            out += _TAG_FLOAT
            out += struct.pack("<d", obj)
        elif type(obj) is str:
            raw = obj.encode("utf-8")
            out += _TAG_STR
            out += struct.pack("<Q", len(raw))
            out += raw
        elif type(obj) is bytes:
            out += _TAG_BYTES
            out += struct.pack("<Q", len(obj))
            out += obj
        elif type(obj) is list or type(obj) is tuple:
            out += _TAG_LIST if type(obj) is list else _TAG_TUPLE
            out += struct.pack("<Q", len(obj))
            for item in obj:
                self._encode(out, item)
        elif type(obj) is dict:
            out += _TAG_DICT
            out += struct.pack("<Q", len(obj))
            for key, value in obj.items():
                self._encode(out, key)
                self._encode(out, value)
        elif isinstance(obj, np.ndarray):
            if obj.dtype.hasobject:
                self._encode_pickle(out, obj)
            else:
                _encode_array(out, obj)
        elif isinstance(obj, np.generic):
            if obj.dtype.hasobject:
                self._encode_pickle(out, obj)
            else:
                descr = obj.dtype.str.encode("ascii")
                raw = obj.tobytes()
                out += _TAG_SCALAR
                out += struct.pack("<H", len(descr))
                out += descr
                out += struct.pack("<Q", len(raw))
                out += raw
        elif _is_snp_block(obj):
            out += _TAG_SNPBLOCK
            _encode_array(out, obj.snp_ids)
            _encode_array(out, obj.set_ids)
            _encode_array(out, obj.weights_sq)
            _encode_array(out, obj.genotypes)
            out += struct.pack("<q", obj.n_sets)
        else:
            self._encode_pickle(out, obj)

    def _encode_pickle(self, out: bytearray, obj: Any) -> None:
        raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out += _TAG_PICKLE
        out += struct.pack("<Q", len(raw))
        out += raw

    # -- decode ----------------------------------------------------------

    def _decode(self, view: memoryview, offset: int) -> tuple[Any, int]:
        tag = view[offset:offset + 1].tobytes()
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag == _TAG_INT:
            return struct.unpack_from("<q", view, offset)[0], offset + 8
        if tag == _TAG_FLOAT:
            return struct.unpack_from("<d", view, offset)[0], offset + 8
        if tag == _TAG_STR:
            (length,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            return view[offset:offset + length].tobytes().decode("utf-8"), offset + length
        if tag == _TAG_BYTES:
            (length,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            return view[offset:offset + length].tobytes(), offset + length
        if tag in (_TAG_LIST, _TAG_TUPLE):
            (count,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            items = []
            for _ in range(count):
                item, offset = self._decode(view, offset)
                items.append(item)
            return (items if tag == _TAG_LIST else tuple(items)), offset
        if tag == _TAG_DICT:
            (count,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            result: dict = {}
            for _ in range(count):
                key, offset = self._decode(view, offset)
                value, offset = self._decode(view, offset)
                result[key] = value
            return result, offset
        if tag == _TAG_ARRAY:
            return self._decode_array(view, offset)
        if tag == _TAG_SCALAR:
            (descr_len,) = struct.unpack_from("<H", view, offset)
            offset += 2
            dtype = np.dtype(view[offset:offset + descr_len].tobytes().decode("ascii"))
            offset += descr_len
            (nbytes,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            value = np.frombuffer(view[offset:offset + nbytes], dtype=dtype)[0]
            return value, offset + nbytes
        if tag == _TAG_SNPBLOCK:
            fields = []
            for _ in range(4):
                inner_tag = view[offset:offset + 1].tobytes()
                if inner_tag != _TAG_ARRAY:
                    raise ValueError("corrupt SnpBlock frame")
                arr, offset = self._decode_array(view, offset + 1)
                fields.append(arr)
            (n_sets,) = struct.unpack_from("<q", view, offset)
            offset += 8
            from repro.core.blocks import SnpBlock

            return SnpBlock(fields[0], fields[1], fields[2], fields[3], n_sets), offset
        if tag == _TAG_PICKLE:
            (length,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            return pickle.loads(view[offset:offset + length]), offset + length
        raise ValueError(f"unknown numpy-frame tag {tag!r}")

    def _decode_array(self, view: memoryview, offset: int) -> tuple[np.ndarray, int]:
        (descr_len,) = struct.unpack_from("<H", view, offset)
        offset += 2
        dtype = np.dtype(view[offset:offset + descr_len].tobytes().decode("ascii"))
        offset += descr_len
        (ndim,) = struct.unpack_from("<B", view, offset)
        offset += 1
        shape = struct.unpack_from(f"<{ndim}q", view, offset)
        offset += 8 * ndim
        (nbytes,) = struct.unpack_from("<Q", view, offset)
        offset += 8
        # copy so the array owns (writable) memory independent of the frame
        arr = np.frombuffer(
            view[offset:offset + nbytes], dtype=dtype
        ).reshape(shape).copy()
        return arr, offset + nbytes


def _is_snp_block(obj: Any) -> bool:
    cls = type(obj)
    if cls.__name__ != "SnpBlock":
        return False
    try:
        from repro.core.blocks import SnpBlock
    except ImportError:  # pragma: no cover - core always importable in-repo
        return False
    return cls is SnpBlock


# -- compression wrapper ------------------------------------------------------

_COMP_RAW = b"R"
_COMP_ZLIB = b"Z"


class CompressedSerializer(Serializer):
    """zlib-compress frames from an inner serializer above a threshold."""

    name = "compressed"

    def __init__(
        self,
        inner: Serializer | None = None,
        threshold: int = 512,
        level: int = 6,
    ) -> None:
        self.inner = inner if inner is not None else NumpySerializer()
        self.threshold = threshold
        self.level = level

    def dumps(self, obj: Any) -> bytes:
        return self.encode_with_stats(obj)[0]

    def encode_with_stats(self, obj: Any) -> tuple[bytes, int]:
        raw = self.inner.dumps(obj)
        if len(raw) >= self.threshold:
            packed = zlib.compress(raw, self.level)
            if len(packed) < len(raw):
                return _COMP_ZLIB + packed, len(raw)
        return _COMP_RAW + raw, len(raw)

    def loads(self, data: bytes) -> Any:
        flag, body = data[:1], data[1:]
        if isinstance(flag, memoryview):  # pragma: no cover - defensive
            flag = flag.tobytes()
        if flag == _COMP_ZLIB:
            return self.inner.loads(zlib.decompress(body))
        if flag == _COMP_RAW:
            return self.inner.loads(body)
        raise ValueError(f"unknown compression flag {flag!r}")

    def __repr__(self) -> str:
        return (
            f"CompressedSerializer(inner={self.inner!r}, "
            f"threshold={self.threshold}, level={self.level})"
        )


# -- standalone blob compression ---------------------------------------------
#
# Task binaries and broadcast payloads are already bytes when the transport
# sees them; these helpers apply the same flag-prefixed zlib framing to a
# blob without re-serializing it.


def compress_blob(blob: bytes, threshold: int = 512, level: int = 6) -> bytes:
    """Flag-prefixed, possibly-zlib'd copy of ``blob`` (see ``decompress_blob``)."""
    if len(blob) >= threshold:
        packed = zlib.compress(blob, level)
        if len(packed) < len(blob):
            return _COMP_ZLIB + packed
    return _COMP_RAW + blob


def decompress_blob(framed: bytes) -> bytes:
    flag = framed[:1]
    if flag == _COMP_ZLIB:
        return zlib.decompress(memoryview(framed)[1:])
    if flag == _COMP_RAW:
        return bytes(memoryview(framed)[1:])
    raise ValueError(f"unknown compression flag {flag!r}")


# -- deferred-decode batches --------------------------------------------------


class FrameBatch:
    """A picklable sequence of serialized frames, decoded on iteration.

    The scheduler pre-fetches shuffle input for process-backend tasks as
    the map outputs' *frames* (no driver-side decode + re-pickle); the
    worker iterates the batch, which decodes each frame on first traversal.
    ``iter()`` yields the concatenated records, matching the shape the old
    list-of-records prefetch produced.
    """

    __slots__ = ("frames", "serializer")

    def __init__(self, frames: list[bytes], serializer: "str | Serializer") -> None:
        self.frames = frames
        self.serializer = serializer

    def __iter__(self) -> Iterator:
        serializer = get_serializer(self.serializer)
        for frame in self.frames:
            yield from serializer.loads(frame)

    def __reduce__(self):
        return (FrameBatch, (self.frames, self.serializer))

    def __repr__(self) -> str:
        return f"FrameBatch({len(self.frames)} frames, {self.serializer!r})"


# -- registry -----------------------------------------------------------------

SERIALIZER_NAMES = ("pickle", "numpy", "compressed")


def get_serializer(which: "str | Serializer | None") -> Serializer:
    """Resolve a serializer name (or pass an instance through)."""
    if which is None:
        return PickleSerializer()
    if isinstance(which, Serializer):
        return which
    if which == "pickle":
        return PickleSerializer()
    if which == "numpy":
        return NumpySerializer()
    if which == "compressed":
        return CompressedSerializer()
    raise ValueError(
        f"unknown serializer {which!r}; expected one of {SERIALIZER_NAMES}"
    )
