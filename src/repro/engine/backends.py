"""Execution backends: where task attempts actually run.

- :class:`SerialBackend` -- deterministic in-line execution (default; the
  reference for correctness tests).
- :class:`ThreadBackend` -- a thread pool sized to the configured total
  cores.  NumPy kernels release the GIL, so the score-statistic workload
  gets real parallelism.
- :class:`ProcessBackend` -- process pool for CPU-bound pure-Python tasks.
  Tasks are made self-contained before dispatch (shuffle input pre-fetched,
  relevant cached blocks attached); results, new cache blocks, and
  accumulator updates ship back to the driver.  Closures must be picklable.
  The future returned by ``submit_pickled`` is the *pool's* future, so the
  scheduler keeps ``max_inflight`` attempts genuinely running in parallel
  worker processes; driver-side result merging is chained as a completion
  callback by the task scheduler.

Shared-state backends expose ``submit(fn, *args) -> Future``; the process
backend exposes ``submit_pickled(payload) -> Future`` instead.

Stage closures ship as *task binaries* (see
:class:`~repro.engine.task.TaskBinary`): the scheduler pickles each stage's
lineage+closure once, and workers memoize the deserialized binary by id so
repeated tasks of the same stage skip the unpickling entirely.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import struct
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import EngineConfig


class _ImmediateFuture(concurrent.futures.Future):
    """A future that is resolved at construction (serial backend)."""

    def __init__(self, fn: Callable, args: tuple) -> None:
        super().__init__()
        try:
            self.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirrors Future semantics
            self.set_exception(exc)


class SerialBackend:
    """Runs every task inline on submit; fully deterministic ordering."""

    name = "serial"
    supports_shared_state = True

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = 1

    def submit(self, fn: Callable, *args: Any) -> concurrent.futures.Future:
        return _ImmediateFuture(fn, args)

    def shutdown(self) -> None:
        pass


class ThreadBackend:
    """Thread pool; shares the driver-side managers directly."""

    name = "threads"
    supports_shared_state = True

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = max(1, config.total_cores)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="repro-task"
        )

    def submit(self, fn: Callable, *args: Any) -> concurrent.futures.Future:
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


#: worker-side memo of deserialized task binaries, keyed by the binary's
#: SHA-256 content hash.  Content keys (rather than per-context sequence
#: ids) are what make *persistent* executors warm: a rerun of the same
#: workload in a fresh Context produces byte-identical binaries, so the
#: second job's tasks hit this cache without fetching or unpickling.
_TASK_BINARY_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_TASK_BINARY_CACHE_MAX = 64

#: executor id of the task currently running on this thread; labels the
#: warm-cache counters so the dashboard can tell warm executors from cold
_CURRENT_EXECUTOR = threading.local()


def current_task_executor() -> str:
    return getattr(_CURRENT_EXECUTOR, "executor_id", "driver")


def _load_task_binary(binary_id: str, blob: bytes | None, ref: Any = None) -> Any:
    """Materialize a stage's task binary at most once per worker process.

    ``blob`` is the compressed binary framed by
    :func:`repro.engine.serializer.compress_blob`; when it is ``None`` the
    binary travels out-of-band and ``ref`` is a
    :class:`~repro.engine.transport.TransportRef` to fetch it by -- the
    shared-memory path that keeps megabyte lineages out of the pool pipe.
    """
    from repro.obs.registry import REGISTRY

    binary = _TASK_BINARY_CACHE.get(binary_id)
    if binary is not None:
        _TASK_BINARY_CACHE.move_to_end(binary_id)
        REGISTRY.counter(
            "task_binary_cache_hits_total",
            "task binaries served from the worker-side warm cache",
            labelnames=("executor",),
        ).labels(executor=current_task_executor()).inc()
        return binary
    REGISTRY.counter(
        "task_binary_cache_misses_total",
        "task binaries fetched and deserialized (cold path)",
        labelnames=("executor",),
    ).labels(executor=current_task_executor()).inc()
    from repro.engine.serializer import decompress_blob
    from repro.engine.transport import worker_transport

    if blob is None:
        transport = worker_transport()
        if transport is None:
            raise RuntimeError("task binary shipped by ref but no transport attached")
        blob = transport.get(ref)
    binary = pickle.loads(decompress_blob(blob))
    _TASK_BINARY_CACHE[binary_id] = binary
    while len(_TASK_BINARY_CACHE) > _TASK_BINARY_CACHE_MAX:
        _TASK_BINARY_CACHE.popitem(last=False)
    return binary


# -- worker-side heartbeats ---------------------------------------------------
#
# Set up by the pool initializer (ProcessBackend.configure_heartbeats): a
# manager-queue proxy plus interval land in module globals, and the first
# task run starts one daemon thread per worker process that reports the
# worker's in-flight tasks to the driver's HeartbeatHub.

_WORKER_HB: dict[str, Any] = {"queue": None, "interval": 0.5}
_WORKER_INFLIGHT: "dict[tuple, Any]" = {}  # (stage, partition, attempt) -> TaskContext
_WORKER_INFLIGHT_LOCK = threading.Lock()
_WORKER_HB_THREAD: threading.Thread | None = None


def _init_worker_heartbeats(hb_queue: Any, interval: float) -> None:
    """ProcessPoolExecutor initializer: runs once in each worker process."""
    _WORKER_HB["queue"] = hb_queue
    _WORKER_HB["interval"] = max(float(interval), 0.05)


def _ensure_worker_heartbeat_thread() -> None:
    global _WORKER_HB_THREAD
    if _WORKER_HB["queue"] is None:
        return
    if _WORKER_HB_THREAD is not None and _WORKER_HB_THREAD.is_alive():
        return
    _WORKER_HB_THREAD = threading.Thread(
        target=_worker_heartbeat_loop, name="repro-worker-heartbeat", daemon=True
    )
    _WORKER_HB_THREAD.start()


def _worker_heartbeat_loop() -> None:
    while True:
        time.sleep(_WORKER_HB["interval"])
        _send_worker_heartbeats()


def _send_worker_heartbeats() -> None:
    """Ship one HeartbeatRecord per executor with tasks in this worker."""
    hb_queue = _WORKER_HB["queue"]
    if hb_queue is None:
        return
    from repro.engine.heartbeat import HeartbeatRecord
    from repro.engine.task import current_rss_bytes

    with _WORKER_INFLIGHT_LOCK:
        by_executor: dict[str, dict[tuple, Any]] = {}
        for key, tc in _WORKER_INFLIGHT.items():
            by_executor.setdefault(tc.executor_id, {})[key] = tc
    rss = current_rss_bytes() if by_executor else 0
    for executor_id, tasks in by_executor.items():
        record = HeartbeatRecord(
            executor_id=executor_id,
            inflight=tuple(tasks),
            records_read=sum(tc.metrics.records_read for tc in tasks.values()),
            rss_bytes=rss,
            worker_pid=os.getpid(),
        )
        try:
            hb_queue.put(record)
        except (EOFError, OSError, ConnectionError):  # driver gone; go quiet
            _WORKER_HB["queue"] = None
            return


def _run_pickled_task(payload: bytes) -> bytes:
    """Worker-side entry point: run one self-contained task attempt.

    Receives a pickled dict with the stage's task binary (lineage + closure,
    memoized per worker, fetched over the shared-memory transport when it
    shipped by ref), the partition/attempt to run, pre-fetched shuffle
    frames, and pre-attached cache blocks (serializer frames); computes a
    result dict with the result, any shuffle output written (as serialized
    :class:`~repro.engine.shuffle.ShuffleBlock` frames), newly cached
    blocks, accumulator updates, task metrics + resource telemetry,
    optional cProfile hotspot rows, worker-local span fragments
    (task-relative offsets), and a delta of every metrics-registry
    increment made while the task ran -- the driver merges the delta so
    worker-side instrumentation is never lost.

    The return value is an offset-prefixed frame (see
    :func:`_frame_result`): a fixed-size header carrying the serialization
    timings followed by the pickled body -- the body is *not* pickled a
    second time inside a wrapper, and large bodies travel by transport ref
    instead of through the pool pipe.
    """
    from repro.engine.accumulator import AccumulatorBuffer
    from repro.engine.blockmanager import BlockManager
    from repro.engine.profiler import profile_call
    from repro.engine.serializer import get_serializer
    from repro.engine.shuffle import ShuffleManager
    from repro.engine.storage import StorageLevel
    from repro.engine.task import ShuffleMapTask, TaskContext, TaskTelemetry
    from repro.engine.transport import from_spec
    from repro.obs.logging import capture_logs, log_context
    from repro.obs.registry import REGISTRY

    task_start = time.perf_counter()
    registry_baseline = REGISTRY.state_snapshot()
    spec = pickle.loads(payload)
    _CURRENT_EXECUTOR.executor_id = spec["executor_id"]
    transport = from_spec(spec["transport"]) if spec.get("transport") else None
    serializer = get_serializer(spec.get("serializer"))
    binary = _load_task_binary(spec["binary_id"], spec["binary"], spec.get("binary_ref"))
    task = binary.make_task(spec["partition"])
    block_manager = BlockManager(spec["executor_id"], memory_budget=1 << 62)
    block_manager.serializer = serializer
    worker_shuffle = ShuffleManager(track_bytes=False, serializer=serializer)
    # adaptive per-shuffle serializer picks made driver-side: the worker
    # must frame its map output the way the driver will decode it
    for sid, name in (spec.get("shuffle_serializers") or {}).items():
        worker_shuffle.set_serializer_override(sid, name)
    tc = TaskContext(
        stage_id=task.stage_id,
        partition=task.partition,
        attempt=spec["attempt"],
        executor_id=spec["executor_id"],
        shuffle_manager=worker_shuffle,
        block_manager=block_manager,
        block_master=None,
        accumulators=AccumulatorBuffer(binary.accumulators),
        trace_id=spec.get("trace_id"),
        parent_span_id=spec.get("parent_span_id"),
        speculative=spec.get("speculative", False),
    )
    tc.prefetched_shuffle = spec["prefetched_shuffle"]
    for block_id, frame in spec["cached_blocks"].items():
        level = binary.storage_levels.get(block_id[0], StorageLevel.MEMORY)
        tc.block_manager.put(block_id, serializer.loads(frame), level)
    deserialize_seconds = time.perf_counter() - task_start
    tc.metrics.deserialize_seconds = deserialize_seconds

    key = (task.stage_id, task.partition, spec["attempt"])
    telemetry = TaskTelemetry()
    with _WORKER_INFLIGHT_LOCK:
        _WORKER_INFLIGHT[key] = tc
    _ensure_worker_heartbeat_thread()
    _send_worker_heartbeats()  # immediate "task picked up" liveness signal
    compute_start = time.perf_counter()
    # capture worker-side structured logs at the driver's configured level;
    # they ship home in the result dict and the driver replays them into
    # its own bus with these correlation ids intact
    try:
        with capture_logs(level=spec.get("log_level")) as log_records, log_context(
            job_id=spec.get("job_id"),
            stage_id=task.stage_id,
            partition=task.partition,
            attempt=spec["attempt"],
            executor_id=spec["executor_id"],
        ):
            if spec.get("profile"):
                result, hotspots = profile_call(
                    lambda: task.run(tc), spec.get("profile_top_n", 20)
                )
            else:
                result, hotspots = task.run(tc), None
    finally:
        with _WORKER_INFLIGHT_LOCK:
            _WORKER_INFLIGHT.pop(key, None)
    compute_end = time.perf_counter()
    telemetry.record(tc.metrics)

    from repro.core.instrumentation import observe_worker_task

    observe_worker_task(binary.kind, compute_end - compute_start, tc.metrics.gc_pause_seconds)

    shuffle_output = None
    if isinstance(task, ShuffleMapTask):
        sid = task.shuffle_dep.shuffle_id
        shuffle_output = {
            key: buckets
            for key, buckets in tc.shuffle_manager._outputs.items()  # noqa: SLF001
            if key[0] == sid
        }
        result = None  # MapStatus rebuilt by the driver
    new_blocks = {}
    for block_id in tc.block_manager.block_ids():
        if block_id not in spec["cached_blocks"]:
            new_blocks[block_id] = tc.block_manager.get(block_id)
    out = {
        "result": result,
        "shuffle_output": shuffle_output,
        "new_blocks": new_blocks,
        "accumulator_updates": tc.accumulators.snapshot(),
        "metrics": tc.metrics,
        "profile": hotspots,
        "span_fragments": [
            {"name": "deserialize", "start": 0.0, "end": deserialize_seconds},
            {"name": "compute", "start": compute_start - task_start,
             "end": compute_end - task_start},
        ],
        "registry_delta": REGISTRY.collect_delta(registry_baseline),
        "log_records": [r.to_dict() for r in log_records],
        "worker_pid": os.getpid(),
        # echo the trace context so the driver can verify the worker ran
        # under the expected trace (multi-driver fleets) and stamp it on
        # the fragments' spans
        "trace": {
            "trace_id": spec.get("trace_id"),
            "parent_span_id": spec.get("parent_span_id"),
        },
    }
    serialize_start = time.perf_counter()
    body = pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL)
    serialize_seconds = time.perf_counter() - serialize_start
    return _frame_result(
        body,
        serialize_seconds,
        serialize_start - task_start,
        transport,
        spec.get("result_transport_min", _RESULT_TRANSPORT_MIN_DEFAULT),
    )


# -- result framing -----------------------------------------------------------
#
# The result body must be pickled *before* its own serialization time can
# be known, so the measurement rides in a fixed-size binary header ahead of
# the body instead of a second pickle layer wrapping it:
#
#   magic "RF" | version u8 | flags u8 | serialize_seconds f64 |
#   serialize_offset f64 | payload
#
# flags bit 0: payload is a pickled TransportRef to the real body (large
# results travel out-of-band instead of through the pool pipe).

_RESULT_MAGIC = b"RF"
_RESULT_HEADER = struct.Struct("<2sBBdd")
_RESULT_FLAG_REF = 0x01
_RESULT_TRANSPORT_MIN_DEFAULT = 256 * 1024


def _frame_result(
    body: bytes,
    serialize_seconds: float,
    serialize_offset: float,
    transport: Any,
    transport_min: int,
) -> bytes:
    flags = 0
    payload = body
    if transport is not None and len(body) >= transport_min:
        ref = transport.put(body)
        payload = pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL)
        flags |= _RESULT_FLAG_REF
    header = _RESULT_HEADER.pack(
        _RESULT_MAGIC, 1, flags, serialize_seconds, serialize_offset
    )
    return header + payload


def unframe_result(frame: bytes, transport: Any) -> tuple[dict, float, float]:
    """Driver-side inverse of :func:`_frame_result`.

    Returns ``(out_dict, serialize_seconds, serialize_offset)``; transport
    payloads are fetched and deleted (the ref is single-use).
    """
    magic, version, flags, serialize_seconds, serialize_offset = (
        _RESULT_HEADER.unpack_from(frame)
    )
    if magic != _RESULT_MAGIC or version != 1:
        raise ValueError(f"bad result frame (magic={magic!r}, version={version})")
    payload: Any = memoryview(frame)[_RESULT_HEADER.size:]
    if flags & _RESULT_FLAG_REF:
        if transport is None:
            raise RuntimeError("result shipped by ref but driver has no transport")
        ref = pickle.loads(payload)
        payload = transport.get(ref)
        transport.delete(ref)
    return pickle.loads(payload), serialize_seconds, serialize_offset


# -- shared process pool ------------------------------------------------------
#
# One process-wide pool (plus the manager queue its workers heartbeat over)
# survives Context teardown/rebuild: the first Context of a given shape
# pays the fork cost, every later one reuses warm workers whose task-binary
# and broadcast caches are already populated.  The pool is only recreated
# when the requested shape (worker count / heartbeat wiring) changes.

_SHARED_POOL_LOCK = threading.Lock()
_SHARED_POOL: dict[str, Any] = {
    "pool": None, "key": None, "manager": None, "queue": None, "interval": 0.5,
}


def _shared_heartbeat_queue(interval: float) -> Any:
    """The process-wide manager queue worker processes heartbeat over.

    Created once and kept for the life of the driver process so reused
    pools keep a live queue (a per-context queue would die with its
    context's Manager and silence every warm worker's heartbeats).
    """
    with _SHARED_POOL_LOCK:
        if _SHARED_POOL["queue"] is None:
            import multiprocessing

            _SHARED_POOL["manager"] = multiprocessing.Manager()
            _SHARED_POOL["queue"] = _SHARED_POOL["manager"].Queue()
        _SHARED_POOL["interval"] = max(float(interval), 0.05)
        return _SHARED_POOL["queue"]


def shutdown_shared_pool() -> None:
    """Tear down the shared pool + heartbeat manager (tests / interpreter exit)."""
    with _SHARED_POOL_LOCK:
        pool, _SHARED_POOL["pool"], _SHARED_POOL["key"] = _SHARED_POOL["pool"], None, None
        manager = _SHARED_POOL["manager"]
        _SHARED_POOL["manager"] = None
        _SHARED_POOL["queue"] = None
    if pool is not None:
        pool.shutdown(wait=True)
    if manager is not None:
        manager.shutdown()


class ProcessBackend:
    """Process pool running self-contained pickled tasks.

    ``submit_pickled`` hands the payload straight to the pool and returns
    the pool's own future, so up to ``parallelism`` task attempts execute
    concurrently in worker processes.  The scheduler serializes on the
    driver and merges results via a completion callback -- the driver is
    never blocked inside a single task attempt.

    The pool itself is process-wide and persistent: ``shutdown`` merely
    detaches this backend, leaving warm workers (and their caches) for the
    next Context with the same configuration.  Use
    :func:`shutdown_shared_pool` to actually reap the workers.
    """

    name = "processes"
    supports_shared_state = False

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = max(1, config.total_cores)
        self._hb_wanted = config.heartbeat_interval > 0
        self._hb_interval = max(config.heartbeat_interval, 0.05)
        self._detached = False

    def heartbeat_queue(self, interval: float) -> Any:
        """Queue the heartbeat hub should drain for worker liveness."""
        self._hb_wanted = True
        self._hb_interval = max(float(interval), 0.05)
        return _shared_heartbeat_queue(interval)

    def _pool_key(self) -> tuple:
        return (self.parallelism, self._hb_wanted)

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        key = self._pool_key()
        with _SHARED_POOL_LOCK:
            if _SHARED_POOL["pool"] is not None and _SHARED_POOL["key"] == key:
                return _SHARED_POOL["pool"]
            stale = _SHARED_POOL["pool"]
            _SHARED_POOL["pool"] = None
        if stale is not None:  # shape changed: retire the old fleet first
            stale.shutdown(wait=True)
        kwargs: dict[str, Any] = {}
        if self._hb_wanted:
            queue_proxy = _shared_heartbeat_queue(self._hb_interval)
            kwargs["initializer"] = _init_worker_heartbeats
            kwargs["initargs"] = (queue_proxy, self._hb_interval)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.parallelism, **kwargs
        )
        with _SHARED_POOL_LOCK:
            _SHARED_POOL["pool"] = pool
            _SHARED_POOL["key"] = key
        return pool

    def submit_pickled(
        self, payload: bytes, executor_id: str | None = None
    ) -> concurrent.futures.Future:
        # the pool places tasks on any idle worker; executor routing is a
        # cluster-backend refinement (accepted here for interface parity)
        if self._detached:
            raise RuntimeError("backend is shut down")
        return self._ensure_pool().submit(_run_pickled_task, payload)

    def shutdown(self) -> None:
        """Detach from the shared pool; warm workers stay for the next context."""
        self._detached = True


def make_backend(config: "EngineConfig"):
    """Instantiate the backend named in ``config.backend``."""
    if config.backend == "serial":
        return SerialBackend(config)
    if config.backend == "threads":
        return ThreadBackend(config)
    if config.backend == "processes":
        return ProcessBackend(config)
    if config.backend == "cluster":
        from repro.engine.cluster_backend import ClusterBackend

        return ClusterBackend(config)
    raise ValueError(f"unknown backend {config.backend!r}")
