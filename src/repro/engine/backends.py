"""Execution backends: where task attempts actually run.

- :class:`SerialBackend` -- deterministic in-line execution (default; the
  reference for correctness tests).
- :class:`ThreadBackend` -- a thread pool sized to the configured total
  cores.  NumPy kernels release the GIL, so the score-statistic workload
  gets real parallelism.
- :class:`ProcessBackend` -- process pool for CPU-bound pure-Python tasks.
  Tasks are made self-contained before dispatch (shuffle input pre-fetched,
  relevant cached blocks attached); results, new cache blocks, and
  accumulator updates ship back to the driver.  Closures must be picklable.
  The future returned by ``submit_pickled`` is the *pool's* future, so the
  scheduler keeps ``max_inflight`` attempts genuinely running in parallel
  worker processes; driver-side result merging is chained as a completion
  callback by the task scheduler.

Shared-state backends expose ``submit(fn, *args) -> Future``; the process
backend exposes ``submit_pickled(payload) -> Future`` instead.

Stage closures ship as *task binaries* (see
:class:`~repro.engine.task.TaskBinary`): the scheduler pickles each stage's
lineage+closure once, and workers memoize the deserialized binary by id so
repeated tasks of the same stage skip the unpickling entirely.
"""

from __future__ import annotations

import concurrent.futures
import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import EngineConfig


class _ImmediateFuture(concurrent.futures.Future):
    """A future that is resolved at construction (serial backend)."""

    def __init__(self, fn: Callable, args: tuple) -> None:
        super().__init__()
        try:
            self.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirrors Future semantics
            self.set_exception(exc)


class SerialBackend:
    """Runs every task inline on submit; fully deterministic ordering."""

    name = "serial"
    supports_shared_state = True

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = 1

    def submit(self, fn: Callable, *args: Any) -> concurrent.futures.Future:
        return _ImmediateFuture(fn, args)

    def shutdown(self) -> None:
        pass


class ThreadBackend:
    """Thread pool; shares the driver-side managers directly."""

    name = "threads"
    supports_shared_state = True

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = max(1, config.total_cores)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="repro-task"
        )

    def submit(self, fn: Callable, *args: Any) -> concurrent.futures.Future:
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


#: worker-side memo of deserialized task binaries, keyed by binary id.
#: Binary ids are unique per driver context, and each context owns its own
#: worker pool, so ids never collide within one worker process.
_TASK_BINARY_CACHE: "OrderedDict[int, Any]" = OrderedDict()
_TASK_BINARY_CACHE_MAX = 64


def _load_task_binary(binary_id: int, blob: bytes) -> Any:
    """Deserialize a stage's task binary at most once per worker process."""
    binary = _TASK_BINARY_CACHE.get(binary_id)
    if binary is not None:
        _TASK_BINARY_CACHE.move_to_end(binary_id)
        return binary
    binary = pickle.loads(blob)
    _TASK_BINARY_CACHE[binary_id] = binary
    while len(_TASK_BINARY_CACHE) > _TASK_BINARY_CACHE_MAX:
        _TASK_BINARY_CACHE.popitem(last=False)
    return binary


def _run_pickled_task(payload: bytes) -> bytes:
    """Worker-side entry point: run one self-contained task attempt.

    Receives a pickled dict with the stage's task binary (lineage + closure,
    memoized per worker), the partition/attempt to run, pre-fetched shuffle
    input, and pre-attached cache blocks; returns a pickled dict with the
    result, any shuffle output written, newly cached blocks, and
    accumulator updates.
    """
    from repro.engine.accumulator import AccumulatorBuffer
    from repro.engine.blockmanager import BlockManager
    from repro.engine.shuffle import ShuffleManager
    from repro.engine.storage import StorageLevel
    from repro.engine.task import ShuffleMapTask, TaskContext

    spec = pickle.loads(payload)
    binary = _load_task_binary(spec["binary_id"], spec["binary"])
    task = binary.make_task(spec["partition"])
    tc = TaskContext(
        stage_id=task.stage_id,
        partition=task.partition,
        attempt=spec["attempt"],
        executor_id=spec["executor_id"],
        shuffle_manager=ShuffleManager(track_bytes=False),
        block_manager=BlockManager(spec["executor_id"], memory_budget=1 << 62),
        block_master=None,
        accumulators=AccumulatorBuffer(binary.accumulators),
    )
    tc.prefetched_shuffle = spec["prefetched_shuffle"]
    for block_id, data in spec["cached_blocks"].items():
        level = binary.storage_levels.get(block_id[0], StorageLevel.MEMORY)
        tc.block_manager.put(block_id, data, level)
    result = task.run(tc)

    shuffle_output = None
    if isinstance(task, ShuffleMapTask):
        sid = task.shuffle_dep.shuffle_id
        shuffle_output = {
            key: buckets
            for key, buckets in tc.shuffle_manager._outputs.items()  # noqa: SLF001
            if key[0] == sid
        }
        result = None  # MapStatus rebuilt by the driver
    new_blocks = {}
    for block_id in tc.block_manager.block_ids():
        if block_id not in spec["cached_blocks"]:
            new_blocks[block_id] = tc.block_manager.get(block_id)
    out = {
        "result": result,
        "shuffle_output": shuffle_output,
        "new_blocks": new_blocks,
        "accumulator_updates": tc.accumulators.snapshot(),
        "metrics": tc.metrics,
    }
    return pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL)


class ProcessBackend:
    """Process pool running self-contained pickled tasks.

    ``submit_pickled`` hands the payload straight to the pool and returns
    the pool's own future, so up to ``parallelism`` task attempts execute
    concurrently in worker processes.  The scheduler serializes on the
    driver and merges results via a completion callback -- the driver is
    never blocked inside a single task attempt.
    """

    name = "processes"
    supports_shared_state = False

    def __init__(self, config: "EngineConfig") -> None:
        self.parallelism = max(1, config.total_cores)
        self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.parallelism)

    def submit_pickled(self, payload: bytes) -> concurrent.futures.Future:
        return self._pool.submit(_run_pickled_task, payload)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_backend(config: "EngineConfig"):
    """Instantiate the backend named in ``config.backend``."""
    if config.backend == "serial":
        return SerialBackend(config)
    if config.backend == "threads":
        return ThreadBackend(config)
    if config.backend == "processes":
        return ProcessBackend(config)
    raise ValueError(f"unknown backend {config.backend!r}")
