"""The driver context: entry point to the engine (Spark's ``SparkContext``)."""

from __future__ import annotations

import itertools
import secrets
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.config import EngineConfig
from repro.engine.accumulator import Accumulator
from repro.engine.backends import make_backend
from repro.engine.blockmanager import BlockManagerMaster
from repro.engine.broadcast import Broadcast
from repro.engine.executor import build_executors
from repro.engine.faults import FaultInjector
from repro.engine.listener import ExecutorLost, ListenerBus
from repro.engine.metrics import MetricsRegistry
from repro.engine.shuffle import ShuffleManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD
    from repro.hdfs.filesystem import MiniHDFS


class Context:
    """Driver-side handle owning executors, shuffle state, and metrics.

    Use as a context manager to guarantee backend shutdown::

        with Context(EngineConfig(backend="threads", num_executors=4)) as ctx:
            ctx.parallelize(range(10)).map(str).collect()
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        fault_injector: FaultInjector | None = None,
        hdfs: "MiniHDFS | None" = None,
        event_log_path: str | None = None,
        trace_path: str | None = None,
        ui_port: int | None = None,
        progress: bool = False,
        serializer: "str | None" = None,
        log_file: str | None = None,
        log_level: str | None = None,
        metrics_interval: float | None = None,
        alerts: bool | None = None,
        alert_rules: "str | list | None" = None,
        flight_recorder: str | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        if serializer is not None:
            self.config = self.config.copy(serializer=serializer)
        if log_level is not None:
            self.config = self.config.copy(log_level=log_level)
        if metrics_interval is not None:
            self.config = self.config.copy(metrics_interval=metrics_interval)
        if alerts is not None:
            self.config = self.config.copy(alerts_enabled=alerts)
        if flight_recorder is not None:
            self.config = self.config.copy(flight_recorder_dir=flight_recorder)
        #: when set, each completed job is streamed here as JSONL (v4)
        self.event_log_path = event_log_path
        #: when set, every structured log record is appended here as JSONL
        self.log_file = log_file
        #: when set, a span trace is written on stop() -- Chrome
        #: ``trace_event`` JSON, or span JSONL if the path ends in .jsonl
        self.trace_path = trace_path
        #: W3C-traceparent-style trace id for this driver.  Stamped on every
        #: span and shipped in every task envelope, so traces from multiple
        #: drivers sharing one persistent fleet stay distinguishable
        self.trace_id = secrets.token_hex(16)
        self.listener_bus = ListenerBus()
        #: the data-plane serializer (shuffle frames, shipped cache blocks,
        #: serialized storage levels); Spark's ``spark.serializer``
        from repro.engine.serializer import get_serializer

        self.serializer = get_serializer(self.config.serializer)
        self.backend = make_backend(self.config)
        #: out-of-band blob transport (shared memory / temp files / TCP);
        #: only process-isolated backends move bytes across address spaces,
        #: so shared-state backends skip the segment bookkeeping.  The
        #: cluster backend *owns* its transport (it must outlive this
        #: context so warm workers keep their handles); the process backend
        #: gets a context-owned one
        self.transport = getattr(self.backend, "transport", None)
        self._owns_transport = False
        if self.transport is None and self.config.backend == "processes":
            from repro.engine.transport import create_transport

            self.transport = create_transport(self.config.transport_scheme)
            self._owns_transport = True
        self.executors = build_executors(
            self.config.num_executors,
            self.config.executor_cores,
            self.config.storage_memory_per_executor,
        )
        self.block_master = BlockManagerMaster()
        self.block_master.bus = self.listener_bus
        for executor in self.executors:
            self.block_master.register_manager(executor.block_manager)
            executor.block_manager.bus = self.listener_bus
            executor.block_manager.serializer = self.serializer
        self.shuffle_manager = ShuffleManager(serializer=self.serializer)
        self.shuffle_manager.bus = self.listener_bus
        self.metrics = MetricsRegistry()
        # adaptive query execution: skew repartitioning + per-shuffle
        # serializer selection + the speculation policy.  Always present so
        # dashboards and flight-recorder bundles can report "disabled"
        from repro.engine.adaptive import AdaptivePlanner

        self.adaptive = AdaptivePlanner(self)
        # inference observability: convergence monitors for resampling
        # p-values.  Always present (same contract as the planner) so
        # /api/inference and flight-recorder bundles report "disabled"
        from repro.obs.inference import InferenceObservability

        self.inference = InferenceObservability(self)
        self.fault_injector = fault_injector
        self.hdfs = hdfs

        # standard listeners: process-wide metrics bridge, plus the event
        # log writer and tracer when requested
        from repro.obs.registry import MetricsListener

        self.listener_bus.add_listener(MetricsListener())
        self._tracer = None
        self._event_log_listener = None
        if event_log_path is not None:
            from repro.engine.eventlog import EventLogListener

            self._event_log_listener = EventLogListener(event_log_path)
            self.listener_bus.add_listener(self._event_log_listener)
        if trace_path is not None:
            from repro.obs.spans import TracingListener

            self._tracer = TracingListener(trace_id=self.trace_id)
            self.listener_bus.add_listener(self._tracer)

        # structured logging: the process log bus runs at this context's
        # configured level; optional sinks mirror records to a JSONL file
        # and into the event log's v4 side channel
        from repro.obs.logging import LOG_BUS, JsonlLogSink

        self._previous_log_level = LOG_BUS.level
        LOG_BUS.set_level(self.config.log_level)
        self._log_sinks: list = []
        self._log_file_sink = None
        if log_file is not None:
            self._log_file_sink = JsonlLogSink(log_file)
            self._log_sinks.append(LOG_BUS.add_sink(self._log_file_sink))
        if self._event_log_listener is not None:
            self._log_sinks.append(LOG_BUS.add_sink(self._event_log_listener.write_log))

        # online diagnostics: skew/straggler detection on stage completion
        from repro.obs.diagnostics import DiagnosticsListener

        self.diagnostics = DiagnosticsListener.from_config(self.listener_bus, self.config)
        self.listener_bus.add_listener(self.diagnostics)

        # continuous monitoring: the driver-side metrics sampler feeding the
        # in-memory TSDB, the alert engine riding its tick hook, and the
        # failure flight recorder -- all off by default
        self.timeseries = None
        self.sampler = None
        self.alerts = None
        self.flight_recorder = None
        sample_interval = self.config.metrics_interval
        if self.config.alerts_enabled and sample_interval <= 0:
            sample_interval = 0.25  # alerting needs a clock to evaluate on
        if sample_interval > 0:
            from repro.obs.timeseries import MetricsSampler, TimeSeriesStore

            self.timeseries = TimeSeriesStore(
                raw_capacity=self.config.metrics_retention,
                downsample_factor=self.config.metrics_downsample,
            )
            self.sampler = MetricsSampler(self.timeseries, interval=sample_interval)
            if self._event_log_listener is not None:
                self.sampler.add_tick_sink(self._event_log_listener.write_series)
        if self.config.alerts_enabled:
            from repro.obs.alerts import (
                AlertManager,
                ConsoleAlertSink,
                builtin_rules,
                load_rules,
            )

            def _busy_gate(labels: dict) -> bool:
                # only alert on heartbeat silence from executors that hold
                # in-flight tasks; idle ones legitimately go quiet
                hub = self.heartbeats
                return hub is not None and labels.get("executor") in hub.busy_executors()

            rules = builtin_rules(
                heartbeat_gate=_busy_gate,
                heartbeat_window=max(0.5, self.config.heartbeat_interval * 4),
            )
            if alert_rules is not None:
                if isinstance(alert_rules, str):
                    rules.extend(load_rules(alert_rules))
                else:
                    rules.extend(alert_rules)
            self.alerts = AlertManager(self.timeseries, self.listener_bus, rules)
            self.alerts.add_sink(ConsoleAlertSink())
            if self._event_log_listener is not None:
                self.alerts.add_sink(self._event_log_listener.write_alert)
            self.sampler.add_tick_hook(self.alerts.evaluate)
        if self.config.flight_recorder_dir:
            from repro.obs.flightrecorder import FlightRecorder

            self.flight_recorder = FlightRecorder(
                self.config.flight_recorder_dir,
                context=self,
                window=self.config.flight_recorder_window,
            )
            self.listener_bus.add_listener(self.flight_recorder)

        # live surfaces: structured progress state (feeds the UI and the
        # console bars) and the embedded HTTP server
        from repro.obs.progress import ProgressTracker

        self.progress = ProgressTracker()
        self.listener_bus.add_listener(self.progress)
        if progress:
            from repro.obs.progress import ConsoleProgressListener

            self.listener_bus.add_listener(ConsoleProgressListener(self.progress))
        self._ui = None
        if ui_port is not None:
            from repro.obs.ui import UIServer

            self._ui = UIServer(self, port=ui_port)
            self._ui.start()

        # heartbeat plane: liveness for busy executors + timeout monitor
        self.heartbeats = None
        if self.config.heartbeat_interval > 0:
            from repro.engine.heartbeat import HeartbeatHub

            self.heartbeats = HeartbeatHub(self)
            self.listener_bus.add_listener(self.heartbeats)
            self.heartbeats.start()
        # persistent backends announce their (possibly pre-existing, warm)
        # executors on this context's bus: ExecutorRegistered per executor
        if hasattr(self.backend, "attach"):
            self.backend.attach(self)
        if self.sampler is not None:
            # started after the heartbeat hub so the alert engine's busy
            # gate sees live in-flight state from its first tick
            self.sampler.start()

        self._rdd_ids = itertools.count()
        self._shuffle_ids = itertools.count()
        self._stage_ids = itertools.count()
        self._job_ids = itertools.count()
        self._broadcast_ids = itertools.count()
        self._accumulator_ids = itertools.count()
        self._accumulators: dict[int, Accumulator] = {}
        self._lock = threading.Lock()
        self._stopped = False

        # deferred import to avoid a cycle (scheduler -> context typing)
        from repro.engine.scheduler import DAGScheduler

        self._dag_scheduler = DAGScheduler(self)

    # -- id assignment ------------------------------------------------------

    def _new_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def _new_shuffle_id(self) -> int:
        return next(self._shuffle_ids)

    # -- RDD creation ----------------------------------------------------------

    def parallelize(self, data: Iterable, num_partitions: int | None = None) -> "RDD":
        """Distribute a local collection into an RDD."""
        from repro.engine.rdd import ParallelCollectionRDD

        self._check_alive()
        if num_partitions is not None and num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        n = num_partitions if num_partitions is not None else self.config.default_parallelism
        return ParallelCollectionRDD(self, data, n)

    def range(self, start: int, end: int | None = None, step: int = 1, num_partitions: int | None = None) -> "RDD":
        if end is None:
            start, end = 0, start
        return self.parallelize(range(start, end, step), num_partitions)

    def text_file(self, path: str, min_partitions: int | None = None) -> "RDD":
        """Read a text file into an RDD of lines.

        ``hdfs://`` paths read from the attached simulated HDFS (one
        partition per block, with datanode locality hints); other paths read
        from the local filesystem with Hadoop-style line splits.
        """
        from repro.engine.rdd import LocalTextFileRDD

        self._check_alive()
        n = min_partitions or self.config.default_parallelism
        if path.startswith("hdfs://"):
            if self.hdfs is None:
                raise RuntimeError("context has no HDFS attached; pass hdfs= to Context()")
            from repro.hdfs.rdd import HdfsTextFileRDD

            return HdfsTextFileRDD(self, self.hdfs, path)
        return LocalTextFileRDD(self, path, n)

    def union(self, rdds: list["RDD"]) -> "RDD":
        from repro.engine.rdd import UnionRDD

        return UnionRDD(self, rdds)

    def empty_rdd(self) -> "RDD":
        return self.parallelize([], 1)

    # -- shared variables ----------------------------------------------------------

    def broadcast(self, value: Any) -> Broadcast:
        self._check_alive()
        return Broadcast(next(self._broadcast_ids), value, transport=self.transport)

    def accumulator(self, initial: Any, op: Callable | None = None, zero: Any | None = None) -> Accumulator:
        self._check_alive()
        acc_id = next(self._accumulator_ids)
        if op is None:
            acc = Accumulator(acc_id, initial, zero=zero)
        else:
            acc = Accumulator(acc_id, initial, op, zero=zero)
        self._accumulators[acc_id] = acc
        return acc

    # -- execution ------------------------------------------------------------------

    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[Iterator], Any],
        partitions: list[int] | None = None,
        description: str = "",
    ) -> list[Any]:
        """Run ``func`` over the requested partitions; returns per-partition values."""
        self._check_alive()
        return self._dag_scheduler.run_job(rdd, func, partitions, description)

    # -- cache management ------------------------------------------------------------

    def _drop_cached_rdd(self, rdd_id: int) -> None:
        for executor in self.executors:
            for block_id in executor.block_manager.block_ids():
                if block_id[0] == rdd_id:
                    executor.block_manager.remove(block_id)
                    self.block_master.unregister_block(block_id, executor.executor_id)

    def cached_partition_count(self, rdd: "RDD") -> int:
        """How many of an RDD's partitions are currently cached somewhere."""
        return len(self.block_master.cached_partitions(rdd.id))

    # -- fault injection ------------------------------------------------------------

    def set_fault_injector(self, injector: FaultInjector | None) -> None:
        self.fault_injector = injector

    def kill_executor(self, executor_id: str) -> None:
        """Immediately kill an executor (blocks + shuffle outputs lost)."""
        for executor in self.executors:
            if executor.executor_id == executor_id:
                executor.kill()
                break
        else:
            raise KeyError(f"no executor {executor_id!r}")
        self.listener_bus.post(ExecutorLost(executor_id, reason="killed by driver"))
        self.block_master.remove_executor(executor_id)
        self.shuffle_manager.remove_outputs_on_executor(executor_id)

    # -- observability ---------------------------------------------------------------

    def add_listener(self, listener):
        """Subscribe a :class:`~repro.engine.listener.Listener` to engine events."""
        return self.listener_bus.add_listener(listener)

    @property
    def spans(self):
        """Spans collected so far (requires ``trace_path=``), else None."""
        return self._tracer.spans if self._tracer is not None else None

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def ui_url(self) -> str | None:
        """Base URL of the embedded UI server, if one is running."""
        return self._ui.url if self._ui is not None else None

    def stop(self) -> None:
        if not self._stopped:
            if self._ui is not None:
                self._ui.stop()
                self._ui = None
            if self.heartbeats is not None:
                self.heartbeats.stop()
            if self.sampler is not None:
                self.sampler.stop()
            if self.flight_recorder is not None:
                # safety net: a failure whose dump never landed gets one
                # last chance before the listeners close
                self.flight_recorder.dump_on_stop()
            if self._tracer is not None and self.trace_path is not None:
                from repro.obs.spans import write_chrome_trace, write_spans_jsonl

                if self.trace_path.endswith(".jsonl"):
                    write_spans_jsonl(self._tracer.spans, self.trace_path)
                else:
                    write_chrome_trace(self._tracer.spans, self.trace_path)
            from repro.obs.logging import LOG_BUS

            for sink in self._log_sinks:
                LOG_BUS.remove_sink(sink)
            self._log_sinks.clear()
            if self._log_file_sink is not None:
                self._log_file_sink.close()
                self._log_file_sink = None
            LOG_BUS.set_level(self._previous_log_level)
            # freeze the cluster-resident fleet snapshot into this driver's
            # event log (v6 side channel) before detaching: the fleet
            # outlives us, but the log is how history/doctor see it later
            if self._event_log_listener is not None:
                fleet_fn = getattr(self.backend, "fleet_snapshot", None)
                if fleet_fn is not None:
                    try:
                        self._event_log_listener.write_fleet(fleet_fn(None))
                    except Exception:
                        pass  # a dead head must not break context teardown
            if hasattr(self.backend, "detach"):
                self.backend.detach(self)
            self.listener_bus.stop()
            self.backend.shutdown()
            if self.transport is not None and self._owns_transport:
                self.transport.close()
            self._stopped = True

    def _check_alive(self) -> None:
        if self._stopped:
            raise RuntimeError("context is stopped")

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"Context(backend={self.config.backend}, executors={self.config.num_executors}"
            f"x{self.config.executor_cores} cores)"
        )
