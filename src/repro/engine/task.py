"""Task descriptors and the task-side execution context.

Two task kinds, exactly as in Spark:

- :class:`ShuffleMapTask` computes one partition of the stage's final RDD
  and buckets its key-value output by the shuffle dependency's partitioner,
  writing the buckets to the shuffle manager.
- :class:`ResultTask` computes one partition and applies the action's
  per-partition function, returning its value to the driver.
"""

from __future__ import annotations

import gc
import os
import resource
import sys
import time
import tracemalloc
from typing import TYPE_CHECKING, Any, Callable, Iterator

import threading

from repro.engine.accumulator import AccumulatorBuffer
from repro.engine.metrics import TaskMetrics

_LOCAL = threading.local()

#: ru_maxrss is kilobytes on Linux, bytes on macOS
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT


def current_rss_bytes() -> int:
    """Current resident set size, bytes (falls back to the peak off-Linux)."""
    try:
        with open(f"/proc/{os.getpid()}/statm") as fh:
            return int(fh.read().split()[1]) * resource.getpagesize()
    except (OSError, IndexError, ValueError):
        return peak_rss_bytes()


class _GcPauseMeter:
    """Process-wide accumulator of garbage-collection pause time.

    One :data:`gc.callbacks` hook feeds a monotone total; tasks sample the
    total at start/end and attribute the delta to themselves.  Under the
    thread backend concurrent tasks may each claim the same pause -- the
    per-task figure is an upper bound, the process total is exact.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._start: float | None = None
        self._total = 0.0
        self._installed = False

    def _on_gc(self, phase: str, info: dict) -> None:
        with self._lock:
            if phase == "start":
                self._start = time.perf_counter()
            elif phase == "stop" and self._start is not None:
                self._total += time.perf_counter() - self._start
                self._start = None

    def install(self) -> None:
        if not self._installed:
            gc.callbacks.append(self._on_gc)
            self._installed = True

    @property
    def total(self) -> float:
        with self._lock:
            return self._total


GC_PAUSE_METER = _GcPauseMeter()


class TaskTelemetry:
    """Samples resource telemetry around one task attempt.

    Usage::

        telemetry = TaskTelemetry()          # samples baselines
        ... run the task ...
        telemetry.record(tc.metrics)         # fills the telemetry fields
    """

    def __init__(self) -> None:
        GC_PAUSE_METER.install()
        self._gc_base = GC_PAUSE_METER.total
        self._tracing = tracemalloc.is_tracing()

    def record(self, metrics: TaskMetrics) -> None:
        metrics.gc_pause_seconds += GC_PAUSE_METER.total - self._gc_base
        metrics.peak_rss_bytes = max(metrics.peak_rss_bytes, peak_rss_bytes())
        if self._tracing and tracemalloc.is_tracing():
            metrics.tracemalloc_peak_bytes = max(
                metrics.tracemalloc_peak_bytes, tracemalloc.get_traced_memory()[1]
            )


def current_task_context() -> "TaskContext | None":
    """The TaskContext of the task running on this thread, if any.

    Lets user closures call ``Accumulator.add`` from inside tasks without
    plumbing the context through, matching Spark's thread-local
    ``TaskContext.get()``.
    """
    return getattr(_LOCAL, "tc", None)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.blockmanager import BlockManager, BlockManagerMaster
    from repro.engine.rdd import RDD
    from repro.engine.shuffle import ShuffleManager


class TaskContext:
    """Per-task runtime context threaded through ``RDD.iterator``.

    Carries the executing executor's identity, handles to the shuffle
    manager and block managers, the fault-injection hook, metrics, and the
    accumulator buffer.
    """

    def __init__(
        self,
        stage_id: int,
        partition: int,
        attempt: int,
        executor_id: str,
        shuffle_manager: "ShuffleManager | None" = None,
        block_manager: "BlockManager | None" = None,
        block_master: "BlockManagerMaster | None" = None,
        accumulators: AccumulatorBuffer | None = None,
        fault_hook: Callable[["TaskContext"], None] | None = None,
        trace_id: str | None = None,
        parent_span_id: int | None = None,
        speculative: bool = False,
    ) -> None:
        self.stage_id = stage_id
        self.partition = partition
        self.attempt = attempt
        self.executor_id = executor_id
        #: True when this attempt is a speculative twin racing a straggling
        #: original; ``current_task_context().speculative`` lets user code
        #: and fault hooks tell the racer from the first attempt (the
        #: ``attempt`` counter alone cannot -- retries also increment it)
        self.speculative = speculative
        self.shuffle_manager = shuffle_manager
        self.block_manager = block_manager
        self.block_master = block_master
        self.accumulators = accumulators or AccumulatorBuffer({})
        self.metrics = TaskMetrics()
        self._fault_hook = fault_hook
        #: W3C-traceparent-style trace context carried in the task envelope:
        #: the submitting driver's trace id and the stage span this attempt
        #: stitches under.  ``current_task_context().trace_id`` gives user
        #: code and worker-side instrumentation the driver identity without
        #: plumbing -- the executor may be serving several drivers
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        #: pre-fetched shuffle input for the process backend, keyed by
        #: (shuffle_id, reduce_partition)
        self.prefetched_shuffle: dict[tuple[int, int], list] = {}

    def check_faults(self) -> None:
        """Invoke the fault-injection hook (may raise to simulate failure)."""
        if self._fault_hook is not None:
            self._fault_hook(self)


class Task:
    """Base task: compute one partition of ``rdd`` within a stage."""

    def __init__(self, stage_id: int, rdd: "RDD", partition: int) -> None:
        self.stage_id = stage_id
        self.rdd = rdd
        self.partition = partition
        self.attempt = 0

    def preferred_locations(self) -> list[str]:
        """Executor/host hints for locality-aware placement."""
        return self.rdd.preferred_locations(self.partition)

    def run(self, tc: TaskContext) -> Any:
        raise NotImplementedError


class ResultTask(Task):
    """Computes ``func(iterator)`` over one partition; result goes to driver."""

    def __init__(self, stage_id: int, rdd: "RDD", partition: int, func: Callable[[Iterator], Any]) -> None:
        super().__init__(stage_id, rdd, partition)
        self.func = func

    def run(self, tc: TaskContext) -> Any:
        tc.check_faults()
        start = time.perf_counter()
        previous = getattr(_LOCAL, "tc", None)
        _LOCAL.tc = tc
        try:
            result = self.func(self.rdd.iterator(self.partition, tc))
        finally:
            _LOCAL.tc = previous
        tc.metrics.compute_seconds += time.perf_counter() - start
        return result


class TaskBinary:
    """The per-stage payload shipped once to executors (Spark's task binary).

    Every task in a stage shares the same RDD lineage and closure; only the
    partition index differs.  The driver pickles one :class:`TaskBinary`
    per stage and ships tasks as ``(binary_id, partition, attempt, inputs)``
    so the lineage is serialized once per stage instead of once per task,
    and worker processes deserialize it once per stage (keyed by
    ``binary_id``) instead of once per task.
    """

    def __init__(
        self,
        stage_id: int,
        kind: str,
        rdd: "RDD",
        func: Callable[[Iterator], Any] | None,
        shuffle_dep: Any | None,
        accumulators: dict,
        storage_levels: dict[int, Any],
    ) -> None:
        if kind not in ("result", "shuffle_map"):
            raise ValueError(f"unknown task kind {kind!r}")
        self.stage_id = stage_id
        self.kind = kind
        self.rdd = rdd
        self.func = func
        self.shuffle_dep = shuffle_dep
        #: accumulator *definitions* (id -> Accumulator); driver-side state
        #: is stripped by Accumulator.__getstate__ on pickling
        self.accumulators = accumulators
        #: requested StorageLevel per persisted rdd id in this stage's slice
        self.storage_levels = storage_levels

    def make_task(self, partition: int) -> "Task":
        """Rebuild the concrete task for one partition of this stage."""
        if self.kind == "result":
            return ResultTask(self.stage_id, self.rdd, partition, self.func)
        return ShuffleMapTask(self.stage_id, self.rdd, partition, self.shuffle_dep)


class ShuffleMapTask(Task):
    """Computes one map partition and writes bucketed output to the shuffle.

    Returns the map status (output sizes per reduce partition) so the driver
    can track shuffle output availability.
    """

    def __init__(self, stage_id: int, rdd: "RDD", partition: int, shuffle_dep) -> None:
        super().__init__(stage_id, rdd, partition)
        self.shuffle_dep = shuffle_dep

    def run(self, tc: TaskContext) -> Any:
        tc.check_faults()
        if tc.shuffle_manager is None:
            raise RuntimeError("ShuffleMapTask requires a shuffle manager")
        start = time.perf_counter()
        previous = getattr(_LOCAL, "tc", None)
        _LOCAL.tc = tc
        try:
            status = tc.shuffle_manager.write_map_output(
                self.shuffle_dep,
                map_partition=self.partition,
                records=self.rdd.iterator(self.partition, tc),
                executor_id=tc.executor_id,
                metrics=tc.metrics,
            )
        finally:
            _LOCAL.tc = previous
        tc.metrics.compute_seconds += time.perf_counter() - start
        return status
